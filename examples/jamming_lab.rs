//! Scenario: an interference lab — pit the exact slot-level engine against
//! four different jammer personalities and watch what each buys per unit
//! of energy.
//!
//! Uses the exact engine (every slot resolved through the channel model),
//! a traced execution, and the 2-uniform partition so the jammer can
//! target Bob's side only.
//!
//! ```sh
//! cargo run --release --example jamming_lab
//! ```

use rcb::prelude::*;
use rcb_adversary::slot_strategies::ScheduleJammer;
use rcb_channel::trace::Trace;
use rcb_core::one_to_one::schedule::DuelSchedule;

fn run_one(label: &str, adversary: &mut dyn SlotAdversary, seed: u64) -> (String, u64, u64, bool) {
    let profile = Fig1Profile::with_start_epoch(0.05, 7);
    let mut alice = AliceProtocol::new(profile);
    let mut bob = BobProtocol::new(profile);
    let schedule = DuelSchedule::new(7);
    let partition = Partition::pair();
    let mut rng = RcbRng::new(seed);
    let mut trace = Trace::with_capacity(4096);
    // The checked entry point: a run that hits the engine slot cap comes
    // back as a typed error instead of silently clipped numbers.
    let out = run_exact_checked(
        &mut [&mut alice, &mut bob],
        adversary,
        &schedule,
        &partition,
        &mut rng,
        ExactConfig::default(),
        Some(&mut trace),
        &FaultPlan::none(),
    )
    .unwrap_or_else(|e| panic!("{label}: truncated at the engine slot cap: {e}"));
    let jammed_slots = trace.records().iter().filter(|r| r.jam_mask != 0).count() as u64;
    (
        format!(
            "{label:<22} adversary spent {:>6}  (≥{jammed_slots} jammed slots seen)  \
             good-node max cost {:>5}  delivered: {}",
            out.ledger.adversary_cost(),
            out.ledger.max_node_cost(),
            bob.received_message()
        ),
        out.ledger.adversary_cost(),
        out.ledger.max_node_cost(),
        bob.received_message(),
    )
}

fn main() {
    let budget = 2048u64;
    println!("1-to-1 BROADCAST on the exact engine; every jammer gets {budget} energy\n");

    let mut blanket = BudgetedPhaseBlocker::new(budget, 1.0);
    println!("{}", run_one("blanket blocker", &mut blanket, 1).0);

    let mut random = RandomJammer::new(0.5, budget, 99);
    println!("{}", run_one("random 50% jammer", &mut random, 2).0);

    let mut periodic = PeriodicJammer::new(16, 4, budget);
    println!("{}", run_one("periodic 4/16 burst", &mut periodic, 3).0);

    let mut reactive = ReactiveJammer::new(budget);
    println!("{}", run_one("reactive (follows TX)", &mut reactive, 4).0);

    let schedule: Vec<u64> = (0..budget).map(|i| i * 3).collect();
    let mut scripted = ScheduleJammer::new(schedule);
    println!("{}", run_one("scripted every-3rd", &mut scripted, 5).0);

    println!();
    println!("Blanket blocking of whole phases extracts the most good-node cost —");
    println!("exactly what Lemma 1 predicts (suffix/blanket jamming is WLOG optimal).");
    println!("Diffuse and reactive jammers spend the same budget for less damage.");
}
