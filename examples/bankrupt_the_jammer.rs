//! Scenario: the paper's economic argument, played out — "making evildoers
//! pay". Alice and Bob carry small batteries; the jammer carries a much
//! larger one. Because the protocol's cost is O(√T), the jammer must
//! outspend the devices *quadratically* to outlast them: multiplying its
//! battery by 100 multiplies the devices' drain by only ~10.
//!
//! ```sh
//! cargo run --release --example bankrupt_the_jammer
//! ```

use rcb::prelude::*;
use rcb_channel::battery::Battery;

fn main() {
    let base = ScenarioSpec::duel(DuelProtocol::fig1(0.01, 8));
    let node_capacity = 20_000u64;

    println!("device batteries: {node_capacity} units each\n");
    println!("jammer battery | jammer left | alice used | bob used | delivered | verdict");
    println!("---------------+-------------+------------+----------+-----------+--------");

    for factor in [1u64, 10, 100, 1000, 5000] {
        let jammer_capacity = node_capacity * factor;
        let spec = base.clone().with_adversary(AdversarySpec::Budgeted {
            budget: jammer_capacity,
            fraction: 1.0,
        });
        // Average over a few runs for stable numbers.
        let trials = 20;
        let mut alice_used = 0u64;
        let mut bob_used = 0u64;
        let mut jam_used = 0u64;
        let mut delivered = 0u64;
        let mut truncated = 0u64;
        for seed in 0..trials {
            let mut rng = RcbRng::new(0xBA77E5 + seed + factor);
            match spec.run(&mut rng) {
                Ok(outcome) => {
                    let out = outcome.into_duel();
                    alice_used += out.alice_cost;
                    bob_used += out.bob_cost;
                    jam_used += out.adversary_cost;
                    delivered += out.delivered as u64;
                }
                Err(_) => truncated += 1,
            }
        }
        let completed = (trials - truncated).max(1);
        let (a, b, j) = (
            alice_used / completed,
            bob_used / completed,
            jam_used / completed,
        );
        let mut alice_battery = Battery::new(node_capacity);
        let mut bob_battery = Battery::new(node_capacity);
        let mut jam_battery = Battery::new(jammer_capacity);
        let alice_ok = alice_battery.spend(a);
        let bob_ok = bob_battery.spend(b);
        jam_battery.spend(j);
        let verdict = if truncated > 0 {
            "inconclusive (truncated runs)"
        } else if !(alice_ok && bob_ok) {
            "devices dead"
        } else if jam_battery.fraction_used() > 0.9 {
            "jammer bankrupted"
        } else {
            "devices fine"
        };
        println!(
            "{jammer_capacity:>14} | {:>11} | {a:>10} | {b:>8} | {:>6}/{trials} | {verdict}",
            jam_battery.remaining(),
            delivered,
        );
    }

    println!();
    println!("The square-root law in battery terms: killing a device with battery B");
    println!("costs the jammer ~(B/14)^2 energy — here, a 100x bigger battery to");
    println!("flatten a 20k device. Double the device battery and the jammer needs");
    println!("4x more; the economics scale *against* the attacker (Theorem 1, S1.1).");
}
