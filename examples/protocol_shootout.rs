//! Scenario: choosing a 1-to-1 protocol for an energy-budgeted link.
//!
//! Compares three strategies against the same blanket jammer:
//!
//! * **Figure 1** (this paper): cost ~ √(T·ln(1/ε)), Monte Carlo;
//! * **KSY** (King–Saia–Young, PODC 2011): cost ~ T^0.618, Las-Vegas-style,
//!   no ε-dependence — cheaper when there is no attack;
//! * **Combined**: both at once, energy-balanced (the min of the two).
//!
//! ```sh
//! cargo run --release --example protocol_shootout
//! ```

use rcb::prelude::*;
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_sim::runner::{run_trials, Parallelism};

fn mean_duel_cost<P: DuelProfile + Sync>(profile: &P, budget: u64, trials: u64) -> f64 {
    let outs = run_trials(trials, 0xD0E1 ^ budget, Parallelism::Auto, |_, rng| {
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        run_duel(profile, &mut adv, rng, DuelConfig::default())
    });
    outs.iter().map(|o| o.max_cost() as f64).sum::<f64>() / trials as f64
}

fn mean_combined_cost(budget: u64, trials: u64) -> f64 {
    let fig1 = Fig1Profile::with_start_epoch(0.01, 8);
    let ksy = KsyProfile::new();
    let outs = run_trials(trials, 0xC0DE ^ budget, Parallelism::Auto, |_, rng| {
        let mut alice = combined_alice(fig1, ksy);
        let mut bob = combined_bob(fig1, ksy);
        let mut adv = BudgetedPhaseBlocker::new(budget, 1.0);
        let schedule = DuelSchedule::new(8);
        let partition = Partition::pair();
        let out = run_exact(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig {
                max_slots: (budget * 64).max(1 << 20),
            },
            None,
        );
        out.ledger.max_node_cost() as f64
    });
    outs.iter().sum::<f64>() / trials as f64
}

fn main() {
    let fig1 = Fig1Profile::with_start_epoch(0.01, 8);
    let ksy = KsyProfile::new();
    let trials = 40;

    println!("         T | Fig-1 (sqrt T) | KSY (T^0.62) | Combined (min)");
    println!("-----------+----------------+--------------+---------------");
    for budget in [0u64, 1 << 8, 1 << 12, 1 << 16, 1 << 19] {
        let f = mean_duel_cost(&fig1, budget, trials);
        let k = mean_duel_cost(&ksy, budget, trials);
        let c = mean_combined_cost(budget, 10);
        println!("{budget:>10} | {f:>14.1} | {k:>12.1} | {c:>13.1}");
    }

    println!();
    println!("KSY wins at T = 0 (no ln(1/ε) floor); Figure 1 pulls ahead as T");
    println!("grows (0.5 < 0.618 in the exponent); the combined protocol pays at");
    println!("most a constant factor over the better column (paper, Section 1.3).");
}
