//! Scenario: choosing a 1-to-1 protocol for an energy-budgeted link.
//!
//! Compares three strategies against the same blanket jammer:
//!
//! * **Figure 1** (this paper): cost ~ √(T·ln(1/ε)), Monte Carlo;
//! * **KSY** (King–Saia–Young, PODC 2011): cost ~ T^0.618, Las-Vegas-style,
//!   no ε-dependence — cheaper when there is no attack;
//! * **Combined**: both at once, energy-balanced (the min of the two).
//!
//! ```sh
//! cargo run --release --example protocol_shootout
//! ```

use rcb::prelude::*;
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_sim::runner::{run_trials, Parallelism};

/// Mean max-party cost over completed trials; truncated trials (engine
/// slot cap) are dropped from the mean and counted.
fn mean_duel_cost(protocol: DuelProtocol, budget: u64, trials: u64) -> (f64, u64) {
    let spec = ScenarioSpec::duel(protocol)
        .with_adversary(AdversarySpec::Budgeted {
            budget,
            fraction: 1.0,
        })
        .with_trials(trials)
        .with_seed(0xD0E1 ^ budget);
    let mut sum = 0.0;
    let mut completed = 0u64;
    let mut truncated = 0u64;
    for result in spec.run_batch() {
        match result {
            Ok(out) => {
                sum += out.max_cost() as f64;
                completed += 1;
            }
            Err(_) => truncated += 1,
        }
    }
    (sum / completed.max(1) as f64, truncated)
}

fn mean_combined_cost(budget: u64, trials: u64) -> (f64, u64) {
    let fig1 = Fig1Profile::with_start_epoch(0.01, 8);
    let ksy = KsyProfile::new();
    let results = run_trials(trials, 0xC0DE ^ budget, Parallelism::Auto, |_, rng| {
        let mut alice = combined_alice(fig1, ksy);
        let mut bob = combined_bob(fig1, ksy);
        let mut adv = BudgetedPhaseBlocker::new(budget, 1.0);
        let schedule = DuelSchedule::new(8);
        let partition = Partition::pair();
        run_exact_checked(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig {
                max_slots: (budget * 64).max(1 << 20),
            },
            None,
            &FaultPlan::none(),
        )
        .map(|out| out.ledger.max_node_cost() as f64)
    });
    let mut sum = 0.0;
    let mut completed = 0u64;
    let mut truncated = 0u64;
    for r in results {
        match r {
            Ok(c) => {
                sum += c;
                completed += 1;
            }
            Err(_) => truncated += 1,
        }
    }
    (sum / completed.max(1) as f64, truncated)
}

fn main() {
    let trials = 40;

    println!("         T | Fig-1 (sqrt T) | KSY (T^0.62) | Combined (min)");
    println!("-----------+----------------+--------------+---------------");
    let mut total_truncated = 0u64;
    for budget in [0u64, 1 << 8, 1 << 12, 1 << 16, 1 << 19] {
        let (f, tf) = mean_duel_cost(DuelProtocol::fig1(0.01, 8), budget, trials);
        let (k, tk) = mean_duel_cost(DuelProtocol::ksy(), budget, trials);
        let (c, tc) = mean_combined_cost(budget, 10);
        total_truncated += tf + tk + tc;
        println!("{budget:>10} | {f:>14.1} | {k:>12.1} | {c:>13.1}");
    }
    println!("\ntruncated trials (excluded from means): {total_truncated}");

    println!();
    println!("KSY wins at T = 0 (no ln(1/ε) floor); Figure 1 pulls ahead as T");
    println!("grows (0.5 < 0.618 in the exponent); the combined protocol pays at");
    println!("most a constant factor over the better column (paper, Section 1.3).");
}
