//! Scenario: why √T and φ−1 are *laws*, not artifacts — the paper's two
//! lower-bound games, played live.
//!
//! Theorem 2: an adversary that jams exactly when `a·b > 1/T` pins the
//! product of Alice's and Bob's expected costs to `T`, no matter how they
//! split the work. Theorem 5: if the adversary may also *impersonate* Bob,
//! the best split is the golden ratio.
//!
//! ```sh
//! cargo run --release --example lower_bounds
//! ```

use rcb::prelude::*;
use rcb_sim::lowerbound::{golden_ratio_game, product_game};

fn main() {
    let t = 1u64 << 14;
    let trials = 2000;
    let mut rng = RcbRng::new(1618);

    println!("Theorem 2 — the cost-product floor (T = {t}, {trials} trials/row)\n");
    println!("    δ |     E(A) |     E(B) | E(A)·E(B)/T");
    println!("------+----------+----------+------------");
    for delta in [0.3, 0.5, rcb_mathkit::PHI_MINUS_ONE, 0.7, 0.9] {
        let row = product_game(t, delta, trials, &mut rng);
        println!(
            "{delta:>5.3} | {:>8.1} | {:>8.1} | {:>10.3}",
            row.mean_a, row.mean_b, row.product_over_t
        );
    }
    println!();
    println!("The split moves cost between Alice and Bob; the product never budges.");
    println!("max(E(A), E(B)) is therefore Ω(√T) — Figure 1 is optimal.\n");

    println!("Theorem 5 — jam me or be me (spoofing adversary, T̃ = {t})\n");
    println!("    δ | exp(jam) | exp(spoof) | worst | adversary plays");
    println!("------+----------+------------+-------+----------------");
    for delta in [0.45, 0.55, rcb_mathkit::PHI_MINUS_ONE, 0.70, 0.80] {
        let row = golden_ratio_game(t, delta, 500, &mut rng);
        println!(
            "{delta:>5.3} | {:>8.3} | {:>10.3} | {:>5.3} | {:?}",
            row.exponent_jam, row.exponent_spoof, row.worst_exponent, row.picked
        );
    }
    println!();
    println!(
        "The worst-case exponent bottoms out at δ = φ−1 ≈ {:.3} with value ≈ 0.618:",
        rcb_mathkit::PHI_MINUS_ONE
    );
    println!("the golden-ratio cost of King–Saia–Young is unavoidable in this model.");
}
