//! Quickstart: Alice sends an authenticated message to Bob over a jammed
//! channel, spending a *square root* of what the jammer spends.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rcb::prelude::*;

fn main() {
    // Failure probability ε = 1%: Bob receives m with probability ≥ 99%.
    // (The start epoch is scaled down from the paper's 11 + lg ln(8/ε) so
    // the T = 0 baseline cost is small; see DESIGN.md §2.)
    let base = ScenarioSpec::duel(DuelProtocol::fig1(0.01, 8));

    println!("adversary budget T | Alice cost | Bob cost | slots | delivered");
    println!("-------------------+------------+----------+-------+----------");
    for budget in [0u64, 1 << 10, 1 << 14, 1 << 18] {
        // The canonical attacker: silence whole phases until the budget is
        // gone (Lemma 1 says suffix/blanket jamming is the adversary's
        // strongest shape).
        let spec = base.clone().with_adversary(AdversarySpec::Budgeted {
            budget,
            fraction: 1.0,
        });
        let mut rng = RcbRng::new(2014);
        match spec.run(&mut rng) {
            Ok(outcome) => {
                let out = outcome.into_duel();
                println!(
                    "{:>18} | {:>10} | {:>8} | {:>5} | {}",
                    out.adversary_cost, out.alice_cost, out.bob_cost, out.slots, out.delivered
                );
            }
            Err(e) => println!("{budget:>18} | TRUNCATED before completion: {e}"),
        }
    }

    println!();
    println!("The jammer's spend grows 256x across rows; the parties' cost grows ~16x.");
    println!("That square-root gap is resource competitiveness (Theorem 1).");
}
