//! Scenario: a battery-powered sensor field must flood an alarm message
//! from one node to all `n` nodes while a jammer tries to starve it.
//!
//! This is the paper's motivating workload for 1-to-n BROADCAST
//! (Figure 2): the striking property is that the *bigger* the field, the
//! *less* each sensor pays to beat the same jammer — per-node cost scales
//! as √(T/n)·polylog (Theorem 3).
//!
//! ```sh
//! cargo run --release --example sensor_network
//! ```

use rcb::prelude::*;

fn main() {
    let budget = 1u64 << 21; // the jammer's battery, in slot-units
    let trials = 10u64;

    println!("jammer budget per run: {budget}\n");
    println!("   n | mean cost/node | max cost/node | slots (mean) | all informed");
    println!("-----+----------------+---------------+--------------+-------------");
    for n in [4usize, 8, 16, 32, 64, 128] {
        let spec = ScenarioSpec::broadcast(n)
            .with_adversary(AdversarySpec::Budgeted {
                budget,
                fraction: 1.0,
            })
            .with_trials(trials)
            .with_seed(0xA1A7 + n as u64);
        let mut outcomes = Vec::new();
        let mut truncated = 0u64;
        for result in spec.run_batch() {
            match result {
                Ok(out) => outcomes.push(out.into_broadcast()),
                Err(_) => truncated += 1,
            }
        }
        if outcomes.is_empty() {
            println!("{n:>4} | every trial truncated at the epoch cap");
            continue;
        }
        let done = outcomes.len() as f64;
        let mean_cost: f64 = outcomes.iter().map(|o| o.mean_cost()).sum::<f64>() / done;
        let max_cost: f64 = outcomes.iter().map(|o| o.max_cost() as f64).sum::<f64>() / done;
        let slots: f64 = outcomes.iter().map(|o| o.slots as f64).sum::<f64>() / done;
        let informed = outcomes.iter().filter(|o| o.all_informed).count();
        println!(
            "{:>4} | {:>14.1} | {:>13.1} | {:>12.0} | {:>2}/{}{}",
            n,
            mean_cost,
            max_cost,
            slots,
            informed,
            outcomes.len(),
            if truncated > 0 {
                format!("  ({truncated} truncated)")
            } else {
                String::new()
            },
        );
    }

    println!();
    println!("Per-sensor cost falls as the field grows: informed sensors share the");
    println!("relay work, and silence (which calibrates the rates) is free. The");
    println!("jammer must outspend the *network*, not any single node (Theorem 3).");
}
