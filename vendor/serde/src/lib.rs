//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` on plain
//! data types as forward-looking annotations; nothing serializes at
//! runtime. The traits are therefore blanket-implemented markers and the
//! derive macros (re-exported from `serde_derive`) expand to nothing.

/// Marker for serializable types. Blanket-implemented: any derive is a no-op.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented like [`Serialize`].
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_cover_everything() {
        fn assert_serialize<T: crate::Serialize>() {}
        fn assert_deserialize<T: for<'de> crate::Deserialize<'de>>() {}
        assert_serialize::<u64>();
        assert_serialize::<Vec<String>>();
        assert_deserialize::<u64>();
        assert_deserialize::<Vec<String>>();
    }
}
