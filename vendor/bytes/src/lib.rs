//! Offline stand-in for the `bytes` crate.
//!
//! Provides the small `Bytes` surface the workspace uses: construction from
//! slices/vectors, cheap reference-counted cloning, and slice deref.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer (reference-count bump, no copy).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Option<Arc<[u8]>>,
}

impl Bytes {
    /// An empty buffer; allocation-free.
    pub const fn new() -> Self {
        Self { data: None }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.is_empty() {
            return Self::new();
        }
        Self {
            data: Some(Arc::from(data)),
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(arc) => arc,
            None => &[],
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        if data.is_empty() {
            return Self::new();
        }
        Self {
            data: Some(Arc::from(data.into_boxed_slice())),
        }
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Self::copy_from_slice(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Self::from(data.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_slice_roundtrip() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(&b"abc"[..]);
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn clone_is_equal_and_shares_storage() {
        let a = Bytes::from(vec![7u8; 64]);
        let b = a.clone();
        assert_eq!(a, b);
        let (pa, pb) = (a.as_slice().as_ptr(), b.as_slice().as_ptr());
        assert_eq!(pa, pb, "clone must share the allocation");
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(&b"a\"b"[..]);
        assert_eq!(format!("{b:?}"), "b\"a\\\"b\"");
    }
}
