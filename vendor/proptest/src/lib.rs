//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! `proptest!` test macro, `Strategy` with range/tuple/`Just`/union
//! strategies, `any::<T>()`, `prop::collection::{vec, btree_set}`, and the
//! `prop_assert*`/`prop_assume!` macros — as a plain randomized test
//! runner. Each test runs a fixed number of cases (default 256, override
//! with `PROPTEST_CASES`) from a seed derived deterministically from the
//! test name, so failures are reproducible. Shrinking is not implemented:
//! on failure the full input set is printed instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};

    /// Namespace mirror of the upstream `proptest::prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // `#[test]` goes here in a test module.
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __inputs = {
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(stringify!($arg));
                            __s.push_str(" = ");
                            __s.push_str(&::std::format!("{:?}", &$arg));
                            __s.push_str("; ");
                        )+
                        __s
                    };
                    let mut __case = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case().map_err(|__e| ::std::format!("{__e}\n  inputs: {__inputs}"))
                },
            );
        }
        $crate::proptest!($($rest)*);
    };
}

/// Picks one of several strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::weighted_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::weighted_arm(1u32, $strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} ({})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+),
                __l
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
