//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn generate_any(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::generate_any(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_ints {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn generate_any(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate_any(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn generate_any(rng: &mut TestRng) -> f64 {
        // Finite values only: full-domain floats (NaN, infinities) break
        // ordinary numeric properties and upstream `any::<f64>()` is rarely
        // what simulation tests want anyway.
        (rng.f64() - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    fn generate_any(rng: &mut TestRng) -> f32 {
        ((rng.f64() - 0.5) * 2e6) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::new(1);
        let trues = (0..200)
            .filter(|_| any::<bool>().generate(&mut rng))
            .count();
        assert!(trues > 50 && trues < 150);
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::new(2);
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }
}
