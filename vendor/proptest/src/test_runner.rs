//! The randomized case runner and its RNG.

/// Deterministic RNG for test-case generation (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling over the top 64-bit multiply keeps this unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let wide = (r as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Number of cases per property (default 256, `PROPTEST_CASES` overrides).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(256)
}

/// Runs `f` for [`case_count`] cases with an RNG seeded from `name`;
/// panics with the case's report on the first failure.
pub fn run_cases(name: &str, mut f: impl FnMut(&mut TestRng) -> Result<(), String>) {
    let cases = case_count();
    let mut rng = TestRng::new(fnv1a(name));
    for case in 0..cases {
        if let Err(report) = f(&mut rng) {
            panic!("property '{name}' failed at case {case}/{cases}:\n  {report}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = TestRng::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = TestRng::new(2);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = Vec::new();
        run_cases("x", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = Vec::new();
        run_cases("x", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_report() {
        run_cases("y", |_| Err("boom".into()));
    }
}
