//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A `Vec` whose length is uniform in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` built from up to `size` element draws (duplicates collapse,
/// so the set may come out smaller than the drawn target — same contract as
/// upstream for narrow element domains).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty size range");
    BTreeSetStrategy { element, size }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut out = BTreeSet::new();
        // Bounded extra draws so narrow domains cannot loop forever.
        let mut budget = 4 * target + 16;
        while out.len() < target && budget > 0 {
            out.insert(self.element.generate(rng));
            budget -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_elements() {
        let strat = vec(0u64..10, 2..6);
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_is_bounded_and_in_domain() {
        let strat = btree_set(0u64..512, 0..32);
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.len() < 32);
            assert!(s.iter().all(|&x| x < 512));
        }
    }

    #[test]
    fn btree_set_narrow_domain_terminates() {
        let strat = btree_set(0u64..2, 0..32);
        let mut rng = TestRng::new(3);
        let s = strat.generate(&mut rng);
        assert!(s.len() <= 2);
    }
}
