//! The `Strategy` trait and the primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategies compose by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64).wrapping_sub(*self.start() as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                self.start().wrapping_add(rng.below(span + 1) as $ty)
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $ty
            }
        }
    )+};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.f64() as $ty;
                let v = self.start + u * (self.end - self.start);
                // Floating rounding may land exactly on `end`; clamp inside.
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                // A uniform draw on [start, end]: include the endpoint by
                // scaling a 53-bit integer over an inclusive lattice.
                let u = (rng.next_u64() >> 11) as $ty / ((1u64 << 53) - 1) as $ty;
                self.start() + u * (self.end() - self.start())
            }
        }
    )+};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!((A, B), (A, B, C), (A, B, C, D));

/// One weighted arm of a [`Union`]; built by [`weighted_arm`].
pub type UnionArm<V> = (u32, Box<dyn Strategy<Value = V>>);

/// Boxes a strategy into a [`Union`] arm (the `prop_oneof!` building block).
pub fn weighted_arm<S>(weight: u32, strategy: S) -> UnionArm<S::Value>
where
    S: Strategy + 'static,
{
    (weight, Box::new(strategy))
}

/// Chooses among arms with probability proportional to their weights.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
    total_weight: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Self { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = *weight as u64;
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights summed correctly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let g = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&g));
            let i = (-10i32..10).generate(&mut rng);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::new(2);
        assert_eq!(Just(vec![1, 2]).generate(&mut rng), vec![1, 2]);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (0u64..4, 0.0f64..1.0, Just(7u8)).generate(&mut rng);
        assert!(a < 4);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, 7);
    }

    #[test]
    fn union_respects_weights() {
        let u = Union::new(vec![weighted_arm(9, Just(0u8)), weighted_arm(1, Just(1u8))]);
        let mut rng = TestRng::new(4);
        let ones: usize = (0..2000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 100 && ones < 350, "≈10% expected, got {ones}/2000");
    }
}
