//! No-op derive macros backing the vendored `serde` marker traits.
//!
//! The vendored `serde` blanket-implements `Serialize`/`Deserialize` for
//! every type, so these derives only need to exist for `#[derive(...)]`
//! attributes to resolve; they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
