//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros — over a simple
//! wall-clock timer. Statistics are a mean over a handful of adaptive
//! samples rather than criterion's full bootstrap, which is enough to
//! compare hot paths locally without network access to the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark (reported as a rate).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One calibration call sizes the batch so a sample costs ~10 ms.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000);

        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let mean = start.elapsed() / per_sample as u32;
            best = best.min(mean);
        }
        self.last_mean = best;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2 here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.last_mean);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            last_mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.last_mean);
        self
    }

    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        if self.criterion.test_mode {
            2
        } else {
            self.sample_size.min(20)
        }
    }

    fn report(&self, id: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.1} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.1} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean:?}/iter{rate}", self.name);
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench targets with no bench
        // flags; keep those runs fast by shrinking the sample budget.
        let test_mode = std::env::args().skip(1).all(|a| a != "--bench");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Declares a function running the listed benchmarks with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // Harness protocol: `--list` must print nothing and exit.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }

    #[test]
    fn groups_run_their_bodies() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(1));
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &x| {
            b.iter(|| ran += x)
        });
        group.finish();
        assert!(ran > 0);
    }
}
