//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! tiny trait surface it actually consumes — `RngCore` and `SeedableRng`,
//! which `rcb_mathkit::rng::RcbRng` *implements* (it never consumes any
//! rand-provided generator) — is vendored here with signatures compatible
//! with rand 0.9.

/// The core of a random number generator: uniform raw output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a `u64` via SplitMix64, matching the
    /// upstream default closely enough for deterministic testing.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let len = chunk.len();
                chunk.copy_from_slice(&self.next_u64().to_le_bytes()[..len]);
            }
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = Lcg::seed_from_u64(7);
        let mut b = Lcg::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Lcg::seed_from_u64(1);
        let mut b = Lcg::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_odd_lengths() {
        let mut a = Lcg::seed_from_u64(3);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
