//! Aggregation cells for experiment sweeps.

use rcb_mathkit::stats::RunningStats;
use serde::{Deserialize, Serialize};

/// One aggregated cell of an experiment table: many trials of one
/// parameter combination.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Cell {
    /// The swept parameter value (e.g. `T` or `n`).
    pub x: f64,
    pub mean: f64,
    pub sem: f64,
    pub min: f64,
    /// 95th percentile — heavy-tail visibility for jammed cost
    /// distributions.
    pub p95: f64,
    pub max: f64,
    pub trials: u64,
}

impl Cell {
    /// Builds a cell from raw per-trial values.
    pub fn from_samples(x: f64, samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "a cell needs at least one trial");
        let mut stats = RunningStats::new();
        for &s in samples {
            stats.push(s);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Self {
            x,
            mean: stats.mean(),
            sem: if samples.len() > 1 { stats.sem() } else { 0.0 },
            min: stats.min(),
            p95: rcb_mathkit::stats::percentile(&sorted, 0.95),
            max: stats.max(),
            trials: stats.count(),
        }
    }
}

/// A swept series: cells ordered by `x`, ready for a scaling fit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepSeries {
    pub name: String,
    pub cells: Vec<Cell>,
}

impl SweepSeries {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    pub fn push(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    /// `(x, mean)` pairs for fitting.
    pub fn points(&self) -> (Vec<f64>, Vec<f64>) {
        (
            self.cells.iter().map(|c| c.x).collect(),
            self.cells.iter().map(|c| c.mean).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_aggregates_samples() {
        let c = Cell::from_samples(10.0, &[1.0, 2.0, 3.0]);
        assert_eq!(c.x, 10.0);
        assert!((c.mean - 2.0).abs() < 1e-12);
        assert_eq!(c.min, 1.0);
        assert!(c.p95 <= c.max && c.p95 >= c.mean);
        assert_eq!(c.max, 3.0);
        assert_eq!(c.trials, 3);
        assert!(c.sem > 0.0);
    }

    #[test]
    fn single_sample_cell_has_zero_sem() {
        let c = Cell::from_samples(1.0, &[5.0]);
        assert_eq!(c.sem, 0.0);
        assert_eq!(c.mean, 5.0);
    }

    #[test]
    #[should_panic]
    fn empty_cell_panics() {
        Cell::from_samples(1.0, &[]);
    }

    #[test]
    fn series_points_preserve_order() {
        let mut s = SweepSeries::new("cost-vs-T");
        s.push(Cell::from_samples(1.0, &[1.0]));
        s.push(Cell::from_samples(4.0, &[2.0]));
        s.push(Cell::from_samples(16.0, &[4.0]));
        let (xs, ys) = s.points();
        assert_eq!(xs, vec![1.0, 4.0, 16.0]);
        assert_eq!(ys, vec![1.0, 2.0, 4.0]);
        assert_eq!(s.name, "cost-vs-T");
    }
}
