//! Scaling-exponent verdicts: does a measured sweep match the paper?
//!
//! Every theorem reduces to a statement "measured quantity scales like
//! `x^α·polylog(x)`". A pure power-law fit over a finite range absorbs the
//! polylog into a slightly inflated exponent, so verdicts use a tolerance
//! band (default ±0.15) around the predicted α — wide enough for polylog
//! drift over 3–5 decades, narrow enough to separate the interesting
//! hypotheses (0.5 vs 0.62 vs 1.0 differ by ≥ 0.12 and the sweeps span
//! enough range for that to show).

use crate::report::SweepSeries;
use rcb_mathkit::fit::{power_law_fit, power_law_fit_with_offset, PowerLawFit};
use serde::{Deserialize, Serialize};

/// A fitted sweep judged against a predicted exponent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingVerdict {
    pub series: String,
    pub predicted_exponent: f64,
    pub fitted: PowerLawFit,
    pub tolerance: f64,
    pub within_tolerance: bool,
}

/// Fits `series` and judges it against `predicted_exponent ± tolerance`.
/// Returns `None` when the series has too few positive points to fit.
pub fn fit_scaling(
    series: &SweepSeries,
    predicted_exponent: f64,
    tolerance: f64,
) -> Option<ScalingVerdict> {
    let (xs, ys) = series.points();
    let fitted = power_law_fit(&xs, &ys)?;
    Some(ScalingVerdict {
        series: series.name.clone(),
        predicted_exponent,
        fitted,
        tolerance,
        within_tolerance: (fitted.exponent - predicted_exponent).abs() <= tolerance,
    })
}

/// Fits `series` after subtracting a `T = 0` baseline from every mean —
/// the right treatment for cost functions of the form
/// `ρ(T) + τ` (paper §1.1): the additive efficiency term `τ` (e.g.
/// `ln(1/ε)`, `log⁶ n`) flattens the small-`x` end of a raw power-law fit,
/// while `ρ` is the scaling under test. Cells whose mean does not exceed
/// the baseline are dropped (no signal above τ there).
pub fn fit_scaling_above_baseline(
    series: &SweepSeries,
    baseline: f64,
    predicted_exponent: f64,
    tolerance: f64,
) -> Option<ScalingVerdict> {
    let mut adjusted = SweepSeries::new(format!("{} (− τ baseline)", series.name));
    for cell in &series.cells {
        if cell.mean > baseline {
            let mut c = *cell;
            c.mean -= baseline;
            adjusted.push(c);
        }
    }
    fit_scaling(&adjusted, predicted_exponent, tolerance)
}

/// Fits `series` with a free additive offset (`y = A + c·x^α`), judging the
/// fitted α — the right model for `ρ(T) + τ` cost functions where the
/// efficiency term τ is unknown. Returns the verdict plus the fitted τ.
pub fn fit_scaling_with_offset(
    series: &SweepSeries,
    predicted_exponent: f64,
    tolerance: f64,
) -> Option<(ScalingVerdict, f64)> {
    let (xs, ys) = series.points();
    let fitted = power_law_fit_with_offset(&xs, &ys)?;
    let verdict = ScalingVerdict {
        series: format!("{} (offset fit, τ̂ = {:.1})", series.name, fitted.offset),
        predicted_exponent,
        fitted: PowerLawFit {
            exponent: fitted.exponent,
            amplitude: fitted.amplitude,
            r2: fitted.r2,
        },
        tolerance,
        within_tolerance: (fitted.exponent - predicted_exponent).abs() <= tolerance,
    };
    Some((verdict, fitted.offset))
}

impl ScalingVerdict {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: fitted x^{:.3} (R²={:.3}) vs predicted x^{:.3} ± {:.2} → {}",
            self.series,
            self.fitted.exponent,
            self.fitted.r2,
            self.predicted_exponent,
            self.tolerance,
            if self.within_tolerance {
                "OK"
            } else {
                "MISMATCH"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    fn series_with_exponent(alpha: f64) -> SweepSeries {
        let mut s = SweepSeries::new("test");
        for k in 1..10 {
            let x = (4.0_f64).powi(k);
            s.push(Cell::from_samples(x, &[3.0 * x.powf(alpha)]));
        }
        s
    }

    #[test]
    fn exact_power_law_is_within_tolerance() {
        let v = fit_scaling(&series_with_exponent(0.5), 0.5, 0.15).expect("fit");
        assert!(v.within_tolerance);
        assert!((v.fitted.exponent - 0.5).abs() < 1e-9);
        assert!(v.summary().contains("OK"));
    }

    #[test]
    fn wrong_exponent_is_flagged() {
        let v = fit_scaling(&series_with_exponent(1.0), 0.5, 0.15).expect("fit");
        assert!(!v.within_tolerance);
        assert!(v.summary().contains("MISMATCH"));
    }

    #[test]
    fn polylog_drift_stays_within_band() {
        // x^0.5·log²(x) over 4 decades fits with exponent ≈ 0.5 + drift;
        // the band must absorb it.
        let mut s = SweepSeries::new("polylog");
        for k in 5..18 {
            let x = (2.0_f64).powi(k);
            let y = x.sqrt() * x.ln().powi(2);
            s.push(Cell::from_samples(x, &[y]));
        }
        let v = fit_scaling(&s, 0.5, 0.35).expect("fit");
        assert!(
            v.within_tolerance,
            "fitted {} should be within 0.5 ± 0.35",
            v.fitted.exponent
        );
        // And it must still be distinguishable from linear.
        assert!(v.fitted.exponent < 0.9);
    }

    #[test]
    fn unfittable_series_is_none() {
        let mut s = SweepSeries::new("degenerate");
        s.push(Cell::from_samples(0.0, &[1.0]));
        assert!(fit_scaling(&s, 0.5, 0.1).is_none());
    }
}
