//! Terminal plots for experiment reports: a log-log scatter that makes a
//! power law visible at a glance (a straight line of `*`s whose slope is
//! the exponent), plus a reference line for the predicted exponent.

use crate::report::SweepSeries;

/// Renders `series` on log-log axes as ASCII, `width`×`height` characters
/// of plot area. Points are `*`; the dashed reference line (`·`) passes
/// through the first point with slope `reference_exponent`.
///
/// Returns an empty string when fewer than two positive points exist.
pub fn ascii_loglog(
    series: &SweepSeries,
    width: usize,
    height: usize,
    reference_exponent: Option<f64>,
) -> String {
    assert!(width >= 8 && height >= 4, "plot area too small");
    let pts: Vec<(f64, f64)> = series
        .cells
        .iter()
        .filter(|c| c.x > 0.0 && c.mean > 0.0)
        .map(|c| (c.x.ln(), c.mean.ln()))
        .collect();
    if pts.len() < 2 {
        return String::new();
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    // Reference line can extend the y-range; include its endpoints.
    let reference = reference_exponent.map(|alpha| {
        let (x0, y0) = pts[0];
        (x0, y0, alpha)
    });
    if let Some((x0, y0, alpha)) = reference {
        for xx in [min_x, max_x] {
            let yy = y0 + alpha * (xx - x0);
            min_y = min_y.min(yy);
            max_y = max_y.max(yy);
        }
    }
    let span_x = (max_x - min_x).max(1e-12);
    let span_y = (max_y - min_y).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    let to_cell = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x - min_x) / span_x * (width - 1) as f64).round() as usize;
        let cy = ((y - min_y) / span_y * (height - 1) as f64).round() as usize;
        (cx.min(width - 1), (height - 1) - cy.min(height - 1))
    };
    // Reference line first so data points overwrite it.
    if let Some((x0, y0, alpha)) = reference {
        for col in 0..width {
            let x = min_x + span_x * col as f64 / (width - 1) as f64;
            let y = y0 + alpha * (x - x0);
            if y >= min_y - 1e-9 && y <= max_y + 1e-9 {
                let (cx, cy) = to_cell(x, y);
                grid[cy][cx] = '.';
            }
        }
    }
    for &(x, y) in &pts {
        let (cx, cy) = to_cell(x, y);
        grid[cy][cx] = '*';
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} (log-log; * data{}):\n",
        series.name,
        match reference_exponent {
            Some(a) => format!(", · reference slope {a:.2}"),
            None => String::new(),
        }
    ));
    out.push_str(&format!(
        "  y: {:.3e} .. {:.3e}\n",
        min_y.exp(),
        max_y.exp()
    ));
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "  x: {:.3e} .. {:.3e}\n",
        min_x.exp(),
        max_x.exp()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    fn sqrt_series() -> SweepSeries {
        let mut s = SweepSeries::new("cost vs T");
        for k in 4..16 {
            let x = (2.0f64).powi(k);
            s.push(Cell::from_samples(x, &[5.0 * x.sqrt()]));
        }
        s
    }

    #[test]
    fn renders_plot_with_points_and_reference() {
        let plot = ascii_loglog(&sqrt_series(), 40, 10, Some(0.5));
        assert!(plot.contains('*'));
        assert!(plot.contains('.'));
        assert!(plot.contains("cost vs T"));
        assert!(plot.contains("reference slope 0.50"));
        // 10 grid rows plus header/axis lines.
        assert!(plot.lines().count() >= 13);
    }

    #[test]
    fn perfect_power_law_points_fall_on_the_reference() {
        // With the reference through the first point at the true slope,
        // every '*' should overwrite a '.' — so no row has a '.' to the
        // right AND left... simpler: count cells; the data diagonal should
        // be monotone down-right.
        let plot = ascii_loglog(&sqrt_series(), 40, 12, Some(0.5));
        // Grid rows start with "  |"; the top row holds the largest y,
        // which for an increasing series is also the largest x — so the
        // star columns march *left* going down.
        let mut last_col = usize::MAX;
        let mut rows_with_star = 0;
        for line in plot
            .lines()
            .filter(|l| l.starts_with("  |") && l.contains('*'))
        {
            let col = line.find('*').expect("has star");
            assert!(col <= last_col, "stars march left as y decreases:\n{plot}");
            last_col = col;
            rows_with_star += 1;
        }
        assert!(rows_with_star >= 4);
    }

    #[test]
    fn empty_or_degenerate_series_is_empty_string() {
        let empty = SweepSeries::new("nothing");
        assert!(ascii_loglog(&empty, 40, 10, None).is_empty());
        let mut one = SweepSeries::new("one");
        one.push(Cell::from_samples(4.0, &[2.0]));
        assert!(ascii_loglog(&one, 40, 10, None).is_empty());
        let mut nonpos = SweepSeries::new("nonpos");
        nonpos.push(Cell::from_samples(0.0, &[1.0]));
        nonpos.push(Cell::from_samples(-1.0, &[1.0]));
        assert!(ascii_loglog(&nonpos, 40, 10, None).is_empty());
    }

    #[test]
    fn works_without_reference() {
        let plot = ascii_loglog(&sqrt_series(), 30, 8, None);
        assert!(plot.contains('*'));
        assert!(!plot.contains("reference"));
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_plot_area() {
        ascii_loglog(&sqrt_series(), 4, 2, None);
    }
}
