//! Plain-text / markdown table rendering for experiment binaries.
//!
//! The experiment binaries print their rows through this builder so the
//! output pasted into EXPERIMENTS.md is uniform: right-aligned numerics,
//! a markdown header row, and a separator.

/// Column-aware table builder.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as RFC-4180-style CSV (fields with commas, quotes, or
    /// newlines are quoted; embedded quotes doubled).
    pub fn csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let render = |cells: &[String]| -> String {
            cells.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&render(&self.headers));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&render(r));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn markdown(&self) -> String {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |", sep.join(" | ")));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells (3 significant-ish digits).
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TableBuilder::new(vec!["T", "cost"]);
        t.row(vec!["16", "4.0"]).row(vec!["65536", "256.0"]);
        let md = t.markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("T") && lines[0].contains("cost"));
        assert!(lines[1].starts_with("| -"));
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        TableBuilder::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn num_formatting_tiers() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(0.5), "0.500");
        assert_eq!(num(42.25), "42.2");
        assert_eq!(num(123456.0), "123456");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TableBuilder::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.markdown().lines().count(), 2);
    }

    #[test]
    fn csv_renders_plain_fields() {
        let mut t = TableBuilder::new(vec!["T", "cost"]);
        t.row(vec!["16", "4.0"]);
        assert_eq!(t.csv(), "T,cost\n16,4.0\n");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = TableBuilder::new(vec!["name", "note"]);
        t.row(vec!["a,b", "say \"hi\""]);
        assert_eq!(t.csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }
}
