//! # rcb-analysis
//!
//! Turns raw Monte-Carlo outcomes into the tables EXPERIMENTS.md records:
//! summary cells (mean ± CI over trials), power-law scaling fits against
//! the paper's predicted exponents, and plain-text/markdown rendering.

pub mod plot;
pub mod report;
pub mod scaling;
pub mod table;

pub use plot::ascii_loglog;
pub use report::{Cell, SweepSeries};
pub use scaling::{
    fit_scaling, fit_scaling_above_baseline, fit_scaling_with_offset, ScalingVerdict,
};
pub use table::TableBuilder;
