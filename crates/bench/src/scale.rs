//! Experiment sizing.
//!
//! `RCB_SCALE=quick` (default) keeps every experiment in the tens of
//! seconds; `RCB_SCALE=full` multiplies trial counts and extends sweeps for
//! publication-grade error bars. The master seed can be overridden with
//! `RCB_SEED` for reproducibility studies.

/// Trial-count and sweep sizing for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Multiplier applied to each experiment's base trial count.
    pub trial_factor: u64,
    /// Extend sweeps by this many extra doublings of the budget axis.
    pub extra_budget_doublings: u32,
    /// Master seed for all experiments.
    pub seed: u64,
}

impl Scale {
    pub fn quick() -> Self {
        Self {
            trial_factor: 1,
            extra_budget_doublings: 0,
            seed: 0x5EED_2014,
        }
    }

    pub fn full() -> Self {
        Self {
            trial_factor: 4,
            extra_budget_doublings: 2,
            seed: 0x5EED_2014,
        }
    }

    /// Reads `RCB_SCALE` / `RCB_SEED` from the environment.
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("RCB_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        };
        if let Ok(seed) = std::env::var("RCB_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                scale.seed = seed;
            }
        }
        scale
    }

    /// Scaled trial count for a base of `base` trials.
    pub fn trials(&self, base: u64) -> u64 {
        (base * self.trial_factor).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_and_full_differ() {
        assert!(Scale::full().trial_factor > Scale::quick().trial_factor);
        assert_eq!(Scale::quick().trials(100), 100);
        assert_eq!(Scale::full().trials(100), 400);
    }

    #[test]
    fn trials_floor_is_two() {
        assert_eq!(Scale::quick().trials(0), 2);
    }
}
