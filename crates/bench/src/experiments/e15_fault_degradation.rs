//! E15 (extension) — graceful degradation under non-adversarial faults.
//!
//! The paper's adversary jams; real deployments *also* lose packets, brown
//! out, reboot, and drift their clocks. This experiment measures how the
//! Figure 1 / Figure 2 protocols degrade under the seeded fault-injection
//! layer (`rcb_sim::faults`), with three claims to check:
//!
//! 1. **Loss is a slope, not a cliff.** Receiver-side loss `p` makes the
//!    duel pay more and deliver later, but delivery probability falls
//!    continuously in `p` — there is no threshold where the protocol
//!    collapses, with or without a concurrent jammer.
//! 2. **Crash–restart re-converges.** A node that goes dark mid-run and
//!    reboots with wiped volatile state is re-informed by the helpers;
//!    the informed rate stays at the fault-free level.
//! 3. **Battery brownout fails soft.** A hard energy cap produces runs
//!    that end with whatever dissemination was achieved — informed
//!    fraction grows with capacity, and no cap wedges the run.

use crate::experiments::common::split_truncated;
use crate::scale::Scale;
use rcb_adversary::rep_strategies::{BudgetedRepBlocker, NoJamRep};
use rcb_adversary::traits::RepetitionAdversary;
use rcb_analysis::table::{num, TableBuilder};
use rcb_core::one_to_n::OneToNParams;
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_mathkit::stats::RunningStats;
use rcb_sim::duel::{run_duel_checked, DuelConfig};
use rcb_sim::fast::{run_broadcast_checked, FastConfig};
use rcb_sim::faults::FaultPlan;
use rcb_sim::runner::{run_trials, Parallelism};

struct DuelCellResult {
    delivered_rate: f64,
    mean_max_cost: f64,
    mean_slots: f64,
    truncated: u64,
}

fn duel_cell(budget: u64, loss: f64, trials: u64, seed: u64) -> DuelCellResult {
    let profile = Fig1Profile::with_start_epoch(0.1, 8);
    let plan = if loss > 0.0 {
        FaultPlan::none().with_loss(loss)
    } else {
        FaultPlan::none()
    };
    let results = run_trials(trials, seed, Parallelism::Auto, |_, rng| {
        let mut adv: Box<dyn RepetitionAdversary> = if budget == 0 {
            Box::new(NoJamRep)
        } else {
            Box::new(BudgetedRepBlocker::new(budget, 1.0))
        };
        run_duel_checked(&profile, adv.as_mut(), rng, DuelConfig::default(), &plan)
    });
    let (outcomes, truncated) = split_truncated(results);
    assert!(
        !outcomes.is_empty(),
        "budget {budget}, loss {loss}: every trial truncated"
    );
    let mut max_cost = RunningStats::new();
    let mut slots = RunningStats::new();
    let mut delivered = 0u64;
    for o in &outcomes {
        max_cost.push(o.max_cost() as f64);
        slots.push(o.slots as f64);
        delivered += o.delivered as u64;
    }
    DuelCellResult {
        delivered_rate: delivered as f64 / outcomes.len() as f64,
        mean_max_cost: max_cost.mean(),
        mean_slots: slots.mean(),
        truncated,
    }
}

struct BroadcastCellResult {
    informed_fraction: f64,
    all_informed_rate: f64,
    mean_max_cost: f64,
    mean_slots: f64,
    truncated: u64,
}

fn broadcast_cell(n: usize, plan: FaultPlan, trials: u64, seed: u64) -> BroadcastCellResult {
    let params = OneToNParams::practical();
    let results = run_trials(trials, seed, Parallelism::Auto, |_, rng| {
        let mut adv = NoJamRep;
        run_broadcast_checked(
            &params,
            n,
            &[0],
            &mut adv,
            rng,
            FastConfig::default(),
            &mut (),
            &plan,
        )
    });
    let (outcomes, truncated) = split_truncated(results);
    assert!(!outcomes.is_empty(), "n {n}: every trial truncated");
    let mut informed = RunningStats::new();
    let mut max_cost = RunningStats::new();
    let mut slots = RunningStats::new();
    let mut all_informed = 0u64;
    for o in &outcomes {
        informed.push(o.informed as f64 / n as f64);
        max_cost.push(o.max_cost() as f64);
        slots.push(o.slots as f64);
        all_informed += o.all_informed as u64;
    }
    BroadcastCellResult {
        informed_fraction: informed.mean(),
        all_informed_rate: all_informed as f64 / outcomes.len() as f64,
        mean_max_cost: max_cost.mean(),
        mean_slots: slots.mean(),
        truncated,
    }
}

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let seed = scale.seed ^ 0xE15;

    // ---- 1. Loss sweep × jammer budget (duel). ----
    let trials = scale.trials(60);
    let losses = [0.0, 0.05, 0.1, 0.2, 0.4];
    let budgets = [0u64, 4096];
    let mut table = TableBuilder::new(vec![
        "T",
        "p_loss",
        "delivered rate",
        "E[max cost]",
        "E[slots]",
    ]);
    let mut truncated_total = 0u64;
    let mut cliff = false;
    for &budget in &budgets {
        let mut prev_rate = f64::INFINITY;
        for (k, &loss) in losses.iter().enumerate() {
            let r = duel_cell(budget, loss, trials, seed ^ (budget << 8) ^ k as u64);
            truncated_total += r.truncated;
            // A "cliff" is a fault step that erases delivery outright:
            // adjacent cells dropping from mostly-delivering to
            // essentially-never. Sampling noise stays well above this.
            cliff |= prev_rate >= 0.5 && r.delivered_rate < 0.1;
            prev_rate = r.delivered_rate;
            table.row(vec![
                budget.to_string(),
                format!("{loss:.2}"),
                format!("{:.2}", r.delivered_rate),
                num(r.mean_max_cost),
                num(r.mean_slots),
            ]);
        }
    }
    out.push_str(&format!(
        "1-to-1 under receiver loss (ε = 0.1, i₀ = 8, trials/cell = {trials})\n\n"
    ));
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\ncliff check: {} (a cliff = adjacent loss steps falling from ≥0.50 \
         to <0.10 delivered)\n\n",
        if cliff {
            "FAILED — delivery collapses"
        } else {
            "passed — degradation is continuous"
        }
    ));

    // ---- 2. Crash–restart re-convergence (1-to-n). ----
    let n = 16;
    let trials = scale.trials(40);
    let mut table = TableBuilder::new(vec![
        "fault",
        "informed frac",
        "all-informed rate",
        "E[max cost]",
        "E[slots]",
    ]);
    let crash_cells = [
        ("none", FaultPlan::none()),
        (
            "crash n3 @2+8",
            FaultPlan::none().with_crash(3, 2, 8, false),
        ),
        (
            "crash n3 @2+8, lose state",
            FaultPlan::none().with_crash(3, 2, 8, true),
        ),
    ];
    for (i, (label, plan)) in crash_cells.iter().enumerate() {
        let r = broadcast_cell(n, *plan, trials, seed ^ 0xC0 ^ i as u64);
        truncated_total += r.truncated;
        table.row(vec![
            label.to_string(),
            format!("{:.3}", r.informed_fraction),
            format!("{:.2}", r.all_informed_rate),
            num(r.mean_max_cost),
            num(r.mean_slots),
        ]);
    }
    out.push_str(&format!(
        "1-to-n crash–restart (n = {n}, no jamming, trials/cell = {trials})\n\n"
    ));
    out.push_str(&table.markdown());
    out.push_str(
        "\nexpected shape: the crashed node misses the early dissemination \
         window, reboots (with or without its volatile state), and is \
         re-informed by the helpers — the informed rate stays at the \
         fault-free level, at slightly higher latency.\n\n",
    );

    // ---- 3. Battery brownout (1-to-n). ----
    let mut table = TableBuilder::new(vec![
        "battery cap",
        "informed frac",
        "all-informed rate",
        "E[max cost]",
    ]);
    let caps = [Some(32u64), Some(128), Some(512), None];
    for (i, cap) in caps.iter().enumerate() {
        let plan = match cap {
            Some(c) => FaultPlan::none().with_battery(*c),
            None => FaultPlan::none(),
        };
        let r = broadcast_cell(n, plan, trials, seed ^ 0xBA00 ^ i as u64);
        truncated_total += r.truncated;
        table.row(vec![
            cap.map_or("∞".into(), |c| c.to_string()),
            format!("{:.3}", r.informed_fraction),
            format!("{:.2}", r.all_informed_rate),
            num(r.mean_max_cost),
        ]);
    }
    out.push_str(&format!(
        "1-to-n battery brownout (n = {n}, no jamming, trials/cell = {trials})\n\n"
    ));
    out.push_str(&table.markdown());
    out.push_str(
        "\nexpected shape: informed fraction grows with capacity and max \
         cost stays ≤ cap + one period of overshoot; every run ends (dead \
         nodes count as halted) — brownout fails soft instead of wedging \
         the harness.\n",
    );
    out.push_str(&format!("\ntruncated trials: {truncated_total}\n"));
    out
}
