//! E8 — Theorem 5: against a spoof-capable adversary the best achievable
//! 1-to-1 exponent is `φ − 1 ≈ 0.618`.
//!
//! For each split δ the adversary plays the better of jam-Bob (exponent δ)
//! and impersonate-Bob (exponent `(1−δ)/δ`). The measured worst-case
//! exponent column must be minimized at δ = φ−1, matching both the lower
//! bound and the KSY upper bound the paper cites.

use crate::scale::Scale;
use rcb_analysis::table::{num, TableBuilder};
use rcb_mathkit::rng::SeedSequence;
use rcb_mathkit::PHI_MINUS_ONE;
use rcb_sim::lowerbound::golden_ratio_game;

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let budget = 1u64 << 14;
    let trials = scale.trials(300);
    let seeds = SeedSequence::new(scale.seed ^ 0xE8);
    let deltas = [0.40, 0.45, 0.50, 0.55, PHI_MINUS_ONE, 0.65, 0.70, 0.80];

    let mut table = TableBuilder::new(vec![
        "δ",
        "exp (jam)",
        "exp (spoof)",
        "worst",
        "predicted",
        "adversary picks",
    ]);
    let mut best = (f64::INFINITY, 0.0);
    for (i, &delta) in deltas.iter().enumerate() {
        let mut rng = seeds.rng(i as u64);
        let row = golden_ratio_game(budget, delta, trials, &mut rng);
        if row.worst_exponent < best.0 {
            best = (row.worst_exponent, delta);
        }
        table.row(vec![
            format!("{delta:.3}"),
            num(row.exponent_jam),
            num(row.exponent_spoof),
            num(row.worst_exponent),
            num(row.predicted),
            format!("{:?}", row.picked),
        ]);
    }
    out.push_str(&format!("T̃ = {budget}, trials/row = {trials}\n\n"));
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\nbest split: δ = {:.3} with worst exponent {:.3}; theory: δ = φ−1 = {:.3} \
         with exponent φ−1 ≈ 0.618 (matches the KSY upper bound)\n",
        best.1, best.0, PHI_MINUS_ONE
    ));
    out
}
