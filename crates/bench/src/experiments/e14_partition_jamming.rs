//! E14 (extension) — what if the 1-to-n adversary is 2-uniform?
//!
//! Theorem 3 assumes a 1-uniform adversary (one jamming schedule for
//! everyone). A 2-uniform adversary can jam *half the nodes only*. This
//! probes Figure 2 beyond its model — and the probe **fails, as it
//! should**: the unjammed half disseminates among itself, promotes to
//! helper, terminates, and stops relaying while the jammed half is still
//! deaf; when the jamming budget later runs out there is nobody left
//! transmitting `m`, and the stranded nodes exit through the case-1
//! safety valve, uninformed but with bounded cost. The experiment
//! documents that the paper's 1-uniformity assumption is load-bearing,
//! not incidental. Runs on the exact engine (the only one with partition
//! support), so `n` is kept small.

use crate::scale::Scale;
use rcb_adversary::slot_strategies::{BudgetedPhaseBlocker, NoJam};
use rcb_adversary::traits::SlotAdversary;
use rcb_analysis::table::{num, TableBuilder};
use rcb_channel::Partition;
use rcb_core::one_to_n::{OneToNParams, OneToNSchedule, OneToNSlotNode};
use rcb_core::protocol::SlotProtocol;
use rcb_mathkit::rng::SeedSequence;
use rcb_mathkit::stats::RunningStats;
use rcb_sim::exact::{run_exact_checked, ExactConfig};
use rcb_sim::faults::FaultPlan;

struct CellResult {
    informed_rate: f64,
    mean_cost: f64,
    jammed_group_cost: f64,
    mean_t: f64,
    /// Trials cut off at the slot cap, excluded from every statistic.
    truncated: u64,
}

fn run_cell(
    params: &OneToNParams,
    n: usize,
    two_uniform: bool,
    budget: u64,
    trials: u64,
    seed: u64,
) -> CellResult {
    let seeds = SeedSequence::new(seed);
    let mut informed_runs = 0u64;
    let mut completed = 0u64;
    let mut truncated = 0u64;
    let mut cost = RunningStats::new();
    let mut jammed_cost = RunningStats::new();
    let mut spend = RunningStats::new();
    for t in 0..trials {
        let mut nodes: Vec<OneToNSlotNode> = (0..n)
            .map(|u| OneToNSlotNode::new(*params, u == 0))
            .collect();
        let partition = if two_uniform {
            // Odd nodes form the jammed group (group 1); the sender and the
            // even nodes stay clean.
            Partition::custom((0..n).map(|u| u % 2).collect())
        } else {
            Partition::uniform(n)
        };
        let mut adv: Box<dyn SlotAdversary> = if budget == 0 {
            Box::new(NoJam)
        } else if two_uniform {
            Box::new(BudgetedPhaseBlocker::new(budget, 1.0).with_group_mask(0b10))
        } else {
            Box::new(BudgetedPhaseBlocker::new(budget, 1.0))
        };
        let schedule = OneToNSchedule::new(*params);
        let mut rng = seeds.rng(t);
        let mut refs: Vec<&mut dyn SlotProtocol> = Vec::new();
        for node in nodes.iter_mut() {
            refs.push(node);
        }
        let out = match run_exact_checked(
            &mut refs,
            adv.as_mut(),
            &schedule,
            &partition,
            &mut rng,
            ExactConfig {
                max_slots: 30_000_000,
            },
            None,
            &FaultPlan::none(),
        ) {
            Ok(out) => out,
            Err(_) => {
                truncated += 1;
                continue;
            }
        };
        completed += 1;
        informed_runs += nodes.iter().all(|v| v.received_message()) as u64;
        cost.push(out.ledger.mean_node_cost());
        let jammed: Vec<u64> = (0..n)
            .filter(|u| u % 2 == 1)
            .map(|u| out.ledger.node_cost(u))
            .collect();
        jammed_cost.push(jammed.iter().sum::<u64>() as f64 / jammed.len().max(1) as f64);
        spend.push(out.ledger.adversary_cost() as f64);
    }
    assert!(
        completed > 0,
        "2-uniform={two_uniform}, budget {budget}: all {truncated} trials hit the slot cap"
    );
    CellResult {
        informed_rate: informed_runs as f64 / completed as f64,
        mean_cost: cost.mean(),
        jammed_group_cost: jammed_cost.mean(),
        mean_t: spend.mean(),
        truncated,
    }
}

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let mut params = OneToNParams::practical();
    params.first_epoch = 4; // keep exact-engine slot counts tame
    let n = 8;
    let trials = scale.trials(6);

    let mut table = TableBuilder::new(vec![
        "adversary",
        "T (real)",
        "informed rate",
        "E[mean cost]",
        "E[odd-group cost]",
    ]);
    let mut truncated_total = 0u64;
    for (label, two_uniform, budget) in [
        ("none", false, 0u64),
        ("1-uniform, 2^17", false, 1 << 17),
        ("2-uniform (odd half), 2^17", true, 1 << 17),
    ] {
        let r = run_cell(&params, n, two_uniform, budget, trials, scale.seed ^ 0xE14);
        truncated_total += r.truncated;
        table.row(vec![
            label.to_string(),
            num(r.mean_t),
            format!("{:.2}", r.informed_rate),
            num(r.mean_cost),
            num(r.jammed_group_cost),
        ]);
    }
    out.push_str(&format!(
        "n = {n}, exact engine, trials/cell = {trials} (first epoch lowered to {})\n\n",
        params.first_epoch
    ));
    out.push_str(&table.markdown());
    out.push_str(
        "\nexpected shape: under 1-uniform jamming everyone stays informed \
         (Theorem 3's regime). Under 2-uniform jamming of the odd half the \
         informed rate collapses to 0: the clean half terminates and stops \
         relaying before the jammed half can hear m, and the stranded nodes \
         leave through the safety valve — visible as the elevated odd-group \
         cost. This is the designed failure mode outside the model: \
         Theorem 3's 1-uniformity assumption is necessary, and the safety \
         valve is what keeps even this failure's cost bounded (§3.4).\n",
    );
    out.push_str(&format!("\ntruncated trials: {truncated_total}\n"));
    out
}
