//! E4 — Theorem 2: the threshold adversary forces `E(A)·E(B) ≥ (1−O(ε))·T`.
//!
//! Runs the proof's normal-form protocols (δ-split boundary pairs and the
//! exhaust strategy) against the `a·b > 1/T` adversary in the 0/1 cost
//! model, and reports the cost product normalized by `T`: the table must
//! sit at ≥ 1 across every split — the product is invariant, only its
//! factorization moves.

use crate::scale::Scale;
use rcb_analysis::table::{num, TableBuilder};
use rcb_baselines::oblivious::ConstantRatePair;
use rcb_mathkit::rng::SeedSequence;
use rcb_mathkit::PHI_MINUS_ONE;
use rcb_sim::lowerbound::product_game;

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let budget = 1u64 << 14;
    let trials = scale.trials(400);
    let seeds = SeedSequence::new(scale.seed ^ 0xE4);

    let mut table = TableBuilder::new(vec![
        "δ",
        "E(A) (MC)",
        "E(B) (MC)",
        "E(A)·E(B)/T (MC)",
        "closed form",
    ]);
    for (i, delta) in [0.3, 0.4, 0.5, PHI_MINUS_ONE, 0.7, 0.8].iter().enumerate() {
        let mut rng = seeds.rng(i as u64);
        let row = product_game(budget, *delta, trials, &mut rng);
        table.row(vec![
            format!("{delta:.3}"),
            num(row.mean_a),
            num(row.mean_b),
            num(row.product_over_t),
            num(row.closed_product_over_t),
        ]);
    }
    // The exhaust strategy (proof strategy (i)).
    let exhaust = ConstantRatePair::exhaust().expected_costs(budget);
    table.row(vec![
        "exhaust".to_string(),
        num(exhaust.expected_a),
        num(exhaust.expected_b),
        num(exhaust.expected_a * exhaust.expected_b / budget as f64),
        num((budget as f64 + 1.0).powi(2) / budget as f64),
    ]);

    out.push_str(&format!("T = {budget}, trials/row = {trials}\n\n"));
    out.push_str(&table.markdown());
    out.push_str(
        "\nTheorem 2 floor: every row's product/T must be ≥ 1 − O(ε); boundary \
         splits sit at exactly 1, the exhaust strategy overshoots (it pays T+1 each).\n",
    );
    out
}
