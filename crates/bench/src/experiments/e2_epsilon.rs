//! E2 — Theorem 1: the ε-dependence.
//!
//! At fixed adversary budget the expected cost is `Θ(√(T·ln(1/ε)))`, so
//! sweeping ε and fitting cost against `x = ln(1/ε)` must yield exponent
//! ≈ 0.5. The success-rate column simultaneously checks the Monte-Carlo
//! guarantee `Pr[delivery] ≥ 1 − ε`.

use crate::experiments::common::{
    duel_budget_sweep, duel_sweep_base, series_from, truncation_note,
};
use crate::scale::Scale;
use rcb_analysis::scaling::fit_scaling;
use rcb_analysis::table::{num, TableBuilder};
use rcb_sim::scenario::DuelProtocol;

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let budget = 1u64 << 16;
    let trials = scale.trials(150);
    let epsilons = [0.3, 0.1, 0.03, 0.01, 0.003, 0.001];

    let mut table = TableBuilder::new(vec![
        "ε",
        "ln(8/ε)",
        "E[max cost]",
        "± sem",
        "success",
        "1 − ε",
    ]);
    let mut points = Vec::new();
    let mut cells = Vec::new();
    for &epsilon in &epsilons {
        let base = duel_sweep_base(
            DuelProtocol::fig1(epsilon, 8),
            1.0,
            trials,
            scale.seed ^ 0xE2,
        );
        let sweep = duel_budget_sweep(&base, &[budget]);
        let p = &sweep[0];
        // The paper's cost carries √(ln(8/ε)) — fit against the actual
        // argument, not ln(1/ε), whose additive ln 8 flattens the fit.
        let x = (8.0 / epsilon).ln();
        table.row(vec![
            format!("{epsilon}"),
            num(x),
            num(p.cost.mean),
            num(p.cost.sem),
            format!("{:.3}", p.success_rate),
            format!("{:.3}", 1.0 - epsilon),
        ]);
        points.push((x, p.cost));
        cells.extend(sweep);
    }
    out.push_str(&format!("budget = {budget}, trials/cell = {trials}\n\n"));
    out.push_str(&table.markdown());

    let series = series_from("1-to-1 max cost vs ln(8/ε) at fixed T", points);
    if let Some(v) = fit_scaling(&series, 0.5, 0.2) {
        out.push_str(&format!("\n{}\n", v.summary()));
    }
    out.push_str(&truncation_note(&cells));
    out
}
