//! Shared sweep machinery for the experiment modules.
//!
//! Sweeps are axis-mutations of a base [`ScenarioSpec`]: the caller builds
//! one spec (protocol, blocking fraction, trials, seed) and the sweep
//! re-stamps the adversary budget and the per-cell seed for each point.
//! All per-budget specs are built up front and executed through the
//! trial-granular work-stealing executor
//! ([`run_specs`](rcb_sim::executor::run_specs)), so cores stay busy
//! across cell boundaries; the per-cell seed folds (and therefore every
//! trial's RNG stream) are unchanged from the historical serial loop.

use rcb_analysis::report::{Cell, SweepSeries};
use rcb_sim::error::SimError;
use rcb_sim::executor::run_specs;
use rcb_sim::outcome::{BroadcastOutcome, DuelOutcome};
use rcb_sim::scenario::{AdversarySpec, DuelProtocol, ScenarioSpec, Workload};

/// Base duel spec for budget sweeps: the canonical full-phase blocker at
/// fraction `q`, budget re-stamped per sweep point.
pub fn duel_sweep_base(protocol: DuelProtocol, q: f64, trials: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::duel(protocol)
        .with_adversary(AdversarySpec::Budgeted {
            budget: 0,
            fraction: q,
        })
        .with_trials(trials)
        .with_seed(seed)
}

/// Base 1-to-n spec (practical params, node 0 source) for budget sweeps.
pub fn broadcast_sweep_base(n: usize, q: f64, trials: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::broadcast(n)
        .with_adversary(AdversarySpec::Budgeted {
            budget: 0,
            fraction: q,
        })
        .with_trials(trials)
        .with_seed(seed)
}

/// Budget axis: `2^start .. 2^end` inclusive, stepping by `step` doublings.
pub fn budget_axis(start: u32, end: u32, step: u32) -> Vec<u64> {
    (start..=end)
        .step_by(step as usize)
        .map(|k| 1u64 << k)
        .collect()
}

/// Per-budget duel statistics.
#[derive(Debug, Clone)]
pub struct DuelSweepPoint {
    pub budget: u64,
    /// Mean realized adversary spend (the empirical `T`).
    pub mean_t: f64,
    pub cost: Cell,
    pub latency: Cell,
    pub success_rate: f64,
    /// Trials the engine cut off at a budget cap; they are excluded from
    /// every statistic above and must be surfaced in the report.
    pub truncated: u64,
    pub outcomes: Vec<DuelOutcome>,
}

/// Splits checked-trial results into completed outcomes and the number of
/// trials the engine truncated at a budget cap.
pub fn split_truncated<T>(results: Vec<Result<T, SimError>>) -> (Vec<T>, u64) {
    let mut out = Vec::with_capacity(results.len());
    let mut truncated = 0u64;
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(_) => truncated += 1,
        }
    }
    (out, truncated)
}

/// Sweeps a base duel scenario over adversary budgets. The base spec fixes
/// the protocol, the adversary family (its blocking fraction survives the
/// re-budgeting), the trial count, and the master seed; each point runs the
/// base with the budget swapped in and the seed XOR-folded with it so cells
/// draw independent streams.
pub fn duel_budget_sweep(base: &ScenarioSpec, budgets: &[u64]) -> Vec<DuelSweepPoint> {
    assert!(
        matches!(base.workload, Workload::Duel(_)),
        "duel_budget_sweep needs a duel base spec"
    );
    let specs: Vec<ScenarioSpec> = budgets
        .iter()
        .map(|&budget| {
            base.clone()
                .with_adversary(base.adversary.with_budget(budget))
                .with_seed(base.seeds.master ^ budget)
        })
        .collect();
    budgets
        .iter()
        .zip(run_specs(&specs, base.parallelism))
        .map(|(&budget, batch)| {
            let results: Vec<Result<DuelOutcome, SimError>> = batch
                .into_iter()
                .map(|(outcome, err)| match err {
                    None => Ok(outcome.into_duel()),
                    Some(e) => Err(e),
                })
                .collect();
            let (outcomes, truncated) = split_truncated(results);
            summarize_duels(budget, outcomes, truncated)
        })
        .collect()
}

/// Aggregates duel outcomes into a sweep point. Panics when *every* trial
/// truncated: a cell with no completed trials has no statistics to report.
pub fn summarize_duels(budget: u64, outcomes: Vec<DuelOutcome>, truncated: u64) -> DuelSweepPoint {
    assert!(
        !outcomes.is_empty(),
        "budget {budget}: all {truncated} trials truncated at an engine cap"
    );
    let mean_t = outcomes
        .iter()
        .map(|o| o.adversary_cost as f64)
        .sum::<f64>()
        / outcomes.len() as f64;
    let costs: Vec<f64> = outcomes.iter().map(|o| o.max_cost() as f64).collect();
    let slots: Vec<f64> = outcomes.iter().map(|o| o.slots as f64).collect();
    let successes = outcomes.iter().filter(|o| o.delivered).count();
    DuelSweepPoint {
        budget,
        mean_t,
        cost: Cell::from_samples(mean_t.max(1.0), &costs),
        latency: Cell::from_samples(mean_t.max(1.0), &slots),
        success_rate: successes as f64 / outcomes.len() as f64,
        truncated,
        outcomes,
    }
}

/// Per-budget broadcast statistics.
#[derive(Debug, Clone)]
pub struct BroadcastSweepPoint {
    pub budget: u64,
    pub n: usize,
    pub mean_t: f64,
    /// Mean per-node cost (fair-cost measure).
    pub mean_cost: Cell,
    /// Max per-node cost (the Theorem 3 bound).
    pub max_cost: Cell,
    pub latency: Cell,
    pub all_informed_rate: f64,
    /// Trials the engine cut off at its epoch cap; excluded from the
    /// statistics above and surfaced in the report.
    pub truncated: u64,
    pub outcomes: Vec<BroadcastOutcome>,
}

/// Sweeps a base 1-to-n scenario over adversary budgets at its fixed `n`.
/// Seeds fold in both the budget and `n` so multi-`n` grids never share a
/// stream across cells.
pub fn broadcast_budget_sweep(base: &ScenarioSpec, budgets: &[u64]) -> Vec<BroadcastSweepPoint> {
    let n = match &base.workload {
        Workload::Broadcast(w) => w.n,
        Workload::Duel(_) => panic!("broadcast_budget_sweep needs a broadcast base spec"),
    };
    let specs: Vec<ScenarioSpec> = budgets
        .iter()
        .map(|&budget| {
            base.clone()
                .with_adversary(base.adversary.with_budget(budget))
                .with_seed(base.seeds.master ^ budget ^ ((n as u64) << 32))
        })
        .collect();
    budgets
        .iter()
        .zip(run_specs(&specs, base.parallelism))
        .map(|(&budget, batch)| {
            let results: Vec<Result<BroadcastOutcome, SimError>> = batch
                .into_iter()
                .map(|(outcome, err)| match err {
                    None => Ok(outcome.into_broadcast()),
                    Some(e) => Err(e),
                })
                .collect();
            let (outcomes, truncated) = split_truncated(results);
            summarize_broadcasts(budget, n, outcomes, truncated)
        })
        .collect()
}

/// Aggregates broadcast outcomes into a sweep point. The `x` of the cells
/// is the realized mean `T` (budget sweeps) — callers that sweep `n`
/// rebuild cells with `n` as `x`.
pub fn summarize_broadcasts(
    budget: u64,
    n: usize,
    outcomes: Vec<BroadcastOutcome>,
    truncated: u64,
) -> BroadcastSweepPoint {
    assert!(
        !outcomes.is_empty(),
        "n {n}, budget {budget}: all {truncated} trials truncated at the epoch cap"
    );
    let mean_t = outcomes
        .iter()
        .map(|o| o.adversary_cost as f64)
        .sum::<f64>()
        / outcomes.len() as f64;
    let x = mean_t.max(1.0);
    let mean_costs: Vec<f64> = outcomes.iter().map(|o| o.mean_cost()).collect();
    let max_costs: Vec<f64> = outcomes.iter().map(|o| o.max_cost() as f64).collect();
    let slots: Vec<f64> = outcomes.iter().map(|o| o.slots as f64).collect();
    let informed = outcomes.iter().filter(|o| o.all_informed).count();
    BroadcastSweepPoint {
        budget,
        n,
        mean_t,
        mean_cost: Cell::from_samples(x, &mean_costs),
        max_cost: Cell::from_samples(x, &max_costs),
        latency: Cell::from_samples(x, &slots),
        all_informed_rate: informed as f64 / outcomes.len() as f64,
        truncated,
        outcomes,
    }
}

/// Report-annotation view of a sweep cell: how many trials completed and
/// how many the engine truncated at a cap.
pub trait TruncationCount {
    fn cell_label(&self) -> String;
    fn completed(&self) -> u64;
    fn truncated(&self) -> u64;
}

impl TruncationCount for DuelSweepPoint {
    fn cell_label(&self) -> String {
        format!("budget {}", self.budget)
    }
    fn completed(&self) -> u64 {
        self.outcomes.len() as u64
    }
    fn truncated(&self) -> u64 {
        self.truncated
    }
}

impl TruncationCount for BroadcastSweepPoint {
    fn cell_label(&self) -> String {
        format!("n {}, budget {}", self.n, self.budget)
    }
    fn completed(&self) -> u64 {
        self.outcomes.len() as u64
    }
    fn truncated(&self) -> u64 {
        self.truncated
    }
}

/// Standard report line for engine-cap truncations. Experiments always
/// append it, so "0" is an explicit claim rather than silence; nonzero
/// counts list the affected cells so a clipped distribution can never
/// masquerade as a converged one.
pub fn truncation_note<C: TruncationCount>(points: &[C]) -> String {
    let total: u64 = points.iter().map(TruncationCount::truncated).sum();
    if total == 0 {
        return "\ntruncated trials: 0\n".to_string();
    }
    let mut s = format!("\nWARNING: {total} truncated trial(s) excluded from the statistics:\n");
    for p in points.iter().filter(|p| p.truncated() > 0) {
        s.push_str(&format!(
            "  {}: {}/{} truncated\n",
            p.cell_label(),
            p.truncated(),
            p.truncated() + p.completed()
        ));
    }
    s
}

/// Builds a series from `(x, cell)` pairs with a fresh `x`.
pub fn series_from(name: &str, points: impl IntoIterator<Item = (f64, Cell)>) -> SweepSeries {
    let mut s = SweepSeries::new(name);
    for (x, cell) in points {
        s.push(Cell { x, ..cell });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_axis_doubles() {
        assert_eq!(budget_axis(3, 7, 2), vec![8, 32, 128]);
        assert_eq!(budget_axis(4, 4, 1), vec![16]);
    }

    #[test]
    fn duel_sweep_smoke() {
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 8, 1);
        let pts = duel_budget_sweep(&base, &[1024]);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.outcomes.len(), 8);
        assert!(p.mean_t > 0.0);
        assert!(p.cost.mean > 0.0);
        assert!(p.success_rate >= 0.0 && p.success_rate <= 1.0);
    }

    #[test]
    fn broadcast_sweep_smoke() {
        let base = broadcast_sweep_base(8, 1.0, 3, 2);
        let pts = broadcast_budget_sweep(&base, &[2048]);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].mean_cost.mean > 0.0);
        assert!(pts[0].mean_t > 0.0);
    }

    #[test]
    fn sweep_results_match_per_cell_run_batch() {
        // The work-stealing execution must reproduce the historical
        // serial per-cell path bit-for-bit: same seed folds, same trials.
        use rcb_sim::scenario::Outcome;
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 5, 3);
        let budgets = [512u64, 1024, 4096];
        let pts = duel_budget_sweep(&base, &budgets);
        for (&budget, pt) in budgets.iter().zip(&pts) {
            let direct: Vec<_> = base
                .clone()
                .with_adversary(base.adversary.with_budget(budget))
                .with_seed(base.seeds.master ^ budget)
                .run_batch()
                .into_iter()
                .filter_map(|r| r.ok().map(Outcome::into_duel))
                .collect();
            assert_eq!(pt.outcomes, direct, "budget {budget} diverged");
        }
    }

    #[test]
    fn split_truncated_partitions_and_counts() {
        let results: Vec<Result<u32, SimError>> = vec![
            Ok(1),
            Err(SimError::EpochBudgetExhausted {
                max_epoch: 3,
                slots: 99,
            }),
            Ok(2),
            Err(SimError::EpochBudgetExhausted {
                max_epoch: 3,
                slots: 7,
            }),
        ];
        let (ok, truncated) = split_truncated(results);
        assert_eq!(ok, vec![1, 2]);
        assert_eq!(truncated, 2);
    }

    #[test]
    fn truncation_note_zero_is_explicit() {
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 4, 1);
        let pts = duel_budget_sweep(&base, &[1024]);
        let note = truncation_note(&pts);
        assert!(note.contains("truncated trials: 0"), "{note}");
    }

    #[test]
    fn truncation_note_lists_affected_cells() {
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 4, 1);
        let mut pts = duel_budget_sweep(&base, &[1024, 2048]);
        pts[1].truncated = 3;
        let note = truncation_note(&pts);
        assert!(note.contains("WARNING"), "{note}");
        assert!(note.contains("budget 2048: 3/7 truncated"), "{note}");
        assert!(!note.contains("budget 1024"), "{note}");
    }

    #[test]
    #[should_panic(expected = "all 5 trials truncated")]
    fn summarize_panics_when_every_trial_truncated() {
        summarize_duels(64, Vec::new(), 5);
    }

    #[test]
    fn series_from_overrides_x() {
        let c = Cell::from_samples(99.0, &[1.0, 2.0]);
        let s = series_from("s", vec![(7.0, c)]);
        assert_eq!(s.cells[0].x, 7.0);
        assert!((s.cells[0].mean - 1.5).abs() < 1e-12);
    }
}
