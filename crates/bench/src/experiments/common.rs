//! Shared sweep machinery for the experiment modules.
//!
//! Sweeps are axis-mutations of a base [`ScenarioSpec`]: the caller builds
//! one spec (protocol, blocking fraction, trials, seed) and the sweep
//! re-stamps the adversary budget and the per-cell seed for each point.
//! All per-budget specs are built up front and executed through the
//! trial-granular work-stealing executor
//! ([`run_specs_ctl`](rcb_sim::executor::run_specs_ctl)), so cores stay
//! busy across cell boundaries; the per-cell seed folds (and therefore
//! every trial's RNG stream) are unchanged from the historical serial
//! loop. Crash safety rides on the environment — [`SWEEP_JOURNAL_DIR_ENV`]
//! checkpoints (and auto-resumes) per-trial journals,
//! [`SWEEP_DEADLINE_ENV`] bounds the wall clock — so every experiment
//! binary is resumable without per-binary flag plumbing.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use rcb_analysis::report::{Cell, SweepSeries};
use rcb_sim::deadline::{install_sigint_handler, Deadline};
use rcb_sim::error::SimError;
use rcb_sim::executor::{run_specs_ctl, QuarantinedTrial, SpecsControl};
use rcb_sim::journal::{Journal, JournalHeader};
use rcb_sim::json::Json;
use rcb_sim::outcome::{BroadcastOutcome, DuelOutcome};
use rcb_sim::runner::Parallelism;
use rcb_sim::scenario::{
    fnv1a, AdversarySpec, DuelProtocol, Outcome, ScenarioSpec, Workload, FNV_OFFSET,
};

/// Base duel spec for budget sweeps: the canonical full-phase blocker at
/// fraction `q`, budget re-stamped per sweep point.
pub fn duel_sweep_base(protocol: DuelProtocol, q: f64, trials: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::duel(protocol)
        .with_adversary(AdversarySpec::Budgeted {
            budget: 0,
            fraction: q,
        })
        .with_trials(trials)
        .with_seed(seed)
}

/// Base 1-to-n spec (practical params, node 0 source) for budget sweeps.
pub fn broadcast_sweep_base(n: usize, q: f64, trials: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::broadcast(n)
        .with_adversary(AdversarySpec::Budgeted {
            budget: 0,
            fraction: q,
        })
        .with_trials(trials)
        .with_seed(seed)
}

/// Budget axis: `2^start .. 2^end` inclusive, stepping by `step` doublings.
pub fn budget_axis(start: u32, end: u32, step: u32) -> Vec<u64> {
    (start..=end)
        .step_by(step as usize)
        .map(|k| 1u64 << k)
        .collect()
}

/// Per-budget duel statistics.
#[derive(Debug, Clone)]
pub struct DuelSweepPoint {
    pub budget: u64,
    /// Mean realized adversary spend (the empirical `T`).
    pub mean_t: f64,
    pub cost: Cell,
    pub latency: Cell,
    pub success_rate: f64,
    /// Trials the engine cut off at a budget cap; they are excluded from
    /// every statistic above and must be surfaced in the report.
    pub truncated: u64,
    pub outcomes: Vec<DuelOutcome>,
}

/// Splits checked-trial results into completed outcomes and the number of
/// trials the engine truncated at a budget cap.
pub fn split_truncated<T>(results: Vec<Result<T, SimError>>) -> (Vec<T>, u64) {
    let mut out = Vec::with_capacity(results.len());
    let mut truncated = 0u64;
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(_) => truncated += 1,
        }
    }
    (out, truncated)
}

/// Environment variable naming a directory for sweep checkpoint journals.
/// When set, every budget sweep journals completed trials to
/// `<dir>/sweep_<fingerprint>.jsonl` and automatically resumes an existing
/// journal for the same work (a journal from *different* work is refused
/// via its header fingerprint, never silently spliced).
pub const SWEEP_JOURNAL_DIR_ENV: &str = "RCB_JOURNAL_DIR";

/// Environment variable bounding a sweep's wall clock in (fractional)
/// seconds. In-flight trials finish, the journal (if any) is flushed, and
/// the process exits with a message naming the resume mechanism — partial
/// statistics are never reported as if they were complete.
pub const SWEEP_DEADLINE_ENV: &str = "RCB_DEADLINE_SECS";

/// Crash-safety knobs for the budget sweeps, normally read from the
/// environment ([`sweep_control_from_env`]) so the experiment binaries
/// need no per-binary flag plumbing.
#[derive(Debug, Clone, Default)]
pub struct SweepControl {
    pub journal_dir: Option<PathBuf>,
    pub deadline_secs: Option<f64>,
}

impl SweepControl {
    fn active(&self) -> bool {
        self.journal_dir.is_some() || self.deadline_secs.is_some()
    }

    fn deadline(&self) -> Deadline {
        let base = match self.deadline_secs {
            Some(secs) if secs.is_finite() && secs >= 0.0 => {
                Deadline::after(Duration::from_secs_f64(secs))
            }
            Some(secs) => panic!("{SWEEP_DEADLINE_ENV} must be non-negative seconds, got {secs}"),
            None => Deadline::NONE,
        };
        if self.active() {
            base.with_cancel(install_sigint_handler())
        } else {
            base
        }
    }
}

/// Reads [`SWEEP_JOURNAL_DIR_ENV`] / [`SWEEP_DEADLINE_ENV`].
pub fn sweep_control_from_env() -> SweepControl {
    SweepControl {
        journal_dir: std::env::var(SWEEP_JOURNAL_DIR_ENV).ok().map(PathBuf::from),
        deadline_secs: std::env::var(SWEEP_DEADLINE_ENV).ok().map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                panic!("{SWEEP_DEADLINE_ENV} must be a number of seconds, got `{raw}`")
            })
        }),
    }
}

/// Grid-level identity of a sweep: FNV-1a fold of every cell spec's
/// fingerprint, in cell order. This is what the journal header records.
pub fn sweep_fingerprint(specs: &[ScenarioSpec]) -> u64 {
    specs
        .iter()
        .fold(FNV_OFFSET, |h, s| fnv1a(h, &[s.fingerprint()]))
}

fn trial_cell(spec: usize, trial: u64) -> String {
    format!("spec{spec}/trial{trial}")
}

/// One journaled trial record: the outcome plus any typed engine error.
/// Deadline-cut trials (wall-clock dependent) are never journaled.
pub fn trial_payload(outcome: &Outcome, err: &Option<SimError>) -> Json {
    Json::obj(vec![
        ("outcome", outcome.to_json()),
        (
            "err",
            match err {
                Some(e) => e.to_json(),
                None => Json::Null,
            },
        ),
    ])
}

/// Inverse of [`trial_payload`].
pub fn parse_trial_payload(payload: &Json) -> Result<(Outcome, Option<SimError>), String> {
    let outcome = payload
        .get("outcome")
        .ok_or("journal record missing `outcome`")?;
    let outcome = Outcome::from_json(outcome)?;
    let err = match payload.get("err") {
        None | Some(Json::Null) => None,
        Some(value) => Some(SimError::from_json(value)?),
    };
    Ok((outcome, err))
}

/// Renders quarantined trials with **identical panic messages deduped**:
/// one line per distinct message with its multiplicity and first site, so
/// a bug that kills 500 trials the same way reads as one fact, not 500.
pub fn quarantine_report(quarantined: &[QuarantinedTrial]) -> String {
    let mut order: Vec<&str> = Vec::new();
    let mut counts: HashMap<&str, (u64, usize, u64, u32)> = HashMap::new();
    for q in quarantined {
        counts
            .entry(q.failure.payload.as_str())
            .and_modify(|e| e.0 += 1)
            .or_insert_with(|| {
                order.push(q.failure.payload.as_str());
                (1, q.spec, q.trial, q.failure.attempts)
            });
    }
    let mut s = format!(
        "{} trial(s) quarantined after same-seed retries:\n",
        quarantined.len()
    );
    for msg in order {
        let (count, spec, trial, attempts) = counts[msg];
        s.push_str(&format!(
            "  {count} × `{msg}` (first at spec {spec}, trial {trial}; {attempts} attempt(s) each)\n"
        ));
    }
    s
}

/// Same-seed retry budget for sweep trials before quarantine.
const SWEEP_MAX_ATTEMPTS: u32 = 2;

/// The sweep execution core: [`run_specs_ctl`] with the crash-safety
/// environment wired in. With no journal dir and no deadline this returns
/// exactly what [`run_specs`](rcb_sim::executor::run_specs) would (every
/// trial still runs on its unchanged seed fold; the bounded same-seed
/// retry policy cannot alter a successful trial's stream), so the default
/// path stays byte-identical. Quarantined trials abort the sweep with a
/// deduped report — statistics with silent holes are worse than no
/// statistics.
pub fn run_sweep_specs(
    specs: &[ScenarioSpec],
    parallelism: Parallelism,
) -> Vec<Vec<(Outcome, Option<SimError>)>> {
    run_sweep_specs_with(specs, parallelism, &sweep_control_from_env())
}

/// [`run_sweep_specs`] with explicit knobs (tests use this; binaries go
/// through the environment).
pub fn run_sweep_specs_with(
    specs: &[ScenarioSpec],
    parallelism: Parallelism,
    sweep_ctl: &SweepControl,
) -> Vec<Vec<(Outcome, Option<SimError>)>> {
    let mut journal = sweep_ctl.journal_dir.as_ref().map(|dir| {
        let fingerprint = sweep_fingerprint(specs);
        let path = dir.join(format!("sweep_{fingerprint:016x}.jsonl"));
        if path.exists() {
            Journal::open_resume(&path, "sweep", fingerprint)
                .unwrap_or_else(|e| panic!("cannot resume {}: {e}", path.display()))
        } else {
            Journal::create(
                path,
                JournalHeader::new(
                    "sweep",
                    fingerprint,
                    Json::obj(vec![("cells", Json::Num(specs.len() as f64))]),
                ),
            )
        }
    });

    let done: Vec<Vec<bool>> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            (0..spec.trials)
                .map(|t| {
                    journal
                        .as_ref()
                        .is_some_and(|j| j.contains(&trial_cell(i, t)))
                })
                .collect()
        })
        .collect();
    let skip = |spec: usize, trial: u64| done[spec][trial as usize];
    let ctl = SpecsControl {
        deadline: sweep_ctl.deadline(),
        trial_deadline: None,
        max_attempts: SWEEP_MAX_ATTEMPTS,
        skip: Some(&skip),
    };
    let run = run_specs_ctl(specs, parallelism, &ctl);

    if let Some(j) = journal.as_mut() {
        for (i, batch) in run.results.iter().enumerate() {
            for (t, slot) in batch.iter().enumerate() {
                if let Some((outcome, err)) = slot {
                    if !matches!(err, Some(SimError::DeadlineExceeded { .. })) {
                        j.append(trial_cell(i, t as u64), trial_payload(outcome, err));
                    }
                }
            }
        }
        j.flush()
            .unwrap_or_else(|e| panic!("sweep journal flush failed: {e}"));
    }

    if !run.quarantined.is_empty() {
        panic!("{}", quarantine_report(&run.quarantined));
    }
    if run.deadline_hit {
        let total: u64 = specs.iter().map(|s| s.trials).sum();
        match &journal {
            Some(j) => panic!(
                "sweep wall-clock budget exceeded: {} of {total} trials journaled in {}; \
                 re-run with {SWEEP_JOURNAL_DIR_ENV} set to the same directory to resume \
                 (completed trials are skipped; results stay bit-identical)",
                j.len(),
                j.path().display()
            ),
            None => panic!(
                "sweep wall-clock budget exceeded with no {SWEEP_JOURNAL_DIR_ENV} set: \
                 partial progress was not persisted"
            ),
        }
    }

    run.results
        .into_iter()
        .enumerate()
        .map(|(i, batch)| {
            batch
                .into_iter()
                .enumerate()
                .map(|(t, slot)| match slot {
                    Some(result) => result,
                    None => {
                        let j = journal.as_ref().expect("skipped trials imply a journal");
                        let cell = trial_cell(i, t as u64);
                        let payload = j.get(&cell).expect("skipped implies journaled");
                        parse_trial_payload(payload)
                            .unwrap_or_else(|e| panic!("{}: {cell}: {e}", j.path().display()))
                    }
                })
                .collect()
        })
        .collect()
}

/// Sweeps a base duel scenario over adversary budgets. The base spec fixes
/// the protocol, the adversary family (its blocking fraction survives the
/// re-budgeting), the trial count, and the master seed; each point runs the
/// base with the budget swapped in and the seed XOR-folded with it so cells
/// draw independent streams.
pub fn duel_budget_sweep(base: &ScenarioSpec, budgets: &[u64]) -> Vec<DuelSweepPoint> {
    assert!(
        matches!(base.workload, Workload::Duel(_)),
        "duel_budget_sweep needs a duel base spec"
    );
    let specs: Vec<ScenarioSpec> = budgets
        .iter()
        .map(|&budget| {
            base.clone()
                .with_adversary(base.adversary.with_budget(budget))
                .with_seed(base.seeds.master ^ budget)
        })
        .collect();
    budgets
        .iter()
        .zip(run_sweep_specs(&specs, base.parallelism))
        .map(|(&budget, batch)| {
            let results: Vec<Result<DuelOutcome, SimError>> = batch
                .into_iter()
                .map(|(outcome, err)| match err {
                    None => Ok(outcome.into_duel()),
                    Some(e) => Err(e),
                })
                .collect();
            let (outcomes, truncated) = split_truncated(results);
            summarize_duels(budget, outcomes, truncated)
        })
        .collect()
}

/// Aggregates duel outcomes into a sweep point. Panics when *every* trial
/// truncated: a cell with no completed trials has no statistics to report.
pub fn summarize_duels(budget: u64, outcomes: Vec<DuelOutcome>, truncated: u64) -> DuelSweepPoint {
    assert!(
        !outcomes.is_empty(),
        "budget {budget}: all {truncated} trials truncated at an engine cap"
    );
    let mean_t = outcomes
        .iter()
        .map(|o| o.adversary_cost as f64)
        .sum::<f64>()
        / outcomes.len() as f64;
    let costs: Vec<f64> = outcomes.iter().map(|o| o.max_cost() as f64).collect();
    let slots: Vec<f64> = outcomes.iter().map(|o| o.slots as f64).collect();
    let successes = outcomes.iter().filter(|o| o.delivered).count();
    DuelSweepPoint {
        budget,
        mean_t,
        cost: Cell::from_samples(mean_t.max(1.0), &costs),
        latency: Cell::from_samples(mean_t.max(1.0), &slots),
        success_rate: successes as f64 / outcomes.len() as f64,
        truncated,
        outcomes,
    }
}

/// Per-budget broadcast statistics.
#[derive(Debug, Clone)]
pub struct BroadcastSweepPoint {
    pub budget: u64,
    pub n: usize,
    pub mean_t: f64,
    /// Mean per-node cost (fair-cost measure).
    pub mean_cost: Cell,
    /// Max per-node cost (the Theorem 3 bound).
    pub max_cost: Cell,
    pub latency: Cell,
    pub all_informed_rate: f64,
    /// Trials the engine cut off at its epoch cap; excluded from the
    /// statistics above and surfaced in the report.
    pub truncated: u64,
    pub outcomes: Vec<BroadcastOutcome>,
}

/// Sweeps a base 1-to-n scenario over adversary budgets at its fixed `n`.
/// Seeds fold in both the budget and `n` so multi-`n` grids never share a
/// stream across cells.
pub fn broadcast_budget_sweep(base: &ScenarioSpec, budgets: &[u64]) -> Vec<BroadcastSweepPoint> {
    let n = match &base.workload {
        Workload::Broadcast(w) => w.n,
        _ => panic!("broadcast_budget_sweep needs a broadcast base spec"),
    };
    let specs: Vec<ScenarioSpec> = budgets
        .iter()
        .map(|&budget| {
            base.clone()
                .with_adversary(base.adversary.with_budget(budget))
                .with_seed(base.seeds.master ^ budget ^ ((n as u64) << 32))
        })
        .collect();
    budgets
        .iter()
        .zip(run_sweep_specs(&specs, base.parallelism))
        .map(|(&budget, batch)| {
            let results: Vec<Result<BroadcastOutcome, SimError>> = batch
                .into_iter()
                .map(|(outcome, err)| match err {
                    None => Ok(outcome.into_broadcast()),
                    Some(e) => Err(e),
                })
                .collect();
            let (outcomes, truncated) = split_truncated(results);
            summarize_broadcasts(budget, n, outcomes, truncated)
        })
        .collect()
}

/// Aggregates broadcast outcomes into a sweep point. The `x` of the cells
/// is the realized mean `T` (budget sweeps) — callers that sweep `n`
/// rebuild cells with `n` as `x`.
pub fn summarize_broadcasts(
    budget: u64,
    n: usize,
    outcomes: Vec<BroadcastOutcome>,
    truncated: u64,
) -> BroadcastSweepPoint {
    assert!(
        !outcomes.is_empty(),
        "n {n}, budget {budget}: all {truncated} trials truncated at the epoch cap"
    );
    let mean_t = outcomes
        .iter()
        .map(|o| o.adversary_cost as f64)
        .sum::<f64>()
        / outcomes.len() as f64;
    let x = mean_t.max(1.0);
    let mean_costs: Vec<f64> = outcomes.iter().map(|o| o.mean_cost()).collect();
    let max_costs: Vec<f64> = outcomes.iter().map(|o| o.max_cost() as f64).collect();
    let slots: Vec<f64> = outcomes.iter().map(|o| o.slots as f64).collect();
    let informed = outcomes.iter().filter(|o| o.all_informed).count();
    BroadcastSweepPoint {
        budget,
        n,
        mean_t,
        mean_cost: Cell::from_samples(x, &mean_costs),
        max_cost: Cell::from_samples(x, &max_costs),
        latency: Cell::from_samples(x, &slots),
        all_informed_rate: informed as f64 / outcomes.len() as f64,
        truncated,
        outcomes,
    }
}

/// Report-annotation view of a sweep cell: how many trials completed and
/// how many the engine truncated at a cap.
pub trait TruncationCount {
    fn cell_label(&self) -> String;
    fn completed(&self) -> u64;
    fn truncated(&self) -> u64;
}

impl TruncationCount for DuelSweepPoint {
    fn cell_label(&self) -> String {
        format!("budget {}", self.budget)
    }
    fn completed(&self) -> u64 {
        self.outcomes.len() as u64
    }
    fn truncated(&self) -> u64 {
        self.truncated
    }
}

impl TruncationCount for BroadcastSweepPoint {
    fn cell_label(&self) -> String {
        format!("n {}, budget {}", self.n, self.budget)
    }
    fn completed(&self) -> u64 {
        self.outcomes.len() as u64
    }
    fn truncated(&self) -> u64 {
        self.truncated
    }
}

/// Standard report line for engine-cap truncations. Experiments always
/// append it, so "0" is an explicit claim rather than silence; nonzero
/// counts list the affected cells so a clipped distribution can never
/// masquerade as a converged one.
pub fn truncation_note<C: TruncationCount>(points: &[C]) -> String {
    let total: u64 = points.iter().map(TruncationCount::truncated).sum();
    if total == 0 {
        return "\ntruncated trials: 0\n".to_string();
    }
    let mut s = format!("\nWARNING: {total} truncated trial(s) excluded from the statistics:\n");
    for p in points.iter().filter(|p| p.truncated() > 0) {
        s.push_str(&format!(
            "  {}: {}/{} truncated\n",
            p.cell_label(),
            p.truncated(),
            p.truncated() + p.completed()
        ));
    }
    s
}

/// Builds a series from `(x, cell)` pairs with a fresh `x`.
pub fn series_from(name: &str, points: impl IntoIterator<Item = (f64, Cell)>) -> SweepSeries {
    let mut s = SweepSeries::new(name);
    for (x, cell) in points {
        s.push(Cell { x, ..cell });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_axis_doubles() {
        assert_eq!(budget_axis(3, 7, 2), vec![8, 32, 128]);
        assert_eq!(budget_axis(4, 4, 1), vec![16]);
    }

    #[test]
    fn duel_sweep_smoke() {
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 8, 1);
        let pts = duel_budget_sweep(&base, &[1024]);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.outcomes.len(), 8);
        assert!(p.mean_t > 0.0);
        assert!(p.cost.mean > 0.0);
        assert!(p.success_rate >= 0.0 && p.success_rate <= 1.0);
    }

    #[test]
    fn broadcast_sweep_smoke() {
        let base = broadcast_sweep_base(8, 1.0, 3, 2);
        let pts = broadcast_budget_sweep(&base, &[2048]);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].mean_cost.mean > 0.0);
        assert!(pts[0].mean_t > 0.0);
    }

    #[test]
    fn sweep_results_match_per_cell_run_batch() {
        // The work-stealing execution must reproduce the historical
        // serial per-cell path bit-for-bit: same seed folds, same trials.
        use rcb_sim::scenario::Outcome;
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 5, 3);
        let budgets = [512u64, 1024, 4096];
        let pts = duel_budget_sweep(&base, &budgets);
        for (&budget, pt) in budgets.iter().zip(&pts) {
            let direct: Vec<_> = base
                .clone()
                .with_adversary(base.adversary.with_budget(budget))
                .with_seed(base.seeds.master ^ budget)
                .run_batch()
                .into_iter()
                .filter_map(|r| r.ok().map(Outcome::into_duel))
                .collect();
            assert_eq!(pt.outcomes, direct, "budget {budget} diverged");
        }
    }

    #[test]
    fn split_truncated_partitions_and_counts() {
        let results: Vec<Result<u32, SimError>> = vec![
            Ok(1),
            Err(SimError::EpochBudgetExhausted {
                max_epoch: 3,
                slots: 99,
            }),
            Ok(2),
            Err(SimError::EpochBudgetExhausted {
                max_epoch: 3,
                slots: 7,
            }),
        ];
        let (ok, truncated) = split_truncated(results);
        assert_eq!(ok, vec![1, 2]);
        assert_eq!(truncated, 2);
    }

    #[test]
    fn truncation_note_zero_is_explicit() {
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 4, 1);
        let pts = duel_budget_sweep(&base, &[1024]);
        let note = truncation_note(&pts);
        assert!(note.contains("truncated trials: 0"), "{note}");
    }

    #[test]
    fn truncation_note_lists_affected_cells() {
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 4, 1);
        let mut pts = duel_budget_sweep(&base, &[1024, 2048]);
        pts[1].truncated = 3;
        let note = truncation_note(&pts);
        assert!(note.contains("WARNING"), "{note}");
        assert!(note.contains("budget 2048: 3/7 truncated"), "{note}");
        assert!(!note.contains("budget 1024"), "{note}");
    }

    #[test]
    #[should_panic(expected = "all 5 trials truncated")]
    fn summarize_panics_when_every_trial_truncated() {
        summarize_duels(64, Vec::new(), 5);
    }

    #[test]
    fn series_from_overrides_x() {
        let c = Cell::from_samples(99.0, &[1.0, 2.0]);
        let s = series_from("s", vec![(7.0, c)]);
        assert_eq!(s.cells[0].x, 7.0);
        assert!((s.cells[0].mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn journaled_sweep_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("rcb_sweep_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let base = duel_sweep_base(DuelProtocol::fig1(0.1, 7), 1.0, 6, 21);
        let budgets = [512u64, 1024];
        let specs: Vec<ScenarioSpec> = budgets
            .iter()
            .map(|&b| {
                base.clone()
                    .with_adversary(base.adversary.with_budget(b))
                    .with_seed(base.seeds.master ^ b)
            })
            .collect();

        let straight =
            run_sweep_specs_with(&specs, Parallelism::Fixed(1), &SweepControl::default());
        let ctl = SweepControl {
            journal_dir: Some(dir.clone()),
            deadline_secs: None,
        };
        let journaled = run_sweep_specs_with(&specs, Parallelism::Fixed(2), &ctl);
        assert_eq!(straight, journaled, "the journal must not perturb results");

        // Second run with the same dir: everything is resumed from the
        // journal (no trial re-runs) and the batch is still identical.
        let resumed = run_sweep_specs_with(&specs, Parallelism::Fixed(1), &ctl);
        assert_eq!(
            straight, resumed,
            "a full resume must round-trip the records"
        );

        let fingerprint = sweep_fingerprint(&specs);
        let path = dir.join(format!("sweep_{fingerprint:016x}.jsonl"));
        let journal = Journal::load(&path).expect("sweep journal exists");
        assert_eq!(journal.header().kind, "sweep");
        assert_eq!(journal.len() as u64, 12, "every trial journaled once");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_report_dedupes_identical_messages() {
        use rcb_sim::error::TrialFailure;
        let mut failure = TrialFailure::new(0, "index out of bounds".to_string());
        failure.attempts = 2;
        let quarantined: Vec<QuarantinedTrial> = (0..5)
            .map(|t| QuarantinedTrial {
                spec: t / 3,
                trial: t as u64,
                failure: TrialFailure {
                    trial: t as u64,
                    ..failure.clone()
                },
            })
            .chain(std::iter::once(QuarantinedTrial {
                spec: 1,
                trial: 9,
                failure: TrialFailure::new(9, "a different panic".to_string()),
            }))
            .collect();
        let report = quarantine_report(&quarantined);
        assert!(report.starts_with("6 trial(s) quarantined"), "{report}");
        assert_eq!(
            report.matches("index out of bounds").count(),
            1,
            "identical messages must collapse to one line: {report}"
        );
        assert!(report.contains("5 × `index out of bounds`"), "{report}");
        assert!(report.contains("first at spec 0, trial 0"), "{report}");
        assert!(report.contains("1 × `a different panic`"), "{report}");
    }
}
