//! Shared sweep machinery for the experiment modules.

use rcb_adversary::rep_strategies::BudgetedRepBlocker;
use rcb_analysis::report::{Cell, SweepSeries};
use rcb_core::one_to_n::OneToNParams;
use rcb_core::one_to_one::profile::DuelProfile;
use rcb_sim::duel::{run_duel, DuelConfig};
use rcb_sim::fast::{run_broadcast, FastConfig};
use rcb_sim::outcome::{BroadcastOutcome, DuelOutcome};
use rcb_sim::runner::{run_trials, Parallelism};

/// Budget axis: `2^start .. 2^end` inclusive, stepping by `step` doublings.
pub fn budget_axis(start: u32, end: u32, step: u32) -> Vec<u64> {
    (start..=end)
        .step_by(step as usize)
        .map(|k| 1u64 << k)
        .collect()
}

/// Per-budget duel statistics.
#[derive(Debug, Clone)]
pub struct DuelSweepPoint {
    pub budget: u64,
    /// Mean realized adversary spend (the empirical `T`).
    pub mean_t: f64,
    pub cost: Cell,
    pub latency: Cell,
    pub success_rate: f64,
    pub outcomes: Vec<DuelOutcome>,
}

/// Sweeps a duel profile over adversary budgets with the canonical
/// full-blocking attacker. `q` is the blocking fraction (1.0 = silence
/// whole phases).
pub fn duel_budget_sweep<P: DuelProfile + Sync>(
    profile: &P,
    budgets: &[u64],
    q: f64,
    trials: u64,
    seed: u64,
) -> Vec<DuelSweepPoint> {
    budgets
        .iter()
        .map(|&budget| {
            let outcomes = run_trials(trials, seed ^ budget, Parallelism::Auto, |_, rng| {
                let mut adv = BudgetedRepBlocker::new(budget, q);
                run_duel(profile, &mut adv, rng, DuelConfig::default())
            });
            summarize_duels(budget, outcomes)
        })
        .collect()
}

/// Aggregates duel outcomes into a sweep point.
pub fn summarize_duels(budget: u64, outcomes: Vec<DuelOutcome>) -> DuelSweepPoint {
    let mean_t = outcomes
        .iter()
        .map(|o| o.adversary_cost as f64)
        .sum::<f64>()
        / outcomes.len() as f64;
    let costs: Vec<f64> = outcomes.iter().map(|o| o.max_cost() as f64).collect();
    let slots: Vec<f64> = outcomes.iter().map(|o| o.slots as f64).collect();
    let successes = outcomes.iter().filter(|o| o.delivered).count();
    DuelSweepPoint {
        budget,
        mean_t,
        cost: Cell::from_samples(mean_t.max(1.0), &costs),
        latency: Cell::from_samples(mean_t.max(1.0), &slots),
        success_rate: successes as f64 / outcomes.len() as f64,
        outcomes,
    }
}

/// Per-budget broadcast statistics.
#[derive(Debug, Clone)]
pub struct BroadcastSweepPoint {
    pub budget: u64,
    pub n: usize,
    pub mean_t: f64,
    /// Mean per-node cost (fair-cost measure).
    pub mean_cost: Cell,
    /// Max per-node cost (the Theorem 3 bound).
    pub max_cost: Cell,
    pub latency: Cell,
    pub all_informed_rate: f64,
    pub outcomes: Vec<BroadcastOutcome>,
}

/// Sweeps 1-to-n over adversary budgets at fixed `n`.
pub fn broadcast_budget_sweep(
    params: &OneToNParams,
    n: usize,
    budgets: &[u64],
    q: f64,
    trials: u64,
    seed: u64,
) -> Vec<BroadcastSweepPoint> {
    budgets
        .iter()
        .map(|&budget| {
            let outcomes = run_trials(
                trials,
                seed ^ budget ^ (n as u64) << 32,
                Parallelism::Auto,
                |_, rng| {
                    let mut adv = BudgetedRepBlocker::new(budget, q);
                    run_broadcast(params, n, &mut adv, rng, FastConfig::default())
                },
            );
            summarize_broadcasts(budget, n, outcomes)
        })
        .collect()
}

/// Aggregates broadcast outcomes into a sweep point. The `x` of the cells
/// is the realized mean `T` (budget sweeps) — callers that sweep `n`
/// rebuild cells with `n` as `x`.
pub fn summarize_broadcasts(
    budget: u64,
    n: usize,
    outcomes: Vec<BroadcastOutcome>,
) -> BroadcastSweepPoint {
    let mean_t = outcomes
        .iter()
        .map(|o| o.adversary_cost as f64)
        .sum::<f64>()
        / outcomes.len() as f64;
    let x = mean_t.max(1.0);
    let mean_costs: Vec<f64> = outcomes.iter().map(|o| o.mean_cost()).collect();
    let max_costs: Vec<f64> = outcomes.iter().map(|o| o.max_cost() as f64).collect();
    let slots: Vec<f64> = outcomes.iter().map(|o| o.slots as f64).collect();
    let informed = outcomes.iter().filter(|o| o.all_informed).count();
    BroadcastSweepPoint {
        budget,
        n,
        mean_t,
        mean_cost: Cell::from_samples(x, &mean_costs),
        max_cost: Cell::from_samples(x, &max_costs),
        latency: Cell::from_samples(x, &slots),
        all_informed_rate: informed as f64 / outcomes.len() as f64,
        outcomes,
    }
}

/// Builds a series from `(x, cell)` pairs with a fresh `x`.
pub fn series_from(name: &str, points: impl IntoIterator<Item = (f64, Cell)>) -> SweepSeries {
    let mut s = SweepSeries::new(name);
    for (x, cell) in points {
        s.push(Cell { x, ..cell });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::one_to_one::profile::Fig1Profile;

    #[test]
    fn budget_axis_doubles() {
        assert_eq!(budget_axis(3, 7, 2), vec![8, 32, 128]);
        assert_eq!(budget_axis(4, 4, 1), vec![16]);
    }

    #[test]
    fn duel_sweep_smoke() {
        let profile = Fig1Profile::with_start_epoch(0.1, 7);
        let pts = duel_budget_sweep(&profile, &[1024], 1.0, 8, 1);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.outcomes.len(), 8);
        assert!(p.mean_t > 0.0);
        assert!(p.cost.mean > 0.0);
        assert!(p.success_rate >= 0.0 && p.success_rate <= 1.0);
    }

    #[test]
    fn broadcast_sweep_smoke() {
        let params = OneToNParams::practical();
        let pts = broadcast_budget_sweep(&params, 8, &[2048], 1.0, 3, 2);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].mean_cost.mean > 0.0);
        assert!(pts[0].mean_t > 0.0);
    }

    #[test]
    fn series_from_overrides_x() {
        let c = Cell::from_samples(99.0, &[1.0, 2.0]);
        let s = series_from("s", vec![(7.0, c)]);
        assert_eq!(s.cells[0].x, 7.0);
        assert!((s.cells[0].mean - 1.5).abs() < 1e-12);
    }
}
