//! One module per experiment. The experiment index lives in DESIGN.md §4;
//! paper-vs-measured results are recorded in EXPERIMENTS.md.

pub mod common;
pub mod e10_dynamics_trace;
pub mod e11_ablation;
pub mod e12_multi_source;
pub mod e13_learning_adversary;
pub mod e14_partition_jamming;
pub mod e15_fault_degradation;
pub mod e16_stream_stability;
pub mod e1_one_to_one_cost;
pub mod e2_epsilon;
pub mod e3_latency;
pub mod e4_lower_bound_product;
pub mod e5_one_to_n_cost;
pub mod e6_one_to_n_latency;
pub mod e7_fairness_gap;
pub mod e8_golden_ratio;
pub mod e9_baseline_comparison;

use crate::scale::Scale;

/// An experiment entry point.
pub type Runner = fn(&Scale) -> String;

/// Every experiment, in index order, as `(id, title, runner)`.
pub fn all() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "E1",
            "Theorem 1 — 1-to-1 cost scales as √T",
            e1_one_to_one_cost::run,
        ),
        ("E2", "Theorem 1 — ε-dependence of cost", e2_epsilon::run),
        ("E3", "Theorem 1 — latency is Θ(T)", e3_latency::run),
        (
            "E4",
            "Theorem 2 — E(A)·E(B) ≥ (1−O(ε))·T",
            e4_lower_bound_product::run,
        ),
        (
            "E5",
            "Theorem 3 — per-node cost √(T/n)·polylog",
            e5_one_to_n_cost::run,
        ),
        (
            "E6",
            "Theorem 3 — latency O(T + n·polylog n)",
            e6_one_to_n_latency::run,
        ),
        (
            "E7",
            "Theorem 4 — measured cost vs the √(T/n) floor",
            e7_fairness_gap::run,
        ),
        (
            "E8",
            "Theorem 5 — the golden-ratio tradeoff",
            e8_golden_ratio::run,
        ),
        (
            "E9",
            "§1.4 — Figure 1 vs KSY vs combined vs naive",
            e9_baseline_comparison::run,
        ),
        (
            "E10",
            "§3.1 mechanisms — S_u divergence, helper waves",
            e10_dynamics_trace::run,
        ),
        (
            "E11",
            "Robustness — jamming-strategy ablation",
            e11_ablation::run,
        ),
        (
            "E12",
            "Extension — multi-source broadcast",
            e12_multi_source::run,
        ),
        (
            "E13",
            "Extension — a learning adversary rediscovers the threshold attack",
            e13_learning_adversary::run,
        ),
        (
            "E14",
            "Extension — 2-uniform (selective) jamming of 1-to-n",
            e14_partition_jamming::run,
        ),
        (
            "E15",
            "Robustness — graceful degradation under non-adversarial faults",
            e15_fault_degradation::run,
        ),
        (
            "E16",
            "Extension — streaming stability boundary under jammer allocation policies",
            e16_stream_stability::run,
        ),
    ]
}

/// Runs every experiment and concatenates the reports. Each report is
/// additionally written to `target/experiments/<id>.md` so individual
/// tables can be diffed across runs.
pub fn run_all(scale: &Scale) -> String {
    let artifact_dir = std::path::Path::new("target/experiments");
    let artifacts = std::fs::create_dir_all(artifact_dir).is_ok();
    let mut out = String::new();
    for (id, title, runner) in all() {
        let started = std::time::Instant::now();
        eprintln!("[{id}] {title} ...");
        let report = runner(scale);
        let dt = started.elapsed().as_secs_f64();
        eprintln!("[{id}] done in {dt:.1}s");
        if artifacts {
            let path = artifact_dir.join(format!("{}.md", id.to_lowercase()));
            let _ = std::fs::write(&path, format!("## {id}: {title}\n\n{report}"));
        }
        out.push_str(&format!("\n## {id}: {title}\n\n"));
        out.push_str(&report);
        out.push_str(&format!("\n_{id} wall time: {dt:.1}s_\n"));
    }
    out
}
