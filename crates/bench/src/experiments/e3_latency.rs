//! E3 — Theorem 1: latency is `Θ(T)`.
//!
//! Same sweep as E1, but the fitted quantity is elapsed slots until both
//! parties halt: the exponent versus realized `T` must sit near 1.0
//! (asymptotically optimal — the adversary can always force `T` latency by
//! jamming everything).

use crate::experiments::common::{
    budget_axis, duel_budget_sweep, duel_sweep_base, series_from, truncation_note,
};
use crate::scale::Scale;
use rcb_analysis::scaling::fit_scaling;
use rcb_analysis::table::{num, TableBuilder};
use rcb_sim::scenario::DuelProtocol;

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let budgets = budget_axis(10, 20 + scale.extra_budget_doublings, 2);
    let trials = scale.trials(100);
    let base = duel_sweep_base(DuelProtocol::fig1(0.01, 8), 1.0, trials, scale.seed ^ 0xE3);
    let points = duel_budget_sweep(&base, &budgets);

    let mut table = TableBuilder::new(vec!["budget", "T (real)", "E[slots]", "slots/T"]);
    for p in &points {
        table.row(vec![
            p.budget.to_string(),
            num(p.mean_t),
            num(p.latency.mean),
            num(p.latency.mean / p.mean_t.max(1.0)),
        ]);
    }
    out.push_str(&format!("ε = 0.01, trials/cell = {trials}\n\n"));
    out.push_str(&table.markdown());

    let series = series_from(
        "1-to-1 latency vs T",
        points.iter().map(|p| (p.mean_t, p.latency)),
    );
    if let Some(v) = fit_scaling(&series, 1.0, 0.15) {
        out.push_str(&format!("\n{}\n", v.summary()));
    }
    out.push_str(&truncation_note(&points));
    out
}
