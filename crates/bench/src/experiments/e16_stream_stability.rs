//! E16 (extension) — streaming stability boundary: arrival rate × jammer
//! allocation policy.
//!
//! The streaming workload (`Workload::Stream`) turns broadcast into a
//! FIFO single-server queue: messages arrive by a Poisson process, each is
//! served by re-arming one `BroadcastSession` and running it to
//! completion. Classical queueing says the system is stable iff
//! ρ = λ·E[service] < 1; past that the queue grows with the horizon and
//! latency diverges. The jammer bends this picture, and *how* it bends it
//! depends on the allocation policy:
//!
//! - **persistent** — one budget `T` spans the whole stream. The jammer
//!   front-loads damage, drains, and every later message is served at the
//!   clean-channel rate. Resource-competitiveness in queueing terms: a
//!   finite budget can delay, but cannot destabilize, an otherwise-stable
//!   arrival rate.
//! - **refill T/msg** — `adversary.rearm()` before every message restores
//!   the budget, modelling an attacker whose budget regenerates faster
//!   than the queue drains. This inflates E[service] permanently, so the
//!   throughput cliff moves to a *lower* arrival rate.
//!
//! The cliff is located empirically by horizon doubling: in the stable
//! regime mean latency is horizon-independent, in the unstable regime it
//! scales with the horizon, so `latency(2H)/latency(H)` jumps past ~1.5
//! exactly where the queue stops draining.

use crate::scale::Scale;
use rcb_analysis::table::{num, TableBuilder};
use rcb_mathkit::stats::RunningStats;
use rcb_sim::scenario::{AdversarySpec, ArrivalSpec, ScenarioSpec, StreamAlloc};

const N: usize = 8;
/// Per-message jammer budget. Must dwarf the clean makespan (~40 k slots
/// at n = 8) — latency is Θ(T + clean), so a budget below the clean
/// makespan disappears into the schedule and the two policies coincide.
const BUDGET: u64 = 150_000;
/// Nominal offered loads ρ = λ·E[jammed service]. The grid deliberately
/// runs past the service-inflation factor so the persistent policy's
/// right-shifted cliff lands inside the sweep.
const RHOS: [f64; 8] = [0.4, 0.8, 1.2, 1.8, 2.7, 4.0, 6.0, 9.0];
/// Expected arrivals at the base horizon (doubled for the ratio probe).
const TARGET_ARRIVALS: f64 = 16.0;
/// Latency(2H)/latency(H) above this ⇒ the queue is not draining.
const CLIFF_RATIO: f64 = 1.5;

#[derive(Clone, Copy)]
struct Policy {
    label: &'static str,
    jammed: bool,
    alloc: StreamAlloc,
}

const POLICIES: [Policy; 3] = [
    Policy {
        label: "no-jam",
        jammed: false,
        alloc: StreamAlloc::Persistent,
    },
    Policy {
        label: "persistent T",
        jammed: true,
        alloc: StreamAlloc::Persistent,
    },
    Policy {
        label: "refill T/msg",
        jammed: true,
        alloc: StreamAlloc::PerMessage,
    },
];

struct CellResult {
    mean_arrivals: f64,
    mean_latency: f64,
    mean_p95: f64,
    mean_queue: f64,
    /// Delivered messages per million slots of makespan.
    throughput: f64,
    /// Messages cut off by engine caps, summed across trials. Anything
    /// nonzero means latencies are biased low in that cell.
    truncated_msgs: u64,
}

fn stream_cell(rate: f64, horizon: u64, policy: Policy, trials: u64, seed: u64) -> CellResult {
    let mut spec = ScenarioSpec::stream(N, ArrivalSpec::Poisson { rate }, horizon)
        .with_stream_alloc(policy.alloc)
        .with_trials(trials)
        .with_seed(seed);
    if policy.jammed {
        spec = spec.with_adversary(AdversarySpec::Budgeted {
            budget: BUDGET,
            fraction: 1.0,
        });
    }
    let mut arrivals = RunningStats::new();
    let mut latency = RunningStats::new();
    let mut p95 = RunningStats::new();
    let mut queue = RunningStats::new();
    let mut throughput = RunningStats::new();
    let mut truncated_msgs = 0u64;
    for (out, err) in spec.run_batch_raw() {
        assert!(err.is_none(), "{}: stream trial truncated", policy.label);
        let out = out.into_stream();
        truncated_msgs += out.truncated_msgs;
        if out.arrivals == 0 {
            continue;
        }
        arrivals.push(out.arrivals as f64);
        latency.push(out.mean_latency());
        p95.push(out.latency_p95 as f64);
        queue.push(out.mean_queue());
        throughput.push(out.throughput() * 1e6);
    }
    assert!(
        arrivals.count() > 0,
        "{}: every trial saw zero arrivals",
        policy.label
    );
    CellResult {
        mean_arrivals: arrivals.mean(),
        mean_latency: latency.mean(),
        mean_p95: p95.mean(),
        mean_queue: queue.mean(),
        throughput: throughput.mean(),
        truncated_msgs,
    }
}

/// Mean service time for a single message (a schedule with one arrival at
/// slot 0): the stream's makespan *is* the service time, with no queueing
/// in the way.
fn service_probe(jammed: bool, trials: u64, seed: u64) -> f64 {
    let mut spec = ScenarioSpec::stream(N, ArrivalSpec::Schedule { arrivals: vec![0] }, 1)
        .with_trials(trials)
        .with_seed(seed);
    if jammed {
        spec = spec.with_adversary(AdversarySpec::Budgeted {
            budget: BUDGET,
            fraction: 1.0,
        });
    }
    let mut service = RunningStats::new();
    for (out, err) in spec.run_batch_raw() {
        assert!(err.is_none(), "service probe truncated");
        let out = out.into_stream();
        assert_eq!(out.truncated_msgs, 0, "service probe hit an engine cap");
        service.push(out.latency_max as f64);
    }
    service.mean()
}

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let seed = scale.seed ^ 0xE16;
    let trials = scale.trials(3);

    // ---- Calibration: clean vs jammed per-message service time. ----
    let s_clean = service_probe(false, scale.trials(12), seed ^ 0x5E);
    let s_jam = service_probe(true, scale.trials(12), seed ^ 0x5F);
    out.push_str(&format!(
        "calibration (n = {N}, fast engine, blocker T = {BUDGET}): \
         E[service] clean = {}, jammed = {} slots \
         (inflation ×{:.2})\n\n",
        num(s_clean),
        num(s_jam),
        s_jam / s_clean
    ));

    // ---- Sweep: offered load × allocation policy, with horizon doubling. ----
    let mut table = TableBuilder::new(vec![
        "policy",
        "ρ (vs jammed)",
        "λ (/Mslot)",
        "E[arrivals]",
        "E[latency]",
        "E[p95]",
        "E[queue]",
        "tput (msg/Mslot)",
        "lat ×2H",
        "cut off",
    ]);
    let mut cliffs: Vec<(&'static str, Option<f64>)> = Vec::new();
    for (pi, policy) in POLICIES.iter().enumerate() {
        let mut cliff = None;
        for (ri, &rho) in RHOS.iter().enumerate() {
            let rate = rho / s_jam;
            let horizon = ((TARGET_ARRIVALS / rate).ceil() as u64).max(1);
            let cell_seed = seed ^ ((pi as u64) << 24) ^ ((ri as u64) << 8);
            let base = stream_cell(rate, horizon, *policy, trials, cell_seed);
            let doubled = stream_cell(rate, horizon * 2, *policy, trials, cell_seed ^ 0xD0);
            let ratio = if base.mean_latency > 0.0 {
                doubled.mean_latency / base.mean_latency
            } else {
                1.0
            };
            if cliff.is_none() && ratio > CLIFF_RATIO {
                cliff = Some(rho);
            }
            table.row(vec![
                policy.label.to_string(),
                format!("{rho:.1}"),
                format!("{:.1}", rate * 1e6),
                format!("{:.1}", base.mean_arrivals),
                num(base.mean_latency),
                num(base.mean_p95),
                format!("{:.2}", base.mean_queue),
                format!("{:.1}", base.throughput),
                format!("{ratio:.2}"),
                (base.truncated_msgs + doubled.truncated_msgs).to_string(),
            ]);
        }
        cliffs.push((policy.label, cliff));
    }
    out.push_str(&format!(
        "stability sweep (n = {N}, Poisson arrivals, trials/cell = {trials}; \
         `lat ×2H` = mean latency at horizon 2H over horizon H)\n\n"
    ));
    out.push_str(&table.markdown());

    out.push_str("\nthroughput cliff (first ρ with lat ×2H > 1.5):\n");
    for (label, cliff) in &cliffs {
        match cliff {
            Some(rho) => out.push_str(&format!("- {label}: ρ ≈ {rho:.1}\n")),
            None => out.push_str(&format!(
                "- {label}: none in sweep (stable through ρ = {:.1})\n",
                RHOS[RHOS.len() - 1]
            )),
        }
    }
    out.push_str(
        "\nexpected shape: the refill policy keeps E[service] at the jammed \
         calibration, so its cliff sits near ρ = 1 on this axis and its \
         throughput saturates at the jammed service rate; the persistent \
         policy's budget drains after the first messages, the effective \
         service time falls toward the clean rate, and its cliff shifts \
         right to ρ ≈ the service-inflation factor — a finite budget delays \
         the stream but cannot destabilize an arrival rate the clean \
         protocol can absorb. Persistent cells below the cliff show \
         lat ×2H < 1: the jammer's transient damage is amortized over a \
         longer horizon, the signature of a draining budget.\n",
    );
    out
}
