//! E7 — Theorem 4: any fair algorithm pays `Ω(√(T/n))` per node; our
//! algorithm's mean per-node cost must sit **above** that floor and within
//! a polylog factor of it.
//!
//! The table reports `mean cost / √(T/n)` over a `(T, n)` grid: the ratio
//! must be bounded below by a constant (the lower bound) and vary only
//! polylogarithmically across the grid (the upper bound).

use crate::experiments::common::{broadcast_budget_sweep, broadcast_sweep_base, truncation_note};
use crate::scale::Scale;
use rcb_analysis::table::{num, TableBuilder};
use rcb_core::one_to_n::OneToNParams;

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let params = OneToNParams::practical();
    let budgets = [1u64 << 20, 1 << 22, 1 << 24];
    let ns = [8usize, 32, 128];
    let trials = scale.trials(10);

    let mut table = TableBuilder::new(vec!["", "n=8", "n=32", "n=128"]);
    let mut min_ratio = f64::INFINITY;
    let mut max_ratio: f64 = 0.0;
    let mut sweep_cells = Vec::new();
    for &budget in &budgets {
        let mut row = vec![format!("T≈{budget}")];
        for &n in &ns {
            let pts = broadcast_budget_sweep(
                &broadcast_sweep_base(n, 1.0, trials, scale.seed ^ 0xE7),
                &[budget],
            );
            let p = &pts[0];
            let floor = (p.mean_t.max(1.0) / n as f64).sqrt();
            let ratio = p.mean_cost.mean / floor;
            min_ratio = min_ratio.min(ratio);
            max_ratio = max_ratio.max(ratio);
            row.push(num(ratio));
            sweep_cells.extend(pts);
        }
        table.row(row);
    }
    out.push_str(&format!(
        "cells: mean per-node cost / √(T/n); trials/cell = {trials}\n\n"
    ));
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\nratio range: [{}, {}] — bounded below (Theorem 4 floor) and within \
         a polylog band above it (Theorem 3 ceiling); spread = {:.1}×\n",
        num(min_ratio),
        num(max_ratio),
        max_ratio / min_ratio.max(1e-9)
    ));
    out.push_str(&truncation_note(&sweep_cells));

    // The proof's actual construction: fold the n receivers into one
    // simulated "Bob" (paired slots) and check that the Theorem 2 product
    // bound — the engine of Theorem 4 — holds through the reduction.
    let trials_r = scale.trials(8);
    let mut table_r = TableBuilder::new(vec![
        "n",
        "T (real)",
        "E[A′ alice]",
        "E[A′ bob]",
        "product/(2T)",
        "g(T)/√(T/n)",
    ]);
    for &n in &ns {
        let r = rcb_sim::reduction::simulate_reduction(
            &params,
            n,
            1 << 21,
            trials_r,
            scale.seed ^ 0x7E7,
        );
        table_r.row(vec![
            n.to_string(),
            num(r.mean_t),
            num(r.alice_cost),
            num(r.bob_cost),
            num(r.product_over_t),
            num(r.fairness_ratio),
        ]);
    }
    out.push_str(&format!(
        "\nTheorem 4 reduction (Bob simulates all receivers; {trials_r} trials/row):\n\n"
    ));
    out.push_str(&table_r.markdown());
    out.push_str(
        "\nthe product column must clear the Theorem 2 constant floor — that \
         is exactly the step that makes Theorem 4 a corollary of Theorem 2.\n",
    );
    out
}
