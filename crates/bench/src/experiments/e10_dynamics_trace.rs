//! E10 — §3.1 mechanism claims, observed on instrumented runs:
//!
//! * **Lemma 5**: `S_u/S_w ≤ 2` between any two live nodes throughout an
//!   epoch (the slow `2^(1/2i)` growth keeps rates synchronized);
//! * **Lemma 6**: helpers and uninformed nodes never coexist;
//! * **Lemma 8 (contrapositive)**: a ½-blocked repetition does not grow
//!   `S_V` — the adversary can freeze the rates, but only by paying for
//!   half of every repetition.

use crate::scale::Scale;
use rcb_adversary::rep_strategies::{NoJamRep, SuffixFractionRep};
use rcb_analysis::table::{num, TableBuilder};
use rcb_core::one_to_n::node::Status;
use rcb_core::one_to_n::{OneToNNode, OneToNParams};
use rcb_mathkit::rng::RcbRng;
use rcb_sim::fast::{run_broadcast_checked, BroadcastObserver, FastConfig};
use rcb_sim::faults::FaultPlan;

/// (epoch, rep, S_min, S_max, uninformed, informed, helpers, terminated).
type DynamicsRow = (u32, u64, f64, f64, usize, usize, usize, usize);

/// Records per-repetition aggregates and checks the lemma properties.
#[derive(Debug, Default)]
struct DynamicsProbe {
    rows: Vec<DynamicsRow>,
    max_divergence: f64,
    helper_uninformed_overlap: u64,
    s_v_by_rep: Vec<f64>,
}

impl BroadcastObserver for DynamicsProbe {
    fn on_repetition(&mut self, epoch: u32, period: u64, _jammed: u64, nodes: &[OneToNNode]) {
        let live: Vec<&OneToNNode> = nodes.iter().filter(|v| !v.is_terminated()).collect();
        let (mut s_min, mut s_max) = (f64::INFINITY, 0.0f64);
        let mut counts = [0usize; 4];
        for v in nodes {
            match v.status() {
                Status::Uninformed => counts[0] += 1,
                Status::Informed => counts[1] += 1,
                Status::Helper => counts[2] += 1,
                Status::Terminated => counts[3] += 1,
            }
        }
        let mut s_v = 0.0;
        for v in &live {
            s_min = s_min.min(v.s());
            s_max = s_max.max(v.s());
            s_v += v.s() / (1u64 << epoch) as f64;
        }
        if !live.is_empty() {
            self.max_divergence = self.max_divergence.max(s_max / s_min);
        }
        if counts[2] > 0 && counts[0] > 0 {
            self.helper_uninformed_overlap += 1;
        }
        self.s_v_by_rep.push(s_v);
        self.rows.push((
            epoch,
            period,
            if live.is_empty() { 0.0 } else { s_min },
            s_max,
            counts[0],
            counts[1],
            counts[2],
            counts[3],
        ));
    }
}

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let params = OneToNParams::practical();
    let n = 64;

    // Clean run: divergence and helper-wave structure.
    let mut probe = DynamicsProbe::default();
    let mut rng = RcbRng::new(scale.seed ^ 0xE10);
    let mut adv = NoJamRep;
    let outcome = run_broadcast_checked(
        &params,
        n,
        &[0],
        &mut adv,
        &mut rng,
        FastConfig::default(),
        &mut probe,
        &FaultPlan::none(),
    )
    .expect("unjammed instrumented run must terminate before the epoch cap");

    let mut table = TableBuilder::new(vec![
        "epoch", "rep", "S min", "S max", "uninf", "inf", "helper", "term",
    ]);
    let stride = (probe.rows.len() / 12).max(1);
    for row in probe.rows.iter().step_by(stride) {
        table.row(vec![
            row.0.to_string(),
            row.1.to_string(),
            num(row.2),
            num(row.3),
            row.4.to_string(),
            row.5.to_string(),
            row.6.to_string(),
            row.7.to_string(),
        ]);
    }
    out.push_str(&format!(
        "n = {n}, unjammed (every {stride}-th repetition shown)\n\n"
    ));
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\nLemma 5 check — max S_u/S_w among live nodes: {:.3} (theory bound: 2)\n",
        probe.max_divergence
    ));
    out.push_str(&format!(
        "Lemma 6 check — repetitions with helper+uninformed coexistence: {} / {}\n",
        probe.helper_uninformed_overlap,
        probe.rows.len()
    ));
    out.push_str(&format!(
        "outcome: informed {}/{}, terminated at epoch {}\n",
        outcome.informed, outcome.n, outcome.last_epoch
    ));

    // Half-blocked run: S_V must stay frozen (Lemma 8 contrapositive).
    let mut probe2 = DynamicsProbe::default();
    let mut rng2 = RcbRng::new(scale.seed ^ 0x1E10);
    let mut adv2 = SuffixFractionRep::new(0.55);
    let first_epoch_reps = params.reps(params.first_epoch) as usize;
    // This run is *expected* to hit the epoch cap — the probe only needs
    // the first epoch — so the typed truncation error is acknowledged
    // explicitly instead of being swallowed.
    let capped = run_broadcast_checked(
        &params,
        n,
        &[0],
        &mut adv2,
        &mut rng2,
        FastConfig {
            max_epoch: params.first_epoch + 1,
        },
        &mut probe2,
        &FaultPlan::none(),
    )
    .is_err();
    let start_sv = probe2.s_v_by_rep.first().copied().unwrap_or(0.0);
    let end_first_epoch = probe2
        .s_v_by_rep
        .get(first_epoch_reps.saturating_sub(1))
        .copied()
        .unwrap_or(start_sv);
    out.push_str(&format!(
        "\nLemma 8 check — under 0.55-blocking, S_V over the first epoch moved \
         from {} to {} (growth {:.3}×; unjammed runs multiply it by ≫ 2)\n",
        num(start_sv),
        num(end_first_epoch),
        end_first_epoch / start_sv.max(1e-9)
    ));
    out.push_str(&format!(
        "(blocked run deliberately capped at epoch {}; truncated = {capped})\n",
        params.first_epoch + 1
    ));
    out
}
