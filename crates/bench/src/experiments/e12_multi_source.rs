//! E12 (extension) — multi-source broadcast.
//!
//! Figure 2's analysis tracks an informed set `A` of any initial size
//! (Lemma 9), so the algorithm natively supports multiple sources. The
//! expectation: extra sources shorten the *dissemination* prefix (fewer
//! epochs until everyone is informed) but leave the termination machinery
//! — and hence the `√(T/n)` cost shape — untouched. Under heavy jamming
//! the advantage disappears entirely: the adversary's budget, not the
//! seeding, dictates the timeline.

use crate::experiments::common::split_truncated;
use crate::scale::Scale;
use rcb_adversary::rep_strategies::{BudgetedRepBlocker, NoJamRep};
use rcb_adversary::traits::RepetitionAdversary;
use rcb_analysis::table::{num, TableBuilder};
use rcb_core::one_to_n::OneToNNode;
use rcb_core::one_to_n::OneToNParams;
use rcb_mathkit::stats::RunningStats;
use rcb_sim::fast::{run_broadcast_checked, BroadcastObserver, FastConfig};
use rcb_sim::faults::FaultPlan;
use rcb_sim::runner::{run_trials, Parallelism};

/// Records the global repetition index at which dissemination completed.
#[derive(Default)]
struct DisseminationProbe {
    complete_at: Option<u64>,
}

impl BroadcastObserver for DisseminationProbe {
    fn on_repetition(&mut self, _epoch: u32, period: u64, _jam: u64, nodes: &[OneToNNode]) {
        if self.complete_at.is_none() && nodes.iter().all(|v| v.ever_informed()) {
            self.complete_at = Some(period);
        }
    }
}

fn sweep(
    params: &OneToNParams,
    n: usize,
    sources: usize,
    budget: u64,
    trials: u64,
    seed: u64,
) -> (f64, f64, f64, f64, u64) {
    let source_ids: Vec<usize> = (0..sources).map(|k| k * n / sources).collect();
    let results = run_trials(trials, seed, Parallelism::Auto, move |_, rng| {
        let mut adv: Box<dyn RepetitionAdversary> = if budget == 0 {
            Box::new(NoJamRep)
        } else {
            Box::new(BudgetedRepBlocker::new(budget, 1.0))
        };
        let mut probe = DisseminationProbe::default();
        run_broadcast_checked(
            params,
            n,
            &source_ids,
            adv.as_mut(),
            rng,
            FastConfig::default(),
            &mut probe,
            &FaultPlan::none(),
        )
        .map(|o| (o, probe.complete_at))
    });
    let (outcomes, truncated) = split_truncated(results);
    assert!(
        !outcomes.is_empty(),
        "sources {sources}, budget {budget}: every trial truncated"
    );
    let mut cost = RunningStats::new();
    let mut complete = RunningStats::new();
    let mut informed = 0u64;
    for (o, complete_at) in &outcomes {
        cost.push(o.mean_cost());
        if let Some(rep) = complete_at {
            complete.push(*rep as f64);
        }
        informed += o.all_informed as u64;
    }
    (
        cost.mean(),
        complete.mean(),
        complete.max(),
        informed as f64 / outcomes.len() as f64,
        truncated,
    )
}

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let params = OneToNParams::practical();
    let n = 64;
    let trials = scale.trials(10);

    let mut table = TableBuilder::new(vec![
        "sources",
        "T=0: E[cost]",
        "informed-by rep (mean)",
        "(max)",
        "informed",
        "T=2^20: informed-by rep",
    ]);
    let mut truncated_total = 0u64;
    for sources in [1usize, 2, 4, 8, 16] {
        let (c0, rep0, repmax0, i0, t0) = sweep(&params, n, sources, 0, trials, scale.seed ^ 0xE12);
        let (_c1, rep1, _m1, _i1, t1) =
            sweep(&params, n, sources, 1 << 20, trials, scale.seed ^ 0x1E12);
        truncated_total += t0 + t1;
        table.row(vec![
            sources.to_string(),
            num(c0),
            num(rep0),
            num(repmax0),
            format!("{i0:.2}"),
            num(rep1),
        ]);
    }
    out.push_str(&format!("n = {n}, trials/cell = {trials}\n\n"));
    out.push_str(&table.markdown());
    out.push_str(
        "\nexpected shape: more sources complete dissemination in earlier \
         repetitions (the informed set starts larger, so Lemma 9's cascade \
         needs fewer good repetitions), while the *cost* column barely moves \
         — termination is governed by the S_u machinery, not by who was \
         seeded. Under a 2^20 blanket budget dissemination is pushed to \
         whenever the budget runs out, shifting every row by the same \
         adversary-dictated amount.\n",
    );
    out.push_str(&format!("\ntruncated trials: {truncated_total}\n"));
    out
}
