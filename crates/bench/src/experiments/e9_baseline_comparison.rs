//! E9 — §1.4 head-to-head: Figure 1 vs KSY vs the combined protocol vs the
//! deterministic baseline.
//!
//! Expected shape:
//!
//! * at `T = 0` KSY is cheapest (no ε-dependence: the `+1` beats
//!   `ln(1/ε)`), and the combined protocol tracks it;
//! * as `T` grows Figure 1 wins (`√T < T^0.618`), the combined protocol
//!   tracks *it*, and the crossover sits where `√(T·ln 1/ε)` undercuts
//!   `T^0.618`;
//! * the naive deterministic pair pays `T + 1` — linear, not competitive.

use crate::scale::Scale;
use rcb_adversary::slot_strategies::BudgetedPhaseBlocker;
use rcb_analysis::table::{num, TableBuilder};
use rcb_baselines::combined::{combined_alice, combined_bob};
use rcb_baselines::ksy::KsyProfile;
use rcb_channel::Partition;
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_core::protocol::SlotProtocol;
use rcb_mathkit::stats::RunningStats;
use rcb_sim::exact::{run_exact_checked, ExactConfig};
use rcb_sim::faults::FaultPlan;
use rcb_sim::runner::{run_trials, Parallelism};

use crate::experiments::common::{
    duel_budget_sweep, duel_sweep_base, split_truncated, truncation_note,
};
use rcb_sim::scenario::DuelProtocol;

const EPSILON: f64 = 0.01;

/// Mean max-cost of the combined device pair via the exact engine, plus
/// the number of trials the slot cap truncated (excluded from the mean).
fn combined_cost(budget: u64, trials: u64, seed: u64) -> (f64, f64, u64) {
    let fig1 = Fig1Profile::with_start_epoch(EPSILON, 8);
    let ksy = KsyProfile::new();
    let results = run_trials(trials, seed, Parallelism::Auto, |_, rng| {
        let mut alice = combined_alice(fig1, ksy);
        let mut bob = combined_bob(fig1, ksy);
        let mut adv = BudgetedPhaseBlocker::new(budget, 1.0);
        let schedule = DuelSchedule::new(8);
        let partition = Partition::pair();
        let out = run_exact_checked(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig {
                max_slots: (budget * 64).max(1 << 22),
            },
            None,
            &FaultPlan::none(),
        );
        out.map(|o| (o.ledger.max_node_cost() as f64, bob.received_message()))
    });
    let (outcomes, truncated) = split_truncated(results);
    assert!(
        !outcomes.is_empty(),
        "budget {budget}: all {truncated} combined-device trials hit the slot cap"
    );
    let mut stats = RunningStats::new();
    let mut ok = 0usize;
    for (c, delivered) in &outcomes {
        stats.push(*c);
        ok += *delivered as usize;
    }
    (stats.mean(), ok as f64 / outcomes.len() as f64, truncated)
}

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let budgets = [0u64, 1 << 10, 1 << 14, 1 << 18, 1 << 22];
    let trials = scale.trials(60);
    let trials_exact = scale.trials(15);

    let fig1_base = duel_sweep_base(
        DuelProtocol::fig1(EPSILON, 8),
        1.0,
        trials,
        scale.seed ^ 0xE9,
    );
    let ksy_base = duel_sweep_base(DuelProtocol::ksy(), 1.0, trials, scale.seed ^ 0x9E9);

    let mut table = TableBuilder::new(vec![
        "T (budget)",
        "Fig-1 (√T)",
        "KSY (T^.62)",
        "Combined",
        "Naive (T+1)",
    ]);
    let mut sweep_cells = Vec::new();
    let mut exact_truncated = 0u64;
    for &budget in &budgets {
        let fig1_pts = duel_budget_sweep(&fig1_base, &[budget]);
        let fig1_cost = fig1_pts[0].cost.mean;
        let ksy_pts = duel_budget_sweep(&ksy_base, &[budget.max(1)]);
        let ksy_cost = ksy_pts[0].cost.mean;
        sweep_cells.extend(fig1_pts);
        sweep_cells.extend(ksy_pts);
        let (combined, _success, combined_trunc) =
            combined_cost(budget, trials_exact, scale.seed ^ 0xC0);
        exact_truncated += combined_trunc;
        table.row(vec![
            budget.to_string(),
            num(fig1_cost),
            num(ksy_cost),
            num(combined),
            num(budget as f64 + 1.0),
        ]);
    }
    out.push_str(&format!(
        "ε = {EPSILON}; cells: mean max-party cost; duel trials = {trials}, \
         combined (exact engine) trials = {trials_exact}\n\n"
    ));
    out.push_str(&table.markdown());
    out.push_str(
        "\nexpected shape: KSY wins at T = 0; Figure 1 wins for large T; the \
         combined column tracks the column-wise minimum up to a constant; \
         naive is linear in T.\n",
    );
    out.push_str(&truncation_note(&sweep_cells));
    out.push_str(&format!(
        "truncated combined-device (exact engine) trials: {exact_truncated}\n"
    ));
    out
}
