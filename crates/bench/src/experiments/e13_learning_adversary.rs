//! E13 (extension) — can a *learning* adversary find the threshold attack?
//!
//! Experiment E11 established, by exhaustive sweep, that the budget-optimal
//! blocking fraction sits just above the noise-threshold fraction (q ≈ ¼
//! with our constants) — not at full blocking. Here the adversary doesn't
//! get the sweep: an ε-greedy bandit (`BanditBlocker`) must discover the
//! same fact online, one epoch at a time, from the victim's observable
//! activity. The table compares the bandit's extracted cost against the
//! static arms it is choosing between; its arm statistics show where it
//! converged.

use crate::experiments::common::split_truncated;
use crate::scale::Scale;
use rcb_adversary::rep_strategies::{BanditBlocker, BudgetedRepBlocker};
use rcb_analysis::table::{num, TableBuilder};
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_mathkit::rng::SeedSequence;
use rcb_mathkit::stats::RunningStats;
use rcb_sim::duel::{run_duel_checked, DuelConfig};
use rcb_sim::faults::FaultPlan;
use rcb_sim::runner::{run_trials, Parallelism};

const ARMS: [f64; 4] = [0.0625, 0.25, 0.55, 1.0];

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let budget = 1u64 << 19;
    let trials = scale.trials(60);
    let profile = Fig1Profile::with_start_epoch(0.01, 8);

    let mut table = TableBuilder::new(vec!["adversary", "E[max cost]", "E[T spent]", "success"]);

    // Static arms for reference.
    let mut truncated_total = 0u64;
    for q in ARMS {
        let results = run_trials(
            trials,
            scale.seed ^ 0xE13,
            Parallelism::Auto,
            move |_, rng| {
                let mut adv = BudgetedRepBlocker::new(budget, q);
                run_duel_checked(
                    &profile,
                    &mut adv,
                    rng,
                    DuelConfig::default(),
                    &FaultPlan::none(),
                )
            },
        );
        let (outcomes, trunc) = split_truncated(results);
        assert!(!outcomes.is_empty(), "q={q}: every trial truncated");
        truncated_total += trunc;
        let mut cost = RunningStats::new();
        let mut spend = RunningStats::new();
        let mut ok = 0u64;
        for o in &outcomes {
            cost.push(o.max_cost() as f64);
            spend.push(o.adversary_cost as f64);
            ok += o.delivered as u64;
        }
        table.row(vec![
            format!("static q={q}"),
            num(cost.mean()),
            num(spend.mean()),
            format!("{:.2}", ok as f64 / outcomes.len() as f64),
        ]);
    }

    // The bandit learns *across* runs: a single weak arm ends a duel in a
    // couple of epochs (a quiet phase lets the victim finish), so within-
    // run learning has almost no sample budget. One persistent bandit
    // carries its arm statistics over `trials` sequential executions,
    // refilled with the same jamming budget each time.
    let seeds = SeedSequence::new(scale.seed ^ 0x1E13);
    let mut cost = RunningStats::new();
    let mut late_cost = RunningStats::new();
    let mut spend = RunningStats::new();
    let mut ok = 0u64;
    let mut adv = BanditBlocker::new(ARMS.to_vec(), budget, 0xBAD17);
    let mut bandit_runs = 0u64;
    for t in 0..trials {
        let mut rng = seeds.rng(t);
        adv.refill(budget);
        let result = run_duel_checked(
            &profile,
            &mut adv,
            &mut rng,
            DuelConfig::default(),
            &FaultPlan::none(),
        );
        adv.settle_now();
        let o = match result {
            Ok(o) => o,
            // A truncated run still taught the bandit; only the victim
            // statistics are unusable.
            Err(_) => {
                truncated_total += 1;
                continue;
            }
        };
        bandit_runs += 1;
        cost.push(o.max_cost() as f64);
        if t >= trials / 2 {
            late_cost.push(o.max_cost() as f64);
        }
        spend.push(o.adversary_cost as f64);
        ok += o.delivered as u64;
    }
    assert!(bandit_runs > 0, "every bandit run truncated");
    let pulls_by_arm: Vec<u64> = adv.arm_means().iter().map(|&(_, _, p)| p).collect();
    table.row(vec![
        "bandit (all runs)".to_string(),
        num(cost.mean()),
        num(spend.mean()),
        format!("{:.2}", ok as f64 / bandit_runs as f64),
    ]);
    table.row(vec![
        "bandit (2nd half)".to_string(),
        num(late_cost.mean()),
        "".to_string(),
        "".to_string(),
    ]);

    out.push_str(&format!("budget = {budget}, trials = {trials}\n\n"));
    out.push_str(&table.markdown());
    let total_pulls: u64 = pulls_by_arm.iter().sum();
    out.push_str("\nbandit arm pulls (aggregate across trials):\n");
    for (q, pulls) in ARMS.iter().zip(&pulls_by_arm) {
        out.push_str(&format!(
            "  q = {q:<6}: {pulls:>6} pulls ({:.0}%)\n",
            100.0 * *pulls as f64 / total_pulls.max(1) as f64
        ));
    }
    out.push_str(
        "\nexpected shape: early runs pay the exploration tax, the second-half \
         mean climbs toward the best static arm, and the pull distribution \
         concentrates on the threshold-level fractions that E11 identified as \
         budget-optimal — the attacker does not need the sweep, the victim's \
         observable activity is enough to find the protocol's soft spot.\n",
    );
    out.push_str(&format!("\ntruncated trials: {truncated_total}\n"));
    out
}
