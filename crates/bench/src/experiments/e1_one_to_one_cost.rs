//! E1 — Theorem 1 upper bound: 1-to-1 expected cost is
//! `O(√(T·ln(1/ε)) + ln(1/ε))`.
//!
//! Sweep the adversary budget over several decades with the canonical
//! full-phase blocker; the fitted exponent of max-party cost vs realized
//! `T` must sit near 0.5 (and far from the naive baseline's 1.0), and the
//! success rate must stay ≥ 1 − ε.

use crate::experiments::common::{
    budget_axis, duel_budget_sweep, duel_sweep_base, series_from, truncation_note,
};
use crate::scale::Scale;
use rcb_analysis::plot::ascii_loglog;
use rcb_analysis::scaling::{fit_scaling, fit_scaling_above_baseline};
use rcb_analysis::table::{num, TableBuilder};
use rcb_sim::scenario::DuelProtocol;

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let budgets = budget_axis(10, 20 + scale.extra_budget_doublings, 2);
    let trials = scale.trials(150);

    for epsilon in [0.1, 0.01] {
        let protocol = DuelProtocol::fig1(epsilon, 8);
        // τ baseline: unjammed cost, the additive ln(1/ε) term.
        let base = duel_sweep_base(protocol, 1.0, trials, scale.seed ^ 0xBA5E);
        let baseline = duel_budget_sweep(&base, &[0])[0].cost.mean;
        let base = duel_sweep_base(protocol, 1.0, trials, scale.seed ^ 0xE1);
        let points = duel_budget_sweep(&base, &budgets);

        let mut table = TableBuilder::new(vec![
            "budget",
            "T (real)",
            "E[max cost]",
            "± sem",
            "cost/√T",
            "success",
            "E[slots]",
        ]);
        for p in &points {
            table.row(vec![
                p.budget.to_string(),
                num(p.mean_t),
                num(p.cost.mean),
                num(p.cost.sem),
                num(p.cost.mean / p.mean_t.max(1.0).sqrt()),
                format!("{:.3}", p.success_rate),
                num(p.latency.mean),
            ]);
        }
        out.push_str(&format!("ε = {epsilon}, trials/cell = {trials}\n\n"));
        out.push_str(&table.markdown());

        let series = series_from(
            &format!("1-to-1 max cost vs T (ε={epsilon})"),
            points.iter().map(|p| (p.mean_t, p.cost)),
        );
        out.push_str(&format!(
            "\nτ baseline (T = 0 mean max cost): {}\n",
            num(baseline)
        ));
        if let Some(v) = fit_scaling(&series, 0.5, 0.15) {
            out.push_str(&format!("{} [raw]\n", v.summary()));
        }
        if let Some(v) = fit_scaling_above_baseline(&series, baseline, 0.5, 0.15) {
            out.push_str(&format!("{} [baseline-subtracted]\n", v.summary()));
        }
        out.push_str("\n```\n");
        out.push_str(&ascii_loglog(&series, 56, 12, Some(0.5)));
        out.push_str("```\n");
        let min_success = points
            .iter()
            .map(|p| p.success_rate)
            .fold(f64::INFINITY, f64::min);
        out.push_str(&format!(
            "minimum success rate over the sweep: {min_success:.3} (must be ≳ {:.3})\n",
            1.0 - epsilon
        ));
        out.push_str(&truncation_note(&points));
        out.push('\n');
    }
    out
}
