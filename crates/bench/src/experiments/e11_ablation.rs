//! E11 — robustness ablation: how much pain does each jamming *style* buy
//! per unit of adversary budget?
//!
//! The Theorem 1 analysis contains two different blocking thresholds, and
//! this experiment exposes both empirically:
//!
//! * to stop *delivery* the adversary must jam a constant fraction ≈ 1/2
//!   of a phase — expensive;
//! * to stop *halting* (keep the parties burning energy) it only needs the
//!   listener's noise count to clear `Θᵢ`, which takes roughly a 1/8
//!   fraction with our constants (the paper's proof uses (1/16)-blocking).
//!
//! So the budget-optimal attack is NOT full blocking: jamming just above
//! the noise threshold keeps the protocol alive for ~4–8× more epochs per
//! unit of energy, extracting correspondingly more good-node cost. Below
//! the threshold the attack collapses entirely — the parties hear a quiet
//! phase, finish, and go home. The q-sweep shows the cliff. The same
//! dilution effect appears for 1-to-n: a q ≥ 1/2 block freezes `S_u`
//! growth outright, but a 1/4 block merely *halves* the growth rate —
//! which often delays termination by whole epochs at a quarter of the
//! price.
//!
//! Lemma 1 (suffix jamming is WLOG) still holds: all strategies here are
//! suffix-shaped except the diffuse random jammer, which behaves like its
//! equal-fraction suffix cousin on average.

use crate::experiments::common::split_truncated;
use crate::scale::Scale;
use rcb_adversary::rep_strategies::{BudgetedRepBlocker, KeepAliveBlocker, RandomRep};
use rcb_adversary::traits::RepetitionAdversary;
use rcb_analysis::table::{num, TableBuilder};
use rcb_core::one_to_n::OneToNParams;
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_mathkit::stats::RunningStats;
use rcb_sim::duel::{run_duel_checked, DuelConfig};
use rcb_sim::fast::{run_broadcast_checked, FastConfig};
use rcb_sim::faults::FaultPlan;
use rcb_sim::runner::{run_trials, Parallelism};

#[derive(Clone, Copy)]
enum Strategy {
    Suffix(f64),
    Random(f64),
    /// Jam only nack phases (where halting decisions are made).
    KeepAlive(f64),
}

impl Strategy {
    fn label(&self) -> String {
        match self {
            Strategy::Suffix(q) => format!("suffix q={q}"),
            Strategy::Random(r) => format!("random {:.0}%", r * 100.0),
            Strategy::KeepAlive(q) => format!("keep-alive q={q}"),
        }
    }

    fn build(&self, budget: u64, seed: u64) -> Box<dyn RepetitionAdversary> {
        match self {
            Strategy::Suffix(q) => Box::new(BudgetedRepBlocker::new(budget, *q)),
            Strategy::Random(r) => Box::new(RandomRep::new(*r, budget, seed)),
            Strategy::KeepAlive(q) => Box::new(KeepAliveBlocker::new(budget, *q)),
        }
    }
}

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    let budget = 1u64 << 19;
    let duel_trials = scale.trials(80);
    let bc_trials = scale.trials(8);
    let profile = Fig1Profile::with_start_epoch(0.01, 8);
    let params = OneToNParams::practical();
    let n = 32;

    let strategies = [
        Strategy::Suffix(1.0),
        Strategy::Suffix(0.55),
        Strategy::Suffix(0.25),
        Strategy::Suffix(0.125),
        Strategy::Suffix(0.0625),
        Strategy::Random(0.5),
        Strategy::KeepAlive(0.25),
    ];

    let mut table = TableBuilder::new(vec![
        "strategy",
        "1-to-1 E[max cost]",
        "1-to-1 success",
        "1-to-n E[mean cost]",
        "1-to-n informed",
    ]);
    let mut truncated_total = 0u64;
    for strategy in strategies {
        // 1-to-1.
        let duel_results = run_trials(duel_trials, scale.seed ^ 0xA11, Parallelism::Auto, {
            move |i, rng| {
                let mut adv = strategy.build(budget, i ^ 0xE11);
                run_duel_checked(
                    &profile,
                    adv.as_mut(),
                    rng,
                    DuelConfig::default(),
                    &FaultPlan::none(),
                )
            }
        });
        let (duel_outcomes, duel_trunc) = split_truncated(duel_results);
        assert!(
            !duel_outcomes.is_empty(),
            "{}: every duel trial truncated",
            strategy.label()
        );
        let mut duel_cost = RunningStats::new();
        let mut delivered = 0usize;
        for o in &duel_outcomes {
            duel_cost.push(o.max_cost() as f64);
            delivered += o.delivered as usize;
        }

        // 1-to-n.
        let bc_results = run_trials(bc_trials, scale.seed ^ 0xB11, Parallelism::Auto, {
            move |i, rng| {
                let mut adv = strategy.build(budget, i ^ 0xB11);
                run_broadcast_checked(
                    &params,
                    n,
                    &[0],
                    adv.as_mut(),
                    rng,
                    FastConfig::default(),
                    &mut (),
                    &FaultPlan::none(),
                )
            }
        });
        let (bc_outcomes, bc_trunc) = split_truncated(bc_results);
        assert!(
            !bc_outcomes.is_empty(),
            "{}: every broadcast trial truncated",
            strategy.label()
        );
        truncated_total += duel_trunc + bc_trunc;
        let mut bc_cost = RunningStats::new();
        let mut informed = 0usize;
        for o in &bc_outcomes {
            bc_cost.push(o.mean_cost());
            informed += o.all_informed as usize;
        }

        table.row(vec![
            strategy.label(),
            num(duel_cost.mean()),
            format!("{:.2}", delivered as f64 / duel_outcomes.len() as f64),
            num(bc_cost.mean()),
            format!("{:.2}", informed as f64 / bc_outcomes.len() as f64),
        ]);
    }
    out.push_str(&format!(
        "budget = {budget} per strategy; duel trials = {duel_trials}, \
         broadcast trials = {bc_trials}, n = {n}\n\n"
    ));
    out.push_str(&table.markdown());
    out.push_str(
        "\nexpected shape: good-node cost per unit budget *rises* as q falls \
         toward the noise-threshold fraction, because threshold-level \
         jamming keeps the protocol alive for more epochs per jammed slot; \
         just below the threshold the attack collapses outright (quiet \
         phases let the parties finish). With our constants Θᵢ corresponds \
         to a 1/8 jam fraction in expectation, so q = 0.25 still trips it \
         w.h.p. while q = 0.125 — sitting exactly at the expectation — no \
         longer does: the cliff lands between those rows, mirroring the \
         (1/16)-blocking constant in the Theorem 1 proof. Correctness \
         (success / informed columns) is never affected — only cost.\n",
    );
    out.push_str(&format!("\ntruncated trials: {truncated_total}\n"));
    out
}
