//! E6 — Theorem 3: latency `O(T + n·log² n)`, all nodes informed w.h.p.
//!
//! * budget sweep: elapsed slots vs realized `T` fit ≈ 1.0 (optimal in T);
//! * unjammed `n` sweep: slots grow near-linearly in `n` (the `n·log² n`
//!   term — fitted exponent ≈ 1 with polylog drift).

use crate::experiments::common::{
    broadcast_budget_sweep, broadcast_sweep_base, budget_axis, series_from, truncation_note,
};
use crate::scale::Scale;
use rcb_analysis::scaling::fit_scaling;
use rcb_analysis::table::{num, TableBuilder};

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();

    // (a) Latency vs T at fixed n.
    let n = 32;
    let budgets = budget_axis(17, 23, 2);
    let trials = scale.trials(15);
    let points = broadcast_budget_sweep(
        &broadcast_sweep_base(n, 1.0, trials, scale.seed ^ 0xE6),
        &budgets,
    );
    let mut table = TableBuilder::new(vec![
        "budget", "T (real)", "E[slots]", "slots/T", "informed",
    ]);
    for p in &points {
        table.row(vec![
            p.budget.to_string(),
            num(p.mean_t),
            num(p.latency.mean),
            num(p.latency.mean / p.mean_t.max(1.0)),
            format!("{:.2}", p.all_informed_rate),
        ]);
    }
    out.push_str(&format!("(a) n = {n}, trials/cell = {trials}\n\n"));
    out.push_str(&table.markdown());
    let series = series_from(
        "1-to-n latency vs T",
        points.iter().map(|p| (p.mean_t, p.latency)),
    );
    if let Some(v) = fit_scaling(&series, 1.0, 0.2) {
        out.push_str(&format!("\n{}\n", v.summary()));
    }
    out.push_str(&truncation_note(&points));

    // (b) Unjammed latency vs n.
    let ns = [4usize, 8, 16, 32, 64, 128];
    let trials_b = scale.trials(10);
    let mut table_b = TableBuilder::new(vec!["n", "E[slots]", "slots/(n·lg²n)", "informed"]);
    let mut cells = Vec::new();
    let mut sweep_cells = Vec::new();
    for &n in &ns {
        let pts = broadcast_budget_sweep(
            &broadcast_sweep_base(n, 1.0, trials_b, scale.seed ^ 0x6E6),
            &[0],
        );
        let p = &pts[0];
        let lg = (n.max(2) as f64).log2();
        table_b.row(vec![
            n.to_string(),
            num(p.latency.mean),
            num(p.latency.mean / (n as f64 * lg * lg)),
            format!("{:.2}", p.all_informed_rate),
        ]);
        cells.push((n as f64, p.latency));
        sweep_cells.extend(pts);
    }
    out.push_str(&format!("\n(b) T = 0, trials/cell = {trials_b}\n\n"));
    out.push_str(&table_b.markdown());
    let series_n = series_from("1-to-n unjammed latency vs n", cells);
    if let Some(v) = fit_scaling(&series_n, 1.0, 0.35) {
        out.push_str(&format!("\n{}\n", v.summary()));
    }
    out.push_str(&truncation_note(&sweep_cells));
    out
}
