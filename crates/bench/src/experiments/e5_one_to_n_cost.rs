//! E5 — Theorem 3: per-node cost `O(√(T/n)·log⁴T + log⁶n)`.
//!
//! Two sweeps:
//!
//! * budget sweep at fixed `n` — fitted exponent of mean per-node cost vs
//!   realized `T` ≈ 0.5 (the polylog inflates it slightly);
//! * `n` sweep at fixed budget — fitted exponent ≈ −0.5: **bigger systems
//!   pay less per node**, the headline of the paper.

use crate::experiments::common::{
    broadcast_budget_sweep, broadcast_sweep_base, budget_axis, series_from, truncation_note,
};
use crate::scale::Scale;
use rcb_analysis::plot::ascii_loglog;
use rcb_analysis::scaling::{fit_scaling, fit_scaling_with_offset};
use rcb_analysis::table::{num, TableBuilder};

pub fn run(scale: &Scale) -> String {
    let mut out = String::new();

    // (a) Cost vs T at fixed n.
    let n = 32;
    let budgets = budget_axis(17, 23 + scale.extra_budget_doublings.min(1), 2);
    let trials = scale.trials(20);
    // τ baseline: the unjammed (T = 0) cost, i.e. the additive log⁶n-style
    // term of the cost function; subtracted before the scaling fit.
    let baseline = broadcast_budget_sweep(
        &broadcast_sweep_base(n, 1.0, trials, scale.seed ^ 0xBA5E),
        &[0],
    )[0]
    .mean_cost
    .mean;
    let points = broadcast_budget_sweep(
        &broadcast_sweep_base(n, 1.0, trials, scale.seed ^ 0xE5),
        &budgets,
    );

    let mut table = TableBuilder::new(vec![
        "budget",
        "T (real)",
        "E[mean cost]",
        "p95",
        "E[max cost]",
        "mean/√(T/n)",
        "informed",
    ]);
    for p in &points {
        table.row(vec![
            p.budget.to_string(),
            num(p.mean_t),
            num(p.mean_cost.mean),
            num(p.mean_cost.p95),
            num(p.max_cost.mean),
            num(p.mean_cost.mean / (p.mean_t.max(1.0) / n as f64).sqrt()),
            format!("{:.2}", p.all_informed_rate),
        ]);
    }
    out.push_str(&format!("(a) n = {n}, trials/cell = {trials}\n\n"));
    out.push_str(&table.markdown());
    let series = series_from(
        "1-to-n mean cost vs T",
        points.iter().map(|p| (p.mean_t, p.mean_cost)),
    );
    out.push_str(&format!(
        "\nmeasured τ (T = 0 mean cost): {} — note small-T jamming can even
         sit *below* τ (blocked epochs suppress growth-phase listening)\n",
        num(baseline)
    ));
    if let Some(v) = fit_scaling(&series, 0.5, 0.3) {
        out.push_str(&format!("{} [raw]\n", v.summary()));
    }
    if let Some((v, _tau)) = fit_scaling_with_offset(&series, 0.5, 0.2) {
        out.push_str(&format!("{} [offset model ρ(T) + τ]\n", v.summary()));
    }
    out.push_str("\n```\n");
    out.push_str(&ascii_loglog(&series, 56, 12, Some(0.5)));
    out.push_str("```\n");
    out.push_str(&truncation_note(&points));

    // (b) Cost vs n at fixed budget.
    let budget = 1u64 << 21;
    let ns = [4usize, 8, 16, 32, 64, 128];
    let trials_b = scale.trials(15);
    let mut table_b = TableBuilder::new(vec![
        "n",
        "T (real)",
        "E[mean cost]",
        "E[max cost]",
        "informed",
    ]);
    let mut cells = Vec::new();
    let mut sweep_cells = Vec::new();
    for &n in &ns {
        let pts = broadcast_budget_sweep(
            &broadcast_sweep_base(n, 1.0, trials_b, scale.seed ^ 0x5E5),
            &[budget],
        );
        let p = &pts[0];
        table_b.row(vec![
            n.to_string(),
            num(p.mean_t),
            num(p.mean_cost.mean),
            num(p.max_cost.mean),
            format!("{:.2}", p.all_informed_rate),
        ]);
        cells.push((n as f64, p.mean_cost));
        sweep_cells.extend(pts);
    }
    out.push_str(&format!(
        "\n(b) budget = {budget}, trials/cell = {trials_b}\n\n"
    ));
    out.push_str(&table_b.markdown());
    let series_n = series_from("1-to-n mean cost vs n at fixed T", cells);
    let raw = fit_scaling(&series_n, -0.5, 0.35);
    let offset = fit_scaling_with_offset(&series_n, -0.5, 0.35);
    if let Some(v) = &raw {
        out.push_str(&format!("\n{} [raw]\n", v.summary()));
    }
    if let Some((v, _)) = &offset {
        out.push_str(&format!("{} [constant-offset model]\n", v.summary()));
    }
    if let (Some(r), Some((o, _))) = (&raw, &offset) {
        // The true model is cost(n) = τ(n) + B·√(T/n) with τ *growing* in n
        // (the log⁶n term): a raw fit therefore underestimates |α| and a
        // constant-offset fit overestimates it — the prediction must lie
        // between the two.
        let (lo, hi) = (
            r.fitted.exponent.min(o.fitted.exponent),
            r.fitted.exponent.max(o.fitted.exponent),
        );
        let bracketed = (lo..=hi).contains(&-0.5);
        out.push_str(&format!(
            "bracket check: predicted −0.5 ∈ [{lo:.3}, {hi:.3}] → {}\n\
             (raw underestimates |α| because the additive τ(n) term pads \
             small-n costs; a constant offset overestimates it because τ(n) \
             itself grows with n — the headline: larger systems beat the \
             same adversary more cheaply)\n",
            if bracketed { "OK" } else { "MISMATCH" }
        ));
    }
    out.push_str(&truncation_note(&sweep_cells));
    out
}
