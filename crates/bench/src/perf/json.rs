//! Re-export shim: the hand-rolled JSON layer moved to [`rcb_sim::json`]
//! when the crash-safe journal needed it one crate lower. Perf code (and
//! anything else importing `crate::perf::json::Json`) keeps working
//! unchanged.

pub use rcb_sim::json::Json;
