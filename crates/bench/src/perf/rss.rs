//! Peak-RSS probes for the perf harness (Linux `/proc`, graceful no-op
//! elsewhere).
//!
//! `VmHWM` in `/proc/self/status` is the process-wide high-water mark of
//! resident memory. Writing `5` to `/proc/self/clear_refs` resets it, which
//! lets the harness attribute a peak to each scenario instead of reporting
//! one cumulative maximum. A measurement is therefore in one of three
//! states the harness must keep distinct (see `ScenarioResult` in the
//! parent module):
//!
//! 1. **exclusive** — the reset succeeded before the scenario ran and the
//!    probe read back afterwards: the value is this scenario's own peak;
//! 2. **cumulative** — the probe works but the reset is denied (sandboxed
//!    `/proc/self/clear_refs`): the value is the process-wide high-water
//!    mark up to this point, an upper bound only;
//! 3. **absent** — no probe at all (non-Linux): there is no value, which
//!    the JSON records as `null`, never as a fake `0`.

/// Current peak resident set size in KiB, if the platform exposes it.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok();
        }
    }
    None
}

/// Resets the peak-RSS high-water mark to the current RSS. Returns whether
/// the reset took effect (false ⇒ subsequent readings are cumulative).
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", b"5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_when_available() {
        // On Linux the probe must report something sane; elsewhere None.
        if let Some(kib) = peak_rss_kib() {
            assert!(kib > 100, "a Rust test binary uses > 100 KiB, got {kib}");
        }
    }

    #[test]
    fn reset_is_harmless() {
        // Whether or not the write is permitted, the probe keeps working.
        let _ = reset_peak_rss();
        let _ = peak_rss_kib();
    }
}
