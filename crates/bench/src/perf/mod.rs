//! Performance telemetry: the `rcbsim perf` harness.
//!
//! Measures engine throughput — slots-simulated/sec, trials/sec, and peak
//! RSS — over a **pinned scenario grid** (duel clean/jammed/faulted,
//! broadcast at n ∈ {8, 64, 256}, an exact-engine reference cell, and
//! cohort-engine cells at n = 65536 and n = 10^6, which run at standard
//! scale or under an explicit `--only` selection) and
//! emits a schema-versioned `BENCH_<git-short-sha>.json` so the repo
//! accumulates a perf trajectory instead of terminal output that vanishes.
//! A comparator (`rcbsim perf --against <file>`) flags changes beyond a
//! noise threshold.
//!
//! Methodology (DESIGN.md §9, §11):
//!
//! * Each scenario's trials run with the same `SeedSequence`-derived
//!   per-trial RNG streams as `run_trials`. The default is one serial pass
//!   (`--cpus 1`), which isolates engine hot-path cost from scheduler
//!   noise; `--cpus 1,2,4` additionally times one full-grid pass per
//!   worker count through [`rcb_sim::executor::run_cells`] and records a
//!   scaling curve. Per-scenario stats come from the **first** pass, and
//!   every scenario records the worker count it was measured under.
//! * Every scenario also folds its outcomes into an FNV-1a checksum. The
//!   checksum is a *determinism witness*: two runs at the same seed, scale,
//!   and schema must agree bit-for-bit — including across passes at
//!   different worker counts, which the harness asserts — and an
//!   optimisation that claims to be output-preserving must leave it
//!   unchanged.
//! * Peak RSS is `VmHWM`, reset per scenario where `/proc` allows it (see
//!   [`rss`]). `VmHWM` is process-wide, so attribution is only meaningful
//!   when scenarios run one at a time: a multi-worker pass records no RSS,
//!   and a serial pass distinguishes *exclusive* measurements (reset took
//!   effect before every repeat) from *cumulative* upper bounds (probe
//!   present, reset denied) from *absent* (no probe; JSON `null`).

pub mod rss;

use std::path::PathBuf;
use std::time::Instant;

use rcb_mathkit::rng::SeedSequence;
use rcb_sim::deadline::Deadline;
use rcb_sim::executor::run_cells_ctl;
use rcb_sim::journal::{Journal, JournalError, JournalHeader};
use rcb_sim::runner::Parallelism;
use rcb_sim::scenario::{fnv1a, fnv1a_bytes, registry, NamedScenario, Workload, FNV_OFFSET};

use rcb_sim::json::Json;

/// Version of the `BENCH_*.json` schema this build writes. Reads accept
/// v1 (pre-scaling: no per-scenario `cpus`, `peak_rss_kib` as a bare
/// number with 0 standing for "unavailable", no `rss_exclusive`, no
/// `scaling` array) and map it onto the v2 shape.
pub const SCHEMA_VERSION: u64 = 2;

/// Default regression threshold for the comparator: a scenario regresses
/// when throughput drops below `baseline / (1 + threshold)`. 0.35 absorbs
/// run-to-run noise on shared CI runners while a genuine 2× slowdown
/// (ratio 0.5 < 1/1.35 ≈ 0.74) always trips.
pub const DEFAULT_THRESHOLD: f64 = 0.35;

/// Grid sizing: `Standard` for recorded baselines, `Smoke` for CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfScale {
    Standard,
    Smoke,
}

impl PerfScale {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "standard" => Ok(Self::Standard),
            "smoke" => Ok(Self::Smoke),
            other => Err(format!("--scale must be standard|smoke, got `{other}`")),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Self::Standard => "standard",
            Self::Smoke => "smoke",
        }
    }

    fn trials(self, base: u64) -> u64 {
        match self {
            Self::Standard => base,
            Self::Smoke => (base / 10).max(2),
        }
    }

    /// Timed repetitions per scenario; the fastest wall time is reported.
    /// Best-of-N is the standard defence against scheduler noise: the
    /// minimum converges on the true cost while means drag in every
    /// preemption.
    fn repeats(self) -> u64 {
        match self {
            Self::Standard => 3,
            Self::Smoke => 2,
        }
    }
}

/// One measured grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    pub id: String,
    pub engine: String,
    pub trials: u64,
    /// Total protocol slots simulated across all trials.
    pub slots: u64,
    pub wall_secs: f64,
    pub slots_per_sec: f64,
    pub trials_per_sec: f64,
    /// Worker count of the pass this measurement came from. The comparator
    /// normalises throughput by it, so baselines recorded at different
    /// `--cpus` stay comparable (with a warning).
    pub cpus: u64,
    /// Peak RSS in KiB, `None` when the platform exposes no probe or the
    /// measuring pass was multi-worker (attribution impossible).
    pub peak_rss_kib: Option<u64>,
    /// True only when the value is this scenario's own peak: serial pass,
    /// probe present, and the high-water-mark reset took effect before
    /// every repeat. False with `Some(_)` means a cumulative upper bound.
    pub rss_exclusive: bool,
    /// FNV-1a fold of every trial outcome, hex — the determinism witness.
    pub checksum: String,
}

/// One point on the whole-grid scaling curve: a timed pass at a fixed
/// worker count. `speedup` is relative to the 1-cpu pass (or the first
/// pass when none was requested); `efficiency = speedup / cpus`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    pub cpus: u64,
    pub wall_secs: f64,
    pub slots_per_sec: f64,
    pub speedup: f64,
    pub efficiency: f64,
}

/// A full harness run, 1:1 with one `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema_version: u64,
    pub git_sha: String,
    pub seed: u64,
    pub scale: String,
    /// Timed repetitions per scenario (fastest run is the one recorded).
    pub repeats: u64,
    /// Host logical-core count, for provenance; per-scenario `cpus` is the
    /// worker count actually used.
    pub cpus: u64,
    /// Free-form provenance, e.g. before/after numbers for a recorded
    /// optimisation.
    pub notes: String,
    pub scenarios: Vec<ScenarioResult>,
    /// One entry per `--cpus` value, in request order.
    pub scaling: Vec<ScalingPoint>,
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Raw per-scenario measurement from one pass, before report assembly.
#[derive(Debug, Clone, PartialEq)]
struct Measured {
    slots: u64,
    checksum: u64,
    wall_secs: f64,
    peak_rss_kib: Option<u64>,
    rss_exclusive: bool,
}

impl Measured {
    /// Journal payload shape. `slots`/`checksum` are decimal/hex strings:
    /// JSON numbers are doubles and cannot carry a full u64.
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("slots", Json::Str(self.slots.to_string())),
            ("checksum", Json::Str(format!("{:016x}", self.checksum))),
            ("wall_secs", Json::Num(self.wall_secs)),
            (
                "peak_rss_kib",
                match self.peak_rss_kib {
                    Some(kib) => Json::Num(kib as f64),
                    None => Json::Null,
                },
            ),
            ("rss_exclusive", Json::Bool(self.rss_exclusive)),
        ])
    }

    fn from_json(v: &Json) -> Result<Measured, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field `{key}`"));
        Ok(Measured {
            slots: field("slots")?
                .as_str()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or("`slots` not a u64 string")?,
            checksum: field("checksum")?
                .as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or("`checksum` not a hex string")?,
            wall_secs: field("wall_secs")?
                .as_f64()
                .ok_or("`wall_secs` not a number")?,
            peak_rss_kib: match field("peak_rss_kib")? {
                Json::Null => None,
                other => Some(other.as_u64().ok_or("`peak_rss_kib` not a count or null")?),
            },
            rss_exclusive: field("rss_exclusive")?
                .as_bool()
                .ok_or("`rss_exclusive` not a bool")?,
        })
    }
}

/// Times one scenario: `repeats` runs, fastest wall recorded, outcomes
/// asserted identical across repeats. RSS is only probed on a `serial`
/// pass — `VmHWM` is process-wide, so concurrent cells would attribute
/// each other's allocations.
fn measure_scenario(entry: &NamedScenario, seed: u64, scale: PerfScale, serial: bool) -> Measured {
    let spec = &entry.spec;
    let trials = scale.trials(spec.trials);
    let seeds = SeedSequence::new(seed);
    let mut best_wall = f64::INFINITY;
    let mut first: Option<(u64, u64)> = None; // (slots, checksum)
    let mut peak: Option<u64> = None;
    let mut probe_ok = true;
    let mut reset_ok = true;
    for _ in 0..scale.repeats() {
        if serial {
            reset_ok &= rss::reset_peak_rss();
        }
        let start = Instant::now();
        let mut slots = 0u64;
        let mut checksum = FNV_OFFSET;
        for i in 0..trials {
            let mut rng = seeds.rng(i);
            let outcome = spec
                .run_trial(i, &mut rng)
                .expect("pinned perf scenarios complete within their caps");
            slots += outcome.slots();
            checksum = fnv1a(checksum, &[spec.outcome_checksum(&outcome)]);
        }
        best_wall = best_wall.min(start.elapsed().as_secs_f64().max(1e-9));
        if serial {
            match rss::peak_rss_kib() {
                Some(kib) => peak = Some(peak.unwrap_or(0).max(kib)),
                None => probe_ok = false,
            }
        }
        match first {
            None => first = Some((slots, checksum)),
            Some((s, c)) => assert!(
                s == slots && c == checksum,
                "{}: repeat diverged — engine is nondeterministic",
                entry.name
            ),
        }
    }
    let (slots, checksum) = first.expect("repeats >= 1");
    Measured {
        slots,
        checksum,
        wall_secs: best_wall,
        peak_rss_kib: if serial { peak } else { None },
        rss_exclusive: serial && probe_ok && reset_ok && peak.is_some(),
    }
}

/// Runs the pinned grid — the [`registry`] of named scenarios, which owns
/// the ids, parameters, and base trial counts — and returns the report
/// (not yet written to disk). Comparator matching is by scenario name, so
/// renaming a registry entry orphans its history.
///
/// The harness's `seed` parameter overrides each spec's own seed policy:
/// a baseline file records one seed for the whole grid.
///
/// `cpus` lists the worker counts to time the grid under, one full pass
/// each (empty ⇒ `[1]`). Per-scenario stats come from the first pass;
/// every pass must reproduce the first pass's slots and checksums exactly
/// (the executor's schedule-independence guarantee) or the harness panics.
pub fn run_perf(
    seed: u64,
    scale: PerfScale,
    git_sha: &str,
    notes: &str,
    cpus: &[u64],
) -> BenchReport {
    run_perf_ctl(seed, scale, git_sha, notes, cpus, &PerfControl::default())
        .expect("journal-free runs cannot fail on journal errors")
        .report
        .expect("deadline-free runs complete the whole grid")
}

/// Crash-safety knobs for [`run_perf_ctl`]. The default — no journal, no
/// resume, no deadline — reproduces [`run_perf`] byte-for-byte.
#[derive(Default)]
pub struct PerfControl {
    /// Write a `perf`-kind journal here: one record per `(pass, scenario)`
    /// cell, flushed atomically after every pass (and after a deadline
    /// cut), so an interrupted grid can resume.
    pub journal: Option<PathBuf>,
    /// Resume from this journal (continues writing to the same file).
    /// A kind or fingerprint mismatch is a typed refusal
    /// ([`JournalError::FingerprintMismatch`]), never a silent splice.
    pub resume: Option<PathBuf>,
    /// Run-level wall-clock budget / SIGINT cancellation token. Checked
    /// between cells: the in-flight scenario finishes and is journaled.
    pub deadline: Deadline,
    /// `rcbsim perf --only a,b`: restrict the grid to these registry
    /// entries (registry order preserved). Explicit selection overrides
    /// the smoke scale's large-`n` exclusion, so CI can target
    /// `bcast_n65536` without paying for the whole grid. Empty = the
    /// scale's default grid. Validate names with [`resolve_only`] first —
    /// unknown names are silently absent here.
    pub only: Vec<String>,
}

/// Broadcast populations past this are excluded from the *default* smoke
/// grid: the large-`n` cohort entries take tens of seconds (n = 65536) to
/// minutes (n = 10^6) per trial batch, which would dominate every CI
/// smoke pass and the perf test suite. Standard-scale baseline
/// recordings still cover them, and `--only` selects them explicitly at
/// any scale (the CI `cohort-smoke` job does exactly that for
/// `bcast_n65536`).
const SMOKE_MAX_BROADCAST_N: usize = 10_000;

/// The grid a perf run executes: the whole [`registry`] at `Standard`;
/// at `Smoke` the scale-ceiling broadcast entries are dropped. A
/// non-empty `only` list overrides both.
fn grid(scale: PerfScale, only: &[String]) -> Vec<NamedScenario> {
    registry()
        .into_iter()
        .filter(|e| {
            if !only.is_empty() {
                return only.iter().any(|n| n == e.name);
            }
            match (&e.spec.workload, scale) {
                (Workload::Broadcast(w), PerfScale::Smoke) => w.n <= SMOKE_MAX_BROADCAST_N,
                _ => true,
            }
        })
        .collect()
}

/// Validates a `--only` selection against the registry, returning the
/// unknown names (empty = all valid).
pub fn resolve_only(only: &[String]) -> Vec<String> {
    only.iter()
        .filter(|n| registry().iter().all(|e| e.name != n.as_str()))
        .cloned()
        .collect()
}

/// Result of a controlled perf run.
#[derive(Debug)]
pub struct PerfRun {
    /// The assembled report; `None` when the deadline (or Ctrl-C) cut the
    /// grid short — completed cells are in the journal, not a report.
    pub report: Option<BenchReport>,
    /// The deadline or cancellation flag fired.
    pub deadline_hit: bool,
    /// Where the journal lives, when one was requested.
    pub journal_path: Option<PathBuf>,
    /// Cells skipped because the resume journal already held them.
    pub resumed_cells: usize,
}

/// Identity of a perf-grid run for journal fingerprinting: a fold of
/// every *executed* entry's spec fingerprint plus the harness seed and
/// scale — exactly the inputs that determine cell payloads. A `--only`
/// selection therefore gets its own fingerprint, so a partial-grid
/// journal can never be spliced into a full-grid resume. Worker counts
/// are deliberately excluded: seed folds make outcomes
/// thread-count-invariant and cell keys carry the pass's cpus, so any
/// `--cpus` run may share a journal.
pub fn perf_fingerprint(seed: u64, scale: PerfScale) -> u64 {
    fingerprint_entries(&grid(scale, &[]), seed, scale)
}

fn fingerprint_entries(entries: &[NamedScenario], seed: u64, scale: PerfScale) -> u64 {
    let mut h = FNV_OFFSET;
    for entry in entries {
        h = fnv1a(h, &[entry.spec.fingerprint()]);
    }
    h = fnv1a(h, &[seed]);
    fnv1a_bytes(h, scale.label().as_bytes())
}

/// [`run_perf`] under a [`PerfControl`]: journaled checkpoints, resume,
/// and cooperative deadlines. Completed cells are flushed (atomic
/// tmp-file + rename) after every pass; resumed cells are skipped and
/// their journaled measurements — including wall times — reused, so a
/// resumed run's checksums are bit-identical to an uninterrupted one.
pub fn run_perf_ctl(
    seed: u64,
    scale: PerfScale,
    git_sha: &str,
    notes: &str,
    cpus: &[u64],
    ctl: &PerfControl,
) -> Result<PerfRun, JournalError> {
    let cpus_list: Vec<u64> = if cpus.is_empty() {
        vec![1]
    } else {
        cpus.iter().map(|&k| k.max(1)).collect()
    };
    let entries = grid(scale, &ctl.only);
    let fingerprint = fingerprint_entries(&entries, seed, scale);

    let mut journal: Option<Journal> = match (&ctl.resume, &ctl.journal) {
        (Some(path), _) => Some(Journal::open_resume(path, "perf", fingerprint)?),
        (None, Some(path)) => Some(Journal::create(
            path,
            JournalHeader::new(
                "perf",
                fingerprint,
                Json::obj(vec![
                    ("seed", Json::Str(seed.to_string())),
                    ("scale", Json::Str(scale.label().to_string())),
                ]),
            ),
        )),
        (None, None) => None,
    };
    let journal_path = journal.as_ref().map(|j| j.path().to_path_buf());
    let resumed_cells = journal.as_ref().map_or(0, Journal::len);
    let cell_key = |k: u64, name: &str| format!("pass{k}/{name}");

    struct Pass {
        cpus: u64,
        wall_secs: f64,
        measured: Vec<Measured>,
    }
    let mut passes: Vec<Pass> = Vec::new();
    let mut deadline_hit = false;
    for &k in &cpus_list {
        let done: Vec<bool> = entries
            .iter()
            .map(|e| {
                journal
                    .as_ref()
                    .is_some_and(|j| j.contains(&cell_key(k, e.name)))
            })
            .collect();
        let resumed_any = done.iter().any(|&d| d);
        let skip = |i: usize| done[i];
        let start = Instant::now();
        let run = run_cells_ctl(
            &entries,
            Parallelism::Fixed(k as usize),
            &ctl.deadline,
            Some(&skip),
            |_, entry| measure_scenario(entry, seed, scale, k <= 1),
        );
        let timed = start.elapsed().as_secs_f64().max(1e-9);

        // Checkpoint every freshly completed cell. Deadline-cut cells are
        // `None` and simply absent — a resumed run re-measures them.
        if let Some(j) = &mut journal {
            for (entry, m) in entries.iter().zip(&run.results) {
                if let Some(m) = m {
                    j.append(cell_key(k, entry.name), m.to_json());
                }
            }
            j.flush()?;
        }
        if run.deadline_hit {
            deadline_hit = true;
            break;
        }

        let measured = entries
            .iter()
            .zip(run.results)
            .map(|(entry, m)| match m {
                Some(m) => Ok(m),
                None => {
                    let j = journal.as_ref().expect("skips only come from a journal");
                    let payload = j
                        .get(&cell_key(k, entry.name))
                        .expect("skipped cells are journaled");
                    Measured::from_json(payload).map_err(|reason| JournalError::Corrupt {
                        line: 0,
                        reason: format!("cell {}: {reason}", cell_key(k, entry.name)),
                    })
                }
            })
            .collect::<Result<Vec<Measured>, JournalError>>()?;
        // A resumed pass's own wall time covers only the re-run cells;
        // approximate the full pass by the sum of per-cell walls instead
        // (exact for serial passes, an upper bound for concurrent ones).
        let wall_secs = if resumed_any {
            measured.iter().map(|m| m.wall_secs).sum::<f64>().max(1e-9)
        } else {
            timed
        };
        passes.push(Pass {
            cpus: k,
            wall_secs,
            measured,
        });
    }

    if deadline_hit {
        return Ok(PerfRun {
            report: None,
            deadline_hit: true,
            journal_path,
            resumed_cells,
        });
    }

    let primary = &passes[0];
    for pass in &passes[1..] {
        for ((entry, a), b) in entries.iter().zip(&primary.measured).zip(&pass.measured) {
            assert!(
                a.slots == b.slots && a.checksum == b.checksum,
                "{}: outcomes diverged between the {}-cpu and {}-cpu passes — \
                 the executor must be schedule-independent",
                entry.name,
                primary.cpus,
                pass.cpus
            );
        }
    }

    let total_slots: u64 = primary.measured.iter().map(|m| m.slots).sum();
    let ref_wall = passes
        .iter()
        .find(|p| p.cpus == 1)
        .map(|p| p.wall_secs)
        .unwrap_or(passes[0].wall_secs);
    let scaling = passes
        .iter()
        .map(|p| {
            let speedup = ref_wall / p.wall_secs;
            ScalingPoint {
                cpus: p.cpus,
                wall_secs: p.wall_secs,
                slots_per_sec: total_slots as f64 / p.wall_secs,
                speedup,
                efficiency: speedup / p.cpus as f64,
            }
        })
        .collect();

    let scenarios = entries
        .iter()
        .zip(&primary.measured)
        .map(|(entry, m)| {
            let trials = scale.trials(entry.spec.trials);
            ScenarioResult {
                id: entry.name.to_string(),
                engine: entry.spec.engine_label().to_string(),
                trials,
                slots: m.slots,
                wall_secs: m.wall_secs,
                slots_per_sec: m.slots as f64 / m.wall_secs,
                trials_per_sec: trials as f64 / m.wall_secs,
                cpus: primary.cpus,
                peak_rss_kib: m.peak_rss_kib,
                rss_exclusive: m.rss_exclusive,
                checksum: format!("{:016x}", m.checksum),
            }
        })
        .collect();

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha: git_sha.to_string(),
        seed,
        scale: scale.label().to_string(),
        repeats: scale.repeats(),
        cpus: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        notes: notes.to_string(),
        scenarios,
        scaling,
    };
    Ok(PerfRun {
        report: Some(report),
        deadline_hit: false,
        journal_path,
        resumed_cells,
    })
}

/// The current commit's short SHA, or `unknown` outside a git checkout.
pub fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=7", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

// ---------------------------------------------------------------------------
// Schema (de)serialisation
// ---------------------------------------------------------------------------

impl ScenarioResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("engine", Json::Str(self.engine.clone())),
            ("trials", Json::Num(self.trials as f64)),
            ("slots", Json::Num(self.slots as f64)),
            ("wall_secs", Json::Num(self.wall_secs)),
            ("slots_per_sec", Json::Num(self.slots_per_sec)),
            ("trials_per_sec", Json::Num(self.trials_per_sec)),
            ("cpus", Json::Num(self.cpus as f64)),
            (
                "peak_rss_kib",
                match self.peak_rss_kib {
                    Some(kib) => Json::Num(kib as f64),
                    None => Json::Null,
                },
            ),
            ("rss_exclusive", Json::Bool(self.rss_exclusive)),
            ("checksum", Json::Str(self.checksum.clone())),
        ])
    }

    fn from_json(v: &Json, version: u64) -> Result<Self, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field `{key}`"));
        let (cpus, peak_rss_kib, rss_exclusive) = if version == 1 {
            // v1 had no per-scenario cpus (always a serial pass), wrote 0
            // for "no probe", and could not distinguish a cumulative
            // reading from an exclusive one — treat every v1 value as
            // non-exclusive.
            let raw = field("peak_rss_kib")?
                .as_u64()
                .ok_or("`peak_rss_kib` not a count")?;
            (1, (raw > 0).then_some(raw), false)
        } else {
            let peak = match field("peak_rss_kib")? {
                Json::Null => None,
                other => Some(other.as_u64().ok_or("`peak_rss_kib` not a count or null")?),
            };
            (
                field("cpus")?.as_u64().ok_or("`cpus` not a count")?,
                peak,
                field("rss_exclusive")?
                    .as_bool()
                    .ok_or("`rss_exclusive` not a bool")?,
            )
        };
        Ok(Self {
            id: field("id")?
                .as_str()
                .ok_or("`id` not a string")?
                .to_string(),
            engine: field("engine")?
                .as_str()
                .ok_or("`engine` not a string")?
                .to_string(),
            trials: field("trials")?.as_u64().ok_or("`trials` not a count")?,
            slots: field("slots")?.as_u64().ok_or("`slots` not a count")?,
            wall_secs: field("wall_secs")?
                .as_f64()
                .ok_or("`wall_secs` not a number")?,
            slots_per_sec: field("slots_per_sec")?
                .as_f64()
                .ok_or("`slots_per_sec` not a number")?,
            trials_per_sec: field("trials_per_sec")?
                .as_f64()
                .ok_or("`trials_per_sec` not a number")?,
            cpus,
            peak_rss_kib,
            rss_exclusive,
            checksum: field("checksum")?
                .as_str()
                .ok_or("`checksum` not a string")?
                .to_string(),
        })
    }
}

impl ScalingPoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cpus", Json::Num(self.cpus as f64)),
            ("wall_secs", Json::Num(self.wall_secs)),
            ("slots_per_sec", Json::Num(self.slots_per_sec)),
            ("speedup", Json::Num(self.speedup)),
            ("efficiency", Json::Num(self.efficiency)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field `{key}`"));
        Ok(Self {
            cpus: field("cpus")?.as_u64().ok_or("`cpus` not a count")?,
            wall_secs: field("wall_secs")?
                .as_f64()
                .ok_or("`wall_secs` not a number")?,
            slots_per_sec: field("slots_per_sec")?
                .as_f64()
                .ok_or("`slots_per_sec` not a number")?,
            speedup: field("speedup")?.as_f64().ok_or("`speedup` not a number")?,
            efficiency: field("efficiency")?
                .as_f64()
                .ok_or("`efficiency` not a number")?,
        })
    }
}

impl BenchReport {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("git_sha", Json::Str(self.git_sha.clone())),
            // Stored as a string: JSON numbers are doubles, which cannot
            // carry a full-domain u64 seed exactly.
            ("seed", Json::Str(self.seed.to_string())),
            ("scale", Json::Str(self.scale.clone())),
            ("repeats", Json::Num(self.repeats as f64)),
            ("cpus", Json::Num(self.cpus as f64)),
            ("notes", Json::Str(self.notes.clone())),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(ScenarioResult::to_json).collect()),
            ),
            (
                "scaling",
                Json::Arr(self.scaling.iter().map(ScalingPoint::to_json).collect()),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Self, String> {
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing `schema_version`")?;
        if version == 0 || version > SCHEMA_VERSION {
            return Err(format!(
                "schema version {version} unsupported (this build reads 1..={SCHEMA_VERSION})"
            ));
        }
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field `{key}`"));
        let scaling = if version == 1 {
            Vec::new()
        } else {
            field("scaling")?
                .as_arr()
                .ok_or("`scaling` not an array")?
                .iter()
                .map(ScalingPoint::from_json)
                .collect::<Result<_, _>>()?
        };
        Ok(Self {
            schema_version: version,
            git_sha: field("git_sha")?
                .as_str()
                .ok_or("`git_sha` not a string")?
                .to_string(),
            seed: field("seed")?
                .as_str()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or("`seed` not a u64 string")?,
            scale: field("scale")?
                .as_str()
                .ok_or("`scale` not a string")?
                .to_string(),
            repeats: field("repeats")?.as_u64().ok_or("`repeats` not a count")?,
            cpus: field("cpus")?.as_u64().ok_or("`cpus` not a count")?,
            notes: field("notes")?
                .as_str()
                .ok_or("`notes` not a string")?
                .to_string(),
            scenarios: field("scenarios")?
                .as_arr()
                .ok_or("`scenarios` not an array")?
                .iter()
                .map(|s| ScenarioResult::from_json(s, version))
                .collect::<Result<_, _>>()?,
            scaling,
        })
    }

    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf grid @ {} (seed {}, scale {}, host {} cores)",
            self.git_sha, self.seed, self.scale, self.cpus
        );
        let _ = writeln!(
            out,
            "| scenario | engine | trials | cpus | slots/sec | trials/sec | peak RSS (KiB) | checksum |"
        );
        let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---|");
        for s in &self.scenarios {
            let rss = match (s.peak_rss_kib, s.rss_exclusive) {
                (Some(kib), true) => kib.to_string(),
                (Some(kib), false) => format!("{kib} (cumulative)"),
                (None, _) => "—".to_string(),
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.3e} | {:.1} | {} | {} |",
                s.id,
                s.engine,
                s.trials,
                s.cpus,
                s.slots_per_sec,
                s.trials_per_sec,
                rss,
                s.checksum
            );
        }
        if !self.scaling.is_empty() {
            let _ = writeln!(out, "scaling (one full-grid pass per worker count):");
            let _ = writeln!(
                out,
                "| cpus | wall (s) | slots/sec | speedup | efficiency |"
            );
            let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
            for p in &self.scaling {
                let _ = writeln!(
                    out,
                    "| {} | {:.3} | {:.3e} | {:.2}× | {:.0}% |",
                    p.cpus,
                    p.wall_secs,
                    p.slots_per_sec,
                    p.speedup,
                    p.efficiency * 100.0
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

/// Outcome of comparing a fresh run against a recorded baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Rendered comparison table plus notes.
    pub text: String,
    /// Scenario ids whose throughput regressed beyond the threshold.
    pub regressions: Vec<String>,
    /// Scenario ids whose throughput improved beyond the threshold.
    pub improvements: Vec<String>,
    /// Advisory findings (cpus mismatches, checksum drift, RSS growth,
    /// skipped RSS comparisons) — kept out of [`text`](Comparison::text)
    /// so the CLI can route them to stderr, and promotable to a gate via
    /// `rcbsim perf --strict`.
    pub warnings: Vec<String>,
}

impl Comparison {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Whether the comparison passes under `--strict`, where any warning
    /// is treated as a failure alongside real regressions.
    pub fn passed_strict(&self) -> bool {
        self.passed() && self.warnings.is_empty()
    }
}

/// Compares `current` against `baseline`, scenario by scenario (matched by
/// id). Throughput is judged on **per-core** `slots_per_sec` (divided by
/// the scenario's recorded worker count), so a baseline measured at
/// `--cpus 1` and a run at `--cpus 4` stay comparable — a mismatch is
/// additionally called out, since contention still skews per-core numbers.
/// A drop past `1/(1+threshold)` regresses, a gain past `1+threshold` is
/// reported as an improvement. Checksum drift at matching (seed, scale,
/// trials) is reported as a warning — it means the engines' *outputs*
/// changed, which an optimisation PR must explain. Peak RSS is compared
/// (advisory growth warning) only when **both** sides carry exclusive
/// measurements; cumulative or absent readings are skipped and counted.
/// Warnings land in [`Comparison::warnings`], not the table text.
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Comparison {
    use std::fmt::Write as _;
    let mut text = String::new();
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let mut warnings: Vec<String> = Vec::new();
    let mut rss_skipped = 0usize;
    let _ = writeln!(
        text,
        "comparing against baseline @ {} (threshold ±{:.0}%, per-core slots/sec)",
        baseline.git_sha,
        threshold * 100.0
    );
    let _ = writeln!(
        text,
        "| scenario | baseline slots/s·core | current slots/s·core | Δ | verdict |"
    );
    let _ = writeln!(text, "|---|---:|---:|---:|---|");
    for cur in &current.scenarios {
        let Some(base) = baseline.scenarios.iter().find(|b| b.id == cur.id) else {
            let _ = writeln!(
                text,
                "| {} | — | {:.3e} | — | new scenario |",
                cur.id,
                cur.slots_per_sec / cur.cpus.max(1) as f64
            );
            continue;
        };
        let base_core = base.slots_per_sec / base.cpus.max(1) as f64;
        let cur_core = cur.slots_per_sec / cur.cpus.max(1) as f64;
        let ratio = if base_core > 0.0 {
            cur_core / base_core
        } else {
            1.0
        };
        let verdict = if ratio < 1.0 / (1.0 + threshold) {
            regressions.push(cur.id.clone());
            "REGRESSION"
        } else if ratio > 1.0 + threshold {
            improvements.push(cur.id.clone());
            "improved"
        } else {
            "ok"
        };
        let _ = writeln!(
            text,
            "| {} | {:.3e} | {:.3e} | {:+.1}% | {} |",
            cur.id,
            base_core,
            cur_core,
            (ratio - 1.0) * 100.0,
            verdict
        );
        if base.cpus != cur.cpus {
            warnings.push(format!(
                "`{}` measured at {} cpus vs baseline's {} — per-core comparison \
                 only approximates contention effects",
                cur.id, cur.cpus, base.cpus
            ));
        }
        let comparable = baseline.seed == current.seed
            && baseline.scale == current.scale
            && base.trials == cur.trials;
        if comparable && base.checksum != cur.checksum {
            warnings.push(format!(
                "`{}` checksum drift ({} → {}): outputs changed at identical seeds",
                cur.id, base.checksum, cur.checksum
            ));
        }
        match (
            base.rss_exclusive,
            cur.rss_exclusive,
            base.peak_rss_kib,
            cur.peak_rss_kib,
        ) {
            (true, true, Some(b), Some(c)) => {
                if b > 0 && c as f64 > b as f64 * (1.0 + threshold) {
                    warnings.push(format!(
                        "`{}` peak RSS grew {} → {} KiB (advisory unless --strict)",
                        cur.id, b, c
                    ));
                }
            }
            _ => rss_skipped += 1,
        }
    }
    for base in &baseline.scenarios {
        if !current.scenarios.iter().any(|c| c.id == base.id) {
            let _ = writeln!(
                text,
                "| {} | {:.3e} | — | — | missing from current run |",
                base.id,
                base.slots_per_sec / base.cpus.max(1) as f64
            );
        }
    }
    if rss_skipped > 0 {
        warnings.push(format!(
            "RSS comparison skipped for {rss_skipped} scenario(s): cumulative or absent \
             measurements on at least one side"
        ));
    }
    let _ = writeln!(
        text,
        "{} regression(s), {} improvement(s), {} warning(s)",
        regressions.len(),
        improvements.len(),
        warnings.len()
    );
    Comparison {
        text,
        regressions,
        improvements,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(rates: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "deadbee".into(),
            seed: 2014,
            scale: "smoke".into(),
            repeats: 2,
            cpus: 8,
            notes: String::new(),
            scenarios: rates
                .iter()
                .map(|(id, rate)| ScenarioResult {
                    id: id.to_string(),
                    engine: "duel-fast".into(),
                    trials: 10,
                    slots: 1000,
                    wall_secs: 1000.0 / rate,
                    slots_per_sec: *rate,
                    trials_per_sec: 10.0 * rate / 1000.0,
                    cpus: 1,
                    peak_rss_kib: Some(4096),
                    rss_exclusive: true,
                    checksum: "00000000000000aa".into(),
                })
                .collect(),
            scaling: Vec::new(),
        }
    }

    #[test]
    fn schema_round_trips() {
        let mut report = report_with(&[("duel_clean", 1.5e8), ("bcast_n8_jammed", 3.25e7)]);
        report.scenarios[1].peak_rss_kib = None;
        report.scenarios[1].rss_exclusive = false;
        report.scaling = vec![
            ScalingPoint {
                cpus: 1,
                wall_secs: 2.0,
                slots_per_sec: 1.0e8,
                speedup: 1.0,
                efficiency: 1.0,
            },
            ScalingPoint {
                cpus: 4,
                wall_secs: 0.75,
                slots_per_sec: 2.67e8,
                speedup: 2.67,
                efficiency: 0.67,
            },
        ];
        let text = report.to_json().render();
        let back = BenchReport::parse(&text).expect("parse");
        assert_eq!(report, back);
    }

    #[test]
    fn v1_reports_parse_with_compat_defaults() {
        // A pre-scaling baseline: no per-scenario cpus/rss_exclusive, RSS
        // as a bare number with 0 for "unavailable", no scaling array.
        let v1_scenario = |id: &str, rss: f64| {
            Json::obj(vec![
                ("id", Json::Str(id.into())),
                ("engine", Json::Str("duel-fast".into())),
                ("trials", Json::Num(10.0)),
                ("slots", Json::Num(1000.0)),
                ("wall_secs", Json::Num(0.5)),
                ("slots_per_sec", Json::Num(2000.0)),
                ("trials_per_sec", Json::Num(20.0)),
                ("peak_rss_kib", Json::Num(rss)),
                ("checksum", Json::Str("00000000000000aa".into())),
            ])
        };
        let v1 = Json::obj(vec![
            ("schema_version", Json::Num(1.0)),
            ("git_sha", Json::Str("deadbee".into())),
            ("seed", Json::Str("2014".into())),
            ("scale", Json::Str("smoke".into())),
            ("repeats", Json::Num(2.0)),
            ("cpus", Json::Num(8.0)),
            ("notes", Json::Str(String::new())),
            (
                "scenarios",
                Json::Arr(vec![
                    v1_scenario("duel_no_probe", 0.0),
                    v1_scenario("duel_probed", 4096.0),
                ]),
            ),
        ]);
        let report = BenchReport::parse(&v1.render()).expect("v1 parses");
        assert_eq!(report.schema_version, 1);
        assert!(report.scaling.is_empty());
        let a = &report.scenarios[0];
        assert_eq!((a.cpus, a.peak_rss_kib, a.rss_exclusive), (1, None, false));
        let b = &report.scenarios[1];
        assert_eq!(
            (b.cpus, b.peak_rss_kib, b.rss_exclusive),
            (1, Some(4096), false)
        );
    }

    #[test]
    fn unsupported_schema_version_is_rejected() {
        let mut report = report_with(&[("duel_clean", 1.0)]);
        report.schema_version = SCHEMA_VERSION + 1;
        let text = report.to_json().render();
        let err = BenchReport::parse(&text).expect_err("future schema");
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn synthetic_2x_slowdown_trips_the_gate() {
        let baseline = report_with(&[("duel_clean", 2.0e8), ("duel_jammed", 1.0e8)]);
        let slowed = report_with(&[("duel_clean", 1.0e8), ("duel_jammed", 1.0e8)]);
        let cmp = compare(&baseline, &slowed, DEFAULT_THRESHOLD);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions, vec!["duel_clean".to_string()]);
        assert!(cmp.text.contains("REGRESSION"));
    }

    #[test]
    fn noise_within_threshold_passes() {
        let baseline = report_with(&[("duel_clean", 1.0e8)]);
        let wiggled = report_with(&[("duel_clean", 0.85e8)]); // −15% < 35% gate
        let cmp = compare(&baseline, &wiggled, DEFAULT_THRESHOLD);
        assert!(cmp.passed());
        assert!(cmp.improvements.is_empty());
    }

    #[test]
    fn large_speedup_is_reported_as_improvement() {
        let baseline = report_with(&[("duel_clean", 1.0e8)]);
        let faster = report_with(&[("duel_clean", 2.0e8)]);
        let cmp = compare(&baseline, &faster, DEFAULT_THRESHOLD);
        assert!(cmp.passed());
        assert_eq!(cmp.improvements, vec!["duel_clean".to_string()]);
    }

    #[test]
    fn cpus_mismatch_is_judged_per_core_with_warning() {
        let baseline = report_with(&[("duel_clean", 1.0e8)]); // 1 cpu
        let mut current = report_with(&[("duel_clean", 3.2e8)]);
        current.scenarios[0].cpus = 4; // per-core 0.8e8: −20%, inside gate
        let cmp = compare(&baseline, &current, DEFAULT_THRESHOLD);
        assert!(cmp.passed(), "{}", cmp.text);
        // Raw 3.2e8 vs 1.0e8 would read as a 3.2× improvement; per-core
        // normalisation must see through it.
        assert!(cmp.improvements.is_empty(), "{}", cmp.text);
        assert!(
            cmp.warnings
                .iter()
                .any(|w| w.contains("measured at 4 cpus")),
            "{:?}",
            cmp.warnings
        );
        assert!(!cmp.passed_strict(), "warnings must gate under --strict");
    }

    #[test]
    fn checksum_drift_at_matching_config_warns() {
        let baseline = report_with(&[("duel_clean", 1.0e8)]);
        let mut drifted = report_with(&[("duel_clean", 1.0e8)]);
        drifted.scenarios[0].checksum = "00000000000000bb".into();
        let cmp = compare(&baseline, &drifted, DEFAULT_THRESHOLD);
        assert!(cmp.passed(), "drift warns but does not gate");
        assert!(
            cmp.warnings.iter().any(|w| w.contains("checksum drift")),
            "{:?}",
            cmp.warnings
        );
        assert!(
            !cmp.text.contains("checksum drift"),
            "warnings stay out of the stdout table"
        );
    }

    #[test]
    fn exclusive_rss_growth_warns_without_gating() {
        let baseline = report_with(&[("duel_clean", 1.0e8)]);
        let mut grown = report_with(&[("duel_clean", 1.0e8)]);
        grown.scenarios[0].peak_rss_kib = Some(4096 * 3);
        let cmp = compare(&baseline, &grown, DEFAULT_THRESHOLD);
        assert!(cmp.passed());
        assert!(
            cmp.warnings.iter().any(|w| w.contains("peak RSS grew")),
            "{:?}",
            cmp.warnings
        );
        assert!(
            !cmp.warnings.iter().any(|w| w.contains("skipped")),
            "{:?}",
            cmp.warnings
        );
    }

    #[test]
    fn rss_comparison_skips_cumulative_and_absent_measurements() {
        // A cumulative reading 100× the baseline must not warn: it is an
        // upper bound over the whole process, not this scenario's peak.
        let baseline = report_with(&[("duel_clean", 1.0e8), ("duel_jammed", 1.0e8)]);
        let mut current = report_with(&[("duel_clean", 1.0e8), ("duel_jammed", 1.0e8)]);
        current.scenarios[0].peak_rss_kib = Some(4096 * 100);
        current.scenarios[0].rss_exclusive = false;
        current.scenarios[1].peak_rss_kib = None;
        current.scenarios[1].rss_exclusive = false;
        let cmp = compare(&baseline, &current, DEFAULT_THRESHOLD);
        assert!(cmp.passed());
        assert!(
            !cmp.warnings.iter().any(|w| w.contains("peak RSS grew")),
            "{:?}",
            cmp.warnings
        );
        assert!(
            cmp.warnings
                .iter()
                .any(|w| w.contains("RSS comparison skipped for 2 scenario(s)")),
            "{:?}",
            cmp.warnings
        );
    }

    #[test]
    fn missing_and_new_scenarios_are_noted() {
        let baseline = report_with(&[("old_cell", 1.0e8)]);
        let current = report_with(&[("new_cell", 1.0e8)]);
        let cmp = compare(&baseline, &current, DEFAULT_THRESHOLD);
        assert!(cmp.passed());
        // A scenario absent from the baseline (e.g. a freshly added
        // registry entry measured against an older BENCH file) is
        // reported as new — it must not gate even under `--strict`.
        assert!(
            cmp.passed_strict(),
            "a new scenario must not fail --strict: {:?}",
            cmp.warnings
        );
        assert!(cmp.text.contains("new scenario"));
        assert!(cmp.text.contains("missing from current run"));
    }

    #[test]
    fn smoke_grid_excludes_scale_ceiling_entries() {
        let names = |scale, only: &[String]| {
            grid(scale, only)
                .iter()
                .map(|e| e.name.to_string())
                .collect::<Vec<_>>()
        };
        let standard = names(PerfScale::Standard, &[]);
        assert!(standard.iter().any(|n| n == "bcast_n65536"), "{standard:?}");
        assert!(standard.iter().any(|n| n == "bcast_n1e6"), "{standard:?}");
        let smoke = names(PerfScale::Smoke, &[]);
        assert!(!smoke.iter().any(|n| n == "bcast_n65536"), "{smoke:?}");
        assert!(!smoke.iter().any(|n| n == "bcast_n1e6"), "{smoke:?}");
        assert!(smoke.len() >= 6, "smoke grid gutted: {smoke:?}");
        // Explicit selection overrides the smoke exclusion.
        let only = vec!["bcast_n65536".to_string()];
        assert_eq!(names(PerfScale::Smoke, &only), vec!["bcast_n65536"]);
        // And gets its own journal fingerprint.
        assert_ne!(
            fingerprint_entries(&grid(PerfScale::Smoke, &only), 2014, PerfScale::Smoke),
            perf_fingerprint(2014, PerfScale::Smoke)
        );
    }

    #[test]
    fn resolve_only_flags_unknown_names() {
        assert!(resolve_only(&[]).is_empty());
        assert!(resolve_only(&["bcast_n65536".to_string()]).is_empty());
        let unknown = resolve_only(&["bcast_n65536".to_string(), "nope".to_string()]);
        assert_eq!(unknown, vec!["nope".to_string()]);
    }

    #[test]
    fn smoke_grid_runs_and_is_deterministic() {
        // The real grid at smoke scale: a few seconds, and two runs at the
        // same seed must produce identical checksums and slot counts.
        let a = run_perf(2014, PerfScale::Smoke, "test", "", &[1]);
        let b = run_perf(2014, PerfScale::Smoke, "test", "", &[1]);
        assert_eq!(a.scenarios.len(), b.scenarios.len());
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.slots, y.slots, "{}", x.id);
            assert_eq!(x.checksum, y.checksum, "{}", x.id);
            assert!(x.slots > 0, "{} simulated nothing", x.id);
            assert!(x.slots_per_sec > 0.0);
            assert_eq!(x.cpus, 1);
        }
        // A serial pass on Linux attributes RSS exclusively (probe + reset
        // both available); elsewhere the states degrade honestly.
        for s in &a.scenarios {
            if s.rss_exclusive {
                assert!(
                    s.peak_rss_kib.is_some(),
                    "{}: exclusive without value",
                    s.id
                );
            }
        }
        assert_eq!(a.scaling.len(), 1);
        assert!((a.scaling[0].speedup - 1.0).abs() < 1e-12);
        // And a re-run of the same binary passes its own comparator. The
        // timing threshold is loosened here: this test shares the machine
        // with the rest of the (parallel, unoptimised) suite, where the
        // default ±35% gate is routinely exceeded by scheduler noise. The
        // gate semantics themselves are covered by the synthetic tests
        // above; what must hold on a re-run is zero checksum drift.
        let cmp = compare(&a, &b, 2.0);
        assert!(cmp.passed(), "{}", cmp.text);
        assert!(
            !cmp.warnings.iter().any(|w| w.contains("checksum drift")),
            "{:?}",
            cmp.warnings
        );
    }

    #[test]
    fn multi_cpu_passes_agree_and_record_a_scaling_curve() {
        // run_perf itself panics if the 2-worker pass produces different
        // slots or checksums than the serial pass, so completing at all is
        // the schedule-independence assertion.
        let r = run_perf(2014, PerfScale::Smoke, "test", "", &[1, 2]);
        assert_eq!(r.scaling.len(), 2);
        assert_eq!((r.scaling[0].cpus, r.scaling[1].cpus), (1, 2));
        assert!((r.scaling[0].speedup - 1.0).abs() < 1e-12);
        assert!(r.scaling[1].speedup > 0.0);
        assert!(r.scaling[1].efficiency > 0.0);
        // Per-scenario stats come from the first (serial) pass.
        for s in &r.scenarios {
            assert_eq!(s.cpus, 1, "{}", s.id);
        }
    }

    #[test]
    fn git_sha_probe_does_not_crash() {
        let sha = git_short_sha();
        assert!(!sha.is_empty());
    }

    fn tmp_journal(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rcb_perf_test_{}_{name}.jsonl", std::process::id()))
    }

    /// Copies the first `keep` records of a journal — the state a killed
    /// run leaves behind.
    fn truncated_copy(src: &std::path::Path, dst: &std::path::Path, keep: usize) {
        let full = Journal::load(src).expect("source journal");
        let mut part = Journal::create(dst, full.header().clone());
        let cells: Vec<String> = full.cells().take(keep).map(str::to_string).collect();
        for cell in cells {
            let payload = full.get(&cell).expect("listed cell").clone();
            part.append(cell, payload);
        }
        part.flush().expect("flush partial journal");
    }

    #[test]
    fn interrupted_grid_resumes_bit_identically_across_cpus() {
        let full = tmp_journal("resume_full");
        let part = tmp_journal("resume_part");
        let ctl = PerfControl {
            journal: Some(full.clone()),
            ..PerfControl::default()
        };
        let a = run_perf_ctl(2014, PerfScale::Smoke, "test", "", &[1, 2], &ctl)
            .expect("journaled run")
            .report
            .expect("no deadline: the grid completes");

        // Kill-and-resume simulation: only the first 5 cells survived.
        truncated_copy(&full, &part, 5);
        let ctl = PerfControl {
            resume: Some(part.clone()),
            ..PerfControl::default()
        };
        let run = run_perf_ctl(2014, PerfScale::Smoke, "test", "", &[1, 2], &ctl)
            .expect("resume accepted: same fingerprint");
        assert_eq!(run.resumed_cells, 5);
        let b = run.report.expect("resumed run completes");

        assert_eq!(a.scenarios.len(), b.scenarios.len());
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.slots, y.slots, "{}: slots drifted under resume", x.id);
            assert_eq!(
                x.checksum, y.checksum,
                "{}: resume must be bit-identical to an uninterrupted run",
                x.id
            );
        }
        // The journaled wall times of resumed cells are reused verbatim.
        let journaled = Journal::load(&part).expect("resume journal grew");
        assert_eq!(journaled.len(), full_cell_count(&a, &[1, 2]));
        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&part).ok();
    }

    fn full_cell_count(report: &BenchReport, cpus: &[u64]) -> usize {
        report.scenarios.len() * cpus.len()
    }

    #[test]
    fn an_elapsed_deadline_cuts_the_grid_with_the_journal_flushed() {
        let path = tmp_journal("deadline_cut");
        let ctl = PerfControl {
            journal: Some(path.clone()),
            resume: None,
            deadline: Deadline::after(std::time::Duration::ZERO),
            only: Vec::new(),
        };
        let run = run_perf_ctl(2014, PerfScale::Smoke, "test", "", &[1], &ctl)
            .expect("a deadline cut is not an error");
        assert!(run.deadline_hit);
        assert!(run.report.is_none(), "a cut grid yields no report");
        assert_eq!(run.journal_path.as_deref(), Some(path.as_path()));
        let j = Journal::load(&path).expect("the journal was flushed on the cut");
        assert_eq!(j.header().kind, "perf");
        assert_eq!(
            j.header().fingerprint,
            perf_fingerprint(2014, PerfScale::Smoke)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_refuses_a_journal_from_different_work() {
        let path = tmp_journal("wrong_seed");
        let j = Journal::create(
            &path,
            JournalHeader::new("perf", perf_fingerprint(1, PerfScale::Smoke), Json::Null),
        );
        j.flush().expect("flush");
        let ctl = PerfControl {
            resume: Some(path.clone()),
            ..PerfControl::default()
        };
        let err = run_perf_ctl(2014, PerfScale::Smoke, "test", "", &[1], &ctl)
            .expect_err("seed 1 journal must not resume a seed 2014 run");
        assert!(
            matches!(err, JournalError::FingerprintMismatch { .. }),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn measured_payload_round_trips() {
        let m = Measured {
            slots: u64::MAX - 7,
            checksum: 0x0123_4567_89ab_cdef,
            wall_secs: 1.25,
            peak_rss_kib: Some(4096),
            rss_exclusive: true,
        };
        assert_eq!(Measured::from_json(&m.to_json()).unwrap(), m);
        let none = Measured {
            peak_rss_kib: None,
            rss_exclusive: false,
            ..m
        };
        assert_eq!(Measured::from_json(&none.to_json()).unwrap(), none);
    }
}
