//! Performance telemetry: the `rcbsim perf` harness.
//!
//! Measures engine throughput — slots-simulated/sec, trials/sec, and peak
//! RSS — over a **pinned scenario grid** (duel clean/jammed/faulted,
//! broadcast at n ∈ {8, 64, 256}, an exact-engine reference cell) and
//! emits a schema-versioned `BENCH_<git-short-sha>.json` so the repo
//! accumulates a perf trajectory instead of terminal output that vanishes.
//! A comparator (`rcbsim perf --against <file>`) flags changes beyond a
//! noise threshold.
//!
//! Methodology (DESIGN.md §9):
//!
//! * Trials run **sequentially** on one core with the same
//!   `SeedSequence`-derived per-trial RNG streams as `run_trials`, so the
//!   numbers isolate engine hot-path cost from scheduler noise and are
//!   comparable across machines with different core counts.
//! * Every scenario also folds its outcomes into an FNV-1a checksum. The
//!   checksum is a *determinism witness*: two runs at the same seed, scale,
//!   and schema must agree bit-for-bit, and an optimisation that claims to
//!   be output-preserving must leave it unchanged.
//! * Peak RSS is `VmHWM`, reset per scenario where `/proc` allows it (see
//!   [`rss`]).

pub mod json;
pub mod rss;

use std::time::Instant;

use rcb_mathkit::rng::SeedSequence;
use rcb_sim::scenario::{fnv1a, registry, FNV_OFFSET};

use json::Json;

/// Version of the `BENCH_*.json` schema this build reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Default regression threshold for the comparator: a scenario regresses
/// when throughput drops below `baseline / (1 + threshold)`. 0.35 absorbs
/// run-to-run noise on shared CI runners while a genuine 2× slowdown
/// (ratio 0.5 < 1/1.35 ≈ 0.74) always trips.
pub const DEFAULT_THRESHOLD: f64 = 0.35;

/// Grid sizing: `Standard` for recorded baselines, `Smoke` for CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfScale {
    Standard,
    Smoke,
}

impl PerfScale {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "standard" => Ok(Self::Standard),
            "smoke" => Ok(Self::Smoke),
            other => Err(format!("--scale must be standard|smoke, got `{other}`")),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Self::Standard => "standard",
            Self::Smoke => "smoke",
        }
    }

    fn trials(self, base: u64) -> u64 {
        match self {
            Self::Standard => base,
            Self::Smoke => (base / 10).max(2),
        }
    }

    /// Timed repetitions per scenario; the fastest wall time is reported.
    /// Best-of-N is the standard defence against scheduler noise: the
    /// minimum converges on the true cost while means drag in every
    /// preemption.
    fn repeats(self) -> u64 {
        match self {
            Self::Standard => 3,
            Self::Smoke => 2,
        }
    }
}

/// One measured grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    pub id: String,
    pub engine: String,
    pub trials: u64,
    /// Total protocol slots simulated across all trials.
    pub slots: u64,
    pub wall_secs: f64,
    pub slots_per_sec: f64,
    pub trials_per_sec: f64,
    /// 0 when the platform exposes no peak-RSS probe.
    pub peak_rss_kib: u64,
    /// FNV-1a fold of every trial outcome, hex — the determinism witness.
    pub checksum: String,
}

/// A full harness run, 1:1 with one `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema_version: u64,
    pub git_sha: String,
    pub seed: u64,
    pub scale: String,
    /// Timed repetitions per scenario (fastest run is the one recorded).
    pub repeats: u64,
    pub cpus: u64,
    /// Free-form provenance, e.g. before/after numbers for a recorded
    /// optimisation.
    pub notes: String,
    pub scenarios: Vec<ScenarioResult>,
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Runs the pinned grid — the [`registry`] of named scenarios, which owns
/// the ids, parameters, and base trial counts — and returns the report
/// (not yet written to disk). Comparator matching is by scenario name, so
/// renaming a registry entry orphans its history.
///
/// The harness's `seed` parameter overrides each spec's own seed policy:
/// a baseline file records one seed for the whole grid.
pub fn run_perf(seed: u64, scale: PerfScale, git_sha: &str, notes: &str) -> BenchReport {
    let mut scenarios = Vec::new();
    for entry in registry() {
        let spec = entry.spec;
        let trials = scale.trials(spec.trials);
        let seeds = SeedSequence::new(seed);
        let mut best_wall = f64::INFINITY;
        let mut first: Option<(u64, u64)> = None; // (slots, checksum)
        let mut peak_rss = 0u64;
        for _ in 0..scale.repeats() {
            rss::reset_peak_rss();
            let start = Instant::now();
            let mut slots = 0u64;
            let mut checksum = FNV_OFFSET;
            for i in 0..trials {
                let mut rng = seeds.rng(i);
                let outcome = spec
                    .run_trial(i, &mut rng)
                    .expect("pinned perf scenarios complete within their caps");
                slots += outcome.slots();
                checksum = fnv1a(checksum, &[spec.outcome_checksum(&outcome)]);
            }
            best_wall = best_wall.min(start.elapsed().as_secs_f64().max(1e-9));
            peak_rss = peak_rss.max(rss::peak_rss_kib().unwrap_or(0));
            match first {
                None => first = Some((slots, checksum)),
                Some((s, c)) => assert!(
                    s == slots && c == checksum,
                    "{}: repeat diverged — engine is nondeterministic",
                    entry.name
                ),
            }
        }
        let (slots, checksum) = first.expect("repeats >= 1");
        scenarios.push(ScenarioResult {
            id: entry.name.to_string(),
            engine: spec.engine_label().to_string(),
            trials,
            slots,
            wall_secs: best_wall,
            slots_per_sec: slots as f64 / best_wall,
            trials_per_sec: trials as f64 / best_wall,
            peak_rss_kib: peak_rss,
            checksum: format!("{checksum:016x}"),
        });
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha: git_sha.to_string(),
        seed,
        scale: scale.label().to_string(),
        repeats: scale.repeats(),
        cpus: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        notes: notes.to_string(),
        scenarios,
    }
}

/// The current commit's short SHA, or `unknown` outside a git checkout.
pub fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=7", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

// ---------------------------------------------------------------------------
// Schema (de)serialisation
// ---------------------------------------------------------------------------

impl ScenarioResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("engine", Json::Str(self.engine.clone())),
            ("trials", Json::Num(self.trials as f64)),
            ("slots", Json::Num(self.slots as f64)),
            ("wall_secs", Json::Num(self.wall_secs)),
            ("slots_per_sec", Json::Num(self.slots_per_sec)),
            ("trials_per_sec", Json::Num(self.trials_per_sec)),
            ("peak_rss_kib", Json::Num(self.peak_rss_kib as f64)),
            ("checksum", Json::Str(self.checksum.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field `{key}`"));
        Ok(Self {
            id: field("id")?
                .as_str()
                .ok_or("`id` not a string")?
                .to_string(),
            engine: field("engine")?
                .as_str()
                .ok_or("`engine` not a string")?
                .to_string(),
            trials: field("trials")?.as_u64().ok_or("`trials` not a count")?,
            slots: field("slots")?.as_u64().ok_or("`slots` not a count")?,
            wall_secs: field("wall_secs")?
                .as_f64()
                .ok_or("`wall_secs` not a number")?,
            slots_per_sec: field("slots_per_sec")?
                .as_f64()
                .ok_or("`slots_per_sec` not a number")?,
            trials_per_sec: field("trials_per_sec")?
                .as_f64()
                .ok_or("`trials_per_sec` not a number")?,
            peak_rss_kib: field("peak_rss_kib")?
                .as_u64()
                .ok_or("`peak_rss_kib` not a count")?,
            checksum: field("checksum")?
                .as_str()
                .ok_or("`checksum` not a string")?
                .to_string(),
        })
    }
}

impl BenchReport {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("git_sha", Json::Str(self.git_sha.clone())),
            // Stored as a string: JSON numbers are doubles, which cannot
            // carry a full-domain u64 seed exactly.
            ("seed", Json::Str(self.seed.to_string())),
            ("scale", Json::Str(self.scale.clone())),
            ("repeats", Json::Num(self.repeats as f64)),
            ("cpus", Json::Num(self.cpus as f64)),
            ("notes", Json::Str(self.notes.clone())),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(ScenarioResult::to_json).collect()),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Self, String> {
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing `schema_version`")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema version {version} unsupported (this build reads {SCHEMA_VERSION})"
            ));
        }
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field `{key}`"));
        Ok(Self {
            schema_version: version,
            git_sha: field("git_sha")?
                .as_str()
                .ok_or("`git_sha` not a string")?
                .to_string(),
            seed: field("seed")?
                .as_str()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or("`seed` not a u64 string")?,
            scale: field("scale")?
                .as_str()
                .ok_or("`scale` not a string")?
                .to_string(),
            repeats: field("repeats")?.as_u64().ok_or("`repeats` not a count")?,
            cpus: field("cpus")?.as_u64().ok_or("`cpus` not a count")?,
            notes: field("notes")?
                .as_str()
                .ok_or("`notes` not a string")?
                .to_string(),
            scenarios: field("scenarios")?
                .as_arr()
                .ok_or("`scenarios` not an array")?
                .iter()
                .map(ScenarioResult::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf grid @ {} (seed {}, scale {}, {} cpus)",
            self.git_sha, self.seed, self.scale, self.cpus
        );
        let _ = writeln!(
            out,
            "| scenario | engine | trials | slots/sec | trials/sec | peak RSS (KiB) | checksum |"
        );
        let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---|");
        for s in &self.scenarios {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.3e} | {:.1} | {} | {} |",
                s.id,
                s.engine,
                s.trials,
                s.slots_per_sec,
                s.trials_per_sec,
                s.peak_rss_kib,
                s.checksum
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

/// Outcome of comparing a fresh run against a recorded baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Rendered comparison table plus notes.
    pub text: String,
    /// Scenario ids whose throughput regressed beyond the threshold.
    pub regressions: Vec<String>,
    /// Scenario ids whose throughput improved beyond the threshold.
    pub improvements: Vec<String>,
}

impl Comparison {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` against `baseline`, scenario by scenario (matched by
/// id). Throughput is judged on `slots_per_sec`; a drop past
/// `1/(1+threshold)` regresses, a gain past `1+threshold` is reported as
/// an improvement. Checksum drift at matching (seed, scale, trials) is
/// reported as a warning — it means the engines' *outputs* changed, which
/// an optimisation PR must explain.
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Comparison {
    use std::fmt::Write as _;
    let mut text = String::new();
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let _ = writeln!(
        text,
        "comparing against baseline @ {} (threshold ±{:.0}%)",
        baseline.git_sha,
        threshold * 100.0
    );
    let _ = writeln!(
        text,
        "| scenario | baseline slots/s | current slots/s | Δ | verdict |"
    );
    let _ = writeln!(text, "|---|---:|---:|---:|---|");
    for cur in &current.scenarios {
        let Some(base) = baseline.scenarios.iter().find(|b| b.id == cur.id) else {
            let _ = writeln!(
                text,
                "| {} | — | {:.3e} | — | new scenario |",
                cur.id, cur.slots_per_sec
            );
            continue;
        };
        let ratio = if base.slots_per_sec > 0.0 {
            cur.slots_per_sec / base.slots_per_sec
        } else {
            1.0
        };
        let verdict = if ratio < 1.0 / (1.0 + threshold) {
            regressions.push(cur.id.clone());
            "REGRESSION"
        } else if ratio > 1.0 + threshold {
            improvements.push(cur.id.clone());
            "improved"
        } else {
            "ok"
        };
        let _ = writeln!(
            text,
            "| {} | {:.3e} | {:.3e} | {:+.1}% | {} |",
            cur.id,
            base.slots_per_sec,
            cur.slots_per_sec,
            (ratio - 1.0) * 100.0,
            verdict
        );
        let comparable = baseline.seed == current.seed
            && baseline.scale == current.scale
            && base.trials == cur.trials;
        if comparable && base.checksum != cur.checksum {
            let _ = writeln!(
                text,
                "  warning: `{}` checksum drift ({} → {}): outputs changed at identical seeds",
                cur.id, base.checksum, cur.checksum
            );
        }
    }
    for base in &baseline.scenarios {
        if !current.scenarios.iter().any(|c| c.id == base.id) {
            let _ = writeln!(
                text,
                "| {} | {:.3e} | — | — | missing from current run |",
                base.id, base.slots_per_sec
            );
        }
    }
    let _ = writeln!(
        text,
        "{} regression(s), {} improvement(s)",
        regressions.len(),
        improvements.len()
    );
    Comparison {
        text,
        regressions,
        improvements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(rates: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "deadbee".into(),
            seed: 2014,
            scale: "smoke".into(),
            repeats: 2,
            cpus: 8,
            notes: String::new(),
            scenarios: rates
                .iter()
                .map(|(id, rate)| ScenarioResult {
                    id: id.to_string(),
                    engine: "duel-fast".into(),
                    trials: 10,
                    slots: 1000,
                    wall_secs: 1000.0 / rate,
                    slots_per_sec: *rate,
                    trials_per_sec: 10.0 * rate / 1000.0,
                    peak_rss_kib: 4096,
                    checksum: "00000000000000aa".into(),
                })
                .collect(),
        }
    }

    #[test]
    fn schema_round_trips() {
        let report = report_with(&[("duel_clean", 1.5e8), ("bcast_n8_jammed", 3.25e7)]);
        let text = report.to_json().render();
        let back = BenchReport::parse(&text).expect("parse");
        assert_eq!(report, back);
    }

    #[test]
    fn unsupported_schema_version_is_rejected() {
        let mut report = report_with(&[("duel_clean", 1.0)]);
        report.schema_version = SCHEMA_VERSION + 1;
        let text = report.to_json().render();
        let err = BenchReport::parse(&text).expect_err("future schema");
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn synthetic_2x_slowdown_trips_the_gate() {
        let baseline = report_with(&[("duel_clean", 2.0e8), ("duel_jammed", 1.0e8)]);
        let slowed = report_with(&[("duel_clean", 1.0e8), ("duel_jammed", 1.0e8)]);
        let cmp = compare(&baseline, &slowed, DEFAULT_THRESHOLD);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions, vec!["duel_clean".to_string()]);
        assert!(cmp.text.contains("REGRESSION"));
    }

    #[test]
    fn noise_within_threshold_passes() {
        let baseline = report_with(&[("duel_clean", 1.0e8)]);
        let wiggled = report_with(&[("duel_clean", 0.85e8)]); // −15% < 35% gate
        let cmp = compare(&baseline, &wiggled, DEFAULT_THRESHOLD);
        assert!(cmp.passed());
        assert!(cmp.improvements.is_empty());
    }

    #[test]
    fn large_speedup_is_reported_as_improvement() {
        let baseline = report_with(&[("duel_clean", 1.0e8)]);
        let faster = report_with(&[("duel_clean", 2.0e8)]);
        let cmp = compare(&baseline, &faster, DEFAULT_THRESHOLD);
        assert!(cmp.passed());
        assert_eq!(cmp.improvements, vec!["duel_clean".to_string()]);
    }

    #[test]
    fn checksum_drift_at_matching_config_warns() {
        let baseline = report_with(&[("duel_clean", 1.0e8)]);
        let mut drifted = report_with(&[("duel_clean", 1.0e8)]);
        drifted.scenarios[0].checksum = "00000000000000bb".into();
        let cmp = compare(&baseline, &drifted, DEFAULT_THRESHOLD);
        assert!(cmp.passed(), "drift warns but does not gate");
        assert!(cmp.text.contains("checksum drift"));
    }

    #[test]
    fn missing_and_new_scenarios_are_noted() {
        let baseline = report_with(&[("old_cell", 1.0e8)]);
        let current = report_with(&[("new_cell", 1.0e8)]);
        let cmp = compare(&baseline, &current, DEFAULT_THRESHOLD);
        assert!(cmp.passed());
        assert!(cmp.text.contains("new scenario"));
        assert!(cmp.text.contains("missing from current run"));
    }

    #[test]
    fn smoke_grid_runs_and_is_deterministic() {
        // The real grid at smoke scale: a few seconds, and two runs at the
        // same seed must produce identical checksums and slot counts.
        let a = run_perf(2014, PerfScale::Smoke, "test", "");
        let b = run_perf(2014, PerfScale::Smoke, "test", "");
        assert_eq!(a.scenarios.len(), b.scenarios.len());
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.slots, y.slots, "{}", x.id);
            assert_eq!(x.checksum, y.checksum, "{}", x.id);
            assert!(x.slots > 0, "{} simulated nothing", x.id);
            assert!(x.slots_per_sec > 0.0);
        }
        // And a re-run of the same binary passes its own comparator. The
        // timing threshold is loosened here: this test shares the machine
        // with the rest of the (parallel, unoptimised) suite, where the
        // default ±35% gate is routinely exceeded by scheduler noise. The
        // gate semantics themselves are covered by the synthetic tests
        // above; what must hold on a re-run is zero checksum drift.
        let cmp = compare(&a, &b, 2.0);
        assert!(cmp.passed(), "{}", cmp.text);
        assert!(!cmp.text.contains("checksum drift"));
    }

    #[test]
    fn git_sha_probe_does_not_crash() {
        let sha = git_short_sha();
        assert!(!sha.is_empty());
    }
}
