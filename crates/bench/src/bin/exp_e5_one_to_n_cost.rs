//! Standalone runner for experiment e5_one_to_n_cost (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!("{}", rcb_bench::experiments::e5_one_to_n_cost::run(&scale));
}
