//! Standalone runner for experiment e11_ablation (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!("{}", rcb_bench::experiments::e11_ablation::run(&scale));
}
