//! Standalone runner for experiment e3_latency (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!("{}", rcb_bench::experiments::e3_latency::run(&scale));
}
