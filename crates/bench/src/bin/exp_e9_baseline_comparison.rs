//! Standalone runner for experiment e9_baseline_comparison (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e9_baseline_comparison::run(&scale)
    );
}
