fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e16_stream_stability::run(&scale)
    );
}
