//! Standalone runner for experiment e6_one_to_n_latency (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e6_one_to_n_latency::run(&scale)
    );
}
