//! Standalone runner for experiment e4_lower_bound_product (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e4_lower_bound_product::run(&scale)
    );
}
