//! Standalone runner for experiment e12_multi_source (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!("{}", rcb_bench::experiments::e12_multi_source::run(&scale));
}
