//! Calibration harness for `OneToNParams::practical()`.
//!
//! Runs unjammed and jammed broadcasts over a range of `n`, printing the
//! quantities that decide whether the practical constants are sound and
//! tractable: termination epoch vs the ideal epoch, the spread of the
//! per-node population estimates `n_u` (which controls the termination
//! threshold and hence cost), final `S_u` values, per-node cost, and wall
//! time. Used to pick the shipped constants; re-run after any change to
//! the practical preset.

use rcb_core::one_to_n::{OneToNNode, OneToNParams};
use rcb_mathkit::rng::RcbRng;
use rcb_sim::fast::BroadcastObserver;
use rcb_sim::scenario::{AdversarySpec, ScenarioSpec, Workload};
use std::time::Instant;

#[derive(Default)]
struct Probe {
    n_est_min: f64,
    n_est_max: f64,
    s_max: f64,
    reps_seen: u64,
}

impl Probe {
    fn new() -> Self {
        Self {
            n_est_min: f64::INFINITY,
            n_est_max: 0.0,
            s_max: 0.0,
            reps_seen: 0,
        }
    }
}

impl BroadcastObserver for Probe {
    fn on_repetition(&mut self, _epoch: u32, _period: u64, _jam: u64, nodes: &[OneToNNode]) {
        self.reps_seen += 1;
        for v in nodes {
            if let Some(e) = v.n_estimate() {
                self.n_est_min = self.n_est_min.min(e);
                self.n_est_max = self.n_est_max.max(e);
            }
            if !v.is_terminated() {
                self.s_max = self.s_max.max(v.s());
            }
        }
    }
}

fn one(params: &OneToNParams, n: usize, budget: u64, seed: u64) {
    let mut probe = Probe::new();
    let mut rng = RcbRng::new(seed);
    let adversary = if budget == 0 {
        AdversarySpec::NoJam
    } else {
        AdversarySpec::Budgeted {
            budget,
            fraction: 1.0,
        }
    };
    let mut spec = ScenarioSpec::broadcast_with(*params, n)
        .with_adversary(adversary)
        .with_seed(seed);
    if let Workload::Broadcast(w) = &mut spec.workload {
        w.max_epoch = 26;
    }
    let t0 = Instant::now();
    let (out, err) = spec.run_observed(&mut rng, &mut probe);
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "n={n:>4} T={:>8} | epoch {:>2} (ideal {:>2}) | informed {:>4}/{n:<4} safety {:>3} | \
         mean cost {:>9.1} max {:>9} | n_u [{:>7.1}, {:>9.1}] | S_max {:>8.1} | {:>6.2}s{}",
        out.adversary_cost,
        out.last_epoch,
        params.ideal_epoch(n),
        out.informed,
        out.safety_terminations,
        out.mean_cost(),
        out.max_cost(),
        probe.n_est_min,
        probe.n_est_max,
        probe.s_max,
        dt,
        match err {
            Some(e) => format!("  TRUNCATED ({e})"),
            None => String::new(),
        },
    );
}

fn main() {
    let params = OneToNParams::practical();
    println!("practical params: {params:?}\n");
    println!("--- unjammed ---");
    for n in [1usize, 4, 16, 64, 128] {
        one(&params, n, 0, 42 + n as u64);
    }
    println!("--- jammed (budget 2^15) ---");
    for n in [16usize, 64] {
        one(&params, n, 1 << 15, 99 + n as u64);
    }
    println!("--- jammed (budget 2^17) ---");
    for n in [16usize, 64] {
        one(&params, n, 1 << 17, 7 + n as u64);
    }
}
