//! Standalone runner for experiment e14_partition_jamming (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e14_partition_jamming::run(&scale)
    );
}
