//! Standalone runner for experiment e2_epsilon (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!("{}", rcb_bench::experiments::e2_epsilon::run(&scale));
}
