//! `rcbsim` — interactive command-line driver. See `rcb_bench::cli`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match rcb_bench::cli::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match rcb_bench::cli::run_cli(&args) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
