//! Standalone runner for experiment e1_one_to_one_cost (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e1_one_to_one_cost::run(&scale)
    );
}
