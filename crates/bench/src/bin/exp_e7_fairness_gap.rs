//! Standalone runner for experiment e7_fairness_gap (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!("{}", rcb_bench::experiments::e7_fairness_gap::run(&scale));
}
