//! Runs the full experiment suite (DESIGN.md §4) and prints every table.
//! `RCB_SCALE=full` for publication-grade trial counts.
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!("# rcb experiment suite (scale: {scale:?})");
    println!("{}", rcb_bench::experiments::run_all(&scale));
}
