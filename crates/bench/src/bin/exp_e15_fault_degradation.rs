fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e15_fault_degradation::run(&scale)
    );
}
