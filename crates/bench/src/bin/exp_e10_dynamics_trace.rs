//! Standalone runner for experiment e10_dynamics_trace (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e10_dynamics_trace::run(&scale)
    );
}
