//! Standalone runner for experiment e8_golden_ratio (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!("{}", rcb_bench::experiments::e8_golden_ratio::run(&scale));
}
