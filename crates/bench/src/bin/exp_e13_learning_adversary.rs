//! Standalone runner for experiment e13_learning_adversary (see DESIGN.md §4).
fn main() {
    let scale = rcb_bench::Scale::from_env();
    println!(
        "{}",
        rcb_bench::experiments::e13_learning_adversary::run(&scale)
    );
}
