//! # rcb-bench
//!
//! The experiment harness: one module per paper claim (see DESIGN.md §4 for
//! the experiment index), each runnable as a standalone binary
//! (`cargo run --release -p rcb-bench --bin exp_e1_one_to_one_cost`), all
//! together through `exp_all`, and via `cargo bench` (the `experiments`
//! bench target runs the quick scale; `micro` holds the Criterion
//! performance benchmarks).
//!
//! Outputs are markdown tables plus scaling verdicts, designed to be pasted
//! into EXPERIMENTS.md verbatim.

pub mod cli;
pub mod experiments;
pub mod perf;
pub mod scale;

pub use scale::Scale;
