//! `rcbsim` — a command-line driver for one-off simulations.
//!
//! The experiment binaries regenerate the paper's tables; `rcbsim` is the
//! interactive companion: run a single configuration and read the numbers.
//!
//! ```text
//! rcbsim duel      --profile fig1 --epsilon 0.01 --budget 65536 --trials 100
//! rcbsim broadcast --n 64 --budget 1048576 --adversary suffix --q 1.0 --trials 10
//! rcbsim product   --budget 16384 --delta 0.5 --trials 2000
//! rcbsim golden    --budget 16384 --trials 500
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` / `--key=value`): the
//! dependency budget of this workspace is deliberately small and the
//! grammar is trivial.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::time::Duration;

use crate::experiments::common::{parse_trial_payload, split_truncated, trial_payload};
use crate::perf::{self, PerfScale};
use rcb_analysis::table::{num, TableBuilder};
use rcb_mathkit::rng::SeedSequence;
use rcb_mathkit::stats::RunningStats;
use rcb_mathkit::PHI_MINUS_ONE;
use rcb_sim::conformance::{default_grid, run_grid, ConformanceConfig};
use rcb_sim::deadline::{install_sigint_handler, interrupted, Deadline};
use rcb_sim::error::SimError;
use rcb_sim::executor::{run_specs_ctl, SpecsControl};
use rcb_sim::faults::FaultPlan;
use rcb_sim::journal::{Journal, JournalHeader};
use rcb_sim::json::Json;
use rcb_sim::lowerbound::{golden_ratio_game, product_game};
use rcb_sim::outcome::{BroadcastOutcome, DuelOutcome, StreamOutcome};
use rcb_sim::runner::Parallelism;
use rcb_sim::scenario::{
    find_scenario, fnv1a, registry, AdversarySpec, DuelProtocol, Outcome, ScenarioSpec, Workload,
    FNV_OFFSET,
};

/// Parsed command line: one subcommand, optional further positionals
/// (only the `scenario` command takes any), plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    positionals: Vec<String>,
    options: HashMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name). Positionals after the
    /// command are collected; each command enforces its own arity at
    /// dispatch (only `scenario` accepts any).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(stripped) = token.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err("bare `--` is not a valid option".into());
                }
                let (key, value) = match stripped.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => {
                        let value = iter
                            .next()
                            .ok_or_else(|| format!("option --{stripped} needs a value"))?;
                        (stripped.to_string(), value)
                    }
                };
                if args.options.insert(key.clone(), value).is_some() {
                    return Err(format!("option --{key} given twice"));
                }
            } else if args.command.is_none() {
                args.command = Some(token);
            } else {
                args.positionals.push(token);
            }
        }
        Ok(args)
    }

    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// The `i`-th positional after the command, if present.
    fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Typed option lookup with a default.
    pub fn get<T: FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{raw}`")),
        }
    }

    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Typed optional lookup: `Ok(None)` when the flag is absent.
    pub fn get_opt<T: FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.options.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse `{raw}`")),
        }
    }
}

/// Builds a validated [`FaultPlan`] from the shared `--fault-*` flags
/// (`duel` and `broadcast` accept all four):
///
/// * `--fault-loss F` — drop each decodable reception with probability `F`
/// * `--fault-crash NODE:START:PERIODS[:lose]` — radio off for the window;
///   `:lose` wipes volatile state on reboot
/// * `--fault-skew NODE:SLOTS` — the first `SLOTS` slots of every period
///   decode as noise for `NODE`
/// * `--fault-battery N` — hard per-node energy cap of `N` slot-units
fn fault_plan_from_args(args: &Args) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::none();
    if let Some(p) = args.get_opt::<f64>("fault-loss")? {
        plan = plan.with_loss(p);
    }
    if let Some(spec) = args.options.get("fault-crash") {
        let parts: Vec<&str> = spec.split(':').collect();
        let usage = || format!("--fault-crash: expected NODE:START:PERIODS[:lose], got `{spec}`");
        if !(3..=4).contains(&parts.len()) {
            return Err(usage());
        }
        let node: usize = parts[0].parse().map_err(|_| usage())?;
        let start: u64 = parts[1].parse().map_err(|_| usage())?;
        let periods: u64 = parts[2].parse().map_err(|_| usage())?;
        let lose_state = match parts.get(3) {
            None => false,
            Some(&"lose") => true,
            Some(_) => return Err(usage()),
        };
        plan = plan.with_crash(node, start, periods, lose_state);
    }
    if let Some(spec) = args.options.get("fault-skew") {
        let usage = || format!("--fault-skew: expected NODE:SLOTS, got `{spec}`");
        let (node, slots) = spec.split_once(':').ok_or_else(usage)?;
        let node: usize = node.parse().map_err(|_| usage())?;
        let slots: u64 = slots.parse().map_err(|_| usage())?;
        plan = plan.with_skew(node, slots);
    }
    if let Some(cap) = args.get_opt::<u64>("fault-battery")? {
        plan = plan.with_battery(cap);
    }
    plan.validate().map_err(|e| e.to_string())?;
    Ok(plan)
}

const HELP: &str = "\
rcbsim — resource-competitive broadcast simulator

USAGE: rcbsim <COMMAND> [--key value ...]

COMMANDS:
  duel       1-to-1 broadcast (Figure 1 / KSY) vs a blanket blocker
             --profile fig1|ksy   --epsilon F   --budget N
             --q F (block fraction)   --trials N   --seed N
  broadcast  1-to-n broadcast (Figure 2)
             --n N   --budget N   --adversary suffix|random|keepalive|none
             --q F   --trials N   --seed N
  product    Theorem 2 product game
             --budget N   --delta F   --trials N   --seed N
  golden     Theorem 5 golden-ratio sweep
             --budget N   --trials N   --seed N
  conformance  cross-engine agreement grid (exact vs fast engines)
             --trials N (default 200)   --seed N (default 2014)
             --alpha F (default 0.001)
  perf       pinned perf grid → BENCH_<git-sha>.json (slots/sec,
             trials/sec, peak RSS, determinism checksums per engine)
             --scale standard|smoke (default standard)
             --cpus N[,N...] (default 1; one timed full-grid pass per
             worker count, recorded as a scaling curve; per-scenario
             stats and RSS come from the first pass)
             --out PATH (default BENCH_<sha>.json; `-` skips the write)
             --against FILE (compare to a recorded baseline; warnings go
             to stderr)   --strict true (warnings fail the gate too)
             --threshold F (default 0.35)   --report-only true
             --notes TEXT   --seed N (default 2014)
             --only NAME[,NAME...] (restrict the grid to these registry
             entries; overrides the smoke scale's exclusion of the
             large-n cohort cells)
  scenario   named declarative scenarios (the perf grid's registry)
             scenario list          table of every registry entry
             scenario names         bare names, one per line
             scenario run <NAME>    run one entry
               --trials N   --seed N  (override the registry defaults)
  help       this text

CRASH SAFETY (perf and scenario run):
  --journal PATH     checkpoint completed cells to an FNV-1a-checksummed
                     JSONL journal (flushed atomically as the run goes)
  --resume PATH      skip the journal's completed cells and continue; a
                     journal from different work is refused, and resumed
                     results are bit-identical to an uninterrupted run
  --deadline SECS    cooperative wall-clock budget: in-flight work
                     finishes, the journal is flushed, and the exact
                     --resume invocation is printed
  While any of these is active, the first Ctrl-C (SIGINT) is graceful —
  finish in-flight cells, flush, print the resume command; a second
  Ctrl-C force-kills.

FAULT INJECTION (duel and broadcast):
  --fault-loss F                       drop decodable receptions w.p. F
  --fault-crash NODE:START:PERIODS[:lose]
                                       radio off for the window; `:lose`
                                       wipes volatile state on reboot
  --fault-skew NODE:SLOTS              first SLOTS slots of each period
                                       decode as noise for NODE
  --fault-battery N                    hard per-node energy cap

  e.g. rcbsim duel --budget 4096 --fault-loss 0.2
       rcbsim broadcast --n 16 --adversary none --fault-crash 3:2:8:lose
";

/// Executes a parsed command line, returning the report text.
pub fn run_cli(args: &Args) -> Result<String, String> {
    if args.command() != Some("scenario") {
        if let Some(extra) = args.positional(0) {
            return Err(format!("unexpected positional argument `{extra}`"));
        }
    }
    match args.command() {
        None | Some("help") => Ok(HELP.to_string()),
        Some("duel") => cmd_duel(args),
        Some("broadcast") => cmd_broadcast(args),
        Some("product") => cmd_product(args),
        Some("golden") => cmd_golden(args),
        Some("conformance") => cmd_conformance(args),
        Some("perf") => cmd_perf(args),
        Some("scenario") => cmd_scenario(args),
        Some(other) => Err(format!("unknown command `{other}`; try `rcbsim help`")),
    }
}

fn duel_report(spec: &ScenarioSpec) -> String {
    render_duel(spec.trials, spec.run_batch())
}

fn render_duel(trials: u64, results: Vec<Result<Outcome, SimError>>) -> String {
    let results: Vec<Result<DuelOutcome, SimError>> = results
        .into_iter()
        .map(|r| r.map(Outcome::into_duel))
        .collect();
    let (outcomes, truncated) = split_truncated(results);
    if outcomes.is_empty() {
        return format!("every one of the {trials} trials truncated at an engine cap\n");
    }
    let mut alice = RunningStats::new();
    let mut bob = RunningStats::new();
    let mut slots = RunningStats::new();
    let mut spend = RunningStats::new();
    let mut delivered = 0u64;
    for o in &outcomes {
        alice.push(o.alice_cost as f64);
        bob.push(o.bob_cost as f64);
        slots.push(o.slots as f64);
        spend.push(o.adversary_cost as f64);
        delivered += o.delivered as u64;
    }
    let mut t = TableBuilder::new(vec!["metric", "mean", "min", "max"]);
    t.row(vec![
        "alice cost".into(),
        num(alice.mean()),
        num(alice.min()),
        num(alice.max()),
    ]);
    t.row(vec![
        "bob cost".into(),
        num(bob.mean()),
        num(bob.min()),
        num(bob.max()),
    ]);
    t.row(vec![
        "latency (slots)".into(),
        num(slots.mean()),
        num(slots.min()),
        num(slots.max()),
    ]);
    t.row(vec![
        "adversary spend T".into(),
        num(spend.mean()),
        num(spend.min()),
        num(spend.max()),
    ]);
    let mut hist = rcb_mathkit::histogram::LogHistogram::doubling();
    for o in &outcomes {
        hist.record(o.max_cost() as f64);
    }
    format!(
        "{}\ndelivered: {}/{} ({:.1}%)\ntruncated trials: {}\n\n\
         max-cost distribution (p50 ≈ {:.0}, p95 ≈ {:.0}):\n{}",
        t.markdown(),
        delivered,
        outcomes.len(),
        100.0 * delivered as f64 / outcomes.len() as f64,
        truncated,
        hist.quantile(0.5),
        hist.quantile(0.95),
        hist.render(32)
    )
}

fn cmd_duel(args: &Args) -> Result<String, String> {
    let budget: u64 = args.get("budget", 65536)?;
    let q: f64 = args.get("q", 1.0)?;
    let trials: u64 = args.get("trials", 100)?;
    let seed: u64 = args.get("seed", 2014)?;
    let faults = fault_plan_from_args(args)?;
    let profile_name = args.get_str("profile", "fig1");
    let protocol = match profile_name.as_str() {
        "fig1" => {
            let epsilon: f64 = args.get("epsilon", 0.01)?;
            let start: u32 = args.get("start-epoch", 8)?;
            DuelProtocol::fig1(epsilon, start)
        }
        "ksy" => DuelProtocol::ksy(),
        other => return Err(format!("--profile must be fig1 or ksy, got `{other}`")),
    };
    let spec = ScenarioSpec::duel(protocol)
        .with_adversary(AdversarySpec::Budgeted {
            budget,
            fraction: q,
        })
        .with_faults(faults)
        .with_seed(seed)
        .with_trials(trials);
    spec.validate()?;
    Ok(duel_report(&spec))
}

fn broadcast_report(spec: &ScenarioSpec) -> String {
    render_broadcast(spec.trials, spec.run_batch())
}

fn render_broadcast(trials: u64, results: Vec<Result<Outcome, SimError>>) -> String {
    let results: Vec<Result<BroadcastOutcome, SimError>> = results
        .into_iter()
        .map(|r| r.map(Outcome::into_broadcast))
        .collect();
    let (outcomes, truncated) = split_truncated(results);
    if outcomes.is_empty() {
        return format!("every one of the {trials} trials truncated at the epoch cap\n");
    }
    let mut mean_cost = RunningStats::new();
    let mut max_cost = RunningStats::new();
    let mut slots = RunningStats::new();
    let mut spend = RunningStats::new();
    let mut informed = 0u64;
    for o in &outcomes {
        mean_cost.push(o.mean_cost());
        max_cost.push(o.max_cost() as f64);
        slots.push(o.slots as f64);
        spend.push(o.adversary_cost as f64);
        informed += o.all_informed as u64;
    }
    let mut t = TableBuilder::new(vec!["metric", "mean", "min", "max"]);
    t.row(vec![
        "mean node cost".into(),
        num(mean_cost.mean()),
        num(mean_cost.min()),
        num(mean_cost.max()),
    ]);
    t.row(vec![
        "max node cost".into(),
        num(max_cost.mean()),
        num(max_cost.min()),
        num(max_cost.max()),
    ]);
    t.row(vec![
        "latency (slots)".into(),
        num(slots.mean()),
        num(slots.min()),
        num(slots.max()),
    ]);
    t.row(vec![
        "adversary spend T".into(),
        num(spend.mean()),
        num(spend.min()),
        num(spend.max()),
    ]);
    format!(
        "{}\nall informed: {}/{} runs\ntruncated trials: {}\n",
        t.markdown(),
        informed,
        outcomes.len(),
        truncated
    )
}

fn render_stream(trials: u64, results: Vec<Result<Outcome, SimError>>) -> String {
    // Stream trials only fail as a whole on a deadline cut (per-message
    // caps are folded into `truncated_msgs`); both arms carry a stream
    // outcome worth summarising, so flatten errors away here.
    let outcomes: Vec<StreamOutcome> = results
        .into_iter()
        .filter_map(|r| r.ok().map(Outcome::into_stream))
        .collect();
    if outcomes.is_empty() {
        return format!("every one of the {trials} trials was cut off by the deadline\n");
    }
    let mut arrivals = RunningStats::new();
    let mut delivered = RunningStats::new();
    let mut latency_p50 = RunningStats::new();
    let mut latency_p95 = RunningStats::new();
    let mut latency_max = RunningStats::new();
    let mut mean_queue = RunningStats::new();
    let mut throughput = RunningStats::new();
    let mut spend = RunningStats::new();
    let mut truncated_msgs = 0u64;
    for o in &outcomes {
        arrivals.push(o.arrivals as f64);
        delivered.push(o.delivered as f64);
        latency_p50.push(o.latency_p50 as f64);
        latency_p95.push(o.latency_p95 as f64);
        latency_max.push(o.latency_max as f64);
        mean_queue.push(o.mean_queue());
        throughput.push(o.throughput() * 1e6);
        spend.push(o.adversary_cost as f64);
        truncated_msgs += o.truncated_msgs;
    }
    let mut t = TableBuilder::new(vec!["metric", "mean", "min", "max"]);
    for (label, s) in [
        ("messages arrived", &arrivals),
        ("messages delivered", &delivered),
        ("latency p50 (slots)", &latency_p50),
        ("latency p95 (slots)", &latency_p95),
        ("latency max (slots)", &latency_max),
        ("mean queue length", &mean_queue),
        ("throughput (msg/Mslot)", &throughput),
        ("adversary spend T", &spend),
    ] {
        t.row(vec![
            label.into(),
            num(s.mean()),
            num(s.min()),
            num(s.max()),
        ]);
    }
    format!(
        "{}\nmessages cut off by engine caps: {truncated_msgs}\n",
        t.markdown()
    )
}

/// Comma-separated registry names for unknown-name error messages.
fn registry_name_list() -> String {
    registry()
        .iter()
        .map(|e| e.name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn cmd_broadcast(args: &Args) -> Result<String, String> {
    let n: usize = args.get("n", 32)?;
    let budget: u64 = args.get("budget", 1 << 20)?;
    let q: f64 = args.get("q", 1.0)?;
    let trials: u64 = args.get("trials", 10)?;
    let seed: u64 = args.get("seed", 2014)?;
    let kind = args.get_str("adversary", "suffix");
    let adversary = match kind.as_str() {
        "suffix" => AdversarySpec::Budgeted {
            budget,
            fraction: q,
        },
        "random" => AdversarySpec::Random {
            budget,
            rate: q.min(0.999),
        },
        "keepalive" => AdversarySpec::KeepAlive {
            budget,
            fraction: q,
        },
        "none" => AdversarySpec::NoJam,
        other => {
            return Err(format!(
                "--adversary must be suffix|random|keepalive|none, got `{other}`"
            ))
        }
    };
    let faults = fault_plan_from_args(args)?;
    let spec = ScenarioSpec::broadcast(n)
        .with_adversary(adversary)
        .with_faults(faults)
        .with_seed(seed)
        .with_trials(trials);
    spec.validate()?;
    Ok(broadcast_report(&spec))
}

/// `scenario list|names|run <NAME>` — the named registry behind the perf
/// grid, exposed for direct use. `run` accepts `--trials`/`--seed`
/// overrides and reports the same FNV-1a determinism checksum the perf
/// harness records, folded in trial order over every outcome (including
/// truncated trials, which surface as a count rather than vanishing).
fn cmd_scenario(args: &Args) -> Result<String, String> {
    let entries = registry();
    match args.positional(0) {
        None | Some("list") => {
            let mut t = TableBuilder::new(vec![
                "name",
                "engine",
                "workload",
                "adversary",
                "faults",
                "trials",
            ]);
            for e in &entries {
                t.row(vec![
                    e.name.to_string(),
                    e.spec.engine_label().to_string(),
                    e.spec.workload.to_string(),
                    e.spec.adversary.to_string(),
                    e.spec.faults.to_string(),
                    e.spec.trials.to_string(),
                ]);
            }
            Ok(format!(
                "{}\nrun one with `rcbsim scenario run <NAME>` (--trials/--seed override)\n",
                t.markdown()
            ))
        }
        Some("names") => {
            let mut out = String::new();
            for e in &entries {
                out.push_str(e.name);
                out.push('\n');
            }
            Ok(out)
        }
        Some("run") => {
            let name = args.positional(1).ok_or_else(|| {
                "scenario run needs a NAME; try `rcbsim scenario list`".to_string()
            })?;
            if let Some(extra) = args.positional(2) {
                return Err(format!("unexpected positional argument `{extra}`"));
            }
            let entry = find_scenario(name).ok_or_else(|| {
                format!(
                    "unknown scenario `{name}`; valid names: {}",
                    registry_name_list()
                )
            })?;
            let mut spec = entry.spec;
            if let Some(trials) = args.get_opt::<u64>("trials")? {
                spec = spec.with_trials(trials);
            }
            if let Some(seed) = args.get_opt::<u64>("seed")? {
                spec = spec.with_seed(seed);
            }
            spec.validate()?;
            let rc = run_control_args(args)?;
            let raw = run_scenario_trials(name, &spec, args, &rc)?;
            let mut checksum = FNV_OFFSET;
            for (outcome, _) in &raw {
                checksum = fnv1a(checksum, &[spec.outcome_checksum(outcome)]);
            }
            let results: Vec<Result<Outcome, SimError>> = raw
                .into_iter()
                .map(|(outcome, err)| match err {
                    Some(e) => Err(e),
                    None => Ok(outcome),
                })
                .collect();
            let header = format!(
                "scenario {name}: {summary}\n{engine} · {workload} · {adversary} · faults: {faults} \
                 · seed {seed} · {trials} trials\n",
                summary = entry.summary,
                engine = spec.engine_label(),
                workload = spec.workload,
                adversary = spec.adversary,
                faults = spec.faults,
                seed = spec.seeds.master,
                trials = spec.trials,
            );
            let body = match spec.workload {
                Workload::Duel(_) => render_duel(spec.trials, results),
                Workload::Broadcast(_) => render_broadcast(spec.trials, results),
                Workload::Stream(_) => render_stream(spec.trials, results),
            };
            let mut out = format!("{header}\n{body}\ndeterminism checksum: {checksum:016x}\n");
            if let Some(from) = &rc.resume {
                out.push_str(&format!("resumed journal: {}\n", from.display()));
            }
            Ok(out)
        }
        Some(other) => Err(format!(
            "unknown scenario action `{other}`; expected list, names, or run"
        )),
    }
}

/// Runs one scenario's trial batch under the crash-safety flags. With no
/// flags this is exactly [`ScenarioSpec::run_batch_raw`] — a byte-identical
/// no-op relative to the uncontrolled path. With a journal, completed
/// trials are checkpointed (`trial/<i>` cells) and a resume skips them;
/// the seed fold per trial is untouched, so resumed runs are bit-identical
/// to uninterrupted ones.
fn run_scenario_trials(
    name: &str,
    spec: &ScenarioSpec,
    args: &Args,
    rc: &RunControlArgs,
) -> Result<Vec<(Outcome, Option<SimError>)>, String> {
    if !rc.active() {
        return Ok(spec.run_batch_raw());
    }
    let fingerprint = spec.fingerprint();
    let mut journal = match (&rc.resume, &rc.journal) {
        (Some(path), _) => {
            Some(Journal::open_resume(path, "scenario", fingerprint).map_err(|e| e.to_string())?)
        }
        (None, Some(path)) => Some(Journal::create(
            path,
            JournalHeader::new(
                "scenario",
                fingerprint,
                Json::obj(vec![("scenario", Json::Str(name.to_string()))]),
            ),
        )),
        (None, None) => None,
    };

    let trial_key = |i: u64| format!("trial/{i}");
    let done: Vec<bool> = (0..spec.trials)
        .map(|i| journal.as_ref().is_some_and(|j| j.contains(&trial_key(i))))
        .collect();
    let skip = |_spec: usize, trial: u64| done[trial as usize];
    let ctl = SpecsControl {
        deadline: rc.deadline(),
        trial_deadline: None,
        max_attempts: 1,
        skip: Some(&skip),
    };
    let specs = [spec.clone()];
    let run = run_specs_ctl(&specs, spec.parallelism, &ctl);
    let fresh = &run.results[0];

    if let Some(j) = journal.as_mut() {
        for (i, slot) in fresh.iter().enumerate() {
            if let Some((outcome, err)) = slot {
                if !matches!(err, Some(SimError::DeadlineExceeded { .. })) {
                    j.append(trial_key(i as u64), trial_payload(outcome, err));
                }
            }
        }
        j.flush().map_err(|e| e.to_string())?;
    }

    if let Some(q) = run.quarantined.first() {
        return Err(format!(
            "scenario `{name}`: trial {} quarantined: {}",
            q.trial, q.failure
        ));
    }
    if run.deadline_hit {
        let mut base = format!("rcbsim scenario run {name}");
        if args.get_opt::<u64>("trials").ok().flatten().is_some() {
            base.push_str(&format!(" --trials {}", spec.trials));
        }
        if args.get_opt::<u64>("seed").ok().flatten().is_some() {
            base.push_str(&format!(" --seed {}", spec.seeds.master));
        }
        return Err(cut_report(
            &format!("scenario `{name}`"),
            journal.as_ref().map(Journal::path),
            &base,
        ));
    }

    (0..spec.trials as usize)
        .map(|i| {
            if done[i] {
                let j = journal.as_ref().expect("done trials imply a journal");
                let payload = j.get(&trial_key(i as u64)).expect("done implies journaled");
                parse_trial_payload(payload)
                    .map_err(|e| format!("{}: trial {i}: {e}", j.path().display()))
            } else {
                Ok(fresh[i]
                    .clone()
                    .expect("neither skipped nor deadline-cut: the trial ran"))
            }
        })
        .collect()
}

fn cmd_product(args: &Args) -> Result<String, String> {
    let budget: u64 = args.get("budget", 16384)?;
    let delta: f64 = args.get("delta", 0.5)?;
    let trials: u64 = args.get("trials", 2000)?;
    let seed: u64 = args.get("seed", 2014)?;
    if !(0.0..1.0).contains(&delta) || delta <= 0.0 {
        return Err("--delta must be in (0,1)".into());
    }
    let mut rng = SeedSequence::new(seed).rng(0);
    let row = product_game(budget, delta, trials, &mut rng);
    Ok(format!(
        "δ = {delta}, T = {budget}, {trials} trials\n\
         E(A) = {:.1}, E(B) = {:.1}, E(A)·E(B)/T = {:.3} (Theorem 2 floor: ≥ 1 − O(ε))\n",
        row.mean_a, row.mean_b, row.product_over_t
    ))
}

fn cmd_golden(args: &Args) -> Result<String, String> {
    let budget: u64 = args.get("budget", 16384)?;
    let trials: u64 = args.get("trials", 500)?;
    let seed: u64 = args.get("seed", 2014)?;
    let seeds = SeedSequence::new(seed);
    let mut t = TableBuilder::new(vec!["δ", "worst exponent", "predicted", "adversary plays"]);
    for (i, delta) in [0.45, 0.5, 0.55, PHI_MINUS_ONE, 0.65, 0.7, 0.8]
        .iter()
        .enumerate()
    {
        let mut rng = seeds.rng(i as u64);
        let row = golden_ratio_game(budget, *delta, trials, &mut rng);
        t.row(vec![
            format!("{delta:.3}"),
            num(row.worst_exponent),
            num(row.predicted),
            format!("{:?}", row.picked),
        ]);
    }
    Ok(format!(
        "{}\nthe minimum sits at δ = φ−1 ≈ 0.618 (Theorem 5)\n",
        t.markdown()
    ))
}

fn cmd_conformance(args: &Args) -> Result<String, String> {
    let trials: u64 = args.get("trials", 200)?;
    let seed: u64 = args.get("seed", 2014)?;
    let alpha: f64 = args.get("alpha", 1e-3)?;
    if trials == 0 {
        return Err("--trials must be at least 1".into());
    }
    if !(0.0..1.0).contains(&alpha) || alpha <= 0.0 {
        return Err("--alpha must be in (0,1)".into());
    }
    let cfg = ConformanceConfig {
        trials,
        seed,
        alpha,
        parallelism: Parallelism::Auto,
    };
    let (duels, broadcasts) = default_grid();
    let report = run_grid(&duels, &broadcasts, &cfg);
    let text = report.render();
    if report.passed() {
        Ok(text)
    } else {
        // A failed grid is a real engine divergence: make the exit status
        // reflect it so CI can gate on `rcbsim conformance`.
        Err(text)
    }
}

/// The shared crash-safety flags (`perf` and `scenario run`):
/// `--journal PATH` checkpoints, `--resume PATH` continues a previous
/// journal, `--deadline SECS` bounds the run's wall clock.
struct RunControlArgs {
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    deadline_budget: Option<Duration>,
}

fn run_control_args(args: &Args) -> Result<RunControlArgs, String> {
    let journal = args.get_opt::<String>("journal")?.map(PathBuf::from);
    let resume = args.get_opt::<String>("resume")?.map(PathBuf::from);
    if journal.is_some() && resume.is_some() {
        return Err(
            "--journal and --resume are mutually exclusive; --resume keeps \
             checkpointing into the journal it continues"
                .into(),
        );
    }
    let deadline_budget = match args.get_opt::<f64>("deadline")? {
        None => None,
        Some(secs) if secs.is_finite() && secs >= 0.0 => Some(Duration::from_secs_f64(secs)),
        Some(_) => return Err("--deadline must be a non-negative number of seconds".into()),
    };
    Ok(RunControlArgs {
        journal,
        resume,
        deadline_budget,
    })
}

impl RunControlArgs {
    fn active(&self) -> bool {
        self.journal.is_some() || self.resume.is_some() || self.deadline_budget.is_some()
    }

    /// The run deadline. When any crash-safety flag is active the SIGINT
    /// latch is folded in, so Ctrl-C finishes in-flight cells, flushes
    /// the journal, and surfaces the resume invocation instead of killing
    /// the process mid-write. With no flags this is [`Deadline::NONE`]
    /// and the default SIGINT disposition is left untouched.
    fn deadline(&self) -> Deadline {
        let base = match self.deadline_budget {
            Some(budget) => Deadline::after(budget),
            None => Deadline::NONE,
        };
        if self.active() {
            base.with_cancel(install_sigint_handler())
        } else {
            base
        }
    }
}

/// The message for a deadline- or SIGINT-cut run: what stopped it, where
/// the checkpoints went, and the exact invocation that resumes it.
fn cut_report(what: &str, journal: Option<&Path>, base_invocation: &str) -> String {
    let why = if interrupted() {
        "interrupted (SIGINT)"
    } else {
        "wall-clock deadline exceeded"
    };
    match journal {
        Some(path) => format!(
            "{what}: {why}; completed cells are journaled in {path}\nresume with:\n  \
             {base_invocation} --resume {path}",
            path = path.display()
        ),
        None => format!(
            "{what}: {why}; no --journal was given, so partial progress was not \
             persisted — re-run with --journal PATH to make the run resumable"
        ),
    }
}

/// `--cpus 1,2,4` → worker counts for the perf scaling passes.
fn parse_cpus_list(raw: &str) -> Result<Vec<u64>, String> {
    let cpus = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s.parse::<u64>() {
            Ok(0) | Err(_) => Err(format!(
                "--cpus entries must be positive integers, got `{s}`"
            )),
            Ok(n) => Ok(n),
        })
        .collect::<Result<Vec<u64>, String>>()?;
    if cpus.is_empty() {
        return Err("--cpus needs at least one worker count".into());
    }
    Ok(cpus)
}

fn cmd_perf(args: &Args) -> Result<String, String> {
    let seed: u64 = args.get("seed", 2014)?;
    let scale = PerfScale::parse(&args.get_str("scale", "standard"))?;
    let threshold: f64 = args.get("threshold", perf::DEFAULT_THRESHOLD)?;
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err("--threshold must be a positive number".into());
    }
    let report_only: bool = args.get("report-only", false)?;
    let strict: bool = args.get("strict", false)?;
    let notes = args.get_str("notes", "");
    let cpus_raw = args.get_str("cpus", "1");
    let cpus = parse_cpus_list(&cpus_raw)?;
    let sha = perf::git_short_sha();
    let out_path = args.get_str("out", &format!("BENCH_{sha}.json"));

    let only: Vec<String> = args
        .get_str("only", "")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let unknown = perf::resolve_only(&only);
    if !unknown.is_empty() {
        return Err(format!(
            "--only names not in the registry: {}; valid names: {}",
            unknown.join(", "),
            registry_name_list()
        ));
    }

    let rc = run_control_args(args)?;
    let ctl = perf::PerfControl {
        journal: rc.journal.clone(),
        resume: rc.resume.clone(),
        deadline: rc.deadline(),
        only,
    };
    let run =
        perf::run_perf_ctl(seed, scale, &sha, &notes, &cpus, &ctl).map_err(|e| e.to_string())?;
    let report = match run.report {
        Some(report) => report,
        None => {
            // A cut grid is a nonzero exit (no report was produced), but a
            // typed one: say why, and how to pick the run back up.
            let base = format!(
                "rcbsim perf --scale {} --seed {seed} --cpus {cpus_raw}",
                scale.label()
            );
            return Err(cut_report("perf grid", run.journal_path.as_deref(), &base));
        }
    };

    let mut text = String::new();
    if run.resumed_cells > 0 {
        let from = rc.resume.as_ref().expect("resumed cells imply --resume");
        text.push_str(&format!(
            "resumed {} journaled cell(s) from {}\n\n",
            run.resumed_cells,
            from.display()
        ));
    }
    text.push_str(&report.render());
    if out_path != "-" {
        std::fs::write(&out_path, report.to_json().render())
            .map_err(|e| format!("cannot write {out_path}: {e}"))?;
        text.push_str(&format!("\nwrote {out_path}\n"));
    }

    if let Some(baseline_path) = args.get_opt::<String>("against")? {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
        let baseline = perf::BenchReport::parse(&baseline_text)
            .map_err(|e| format!("{baseline_path}: {e}"))?;
        let cmp = perf::compare(&baseline, &report, threshold);
        // Warnings are advisory diagnostics, not report content: stderr.
        for warning in &cmp.warnings {
            eprintln!("warning: {warning}");
        }
        text.push('\n');
        text.push_str(&cmp.text);
        let gate_failed = if strict {
            !cmp.passed_strict()
        } else {
            !cmp.passed()
        };
        if gate_failed && !report_only {
            // Nonzero exit so CI can gate on `rcbsim perf --against`.
            return Err(text);
        }
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["duel", "--budget", "1024", "--q=0.5"]).expect("parse");
        assert_eq!(a.command(), Some("duel"));
        assert_eq!(a.get::<u64>("budget", 0).expect("budget"), 1024);
        assert_eq!(a.get::<f64>("q", 1.0).expect("q"), 0.5);
        // Defaults pass through.
        assert_eq!(a.get::<u64>("trials", 7).expect("trials"), 7);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&["duel", "--budget"]).is_err(), "missing value");
        assert!(parse(&["duel", "--q", "1", "--q", "2"]).is_err(), "dup");
        // Extra positionals parse (the `scenario` command needs them) but
        // every other command rejects them at dispatch.
        let extra = parse(&["duel", "extra"]).expect("parse collects positionals");
        assert!(run_cli(&extra).is_err(), "second positional");
        assert!(parse(&["--"]).is_err(), "bare dashes");
        let a = parse(&["duel", "--budget", "abc"]).expect("parse ok");
        assert!(a.get::<u64>("budget", 0).is_err(), "type error surfaces");
    }

    #[test]
    fn cpus_list_parses_and_rejects_garbage() {
        assert_eq!(parse_cpus_list("1").expect("single"), vec![1]);
        assert_eq!(parse_cpus_list("1, 2,4").expect("list"), vec![1, 2, 4]);
        assert!(parse_cpus_list("").is_err(), "empty list");
        assert!(parse_cpus_list("0").is_err(), "zero workers");
        assert!(parse_cpus_list("two").is_err(), "non-numeric");
    }

    #[test]
    fn help_and_unknown_commands() {
        let help = run_cli(&parse(&["help"]).expect("parse")).expect("help");
        assert!(help.contains("USAGE"));
        let none = run_cli(&parse(&[]).expect("parse")).expect("default");
        assert!(none.contains("USAGE"));
        assert!(run_cli(&parse(&["frobnicate"]).expect("parse")).is_err());
    }

    #[test]
    fn duel_command_smoke() {
        let a = parse(&[
            "duel",
            "--budget",
            "1024",
            "--trials",
            "5",
            "--epsilon",
            "0.1",
        ])
        .expect("parse");
        let report = run_cli(&a).expect("run");
        assert!(report.contains("alice cost"));
        assert!(report.contains("delivered"));
    }

    #[test]
    fn duel_ksy_profile_smoke() {
        let a = parse(&[
            "duel",
            "--profile",
            "ksy",
            "--budget",
            "512",
            "--trials",
            "5",
        ])
        .expect("parse");
        assert!(run_cli(&a).expect("run").contains("bob cost"));
        let bad = parse(&["duel", "--profile", "nope"]).expect("parse");
        assert!(run_cli(&bad).is_err());
    }

    #[test]
    fn broadcast_command_smoke() {
        let a =
            parse(&["broadcast", "--n", "8", "--budget", "2048", "--trials", "2"]).expect("parse");
        let report = run_cli(&a).expect("run");
        assert!(report.contains("mean node cost"));
        assert!(report.contains("all informed"));
        let bad = parse(&["broadcast", "--adversary", "nuke"]).expect("parse");
        assert!(run_cli(&bad).is_err());
    }

    #[test]
    fn product_command_smoke() {
        let a = parse(&["product", "--budget", "256", "--trials", "200"]).expect("parse");
        let report = run_cli(&a).expect("run");
        assert!(report.contains("E(A)·E(B)/T"));
        let bad = parse(&["product", "--delta", "1.5"]).expect("parse");
        assert!(run_cli(&bad).is_err());
    }

    #[test]
    fn golden_command_smoke() {
        let a = parse(&["golden", "--budget", "256", "--trials", "50"]).expect("parse");
        let report = run_cli(&a).expect("run");
        assert!(report.contains("0.618"));
    }

    #[test]
    fn conformance_command_smoke() {
        // Tiny trial count: this checks plumbing, not statistical power —
        // the sim crate's own tests and the default 200-trial CLI run do
        // that. Even at 25 trials a grid-wide p < 1e-6 would be a real bug.
        let a = parse(&[
            "conformance",
            "--trials",
            "25",
            "--seed",
            "2014",
            "--alpha=0.000001",
        ])
        .expect("parse");
        let report = run_cli(&a).expect("conformance grid diverged");
        assert!(report.contains("grid PASSED"));
        assert!(report.contains("alice_cost"));
        assert!(report.contains("broadcast n=5"));
    }

    #[test]
    fn fault_flags_parse_into_a_plan() {
        let a = parse(&[
            "duel",
            "--fault-loss",
            "0.25",
            "--fault-crash",
            "1:4:8:lose",
            "--fault-skew",
            "0:2",
            "--fault-battery",
            "500",
        ])
        .expect("parse");
        let plan = fault_plan_from_args(&a).expect("valid plan");
        assert_eq!(plan.loss_p(), 0.25);
        assert!(plan.crashed(1, 4) && !plan.crashed(1, 12));
        assert_eq!(plan.reboot_at(), Some((1, 12)));
        assert_eq!(plan.skew_slots(0), 2);
        assert_eq!(plan.battery_capacity(), Some(500));
        // No flags → the empty plan.
        let none = fault_plan_from_args(&parse(&["duel"]).expect("parse")).expect("plan");
        assert!(none.is_none());
    }

    fn tmp_journal(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("rcb_cli_test_{}_{name}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn crash_safety_flags_parse_and_reject_conflicts() {
        let a = parse(&["perf", "--journal", "j.jsonl", "--deadline", "1.5"]).expect("parse");
        let rc = run_control_args(&a).expect("valid flags");
        assert!(rc.active());
        assert_eq!(rc.journal.as_deref(), Some(Path::new("j.jsonl")));
        assert_eq!(rc.deadline_budget, Some(Duration::from_millis(1500)));

        let none = run_control_args(&parse(&["perf"]).expect("parse")).expect("no flags");
        assert!(!none.active());
        assert!(
            none.deadline().is_unbounded(),
            "no flags → unbounded, handler-free"
        );

        let both = parse(&["perf", "--journal", "a", "--resume", "b"]).expect("parse");
        assert!(run_control_args(&both).is_err(), "journal+resume conflict");
        let neg = parse(&["perf", "--deadline", "-1"]).expect("parse");
        assert!(run_control_args(&neg).is_err(), "negative deadline");
    }

    #[test]
    fn perf_deadline_cut_exits_nonzero_with_a_resume_hint() {
        let journal = tmp_journal("perf_cut");
        let a = parse(&[
            "perf",
            "--scale",
            "smoke",
            "--cpus",
            "1",
            "--out",
            "-",
            "--deadline",
            "0",
            "--journal",
            &journal,
        ])
        .expect("parse");
        let err = run_cli(&a).expect_err("a cut grid produces no report");
        assert!(err.contains("deadline exceeded"), "{err}");
        assert!(
            err.contains(&format!("--resume {journal}")),
            "the exact resume invocation must be printed: {err}"
        );
        assert!(err.contains("--scale smoke"), "{err}");
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn scenario_run_journals_and_resumes_with_the_same_checksum() {
        let journal = tmp_journal("scenario_resume");
        let name = registry()[0].name;
        let base_args = |extra: &[&str]| {
            let mut v = vec!["scenario", "run", name, "--trials", "6", "--seed", "9"];
            v.extend_from_slice(extra);
            parse(&v).expect("parse")
        };
        let checksum_line = |report: &str| {
            report
                .lines()
                .find(|l| l.starts_with("determinism checksum"))
                .expect("checksum line")
                .to_string()
        };

        let straight = run_cli(&base_args(&[])).expect("straight run");
        let journaled = run_cli(&base_args(&["--journal", &journal])).expect("journaled run");
        assert_eq!(
            straight, journaled,
            "a journal must not perturb the report (byte-identical no-op)"
        );

        // The journal now holds every trial: a resume skips them all and
        // reconstructs the identical checksum from the records alone.
        let resumed = run_cli(&base_args(&["--resume", &journal])).expect("resume");
        assert_eq!(checksum_line(&straight), checksum_line(&resumed));
        assert!(resumed.contains("resumed journal:"), "{resumed}");

        // A different seed is different work: typed refusal.
        let mut v = vec!["scenario", "run", name, "--trials", "6", "--seed", "10"];
        v.extend_from_slice(&["--resume", &journal]);
        let err = run_cli(&parse(&v).expect("parse")).expect_err("wrong fingerprint");
        assert!(err.contains("fingerprint mismatch"), "{err}");
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn fault_flags_reject_malformed_specs() {
        let bad_crash = parse(&["duel", "--fault-crash", "1:4"]).expect("parse");
        assert!(fault_plan_from_args(&bad_crash).is_err(), "too few fields");
        let bad_tail = parse(&["duel", "--fault-crash", "1:4:8:explode"]).expect("parse");
        assert!(fault_plan_from_args(&bad_tail).is_err(), "bad lose marker");
        let bad_skew = parse(&["duel", "--fault-skew", "7"]).expect("parse");
        assert!(fault_plan_from_args(&bad_skew).is_err(), "missing colon");
        let bad_loss = parse(&["duel", "--fault-loss", "1.5"]).expect("parse");
        assert!(fault_plan_from_args(&bad_loss).is_err(), "p out of range");
        let bad_battery = parse(&["duel", "--fault-battery", "0"]).expect("parse");
        assert!(fault_plan_from_args(&bad_battery).is_err(), "zero capacity");
    }

    #[test]
    fn faulted_duel_command_smoke() {
        let a = parse(&[
            "duel",
            "--budget",
            "1024",
            "--trials",
            "5",
            "--epsilon",
            "0.1",
            "--fault-loss",
            "0.2",
        ])
        .expect("parse");
        let report = run_cli(&a).expect("run");
        assert!(report.contains("delivered"));
    }

    #[test]
    fn faulted_broadcast_command_smoke() {
        let a = parse(&[
            "broadcast",
            "--n",
            "8",
            "--adversary",
            "none",
            "--trials",
            "2",
            "--fault-crash",
            "3:2:6:lose",
        ])
        .expect("parse");
        let report = run_cli(&a).expect("run");
        assert!(report.contains("all informed"));
    }

    #[test]
    fn conformance_rejects_bad_flags() {
        let zero = parse(&["conformance", "--trials", "0"]).expect("parse");
        assert!(run_cli(&zero).is_err());
        let alpha = parse(&["conformance", "--alpha", "2.0"]).expect("parse");
        assert!(run_cli(&alpha).is_err());
    }

    #[test]
    fn scenario_list_and_names() {
        let list = run_cli(&parse(&["scenario", "list"]).expect("parse")).expect("list");
        let names = run_cli(&parse(&["scenario", "names"]).expect("parse")).expect("names");
        for entry in registry() {
            assert!(list.contains(entry.name), "list shows {}", entry.name);
            assert!(names.contains(entry.name), "names shows {}", entry.name);
        }
        // Bare `scenario` defaults to `list`.
        let bare = run_cli(&parse(&["scenario"]).expect("parse")).expect("bare");
        assert_eq!(bare, list);
    }

    #[test]
    fn scenario_run_smoke_with_overrides() {
        let duel = run_cli(
            &parse(&[
                "scenario",
                "run",
                "duel_jammed",
                "--trials",
                "3",
                "--seed",
                "7",
            ])
            .expect("parse"),
        )
        .expect("run");
        assert!(duel.contains("scenario duel_jammed"));
        assert!(duel.contains("3 trials"));
        assert!(duel.contains("alice cost"));
        assert!(duel.contains("determinism checksum"));
        let bcast = run_cli(
            &parse(&["scenario", "run", "bcast_n8_jammed", "--trials", "2"]).expect("parse"),
        )
        .expect("run");
        assert!(bcast.contains("mean node cost"));
        assert!(bcast.contains("determinism checksum"));
    }

    #[test]
    fn scenario_run_is_deterministic() {
        let args = parse(&["scenario", "run", "duel_jammed", "--trials", "4"]).expect("parse");
        let a = run_cli(&args).expect("first run");
        let b = run_cli(&args).expect("second run");
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_rejects_bad_input() {
        assert!(
            run_cli(&parse(&["scenario", "run"]).expect("parse")).is_err(),
            "missing name"
        );
        assert!(
            run_cli(&parse(&["scenario", "run", "nonexistent"]).expect("parse")).is_err(),
            "unknown name"
        );
        assert!(
            run_cli(&parse(&["scenario", "run", "duel_jammed", "extra"]).expect("parse")).is_err(),
            "trailing positional"
        );
        assert!(
            run_cli(&parse(&["scenario", "explode"]).expect("parse")).is_err(),
            "unknown action"
        );
    }
}
