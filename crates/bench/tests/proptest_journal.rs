//! Property tests for the crash-safe run journal: record payloads across
//! the full `Json::Str` scalar range (the surrogate-pair harness from the
//! perf schema tests, reused), and torn-tail recovery — a truncated final
//! record line is detected and dropped, never fatal and never silently
//! misread.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use rcb_sim::journal::{Journal, JournalHeader};
use rcb_sim::json::Json;

/// Builds a valid Unicode string from arbitrary code points, exercising
/// escapes, multi-byte characters, and astral-plane surrogate pairs.
fn string_from(codes: &[u32]) -> String {
    codes
        .iter()
        .map(|&c| char::from_u32(c % 0x11_0000).unwrap_or('\u{fffd}'))
        .collect()
}

/// A unique temp path per proptest case (cases run in one process).
fn case_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rcb_proptest_journal_{}_{tag}_{n}.jsonl",
        std::process::id()
    ))
}

fn header_from(kind_codes: &[u32], fingerprint: u64) -> JournalHeader {
    JournalHeader::new(
        &string_from(kind_codes),
        fingerprint,
        Json::obj(vec![("note", Json::Str(string_from(kind_codes)))]),
    )
}

proptest! {
    /// Every record — arbitrary Unicode cell keys, arbitrary Unicode
    /// string payloads, arbitrary header metadata — survives
    /// flush → load byte-exactly, with append order and the per-record
    /// FNV-1a checksums intact.
    #[test]
    fn journal_records_round_trip_the_full_scalar_range(
        kind in prop::collection::vec(any::<u32>(), 1..8),
        fingerprint in any::<u64>(),
        cells in prop::collection::vec(
            (prop::collection::vec(any::<u32>(), 0..12),
             prop::collection::vec(any::<u32>(), 0..24)),
            0..8,
        ),
    ) {
        let path = case_path("round_trip");
        let header = header_from(&kind, fingerprint);
        let mut journal = Journal::create(&path, header.clone());
        let mut expected: Vec<(String, String)> = Vec::new();
        for (i, (key_codes, payload_codes)) in cells.iter().enumerate() {
            // The index prefix keeps keys unique: a duplicate key is
            // replace-in-place by contract, which would change the count.
            let key = format!("cell{i}/{}", string_from(key_codes));
            let payload = string_from(payload_codes);
            journal.append(&key, Json::obj(vec![("v", Json::Str(payload.clone()))]));
            expected.push((key, payload));
        }
        journal.flush().expect("flush");

        let back = Journal::load(&path).expect("load");
        prop_assert_eq!(back.header(), &header);
        prop_assert!(!back.dropped_tail());
        prop_assert_eq!(back.len(), expected.len());
        let keys: Vec<&str> = back.cells().collect();
        for (i, (key, payload)) in expected.iter().enumerate() {
            prop_assert_eq!(keys[i], key.as_str(), "append order must survive");
            let got = back.get(key).and_then(|p| p.get("v")).and_then(Json::as_str);
            prop_assert_eq!(got, Some(payload.as_str()));
        }
        std::fs::remove_file(&path).ok();
    }

    /// Crash-window recovery: cutting the file anywhere inside the final
    /// record line loses exactly that record — the load succeeds, every
    /// earlier record is intact, and `dropped_tail` reports whether a torn
    /// fragment (rather than a clean line boundary) was discarded.
    #[test]
    fn torn_final_record_is_dropped_not_fatal(
        payload_codes in prop::collection::vec(
            prop::collection::vec(any::<u32>(), 0..16),
            2..6,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let path = case_path("torn_tail");
        let mut journal = Journal::create(&path, header_from(&[0x70], 7));
        for (i, codes) in payload_codes.iter().enumerate() {
            journal.append(
                format!("cell{i}"),
                Json::obj(vec![("v", Json::Str(string_from(codes)))]),
            );
        }
        journal.flush().expect("flush");

        let text = std::fs::read_to_string(&path).expect("read");
        // The final record line spans (last_line_start, len-1]; pick a cut
        // inside it, then walk back to a char boundary so the file stays
        // valid UTF-8 (a mid-code-point tear is an IO-level concern the
        // line-level tolerance does not model).
        let trimmed = text.trim_end_matches('\n');
        let last_line_start = trimmed.rfind('\n').expect("header + records") + 1;
        let span = trimmed.len() - last_line_start;
        let mut cut = last_line_start + ((span as f64) * cut_fraction) as usize;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        std::fs::write(&path, &text[..cut]).expect("truncate");

        let back = Journal::load(&path).expect("a torn tail must never be fatal");
        prop_assert_eq!(back.len(), payload_codes.len() - 1, "exactly the last record is lost");
        prop_assert_eq!(
            back.dropped_tail(),
            cut > last_line_start,
            "a fragment was dropped iff the cut left one"
        );
        for (i, codes) in payload_codes[..payload_codes.len() - 1].iter().enumerate() {
            let got = back
                .get(&format!("cell{i}"))
                .and_then(|p| p.get("v"))
                .and_then(Json::as_str)
                .map(str::to_string);
            prop_assert_eq!(got, Some(string_from(codes)), "record {} damaged", i);
        }
        std::fs::remove_file(&path).ok();
    }
}
