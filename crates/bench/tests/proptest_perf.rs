//! Property tests for the perf telemetry schema and comparator.

use proptest::prelude::*;
use rcb_bench::perf::{
    compare, BenchReport, ScalingPoint, ScenarioResult, DEFAULT_THRESHOLD, SCHEMA_VERSION,
};
use rcb_sim::json::Json;

/// Builds a valid Unicode string from arbitrary code points, exercising
/// escapes and multi-byte characters.
fn string_from(codes: &[u32]) -> String {
    codes
        .iter()
        .map(|&c| char::from_u32(c % 0x11_0000).unwrap_or('\u{fffd}'))
        .collect()
}

fn report_from(
    sha_codes: &[u32],
    notes_codes: &[u32],
    seed: u64,
    cells: &[(u64, f64, u64)],
) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha: string_from(sha_codes),
        seed,
        scale: "standard".into(),
        repeats: 3,
        cpus: 4,
        notes: string_from(notes_codes),
        scenarios: cells
            .iter()
            .enumerate()
            .map(|(i, &(trials, rate, rss))| {
                let trials = trials % (1 << 20);
                let rate = rate.abs().max(1e-6);
                // Cycle through the three RSS states so every serialised
                // shape (null / cumulative / exclusive) gets exercised.
                let peak_rss_kib = (rss % 3 != 0).then_some(rss % (1 << 30));
                ScenarioResult {
                    id: format!("cell_{i}"),
                    engine: "duel-fast".into(),
                    trials,
                    slots: trials * 17,
                    wall_secs: (trials * 17) as f64 / rate,
                    slots_per_sec: rate,
                    trials_per_sec: trials as f64 / ((trials * 17) as f64 / rate),
                    cpus: 1,
                    peak_rss_kib,
                    rss_exclusive: peak_rss_kib.is_some() && rss % 3 == 2,
                    checksum: format!("{:016x}", trials ^ rss),
                }
            })
            .collect(),
        scaling: vec![ScalingPoint {
            cpus: (seed % 8) + 1,
            wall_secs: (seed % 1000) as f64 / 100.0 + 0.01,
            slots_per_sec: (seed % 997) as f64 + 1.0,
            speedup: (seed % 7) as f64 + 0.5,
            efficiency: ((seed % 7) as f64 + 0.5) / ((seed % 8) + 1) as f64,
        }],
    }
}

proptest! {
    /// Every serialisable report survives write → parse unchanged,
    /// whatever the strings and magnitudes involved.
    #[test]
    fn schema_round_trips_for_arbitrary_reports(
        sha in prop::collection::vec(any::<u32>(), 0..12),
        notes in prop::collection::vec(any::<u32>(), 0..40),
        seed in any::<u64>(),
        cells in prop::collection::vec((any::<u64>(), any::<f64>(), any::<u64>()), 0..6),
    ) {
        let report = report_from(&sha, &notes, seed, &cells);
        let text = report.to_json().render();
        let back = BenchReport::parse(&text);
        prop_assert!(back.is_ok(), "reparse failed: {:?}", back.err());
        prop_assert_eq!(report, back.unwrap());
    }

    /// `Json::Str` survives render → parse for every Unicode scalar,
    /// including astral-plane characters the renderer emits raw.
    #[test]
    fn json_strings_round_trip_over_the_full_char_range(
        codes in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let s = string_from(&codes);
        let text = Json::Str(s.clone()).render();
        let back = Json::parse(&text);
        prop_assert!(back.is_ok(), "reparse failed: {:?}", back.err());
        let parsed = back.unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// The same strings forced through `\uXXXX` escaping — every char
    /// encoded as its UTF-16 units, so non-BMP characters arrive as
    /// surrogate pairs the parser must recombine.
    #[test]
    fn json_forced_utf16_escapes_round_trip(
        codes in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let s = string_from(&codes);
        let mut text = String::from("[\"");
        for unit in s.encode_utf16() {
            text.push_str(&format!("\\u{unit:04x}"));
        }
        text.push_str("\"]");
        let back = Json::parse(&text);
        prop_assert!(back.is_ok(), "reparse failed: {:?}", back.err());
        let arr = back.unwrap();
        let items = arr.as_arr().expect("array document");
        prop_assert_eq!(items[0].as_str(), Some(s.as_str()));
    }

    /// Throughput wiggle inside the noise threshold never regresses; a
    /// uniform slowdown past the threshold always regresses every cell.
    #[test]
    fn comparator_gate_is_monotone_in_the_slowdown(
        rates in prop::collection::vec(1.0f64..1e9, 1..5),
        wiggle in -0.25f64..0.25,
    ) {
        let baseline = report_from(&[], &[], 1, &rates.iter().map(|&r| (10, r, 0)).collect::<Vec<_>>());
        let mut current = baseline.clone();
        for s in &mut current.scenarios {
            s.slots_per_sec *= 1.0 + wiggle;
        }
        let cmp = compare(&baseline, &current, DEFAULT_THRESHOLD);
        prop_assert!(cmp.passed(), "wiggle {wiggle} tripped the gate:\n{}", cmp.text);

        let mut halved = baseline.clone();
        for s in &mut halved.scenarios {
            s.slots_per_sec /= 2.0;
        }
        let cmp = compare(&baseline, &halved, DEFAULT_THRESHOLD);
        prop_assert_eq!(cmp.regressions.len(), baseline.scenarios.len());
    }
}
