//! `cargo bench` entry point that regenerates every paper experiment
//! (DESIGN.md §4) at the quick scale and prints the tables. This is a
//! plain harness (`harness = false`): the "benchmark" *is* the experiment
//! suite — Criterion timing of Monte-Carlo sweeps would only measure the
//! sweep sizes. Set `RCB_SCALE=full` for publication-grade trial counts.

fn main() {
    // `cargo bench -- --list`-style flags arrive from the harness; the
    // experiment suite has nothing to list, so only run on a bare or
    // `--bench` invocation.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        // Test/bench harness protocol: report no benchmarks.
        return;
    }
    let scale = rcb_bench::Scale::from_env();
    println!("# rcb experiment suite (scale: {scale:?})");
    println!("{}", rcb_bench::experiments::run_all(&scale));
}
