//! Criterion micro-benchmarks for the hot paths: channel slot resolution,
//! the exact binomial/Bernoulli-process samplers, one full 1-to-1 epoch on
//! the fast engine, one 1-to-n repetition, and the parallel trial runner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcb_adversary::rep_strategies::NoJamRep;
use rcb_channel::ledger::EnergyLedger;
use rcb_channel::message::Payload;
use rcb_channel::partition::Partition;
use rcb_channel::slot::{resolve_slot, Action, JamDecision};
use rcb_core::one_to_n::OneToNParams;
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::{binomial, sample_slots};
use rcb_sim::duel::{run_duel, DuelConfig};
use rcb_sim::fast::{run_broadcast, FastConfig};
use rcb_sim::runner::{run_trials, Parallelism};
use std::hint::black_box;

fn bench_resolve_slot(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel/resolve_slot");
    for n in [2usize, 16, 128] {
        let partition = Partition::uniform(n);
        let mut actions = vec![Action::Sleep; n];
        actions[0] = Action::Send(Payload::message());
        actions[n - 1] = Action::Listen;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut ledger = EnergyLedger::new(n);
            b.iter(|| {
                black_box(resolve_slot(
                    black_box(&actions),
                    &JamDecision::none(),
                    &partition,
                    &mut ledger,
                ))
            });
        });
    }
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mathkit");
    group.bench_function("binomial_n4096_p0.01", |b| {
        let mut rng = RcbRng::new(1);
        b.iter(|| black_box(binomial(&mut rng, 4096, 0.01)));
    });
    group.bench_function("sample_slots_n65536_p0.001", |b| {
        let mut rng = RcbRng::new(2);
        b.iter(|| black_box(sample_slots(&mut rng, 65536, 0.001)));
    });
    group.finish();
}

fn bench_duel(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/duel");
    group.bench_function("unjammed_full_run_eps0.01", |b| {
        let profile = Fig1Profile::with_start_epoch(0.01, 8);
        let mut rng = RcbRng::new(3);
        b.iter(|| {
            let mut adv = NoJamRep;
            black_box(run_duel(
                &profile,
                &mut adv,
                &mut rng,
                DuelConfig::default(),
            ))
        });
    });
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/broadcast");
    group.sample_size(10);
    for n in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("unjammed_full_run", n), &n, |b, &n| {
            let params = OneToNParams::practical();
            let mut rng = RcbRng::new(4);
            b.iter(|| {
                let mut adv = NoJamRep;
                black_box(run_broadcast(
                    &params,
                    n,
                    &mut adv,
                    &mut rng,
                    FastConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

fn bench_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("100_duels", threads),
            &threads,
            |b, &threads| {
                let profile = Fig1Profile::with_start_epoch(0.01, 8);
                b.iter(|| {
                    black_box(run_trials(100, 9, Parallelism::Fixed(threads), |_, rng| {
                        let mut adv = NoJamRep;
                        run_duel(&profile, &mut adv, rng, DuelConfig::default())
                    }))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_resolve_slot,
    bench_samplers,
    bench_duel,
    bench_broadcast,
    bench_runner
);
criterion_main!(benches);
