//! Adversary interfaces and the information they are allowed to see.
//!
//! The model (§1.2): the adversary is adaptive — "she knows the actions of
//! all nodes in previous time slots and uses this information to inform
//! future attacks" — and knows the protocol, including its deterministic
//! schedule (epoch/phase/repetition boundaries), but never the random bits
//! of the current slot. The engines enforce this by consulting the adversary
//! *before* sampling node actions for the slot, and showing her the resolved
//! slot only afterwards.

use rcb_channel::slot::{Action, JamDecision, SlotResolution};
use rcb_channel::Slot;

/// Public-schedule information available to the adversary at the start of a
/// slot. Periods are the protocol's deterministic units (a phase of the
/// 1-to-1 protocol, a repetition of the 1-to-n protocol); their boundaries
/// are public knowledge because the protocol is public.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotContext {
    /// Global slot index since the start of the execution.
    pub slot: Slot,
    /// Index of the current period.
    pub period: u64,
    /// Slot offset within the current period.
    pub offset: u64,
    /// Length of the current period in slots.
    pub period_len: u64,
    /// Number of jamming groups in the partition.
    pub groups: usize,
}

impl SlotContext {
    /// Bitmask covering every group.
    pub fn all_groups_mask(&self) -> u64 {
        if self.groups >= 64 {
            u64::MAX
        } else {
            (1u64 << self.groups.max(1)) - 1
        }
    }
}

/// What the adversary observes once a slot has resolved: everyone's actions
/// and the resulting channel states. (She paid for the slot already; this
/// is the "previous time slots" knowledge for *future* decisions.)
#[derive(Debug)]
pub struct SlotObservation<'a> {
    pub ctx: SlotContext,
    pub actions: &'a [Action],
    pub resolution: &'a SlotResolution,
}

/// A slot-granularity adversary, consulted by the exact engine.
pub trait SlotAdversary {
    /// Decide the jamming/spoofing move for the upcoming slot. Called
    /// before node actions for the slot are sampled.
    fn decide(&mut self, ctx: &SlotContext) -> JamDecision;

    /// Observe the resolved slot (adaptive strategies update state here).
    fn observe(&mut self, _obs: &SlotObservation<'_>) {}

    /// Remaining budget in (group, slot) units, if bounded.
    fn remaining_budget(&self) -> Option<u64> {
        None
    }
}

/// A jam plan for one whole repetition of the 1-to-n protocol.
///
/// `Suffix` is the canonical (Lemma 1) form: jam the last `k` slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JamPlan {
    /// Leave the repetition alone.
    None,
    /// Jam the final `k` slots of the repetition.
    Suffix(u64),
    /// Jam an explicit, sorted, deduplicated set of slot offsets.
    Slots(Vec<u64>),
    /// Jam every slot.
    All,
}

impl JamPlan {
    /// Number of slots this plan jams within a repetition of `len` slots.
    pub fn jam_count(&self, len: u64) -> u64 {
        match self {
            JamPlan::None => 0,
            JamPlan::Suffix(k) => (*k).min(len),
            JamPlan::Slots(v) => v.iter().filter(|&&s| s < len).count() as u64,
            JamPlan::All => len,
        }
    }

    /// Whether slot `offset` is jammed under this plan.
    pub fn is_jammed(&self, offset: u64, len: u64) -> bool {
        match self {
            JamPlan::None => false,
            JamPlan::Suffix(k) => offset >= len.saturating_sub(*k),
            JamPlan::Slots(v) => v.binary_search(&offset).is_ok(),
            JamPlan::All => offset < len,
        }
    }
}

/// Schedule information for one repetition of the 1-to-n protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepetitionContext {
    /// Epoch index `i` (the repetition has `2^i` slots).
    pub epoch: u32,
    /// Repetition index within the epoch (`0 .. b·i²`).
    pub repetition: u64,
    /// Number of slots in the repetition (`2^i`).
    pub slots: u64,
    /// Number of nodes that have not terminated (observable: the adversary
    /// has seen every past action, so it knows who has gone silent).
    pub active_nodes: usize,
}

/// Aggregate observation of a finished repetition — everything the fast
/// engine can cheaply expose, and no more than the model allows (actions,
/// not internal state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepetitionSummary {
    /// Slots in which exactly one node transmitted the message `m`.
    pub message_slots: u64,
    /// Slots containing at least one transmission (any payload).
    pub busy_slots: u64,
    /// Slots the plan jammed.
    pub jammed_slots: u64,
    /// Total listen actions across nodes.
    pub listen_actions: u64,
    /// Total send actions across nodes.
    pub send_actions: u64,
}

/// A repetition-granularity adversary, consulted by the fast engine.
pub trait RepetitionAdversary {
    /// Plan the jamming for the upcoming repetition.
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan;

    /// Observe the aggregate outcome of the repetition just resolved.
    fn observe(&mut self, _ctx: &RepetitionContext, _summary: &RepetitionSummary) {}

    /// Remaining budget in slot units, if bounded.
    fn remaining_budget(&self) -> Option<u64> {
        None
    }

    /// Re-arms the strategy to its just-constructed state: full budget,
    /// reset learning state, reset internal RNG (seeded strategies re-derive
    /// their stream from the construction seed). The streaming workload's
    /// per-message allocation policy calls this between messages; the
    /// default is a no-op, correct for stateless strategies.
    fn rearm(&mut self) {}
}

/// Boxed strategies forward, so `Box<dyn RepetitionAdversary>` plugs into
/// anything generic over `A: RepetitionAdversary` (e.g. the conformance
/// harness, which builds a fresh boxed strategy per trial per engine).
impl<A: RepetitionAdversary + ?Sized> RepetitionAdversary for Box<A> {
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan {
        (**self).plan(ctx)
    }

    fn observe(&mut self, ctx: &RepetitionContext, summary: &RepetitionSummary) {
        (**self).observe(ctx, summary)
    }

    fn remaining_budget(&self) -> Option<u64> {
        (**self).remaining_budget()
    }

    fn rearm(&mut self) {
        (**self).rearm()
    }
}

/// Mutable borrows forward too, so a caller that owns a strategy across
/// runs (the session layer's streaming loop) can lend it to an adapter
/// that is generic over `A: RepetitionAdversary` by value.
impl<A: RepetitionAdversary + ?Sized> RepetitionAdversary for &mut A {
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan {
        (**self).plan(ctx)
    }

    fn observe(&mut self, ctx: &RepetitionContext, summary: &RepetitionSummary) {
        (**self).observe(ctx, summary)
    }

    fn remaining_budget(&self) -> Option<u64> {
        (**self).remaining_budget()
    }

    fn rearm(&mut self) {
        (**self).rearm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_groups_mask_covers_partition() {
        let ctx = SlotContext {
            slot: 0,
            period: 0,
            offset: 0,
            period_len: 8,
            groups: 2,
        };
        assert_eq!(ctx.all_groups_mask(), 0b11);
        let one = SlotContext { groups: 1, ..ctx };
        assert_eq!(one.all_groups_mask(), 0b1);
        let zero = SlotContext { groups: 0, ..ctx };
        assert_eq!(zero.all_groups_mask(), 0b1, "degenerate: at least group 0");
    }

    #[test]
    fn jam_plan_counts() {
        assert_eq!(JamPlan::None.jam_count(16), 0);
        assert_eq!(JamPlan::All.jam_count(16), 16);
        assert_eq!(JamPlan::Suffix(4).jam_count(16), 4);
        assert_eq!(JamPlan::Suffix(99).jam_count(16), 16, "suffix clamps");
        assert_eq!(JamPlan::Slots(vec![1, 5, 20]).jam_count(16), 2);
    }

    #[test]
    fn jam_plan_membership() {
        let suffix = JamPlan::Suffix(4);
        assert!(!suffix.is_jammed(11, 16));
        assert!(suffix.is_jammed(12, 16));
        assert!(suffix.is_jammed(15, 16));

        let slots = JamPlan::Slots(vec![0, 3, 7]);
        assert!(slots.is_jammed(3, 8));
        assert!(!slots.is_jammed(4, 8));

        assert!(JamPlan::All.is_jammed(0, 8));
        assert!(!JamPlan::None.is_jammed(0, 8));
    }

    #[test]
    fn suffix_longer_than_period_jams_everything() {
        let plan = JamPlan::Suffix(100);
        for s in 0..8 {
            assert!(plan.is_jammed(s, 8));
        }
    }
}
