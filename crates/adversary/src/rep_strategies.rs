//! Repetition-granularity strategies for the fast 1-to-n engine.
//!
//! The Theorem 3 analysis pins down what an effective adversary must do:
//! to stop `S_V` from growing it must ½-block repetitions (Lemma 8), to
//! stop dissemination or helper-termination it must 1/10-block a constant
//! fraction of an epoch's repetitions (Lemmas 9/12), and pushing the system
//! into epoch `i ≫ log n` costs `T = Ω(i²·2^i)`. `BudgetedRepBlocker` is
//! that attacker: it q-blocks every repetition from the start until its
//! budget runs out.

use crate::error::AdversaryConfigError;
use crate::traits::{JamPlan, RepetitionAdversary, RepetitionContext, RepetitionSummary};
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::{bernoulli, sample_slots};

fn check_fraction(what: &'static str, value: f64) -> Result<(), AdversaryConfigError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(AdversaryConfigError::FractionOutOfRange { what, value })
    }
}

/// No jamming: the τ (efficiency-function) baseline.
#[derive(Debug, Clone, Default)]
pub struct NoJamRep;

impl RepetitionAdversary for NoJamRep {
    fn plan(&mut self, _ctx: &RepetitionContext) -> JamPlan {
        JamPlan::None
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(0)
    }
}

/// q-blocks (jams the last `ceil(q·2^i)` slots of) each repetition until the
/// budget is exhausted. With `q = 1.0` it silences whole repetitions.
#[derive(Debug, Clone)]
pub struct BudgetedRepBlocker {
    budget: u64,
    spent: u64,
    q: f64,
}

impl BudgetedRepBlocker {
    /// Checked constructor: rejects `q ∉ [0, 1]` as a typed error.
    pub fn try_new(budget: u64, q: f64) -> Result<Self, AdversaryConfigError> {
        check_fraction("q", q)?;
        Ok(Self {
            budget,
            spent: 0,
            q,
        })
    }

    /// # Panics
    ///
    /// Panics if `q ∉ [0, 1]`; use [`BudgetedRepBlocker::try_new`] for
    /// configurations built from user input.
    pub fn new(budget: u64, q: f64) -> Self {
        Self::try_new(budget, q).expect("valid blocking fraction")
    }

    pub fn spent(&self) -> u64 {
        self.spent
    }
}

impl RepetitionAdversary for BudgetedRepBlocker {
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan {
        let want = ((self.q * ctx.slots as f64).ceil() as u64).min(ctx.slots);
        let left = self.budget - self.spent;
        // Partial blocking below the intended fraction is wasted energy
        // (a (q-δ)-blocked repetition still lets the protocol progress), so
        // only jam if the full q-suffix is affordable.
        if want == 0 || want > left {
            return JamPlan::None;
        }
        self.spent += want;
        JamPlan::Suffix(want)
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }

    fn rearm(&mut self) {
        self.spent = 0;
    }
}

/// ½-blocks repetitions: the cheapest rate that freezes `S_V` growth
/// (Lemma 8: a repetition with clear-slot fraction ≤ 1/2 does not increase
/// any `S_u`). A convenience wrapper around [`BudgetedRepBlocker`].
#[derive(Debug, Clone)]
pub struct HalfRepBlocker(BudgetedRepBlocker);

impl HalfRepBlocker {
    pub fn new(budget: u64) -> Self {
        // Slightly above 1/2 so sampling noise cannot leave the clear
        // fraction above the growth threshold.
        Self(BudgetedRepBlocker::new(budget, 0.55))
    }
}

impl RepetitionAdversary for HalfRepBlocker {
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan {
        self.0.plan(ctx)
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.0.remaining_budget()
    }

    fn rearm(&mut self) {
        self.0.rearm()
    }
}

/// Unbounded q-suffix jamming of every repetition — used by the dynamics
/// experiment (E10) to hold the system in a chosen regime.
#[derive(Debug, Clone)]
pub struct SuffixFractionRep {
    q: f64,
}

impl SuffixFractionRep {
    /// Checked constructor: rejects `q ∉ [0, 1]` as a typed error.
    pub fn try_new(q: f64) -> Result<Self, AdversaryConfigError> {
        check_fraction("q", q)?;
        Ok(Self { q })
    }

    /// # Panics
    ///
    /// Panics if `q ∉ [0, 1]`; use [`SuffixFractionRep::try_new`] for
    /// configurations built from user input.
    pub fn new(q: f64) -> Self {
        Self::try_new(q).expect("valid blocking fraction")
    }
}

impl RepetitionAdversary for SuffixFractionRep {
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan {
        let k = ((self.q * ctx.slots as f64).ceil() as u64).min(ctx.slots);
        if k == 0 {
            JamPlan::None
        } else {
            JamPlan::Suffix(k)
        }
    }
}

/// The cost-efficient "keep-alive" attack against two-party epoch
/// protocols: jam a small suffix of **odd periods only** (the nack phases
/// of the Figure 1 schedule, where the *sender* listens for nacks).
///
/// Rationale (validated by experiment E11): delivery cannot be stopped
/// without half-blocking send phases, but *halting* is governed by the
/// noise threshold `Θᵢ` — roughly a 1/8 fraction. Jamming only the phases
/// where halting decisions are made keeps both parties paying their full
/// per-epoch budgets at a fraction of the blanket-blocking price.
#[derive(Debug, Clone)]
pub struct KeepAliveBlocker {
    budget: u64,
    spent: u64,
    q: f64,
}

impl KeepAliveBlocker {
    /// `q` is the fraction of each nack phase to jam; it must exceed the
    /// protocol's noise-threshold fraction to bite (¼ is a safe default
    /// for the Figure 1 profile, whose Θᵢ corresponds to ⅛). Rejects
    /// `q ∉ [0, 1]` as a typed error.
    pub fn try_new(budget: u64, q: f64) -> Result<Self, AdversaryConfigError> {
        check_fraction("q", q)?;
        Ok(Self {
            budget,
            spent: 0,
            q,
        })
    }

    /// # Panics
    ///
    /// Panics if `q ∉ [0, 1]`; use [`KeepAliveBlocker::try_new`] for
    /// configurations built from user input.
    pub fn new(budget: u64, q: f64) -> Self {
        Self::try_new(budget, q).expect("valid blocking fraction")
    }
}

impl RepetitionAdversary for KeepAliveBlocker {
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan {
        if ctx.repetition.is_multiple_of(2) {
            return JamPlan::None; // send phase: let m through, it is cheap
        }
        let want = ((self.q * ctx.slots as f64).ceil() as u64).min(ctx.slots);
        let left = self.budget - self.spent;
        if want == 0 || want > left {
            return JamPlan::None;
        }
        self.spent += want;
        JamPlan::Suffix(want)
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }

    fn rearm(&mut self) {
        self.spent = 0;
    }
}

/// A *learning* jammer: ε-greedy bandit over blocking fractions.
///
/// §1.4 cites Dams–Hoefer–Kesselheim's jamming-resistant *defenders* built
/// on distributed learning; this is the mirror image — an attacker that
/// does not know which blocking fraction is budget-optimal for the victim
/// protocol (experiment E11 shows it is *not* full blocking) and learns it
/// online across executions.
///
/// One arm = one q fraction. The bandit commits to a single arm for a whole
/// *execution* (picked at the first `plan` after construction or
/// [`refill`](Self::refill)), because a weak arm ends a run within an epoch
/// or two — there is no within-run sample budget to learn from. The reward
/// is the **total victim activity observed during the run**: the budget is
/// per-run ("use it or lose it"), so raw extracted cost — not cost per
/// energy — is the attacker's objective. Exploration is ε-greedy with
/// ε = 1/√(runs).
#[derive(Debug)]
pub struct BanditBlocker {
    arms: Vec<f64>,
    reward_sum: Vec<f64>,
    pulls: Vec<u64>,
    budget: u64,
    spent: u64,
    seed: u64,
    rng: RcbRng,
    current_arm: Option<usize>,
    run_activity: u64,
    runs: u64,
}

impl BanditBlocker {
    /// `arms` are the candidate blocking fractions (each in `[0, 1]`).
    /// Rejects an empty arm set or an out-of-range fraction as a typed
    /// error.
    pub fn try_new(arms: Vec<f64>, budget: u64, seed: u64) -> Result<Self, AdversaryConfigError> {
        if arms.is_empty() {
            return Err(AdversaryConfigError::NoArms);
        }
        if let Some(&bad) = arms.iter().find(|q| !(0.0..=1.0).contains(*q)) {
            return Err(AdversaryConfigError::FractionOutOfRange {
                what: "arm",
                value: bad,
            });
        }
        let k = arms.len();
        Ok(Self {
            arms,
            reward_sum: vec![0.0; k],
            pulls: vec![0; k],
            budget,
            spent: 0,
            seed,
            rng: RcbRng::new(seed),
            current_arm: None,
            run_activity: 0,
            runs: 0,
        })
    }

    /// # Panics
    ///
    /// Panics on an empty arm set or an out-of-range fraction; use
    /// [`BanditBlocker::try_new`] for configurations built from user input.
    pub fn new(arms: Vec<f64>, budget: u64, seed: u64) -> Self {
        Self::try_new(arms, budget, seed).expect("valid bandit arms")
    }

    fn pick_arm(&mut self) -> usize {
        self.runs += 1;
        // Pull every arm once first, then explore with decaying ε.
        if let Some(unpulled) = self.pulls.iter().position(|&p| p == 0) {
            return unpulled;
        }
        let epsilon = 1.0 / (self.runs as f64).sqrt();
        if bernoulli(&mut self.rng, epsilon) {
            return self.rng.below(self.arms.len() as u64) as usize;
        }
        let mut best = 0;
        for i in 1..self.arms.len() {
            let mean_i = self.reward_sum[i] / self.pulls[i] as f64;
            let mean_b = self.reward_sum[best] / self.pulls[best] as f64;
            if mean_i > mean_b {
                best = i;
            }
        }
        best
    }

    /// Flushes the finished run's reward into the arm statistics. Called
    /// automatically by [`refill`](Self::refill); call directly after the
    /// final run.
    pub fn settle_now(&mut self) {
        if let Some(arm) = self.current_arm.take() {
            self.reward_sum[arm] += self.run_activity as f64;
            self.pulls[arm] += 1;
        }
        self.run_activity = 0;
    }

    /// Settles the finished run and refills the jamming budget for the
    /// next one, keeping everything learned so far.
    pub fn refill(&mut self, budget: u64) {
        self.settle_now();
        self.budget = budget;
        self.spent = 0;
    }

    /// `(q, mean reward, pulls)` per arm, for diagnostics.
    pub fn arm_means(&self) -> Vec<(f64, f64, u64)> {
        self.arms
            .iter()
            .zip(&self.reward_sum)
            .zip(&self.pulls)
            .map(|((&q, &r), &p)| (q, if p == 0 { 0.0 } else { r / p as f64 }, p))
            .collect()
    }
}

impl RepetitionAdversary for BanditBlocker {
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan {
        let arm = match self.current_arm {
            Some(a) => a,
            None => {
                let a = self.pick_arm();
                self.current_arm = Some(a);
                a
            }
        };
        let q = self.arms[arm];
        let want = ((q * ctx.slots as f64).ceil() as u64).min(ctx.slots);
        let left = self.budget - self.spent;
        if want == 0 || want > left {
            return JamPlan::None;
        }
        self.spent += want;
        JamPlan::Suffix(want)
    }

    fn observe(&mut self, _ctx: &RepetitionContext, summary: &RepetitionSummary) {
        self.run_activity += summary.listen_actions + summary.send_actions;
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }

    /// Full reset: forgets everything learned (the [`refill`](Self::refill)
    /// path keeps the statistics; `rearm` is the just-constructed contract).
    fn rearm(&mut self) {
        self.reward_sum.iter_mut().for_each(|r| *r = 0.0);
        self.pulls.iter_mut().for_each(|p| *p = 0);
        self.spent = 0;
        self.rng = RcbRng::new(self.seed);
        self.current_arm = None;
        self.run_activity = 0;
        self.runs = 0;
    }
}

/// Jams uniformly random slots at `rate` within each repetition until the
/// budget is spent — the non-canonical jammer for the ablation (E11).
#[derive(Debug)]
pub struct RandomRep {
    rate: f64,
    budget: u64,
    spent: u64,
    seed: u64,
    rng: RcbRng,
}

impl RandomRep {
    /// Checked constructor: rejects `rate ∉ [0, 1]` as a typed error.
    pub fn try_new(rate: f64, budget: u64, seed: u64) -> Result<Self, AdversaryConfigError> {
        check_fraction("rate", rate)?;
        Ok(Self {
            rate,
            budget,
            spent: 0,
            seed,
            rng: RcbRng::new(seed),
        })
    }

    /// # Panics
    ///
    /// Panics if `rate ∉ [0, 1]`; use [`RandomRep::try_new`] for
    /// configurations built from user input.
    pub fn new(rate: f64, budget: u64, seed: u64) -> Self {
        Self::try_new(rate, budget, seed).expect("valid jamming rate")
    }
}

impl RepetitionAdversary for RandomRep {
    fn plan(&mut self, ctx: &RepetitionContext) -> JamPlan {
        if self.spent >= self.budget {
            return JamPlan::None;
        }
        let mut slots = sample_slots(&mut self.rng, ctx.slots, self.rate);
        let left = (self.budget - self.spent) as usize;
        if slots.len() > left {
            slots.truncate(left);
        }
        self.spent += slots.len() as u64;
        if slots.is_empty() {
            JamPlan::None
        } else {
            JamPlan::Slots(slots)
        }
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }

    fn rearm(&mut self) {
        self.spent = 0;
        self.rng = RcbRng::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(epoch: u32, repetition: u64) -> RepetitionContext {
        RepetitionContext {
            epoch,
            repetition,
            slots: 1u64 << epoch,
            active_nodes: 8,
        }
    }

    #[test]
    fn no_jam_rep_plans_nothing() {
        let mut a = NoJamRep;
        assert_eq!(a.plan(&ctx(6, 0)), JamPlan::None);
    }

    #[test]
    fn budgeted_blocker_spends_exactly_budget_granularity() {
        // Budget 100, q = 1, epoch 5 (32 slots/rep): blocks 3 reps (96),
        // then cannot afford a 4th full block and stops.
        let mut a = BudgetedRepBlocker::new(100, 1.0);
        let mut blocked = 0;
        for r in 0..10 {
            match a.plan(&ctx(5, r)) {
                JamPlan::Suffix(32) => blocked += 1,
                JamPlan::None => {}
                other => panic!("unexpected plan {other:?}"),
            }
        }
        assert_eq!(blocked, 3);
        assert_eq!(a.spent(), 96);
        assert_eq!(a.remaining_budget(), Some(4));
    }

    #[test]
    fn fraction_blocker_suffix_size() {
        let mut a = BudgetedRepBlocker::new(u64::MAX / 2, 0.1);
        match a.plan(&ctx(10, 0)) {
            // ceil(0.1 * 1024) = 103.
            JamPlan::Suffix(k) => assert_eq!(k, 103),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn half_blocker_exceeds_half() {
        let mut a = HalfRepBlocker::new(u64::MAX / 2);
        match a.plan(&ctx(8, 0)) {
            JamPlan::Suffix(k) => {
                assert!(k as f64 > 0.5 * 256.0, "k = {k} must exceed half");
                assert!(k < 256);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn suffix_fraction_unbounded() {
        let mut a = SuffixFractionRep::new(0.5);
        for r in 0..100 {
            match a.plan(&ctx(4, r)) {
                JamPlan::Suffix(8) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(a.remaining_budget(), None, "unbounded");
    }

    #[test]
    fn suffix_fraction_zero_is_none() {
        let mut a = SuffixFractionRep::new(0.0);
        assert_eq!(a.plan(&ctx(4, 0)), JamPlan::None);
    }

    #[test]
    fn bandit_pulls_every_arm_then_exploits_the_best() {
        // Synthetic campaign: each "run" is one repetition; the environment
        // pays activity 160·q·(q ≤ 0.5): diluted arms extract more, the
        // zero-ish arm nothing (run ends instantly). Best arm: q = 0.25.
        let mut a = BanditBlocker::new(vec![0.0625, 0.25, 1.0], u64::MAX / 2, 7);
        for run in 0..200u64 {
            let ctx = RepetitionContext {
                epoch: 6,
                repetition: 0,
                slots: 64,
                active_nodes: 2,
            };
            let plan = a.plan(&ctx);
            let jammed = plan.jam_count(64);
            // Threshold-cliff environment (the E11 shape): below 8 jammed
            // slots the victim quits early (low activity); above, activity
            // falls with over-jamming.
            let activity = if jammed < 8 {
                20
            } else {
                160u64.saturating_sub(jammed)
            };
            a.observe(
                &ctx,
                &RepetitionSummary {
                    message_slots: 0,
                    busy_slots: 0,
                    jammed_slots: jammed,
                    listen_actions: activity,
                    send_actions: 0,
                },
            );
            a.refill(u64::MAX / 2);
            let _ = run;
        }
        a.settle_now();
        let means = a.arm_means();
        assert!(
            means.iter().all(|&(_, _, pulls)| pulls >= 1),
            "all explored"
        );
        let best = means
            .iter()
            .max_by(|x, y| x.2.cmp(&y.2))
            .expect("non-empty");
        assert_eq!(
            best.0, 0.25,
            "bandit converged to the diluted arm: {means:?}"
        );
    }

    #[test]
    fn bandit_commits_to_one_arm_per_run() {
        let mut a = BanditBlocker::new(vec![0.25, 1.0], u64::MAX / 2, 3);
        let mut fractions = Vec::new();
        for rep in 0..6 {
            let ctx = RepetitionContext {
                epoch: 6,
                repetition: rep,
                slots: 64,
                active_nodes: 2,
            };
            fractions.push(a.plan(&ctx).jam_count(64));
        }
        // All plans within one run use the same arm.
        assert!(fractions.windows(2).all(|w| w[0] == w[1]), "{fractions:?}");
    }

    #[test]
    fn bandit_respects_budget() {
        let mut a = BanditBlocker::new(vec![1.0], 100, 3);
        let mut total = 0u64;
        for epoch in 5..9u32 {
            for rep in 0..10 {
                let ctx = RepetitionContext {
                    epoch,
                    repetition: rep,
                    slots: 32,
                    active_nodes: 2,
                };
                total += a.plan(&ctx).jam_count(32);
            }
        }
        assert!(total <= 100);
        assert_eq!(a.remaining_budget(), Some(100 - total));
        // Refill restores the budget and keeps the statistics.
        a.refill(100);
        assert_eq!(a.remaining_budget(), Some(100));
        assert_eq!(a.arm_means()[0].2, 1, "one settled run");
    }

    #[test]
    fn keep_alive_blocker_targets_odd_periods() {
        let mut a = KeepAliveBlocker::new(1000, 0.25);
        // Even period (send phase): untouched.
        assert_eq!(a.plan(&ctx(6, 0)), JamPlan::None);
        // Odd period (nack phase): quarter suffix.
        match a.plan(&ctx(6, 1)) {
            JamPlan::Suffix(k) => assert_eq!(k, 16),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(a.remaining_budget(), Some(984));
    }

    #[test]
    fn keep_alive_blocker_respects_budget() {
        let mut a = KeepAliveBlocker::new(20, 0.25);
        // Each odd epoch-6 plan costs 16; only one fits in 20.
        assert!(matches!(a.plan(&ctx(6, 1)), JamPlan::Suffix(16)));
        assert_eq!(a.plan(&ctx(6, 3)), JamPlan::None);
    }

    #[test]
    fn random_rep_respects_budget_and_rate() {
        let mut a = RandomRep::new(0.25, 1000, 3);
        let mut total = 0u64;
        for r in 0..100 {
            total += a.plan(&ctx(8, r)).jam_count(256);
        }
        assert!(total <= 1000);
        // Expected spend before capping: 100 · 256 · 0.25 = 6400 > 1000, so
        // the budget must be the binding constraint.
        assert_eq!(total, 1000);
        assert_eq!(a.remaining_budget(), Some(0));
    }

    #[test]
    fn try_new_rejects_malformed_configs_with_typed_errors() {
        assert!(matches!(
            BudgetedRepBlocker::try_new(100, 1.5),
            Err(AdversaryConfigError::FractionOutOfRange { what: "q", .. })
        ));
        assert!(matches!(
            SuffixFractionRep::try_new(-0.1),
            Err(AdversaryConfigError::FractionOutOfRange { what: "q", .. })
        ));
        assert!(matches!(
            KeepAliveBlocker::try_new(100, f64::NAN),
            Err(AdversaryConfigError::FractionOutOfRange { what: "q", .. })
        ));
        assert!(matches!(
            RandomRep::try_new(2.0, 100, 1),
            Err(AdversaryConfigError::FractionOutOfRange { what: "rate", .. })
        ));
        assert!(matches!(
            BanditBlocker::try_new(vec![], 100, 1),
            Err(AdversaryConfigError::NoArms)
        ));
        assert!(matches!(
            BanditBlocker::try_new(vec![0.5, 1.2], 100, 1),
            Err(AdversaryConfigError::FractionOutOfRange { what: "arm", .. })
        ));
        // The happy paths still construct.
        assert!(BudgetedRepBlocker::try_new(100, 0.5).is_ok());
        assert!(SuffixFractionRep::try_new(0.0).is_ok());
        assert!(KeepAliveBlocker::try_new(100, 1.0).is_ok());
        assert!(RandomRep::try_new(0.25, 100, 1).is_ok());
        assert!(BanditBlocker::try_new(vec![0.25, 1.0], 100, 1).is_ok());
    }

    #[test]
    #[should_panic]
    fn panicking_wrapper_is_preserved() {
        let _ = BudgetedRepBlocker::new(100, 1.5);
    }

    #[test]
    fn random_rep_slots_are_valid() {
        let mut a = RandomRep::new(0.1, u64::MAX / 2, 4);
        for r in 0..20 {
            if let JamPlan::Slots(v) = a.plan(&ctx(7, r)) {
                assert!(v.windows(2).all(|w| w[0] < w[1]));
                assert!(v.iter().all(|&s| s < 128));
            }
        }
    }
}
