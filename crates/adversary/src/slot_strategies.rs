//! Slot-granularity jamming strategies for the exact engine.
//!
//! `BudgetedPhaseBlocker` is the canonical attacker for the cost-vs-T
//! experiments: per Lemma 1 it jams a *suffix* of each protocol period, and
//! per the Theorem 1 analysis the adversary must (1/16)-block a phase to
//! keep Alice and Bob running — so blocking whole early periods is the
//! budget-optimal way to inflate good-node cost. The others (random,
//! periodic, reactive) populate the robustness ablation (E11).

use crate::traits::{SlotAdversary, SlotContext, SlotObservation};
use rcb_channel::slot::JamDecision;
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::bernoulli;

/// The absent adversary (`T = 0`): the efficiency-function (τ) baseline.
#[derive(Debug, Clone, Default)]
pub struct NoJam;

impl SlotAdversary for NoJam {
    fn decide(&mut self, _ctx: &SlotContext) -> JamDecision {
        JamDecision::none()
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(0)
    }
}

/// Jams a `fraction`-suffix of every period until the budget is spent.
///
/// With `fraction = 1.0` this blocks whole periods outright, which keeps the
/// protocol in its early (cheap) epochs while the budget lasts — the
/// strategy the upper-bound proofs identify as the adversary's best play.
/// `group_mask` selects which partition groups to jam (e.g. only Bob's).
#[derive(Debug, Clone)]
pub struct BudgetedPhaseBlocker {
    budget: u64,
    spent: u64,
    fraction: f64,
    group_mask: Option<u64>,
}

impl BudgetedPhaseBlocker {
    /// Jam all groups, `fraction` of each period, with total budget
    /// `budget` (in (group, slot) units).
    pub fn new(budget: u64, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        Self {
            budget,
            spent: 0,
            fraction,
            group_mask: None,
        }
    }

    /// Restrict jamming to the groups in `mask`.
    pub fn with_group_mask(mut self, mask: u64) -> Self {
        self.group_mask = Some(mask);
        self
    }

    pub fn spent(&self) -> u64 {
        self.spent
    }
}

impl SlotAdversary for BudgetedPhaseBlocker {
    fn decide(&mut self, ctx: &SlotContext) -> JamDecision {
        let mask = self.group_mask.unwrap_or(ctx.all_groups_mask()) & ctx.all_groups_mask();
        let cost = mask.count_ones() as u64;
        if cost == 0 || self.spent + cost > self.budget {
            return JamDecision::none();
        }
        // Suffix of the period: offsets in [len - ceil(f·len), len).
        let jam_len = (self.fraction * ctx.period_len as f64).ceil() as u64;
        let start = ctx.period_len.saturating_sub(jam_len);
        if ctx.offset >= start {
            self.spent += cost;
            JamDecision {
                jam_mask: mask,
                inject: None,
            }
        } else {
            JamDecision::none()
        }
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }
}

/// Jams each slot independently with probability `rate` until the budget is
/// spent (the random-failure adversary of Pelc–Peleg, cited in §1.4).
#[derive(Debug)]
pub struct RandomJammer {
    rate: f64,
    budget: u64,
    spent: u64,
    rng: RcbRng,
}

impl RandomJammer {
    pub fn new(rate: f64, budget: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate in [0,1]");
        Self {
            rate,
            budget,
            spent: 0,
            rng: RcbRng::new(seed),
        }
    }
}

impl SlotAdversary for RandomJammer {
    fn decide(&mut self, ctx: &SlotContext) -> JamDecision {
        let mask = ctx.all_groups_mask();
        let cost = mask.count_ones() as u64;
        if self.spent + cost > self.budget || !bernoulli(&mut self.rng, self.rate) {
            return JamDecision::none();
        }
        self.spent += cost;
        JamDecision {
            jam_mask: mask,
            inject: None,
        }
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }
}

/// Jams `duty` consecutive slots out of every `period` slots (bursty
/// interference: e.g. a co-located legacy transmitter).
#[derive(Debug, Clone)]
pub struct PeriodicJammer {
    period: u64,
    duty: u64,
    budget: u64,
    spent: u64,
}

impl PeriodicJammer {
    pub fn new(period: u64, duty: u64, budget: u64) -> Self {
        assert!(
            period > 0 && duty <= period,
            "need duty <= period, period > 0"
        );
        Self {
            period,
            duty,
            budget,
            spent: 0,
        }
    }
}

impl SlotAdversary for PeriodicJammer {
    fn decide(&mut self, ctx: &SlotContext) -> JamDecision {
        let mask = ctx.all_groups_mask();
        let cost = mask.count_ones() as u64;
        if self.spent + cost > self.budget || ctx.slot % self.period >= self.duty {
            return JamDecision::none();
        }
        self.spent += cost;
        JamDecision {
            jam_mask: mask,
            inject: None,
        }
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }
}

/// Jams the slot after any slot that carried a transmission — a reactive
/// jammer chasing observed activity (it cannot react within a slot; the
/// model only grants knowledge of *previous* slots).
#[derive(Debug, Clone)]
pub struct ReactiveJammer {
    budget: u64,
    spent: u64,
    trigger: bool,
}

impl ReactiveJammer {
    pub fn new(budget: u64) -> Self {
        Self {
            budget,
            spent: 0,
            trigger: false,
        }
    }
}

impl SlotAdversary for ReactiveJammer {
    fn decide(&mut self, ctx: &SlotContext) -> JamDecision {
        let mask = ctx.all_groups_mask();
        let cost = mask.count_ones() as u64;
        if !self.trigger || self.spent + cost > self.budget {
            return JamDecision::none();
        }
        self.spent += cost;
        JamDecision {
            jam_mask: mask,
            inject: None,
        }
    }

    fn observe(&mut self, obs: &SlotObservation<'_>) {
        self.trigger = obs.resolution.senders > 0;
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }
}

/// Injects spoofed nacks — the Theorem 5 capability, usable only in the
/// unauthenticated-Bob model.
///
/// Strategy: transmit one fake nack near the end of every period (for the
/// Figure 1 schedule, periods alternate send/nack phases, so half these
/// injections land where Alice listens). Against a protocol that trusts
/// nacks this costs the adversary `O(1)` per epoch while forcing Alice to
/// pay her full per-epoch budget forever — the empirical demonstration of
/// why Theorem 1 *requires* Bob to be authenticated and why the spoofing
/// model's answer degrades to `T^(φ−1)` (Theorem 5).
#[derive(Debug, Clone)]
pub struct NackSpoofer {
    budget: u64,
    spent: u64,
    /// Injections per period.
    per_period: u64,
    rng: RcbRng,
}

impl NackSpoofer {
    pub fn new(budget: u64, per_period: u64, seed: u64) -> Self {
        assert!(per_period >= 1);
        Self {
            budget,
            spent: 0,
            per_period,
            rng: RcbRng::new(seed),
        }
    }
}

impl SlotAdversary for NackSpoofer {
    fn decide(&mut self, ctx: &SlotContext) -> JamDecision {
        if self.spent >= self.budget {
            return JamDecision::none();
        }
        // Spread the injections across the period uniformly at random so
        // an Alice listening at rate p catches one with probability
        // ≈ 1 − (1−p)^per_period per period.
        let p = self.per_period as f64 / ctx.period_len.max(1) as f64;
        if bernoulli(&mut self.rng, p) {
            self.spent += 1;
            JamDecision::inject(rcb_channel::message::Payload::Nack { spoofed: true })
        } else {
            JamDecision::none()
        }
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.spent)
    }
}

/// Replays an explicit, precomputed jam schedule (slot indices, sorted).
/// Used by tests that need exact control.
#[derive(Debug, Clone)]
pub struct ScheduleJammer {
    schedule: Vec<u64>,
    cursor: usize,
}

impl ScheduleJammer {
    /// `schedule` must be sorted ascending.
    pub fn new(schedule: Vec<u64>) -> Self {
        assert!(
            schedule.windows(2).all(|w| w[0] < w[1]),
            "schedule must be sorted and deduplicated"
        );
        Self {
            schedule,
            cursor: 0,
        }
    }
}

impl SlotAdversary for ScheduleJammer {
    fn decide(&mut self, ctx: &SlotContext) -> JamDecision {
        while self.cursor < self.schedule.len() && self.schedule[self.cursor] < ctx.slot {
            self.cursor += 1;
        }
        if self.cursor < self.schedule.len() && self.schedule[self.cursor] == ctx.slot {
            self.cursor += 1;
            JamDecision {
                jam_mask: ctx.all_groups_mask(),
                inject: None,
            }
        } else {
            JamDecision::none()
        }
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some((self.schedule.len() - self.cursor) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_channel::slot::SlotResolution;

    fn ctx(slot: u64, offset: u64, period_len: u64, groups: usize) -> SlotContext {
        SlotContext {
            slot,
            period: slot / period_len.max(1),
            offset,
            period_len,
            groups,
        }
    }

    #[test]
    fn no_jam_never_jams() {
        let mut a = NoJam;
        for s in 0..100 {
            assert_eq!(a.decide(&ctx(s, s % 10, 10, 1)), JamDecision::none());
        }
    }

    #[test]
    fn full_blocker_jams_until_budget_exhausted() {
        let mut a = BudgetedPhaseBlocker::new(5, 1.0);
        let mut jammed = 0;
        for s in 0..20 {
            if a.decide(&ctx(s, s % 10, 10, 1)).jam_count() > 0 {
                jammed += 1;
            }
        }
        assert_eq!(jammed, 5);
        assert_eq!(a.remaining_budget(), Some(0));
        assert_eq!(a.spent(), 5);
    }

    #[test]
    fn fraction_blocker_jams_only_suffix() {
        let mut a = BudgetedPhaseBlocker::new(1000, 0.25);
        // Period of 8: suffix = ceil(2) = 2 slots (offsets 6 and 7).
        for off in 0..8u64 {
            let d = a.decide(&ctx(off, off, 8, 1));
            if off >= 6 {
                assert_eq!(d.jam_count(), 1, "offset {off} should be jammed");
            } else {
                assert_eq!(d.jam_count(), 0, "offset {off} should be clear");
            }
        }
    }

    #[test]
    fn blocker_respects_group_mask_and_pays_per_group() {
        let mut a = BudgetedPhaseBlocker::new(4, 1.0).with_group_mask(0b10);
        // 2-group partition: only group 1 jammed, cost 1 per slot.
        for s in 0..4 {
            let d = a.decide(&ctx(s, s, 4, 2));
            assert_eq!(d.jam_mask, 0b10);
        }
        assert_eq!(a.remaining_budget(), Some(0));

        // Jamming both groups costs 2 per slot: budget 4 lasts 2 slots.
        let mut b = BudgetedPhaseBlocker::new(4, 1.0);
        let mut slots = 0;
        for s in 0..10 {
            if b.decide(&ctx(s, s, 10, 2)).jam_count() > 0 {
                slots += 1;
            }
        }
        assert_eq!(slots, 2);
    }

    #[test]
    fn random_jammer_rate_and_budget() {
        let mut a = RandomJammer::new(0.5, 100, 7);
        let mut jammed = 0u64;
        for s in 0..10_000 {
            jammed += a.decide(&ctx(s, 0, 1, 1)).jam_count();
        }
        assert_eq!(jammed, 100, "budget caps the spend");

        let mut b = RandomJammer::new(0.3, u64::MAX / 2, 8);
        let mut hits = 0u64;
        let n = 20_000;
        for s in 0..n {
            hits += b.decide(&ctx(s, 0, 1, 1)).jam_count();
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn periodic_jammer_duty_cycle() {
        let mut a = PeriodicJammer::new(10, 3, u64::MAX / 2);
        let mut pattern = Vec::new();
        for s in 0..20 {
            pattern.push(a.decide(&ctx(s, 0, 1, 1)).jam_count() > 0);
        }
        for (s, &j) in pattern.iter().enumerate() {
            assert_eq!(j, s % 10 < 3, "slot {s}");
        }
    }

    #[test]
    fn reactive_jammer_follows_activity() {
        let mut a = ReactiveJammer::new(100);
        // No prior activity: no jam.
        assert_eq!(a.decide(&ctx(0, 0, 1, 1)).jam_count(), 0);
        // Observe a busy slot.
        let res = SlotResolution {
            states: vec![],
            receptions: vec![],
            senders: 2,
        };
        a.observe(&SlotObservation {
            ctx: ctx(0, 0, 1, 1),
            actions: &[],
            resolution: &res,
        });
        assert_eq!(a.decide(&ctx(1, 0, 1, 1)).jam_count(), 1);
        // Observe a quiet slot: trigger clears.
        let quiet = SlotResolution {
            states: vec![],
            receptions: vec![],
            senders: 0,
        };
        a.observe(&SlotObservation {
            ctx: ctx(1, 0, 1, 1),
            actions: &[],
            resolution: &quiet,
        });
        assert_eq!(a.decide(&ctx(2, 0, 1, 1)).jam_count(), 0);
    }

    #[test]
    fn nack_spoofer_injects_at_the_requested_rate() {
        let mut a = NackSpoofer::new(u64::MAX / 2, 4, 9);
        let mut injected = 0u64;
        let n = 20_000u64;
        for s in 0..n {
            let d = a.decide(&ctx(s, s % 64, 64, 2));
            if let Some(p) = d.inject {
                assert!(p.is_spoofed(), "audit flag must be set");
                injected += 1;
            }
            assert_eq!(d.jam_mask, 0, "the spoofer never jams");
        }
        // Expected rate 4/64 per slot.
        let rate = injected as f64 / n as f64;
        assert!((rate - 4.0 / 64.0).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn nack_spoofer_respects_budget() {
        let mut a = NackSpoofer::new(10, 64, 10);
        let mut injected = 0;
        for s in 0..1000 {
            if a.decide(&ctx(s, 0, 64, 2)).inject.is_some() {
                injected += 1;
            }
        }
        assert_eq!(injected, 10);
        assert_eq!(a.remaining_budget(), Some(0));
    }

    #[test]
    fn schedule_jammer_replays_exactly() {
        let mut a = ScheduleJammer::new(vec![2, 5, 6]);
        let jams: Vec<u64> = (0..10)
            .filter(|&s| a.decide(&ctx(s, 0, 1, 1)).jam_count() > 0)
            .collect();
        assert_eq!(jams, vec![2, 5, 6]);
        assert_eq!(a.remaining_budget(), Some(0));
    }

    #[test]
    #[should_panic]
    fn schedule_jammer_rejects_unsorted() {
        ScheduleJammer::new(vec![5, 2]);
    }
}
