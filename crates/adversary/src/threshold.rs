//! The Theorem 2 lower-bound adversary.
//!
//! The proof's construction: the adversary (with budget `T`) jams a slot if
//! and only if it has budget left and `a_i · b_i > 1/T`, where `a_i` and
//! `b_i` are the sending/listening probabilities Alice and Bob chose for the
//! slot. (In the lower-bound model the adversary knows the protocol, hence
//! these probabilities — just not the coin flips.) Against this rule, any
//! protocol succeeding with probability `1 − ε` satisfies
//! `E(A)·E(B) ≥ (1 − O(ε))·T`.
//!
//! The experiment harness (E4) runs oblivious probability-vector protocols
//! against this adversary in the *fractional cost model* the proof reduces
//! to (step I of the proof: charging `a_i` instead of a Bernoulli(a_i) unit
//! changes nothing in expectation), as well as the actual 0/1 model.

use serde::{Deserialize, Serialize};

/// The `a_i·b_i > 1/T` threshold jammer.
///
/// ```
/// use rcb_adversary::threshold::ThresholdAdversary;
///
/// let mut adv = ThresholdAdversary::new(16);
/// assert!(!adv.decide(0.25, 0.25)); // a·b = 1/16: not strictly above
/// assert!(adv.decide(0.5, 0.25));   // 1/8 > 1/16: jammed
/// assert_eq!(adv.jammed(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdAdversary {
    budget: u64,
    jammed: u64,
}

impl ThresholdAdversary {
    /// An adversary with announced budget `T ≥ 1`.
    pub fn new(budget: u64) -> Self {
        assert!(budget >= 1, "budget must be at least 1");
        Self { budget, jammed: 0 }
    }

    /// The announced budget `T`.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Slots jammed so far.
    pub fn jammed(&self) -> u64 {
        self.jammed
    }

    /// Whether the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.jammed >= self.budget
    }

    /// The product threshold `1/T`.
    pub fn threshold(&self) -> f64 {
        1.0 / self.budget as f64
    }

    /// Decides (and commits) whether to jam a slot in which Alice
    /// sends/listens with probability `a` and Bob with probability `b`.
    pub fn decide(&mut self, a: f64, b: f64) -> bool {
        if self.jammed < self.budget && a * b > self.threshold() {
            self.jammed += 1;
            true
        } else {
            false
        }
    }

    /// Pure query form of [`decide`](Self::decide) — what *would* happen —
    /// for analysis code that must not mutate.
    pub fn would_jam(&self, a: f64, b: f64) -> bool {
        self.jammed < self.budget && a * b > self.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jams_only_above_threshold() {
        let mut adv = ThresholdAdversary::new(16);
        // a·b = 1/16 exactly (binary-exact): not strictly greater, no jam.
        assert!(!adv.decide(0.25, 0.25));
        // a·b = 1/8 > 1/16: jam.
        assert!(adv.decide(0.5, 0.25));
        assert_eq!(adv.jammed(), 1);
    }

    #[test]
    fn budget_caps_jamming() {
        let mut adv = ThresholdAdversary::new(3);
        let mut jams = 0;
        for _ in 0..10 {
            if adv.decide(1.0, 1.0) {
                jams += 1;
            }
        }
        assert_eq!(jams, 3);
        assert!(adv.exhausted());
        // Once exhausted, even maximal products pass.
        assert!(!adv.decide(1.0, 1.0));
    }

    #[test]
    fn sub_threshold_protocol_never_jammed() {
        // Strategy (ii) of the proof: keep a·b ≤ 1/T forever.
        let t = 10_000u64;
        let mut adv = ThresholdAdversary::new(t);
        let p = (1.0 / t as f64).sqrt();
        for _ in 0..100_000 {
            assert!(!adv.decide(p, p));
        }
        assert_eq!(adv.jammed(), 0);
    }

    #[test]
    fn exhaust_strategy_costs_t() {
        // Strategy (i) of the proof: force the adversary to burn the budget,
        // then communicate freely.
        let t = 500u64;
        let mut adv = ThresholdAdversary::new(t);
        let mut slots = 0u64;
        while !adv.exhausted() {
            assert!(adv.decide(1.0, 1.0));
            slots += 1;
        }
        assert_eq!(slots, t);
        // Slot T+1 is free.
        assert!(!adv.decide(1.0, 1.0));
    }

    #[test]
    fn would_jam_is_pure() {
        let adv = ThresholdAdversary::new(10);
        assert!(adv.would_jam(1.0, 1.0));
        assert_eq!(adv.jammed(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_budget_rejected() {
        ThresholdAdversary::new(0);
    }
}
