//! Granularity adapter: drive the exact engine with a
//! [`RepetitionAdversary`].
//!
//! The conformance harness must run *the same* adversary policy on both
//! engines, or every cross-engine comparison confounds engine drift with
//! adversary drift. Historically the validation tests paired
//! `BudgetedPhaseBlocker` (slot-level, jams **every** group, 2 units per
//! slot on the pair partition) with `BudgetedRepBlocker` (repetition-level,
//! 1 unit per slot) — two different attacks with different effective
//! budgets. [`RepAsSlotAdversary`] removes the confound: it asks the wrapped
//! repetition strategy for a [`JamPlan`] at each period boundary and unrolls
//! it slot by slot, targeting the groups the fast engines charge for.

use crate::traits::{
    JamPlan, RepetitionAdversary, RepetitionContext, RepetitionSummary, SlotAdversary, SlotContext,
    SlotObservation,
};
use rcb_channel::message::PayloadKind;
use rcb_channel::slot::{Action, JamDecision};

/// Which groups a plan's jammed slots should hit in the exact engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JamTarget {
    /// Figure 1 pair partition: jam the **listening** party's group — Bob
    /// (group 1) in send phases (even periods), Alice (group 0) in nack
    /// phases (odd periods). Jamming the speaker is wasted energy, and this
    /// is the 1-unit-per-slot accounting the fast duel engine uses.
    DuelListener,
    /// Jam a fixed group mask every jammed slot (e.g. `1` for the 1-uniform
    /// broadcast partition).
    Mask(u64),
}

impl JamTarget {
    fn mask_for(&self, period: u64) -> u64 {
        match self {
            JamTarget::DuelListener => {
                if period.is_multiple_of(2) {
                    1 << 1 // send phase: Bob listens
                } else {
                    1 << 0 // nack phase: Alice listens
                }
            }
            JamTarget::Mask(m) => *m,
        }
    }
}

/// Wraps a [`RepetitionAdversary`] as a [`SlotAdversary`].
///
/// Per period the adapter (1) flushes the previous period's
/// [`RepetitionSummary`] to the inner strategy, (2) requests a fresh
/// [`JamPlan`], and (3) answers each slot's `decide` from that plan. Action
/// counts for the summaries are accumulated from the slot observations, so
/// adaptive strategies (e.g. `BanditBlocker`) see the same aggregate feed on
/// both engines.
#[derive(Debug)]
pub struct RepAsSlotAdversary<A> {
    inner: A,
    target: JamTarget,
    /// Period the current plan belongs to, with its context.
    current: Option<(RepetitionContext, JamPlan)>,
    summary: RepetitionSummary,
    /// Nodes that acted at least once in the current period; feeds the next
    /// period's `active_nodes` (the adversary only knows *past* actions).
    acted: Vec<bool>,
    active_nodes: usize,
}

impl<A: RepetitionAdversary> RepAsSlotAdversary<A> {
    /// `nodes` seeds `active_nodes` for the first period, before any
    /// observation exists.
    pub fn new(inner: A, target: JamTarget, nodes: usize) -> Self {
        Self {
            inner,
            target,
            current: None,
            summary: RepetitionSummary::default(),
            acted: vec![false; nodes],
            active_nodes: nodes,
        }
    }

    /// Convenience for the Figure 1 pair partition.
    pub fn duel(inner: A) -> Self {
        Self::new(inner, JamTarget::DuelListener, 2)
    }

    /// Convenience for the 1-uniform broadcast partition over `n` nodes.
    pub fn broadcast(inner: A, n: usize) -> Self {
        Self::new(inner, JamTarget::Mask(1), n)
    }

    /// Flushes the pending period summary (call after the run ends so the
    /// inner strategy observes the final period) and returns the inner
    /// strategy.
    pub fn finish(mut self) -> A {
        self.flush();
        self.inner
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Re-arms the adapter *and* the wrapped strategy to the
    /// just-constructed state: pending plan and summary discarded (no final
    /// observation — the run they belonged to is being abandoned, not
    /// finished), activity bitmap cleared, `active_nodes` reseeded to the
    /// full node count.
    pub fn rearm(&mut self) {
        self.inner.rearm();
        self.current = None;
        self.summary = RepetitionSummary::default();
        let nodes = self.acted.len();
        self.acted.fill(false);
        self.active_nodes = nodes;
    }

    fn flush(&mut self) {
        if let Some((ctx, _)) = self.current.take() {
            self.inner.observe(&ctx, &self.summary);
            self.summary = RepetitionSummary::default();
            self.active_nodes = self.acted.iter().filter(|&&a| a).count().max(1);
            self.acted.fill(false);
        }
    }
}

impl<A: RepetitionAdversary> SlotAdversary for RepAsSlotAdversary<A> {
    fn decide(&mut self, ctx: &SlotContext) -> JamDecision {
        let stale = match &self.current {
            Some((rep_ctx, _)) => rep_ctx.repetition != ctx.period,
            None => true,
        };
        if stale {
            self.flush();
            // Period lengths are powers of two (2^epoch) for every schedule
            // in this workspace, so the epoch is recoverable from the
            // length. A non-power-of-two length rounds down, which only
            // affects strategies keying on `epoch` rather than `slots`.
            let epoch = 63 - ctx.period_len.max(1).leading_zeros();
            let rep_ctx = RepetitionContext {
                epoch,
                repetition: ctx.period,
                slots: ctx.period_len,
                active_nodes: self.active_nodes,
            };
            let plan = self.inner.plan(&rep_ctx);
            self.summary.jammed_slots = plan.jam_count(ctx.period_len);
            self.current = Some((rep_ctx, plan));
        }
        let (rep_ctx, plan) = self.current.as_ref().expect("plan installed above");
        if plan.is_jammed(ctx.offset, rep_ctx.slots) {
            JamDecision {
                jam_mask: self.target.mask_for(ctx.period) & ctx.all_groups_mask(),
                inject: None,
            }
        } else {
            JamDecision::none()
        }
    }

    fn observe(&mut self, obs: &SlotObservation<'_>) {
        let mut senders = 0u64;
        let mut message_senders = 0u64;
        for (node, action) in obs.actions.iter().enumerate() {
            match action {
                Action::Send(payload) => {
                    senders += 1;
                    if payload.kind() == PayloadKind::Message {
                        message_senders += 1;
                    }
                    self.acted[node] = true;
                }
                Action::Listen => {
                    self.summary.listen_actions += 1;
                    self.acted[node] = true;
                }
                Action::Sleep => {}
            }
        }
        self.summary.send_actions += senders;
        if senders > 0 {
            self.summary.busy_slots += 1;
        }
        if senders == 1 && message_senders == 1 {
            self.summary.message_slots += 1;
        }
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.inner.remaining_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rep_strategies::{BudgetedRepBlocker, KeepAliveBlocker};
    use rcb_channel::message::Payload;
    use rcb_channel::slot::SlotResolution;

    fn slot_ctx(period: u64, offset: u64, len: u64) -> SlotContext {
        SlotContext {
            slot: period * len + offset,
            period,
            offset,
            period_len: len,
            groups: 2,
        }
    }

    /// Drive the adapter through whole periods and collect per-slot jam
    /// decisions.
    fn drive(
        adapter: &mut RepAsSlotAdversary<BudgetedRepBlocker>,
        periods: u64,
        len: u64,
    ) -> Vec<Vec<u64>> {
        (0..periods)
            .map(|p| {
                (0..len)
                    .map(|o| adapter.decide(&slot_ctx(p, o, len)).jam_mask)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn duel_target_jams_the_listening_group() {
        // Full blocking, ample budget: every slot of period 0 must jam
        // group 1 (Bob listens in send phases), period 1 group 0.
        let mut adapter = RepAsSlotAdversary::duel(BudgetedRepBlocker::new(1 << 30, 1.0));
        let masks = drive(&mut adapter, 2, 8);
        assert!(masks[0].iter().all(|&m| m == 0b10), "send phase: Bob");
        assert!(masks[1].iter().all(|&m| m == 0b01), "nack phase: Alice");
    }

    #[test]
    fn integrated_slot_cost_equals_plan_cost() {
        // q = 0.5 over 16-slot periods: each affordable plan jams
        // ceil(8) = 8 suffix slots of exactly one group.
        let mut adapter = RepAsSlotAdversary::duel(BudgetedRepBlocker::new(20, 0.5));
        let masks = drive(&mut adapter, 4, 16);
        let per_period: Vec<u64> = masks
            .iter()
            .map(|p| p.iter().map(|m| m.count_ones() as u64).sum())
            .collect();
        // Budget 20 affords two 8-slot plans, then nothing.
        assert_eq!(per_period, vec![8, 8, 0, 0]);
        assert_eq!(adapter.remaining_budget(), Some(4));
        // Jammed slots are the period suffix.
        assert!(masks[0][..8].iter().all(|&m| m == 0));
        assert!(masks[0][8..].iter().all(|&m| m != 0));
    }

    #[test]
    fn keep_alive_strategy_behaves_identically_through_the_adapter() {
        // The wrapped strategy sees the same (period, len) stream as it
        // would from the fast engine, so its plan sequence is identical.
        let mut direct = KeepAliveBlocker::new(100, 0.25);
        let mut adapter = RepAsSlotAdversary::duel(KeepAliveBlocker::new(100, 0.25));
        for period in 0..6u64 {
            let len = 16u64;
            let plan = direct.plan(&RepetitionContext {
                epoch: 4,
                repetition: period,
                slots: len,
                active_nodes: 2,
            });
            let adapted: u64 = (0..len)
                .map(|o| adapter.decide(&slot_ctx(period, o, len)).jam_count())
                .sum();
            assert_eq!(adapted, plan.jam_count(len), "period {period}");
        }
        assert_eq!(
            adapter.remaining_budget(),
            direct.remaining_budget(),
            "same spend on both paths"
        );
    }

    #[test]
    fn summaries_aggregate_actions_per_period() {
        let mut adapter = RepAsSlotAdversary::duel(BudgetedRepBlocker::new(0, 1.0));
        let resolution = SlotResolution {
            states: vec![],
            receptions: vec![],
            senders: 0,
        };
        // Period 0, two slots: Alice sends m then both sleep + Bob listens.
        adapter.decide(&slot_ctx(0, 0, 2));
        adapter.observe(&SlotObservation {
            ctx: slot_ctx(0, 0, 2),
            actions: &[Action::Send(Payload::message()), Action::Listen],
            resolution: &resolution,
        });
        adapter.decide(&slot_ctx(0, 1, 2));
        adapter.observe(&SlotObservation {
            ctx: slot_ctx(0, 1, 2),
            actions: &[Action::Sleep, Action::Listen],
            resolution: &resolution,
        });
        // Entering period 1 flushes period 0's summary into the inner
        // strategy; inspect via a fresh decide then finish().
        adapter.decide(&slot_ctx(1, 0, 2));
        assert_eq!(adapter.summary, RepetitionSummary::default());
        let _ = adapter.finish();
    }

    #[test]
    fn active_nodes_follow_observed_activity() {
        let mut adapter = RepAsSlotAdversary::duel(BudgetedRepBlocker::new(0, 1.0));
        let resolution = SlotResolution {
            states: vec![],
            receptions: vec![],
            senders: 0,
        };
        adapter.decide(&slot_ctx(0, 0, 1));
        // Only node 0 acts during period 0.
        adapter.observe(&SlotObservation {
            ctx: slot_ctx(0, 0, 1),
            actions: &[Action::Send(Payload::message()), Action::Sleep],
            resolution: &resolution,
        });
        adapter.decide(&slot_ctx(1, 0, 1));
        assert_eq!(adapter.active_nodes, 1, "one active node observed");
    }

    #[test]
    fn broadcast_target_uses_group_zero() {
        let mut adapter = RepAsSlotAdversary::broadcast(BudgetedRepBlocker::new(1 << 30, 1.0), 4);
        let ctx = SlotContext {
            slot: 0,
            period: 0,
            offset: 0,
            period_len: 8,
            groups: 1,
        };
        assert_eq!(adapter.decide(&ctx).jam_mask, 0b1);
    }
}
