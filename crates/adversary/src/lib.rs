//! # rcb-adversary
//!
//! Adversary strategies for the paper's threat model (§1.2): an *adaptive*
//! jammer that knows the protocol and every action taken in **previous**
//! slots, but not the random bits of the current slot. Her budget is finite
//! and unknown to the good nodes; each (group, slot) jammed costs one unit,
//! as does each spoofed transmission (Theorem 5 model).
//!
//! Two granularities of strategy exist, matching the two simulation engines:
//!
//! * [`SlotAdversary`] — consulted every slot by the exact engine;
//! * [`RepetitionAdversary`] — plans a whole 2^i-slot repetition at once for
//!   the fast 1-to-n engine. Lemma 1 of the paper proves that within a
//!   phase/repetition, jamming a *suffix* is without loss of generality, so
//!   the canonical plans are suffix plans; explicit slot sets are supported
//!   for the non-canonical jammers used in the robustness ablation (E11).
//!
//! The lower-bound constructions get dedicated modules: [`threshold`]
//! implements Theorem 2's `a_i·b_i > 1/T` rule and [`spoof`] the Theorem 5
//! jam-or-impersonate choice.

pub mod adapter;
pub mod error;
pub mod rep_strategies;
pub mod slot_strategies;
pub mod spoof;
pub mod threshold;
pub mod traits;

pub use adapter::{JamTarget, RepAsSlotAdversary};
pub use error::AdversaryConfigError;
pub use rep_strategies::{
    BanditBlocker, BudgetedRepBlocker, HalfRepBlocker, KeepAliveBlocker, NoJamRep, RandomRep,
    SuffixFractionRep,
};
pub use slot_strategies::{
    BudgetedPhaseBlocker, NackSpoofer, NoJam, PeriodicJammer, RandomJammer, ReactiveJammer,
    ScheduleJammer,
};
pub use spoof::{SpoofPlan, SpoofScenario};
pub use threshold::ThresholdAdversary;
pub use traits::{
    JamPlan, RepetitionAdversary, RepetitionContext, RepetitionSummary, SlotAdversary, SlotContext,
    SlotObservation,
};
