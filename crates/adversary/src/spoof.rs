//! The Theorem 5 spoofing adversary: jam Bob, or *become* Bob.
//!
//! In the Theorem 5 model the 2-uniform adversary can transmit messages
//! indistinguishable from Bob's. Its strategy space in the proof is a binary
//! choice made before the execution:
//!
//! * **Scenario (i) — JamBob**: announce budget `T̃` and jam Bob's group
//!   (only) whenever `a_i·b_i > 1/T̃`, exactly the Theorem 2 rule. The
//!   adversary's realized cost is at most `T = T̃`.
//! * **Scenario (ii) — ImpersonateBob**: there is no Bob; the adversary
//!   simulates Bob's side of the protocol and pays Bob's costs (`T = B`).
//!   No jamming occurs and Alice cannot tell the difference, because she
//!   cannot detect whether Bob's group is being jammed.
//!
//! For a protocol family parameterized by the split `δ` (Bob's expected cost
//! `≈ T̃^δ`, Alice's `≈ T̃^(1−δ)`, their product pinned to `Ω(T̃)` by
//! Theorem 2), the adversary's better scenario forces a good-node cost of
//! `T^max{δ, (1−δ)/δ}` — minimized at `δ = φ − 1`, giving the golden-ratio
//! exponent. [`predicted_exponent`] and [`optimal_delta`] encode that
//! calculation for the E8 experiment.

use rcb_mathkit::PHI_MINUS_ONE;
use serde::{Deserialize, Serialize};

/// Which of the two Theorem-5 scenarios the adversary plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpoofScenario {
    /// Scenario (i): jam Bob with the threshold rule at budget `T̃`.
    JamBob,
    /// Scenario (ii): replace Bob and simulate his protocol.
    ImpersonateBob,
}

/// A committed adversary plan for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpoofPlan {
    pub scenario: SpoofScenario,
    /// The announced budget `T̃` (meaningful in both scenarios: in (ii) the
    /// adversary simulates the Bob that *would* face budget `T̃`).
    pub announced_budget: u64,
}

impl SpoofPlan {
    pub fn jam(announced_budget: u64) -> Self {
        Self {
            scenario: SpoofScenario::JamBob,
            announced_budget,
        }
    }

    pub fn impersonate(announced_budget: u64) -> Self {
        Self {
            scenario: SpoofScenario::ImpersonateBob,
            announced_budget,
        }
    }
}

/// The good-node cost exponent a δ-split protocol suffers against the
/// better of the two scenarios: `max{δ, (1−δ)/δ}` (proof of Theorem 5).
///
/// * Scenario (i): Bob's cost is `Ω(T̃^δ)` with `T = T̃` → exponent `δ`.
/// * Scenario (ii): `T = B ≈ T̃^δ` while Alice spends `Ω(T̃^(1−δ))` =
///   `Ω(T^((1−δ)/δ))` → exponent `(1−δ)/δ`.
pub fn predicted_exponent(delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let scenario_i = delta;
    let scenario_ii = (1.0 - delta) / delta;
    scenario_i.max(scenario_ii)
}

/// The δ minimizing [`predicted_exponent`]: the golden-ratio point
/// `δ = φ − 1 ≈ 0.618`, where `δ = (1−δ)/δ`.
pub fn optimal_delta() -> f64 {
    PHI_MINUS_ONE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_is_minimized_at_golden_ratio() {
        let best = predicted_exponent(optimal_delta());
        assert!((best - PHI_MINUS_ONE).abs() < 1e-9);
        for d in [0.35, 0.45, 0.5, 0.55, 0.7, 0.8, 0.9] {
            assert!(
                predicted_exponent(d) >= best - 1e-12,
                "delta {d} beat the golden ratio"
            );
        }
    }

    #[test]
    fn both_scenarios_agree_at_optimum() {
        let d = optimal_delta();
        assert!((d - (1.0 - d) / d).abs() < 1e-9, "δ = (1−δ)/δ at optimum");
    }

    #[test]
    fn scenario_i_dominates_for_large_delta() {
        // For δ > φ−1 the jamming scenario is the binding one.
        assert!((predicted_exponent(0.8) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn scenario_ii_dominates_for_small_delta() {
        // For δ < φ−1 impersonation is the binding one.
        assert!((predicted_exponent(0.4) - 0.6 / 0.4).abs() < 1e-12);
    }

    #[test]
    fn plans_carry_their_budget() {
        assert_eq!(SpoofPlan::jam(100).scenario, SpoofScenario::JamBob);
        assert_eq!(
            SpoofPlan::impersonate(100).scenario,
            SpoofScenario::ImpersonateBob
        );
        assert_eq!(SpoofPlan::jam(100).announced_budget, 100);
    }

    #[test]
    #[should_panic]
    fn exponent_rejects_degenerate_delta() {
        predicted_exponent(1.0);
    }
}
