//! Typed configuration errors for adversary constructors.
//!
//! Strategy constructors validate their parameters; `try_new` variants
//! surface violations as values so a sweep harness can report a malformed
//! parameter cell instead of panicking mid-batch. The plain `new`
//! constructors remain as documented panicking wrappers for statically
//! known-good configurations.

use std::fmt;

/// A strategy was configured with parameters outside its domain.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversaryConfigError {
    /// A blocking fraction or rate outside `[0, 1]`. `what` names the
    /// offending parameter (e.g. `"q"`, `"rate"`, `"arm"`).
    FractionOutOfRange { what: &'static str, value: f64 },
    /// A bandit with no arms to pull.
    NoArms,
}

impl fmt::Display for AdversaryConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryConfigError::FractionOutOfRange { what, value } => {
                write!(f, "{what} = {value} out of range: must lie in [0, 1]")
            }
            AdversaryConfigError::NoArms => write!(f, "bandit needs at least one arm"),
        }
    }
}

impl std::error::Error for AdversaryConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parameter() {
        let e = AdversaryConfigError::FractionOutOfRange {
            what: "q",
            value: 1.5,
        };
        assert!(e.to_string().contains("q = 1.5"));
        assert!(AdversaryConfigError::NoArms.to_string().contains("arm"));
    }
}
