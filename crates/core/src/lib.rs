//! # rcb-core
//!
//! The resource-competitive broadcast algorithms of Gilbert, King, Pettie,
//! Porat, Saia & Young, *"(Near) Optimal Resource-Competitive Broadcast with
//! Jamming"*, SPAA 2014:
//!
//! * [`one_to_one`] — Figure 1: 1-to-1 BROADCAST between Alice and Bob.
//!   Monte Carlo, succeeds with probability `1 − ε`, expected cost
//!   `O(√(T·ln(1/ε)) + ln(1/ε))` against a 2-uniform adaptive jammer with
//!   total spend `T` (Theorem 1). The implementation is split into
//!   phase-granularity state machines (shared with the fast simulation
//!   engine) and slot-granularity [`protocol::SlotProtocol`] adapters.
//!
//! * [`one_to_n`] — Figure 2: 1-to-n BROADCAST. Nodes are `uninformed`,
//!   `informed`, or `helper`s; sending/listening rates are driven by the
//!   self-calibrating `S_u` variable, which grows on silence and lets
//!   each node estimate `n` without knowing it. Per-node cost
//!   `O(√(T/n)·log⁴T + log⁶n)` w.h.p. (Theorem 3).
//!
//! * [`combined`] — the energy-balanced combination of two 1-to-1 protocols
//!   the paper sketches after Theorem 1, achieving the minimum of both cost
//!   functions up to constants.
//!
//! Protocol *logic* lives here; channel mechanics live in `rcb-channel` and
//! the engines that drive executions live in `rcb-sim`.

pub mod combined;
pub mod one_to_n;
pub mod one_to_one;
pub mod protocol;

pub use protocol::{PeriodLoc, Schedule, SlotProtocol};
