//! Protocol-facing traits shared by algorithms, baselines, and engines.

use rcb_channel::slot::{Action, Reception};
use rcb_channel::Slot;
use rcb_mathkit::rng::RcbRng;

/// A node's slot-granularity behaviour, driven by the exact engine.
///
/// Contract per slot, in order:
/// 1. the engine calls [`act`](SlotProtocol::act) to get the node's action
///    (a finished node must return [`Action::Sleep`]);
/// 2. the channel resolves;
/// 3. the engine calls [`end_slot`](SlotProtocol::end_slot) on **every**
///    node — with `Some(reception)` if the node listened, `None` otherwise —
///    so the node can advance its internal clock.
pub trait SlotProtocol {
    /// The node's action for the next slot.
    fn act(&mut self, rng: &mut RcbRng) -> Action;

    /// Slot epilogue: `heard` is what the node received if it listened.
    fn end_slot(&mut self, heard: Option<&Reception>);

    /// Whether the node has halted (for any reason).
    fn is_done(&self) -> bool;

    /// Whether this node has (ever) received the broadcast message `m`.
    /// For the designated sender this is `true` from the start.
    fn received_message(&self) -> bool;

    /// Crash–restart epilogue (fault injection): volatile state is lost;
    /// durable state — the message `m` and the slot clock, which is
    /// re-synced from the public schedule — survives. The default is a
    /// no-op, correct for protocols whose cross-period state lives entirely
    /// in stable storage.
    fn reboot(&mut self) {}
}

/// Resettable protocol state: re-arms an instance to its slot-0,
/// just-constructed state **without reallocating**, so one allocation can
/// serve a stream of runs (the session layer, DESIGN.md §14).
///
/// Contract: after `rearm()`, the instance must behave bit-identically to
/// a freshly constructed one — same state machine position, same epoch,
/// same counters — given the same RNG stream. The golden equivalence suite
/// in `crates/sim/tests/rearm_equivalence.rs` pins this per engine.
pub trait Rearm {
    fn rearm(&mut self);
}

/// Location of a slot within a protocol's public, deterministic schedule.
/// Adversaries receive this (periods are phases or repetitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodLoc {
    /// Index of the period containing the slot.
    pub period: u64,
    /// Offset of the slot within its period.
    pub offset: u64,
    /// Length of the period in slots.
    pub len: u64,
}

/// A protocol's public schedule: the mapping from global slot index to
/// period structure. Deterministic and known to the adversary (§1.2: "the
/// adversary is assumed to know our protocols except for any random bits").
pub trait Schedule {
    fn locate(&self, slot: Slot) -> PeriodLoc;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl Schedule for Fixed {
        fn locate(&self, slot: Slot) -> PeriodLoc {
            PeriodLoc {
                period: slot / 8,
                offset: slot % 8,
                len: 8,
            }
        }
    }

    #[test]
    fn schedule_trait_is_object_safe() {
        let s: &dyn Schedule = &Fixed;
        let loc = s.locate(19);
        assert_eq!(loc.period, 2);
        assert_eq!(loc.offset, 3);
        assert_eq!(loc.len, 8);
    }
}
