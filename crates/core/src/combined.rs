//! Energy-balanced combination of two protocols (§1.3, remark after
//! Theorem 1): "By combining both algorithms one can achieve expected cost
//! `O(min{√(T·log(1/ε)) + log(1/ε), T^(φ−1) + 1})`".
//!
//! The combination is a classic dovetailing argument: run both protocols,
//! but always advance the one that has *spent less energy so far*. Each
//! global slot is given to exactly one sub-protocol (a single radio cannot
//! serve two protocols in one slot); the other sub-protocol's clock is
//! frozen, which is sound because neither protocol's logic depends on
//! global time — only on its own slot counts. When the lagging protocol
//! catches up in spend, control alternates. Consequently the total spend at
//! any moment is at most `2·min(A_spend, B_spend) + O(1)`: if the cheaper
//! protocol succeeds at cost `c`, the combination has spent `O(c)`.
//!
//! A receiver-side combination additionally halts both lanes the moment
//! either lane delivers `m` (the device has what it wanted); sender-side
//! lanes each halt through their own rules, exactly as they would alone.

use crate::protocol::SlotProtocol;
use rcb_channel::slot::{Action, Reception};
use rcb_mathkit::rng::RcbRng;

/// Which sub-protocol owns the in-flight slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    A,
    B,
}

/// Two [`SlotProtocol`]s multiplexed onto one radio, advancing whichever
/// has spent less energy.
#[derive(Debug, Clone)]
pub struct BalancedDuo<P, Q> {
    a: P,
    b: Q,
    spent_a: u64,
    spent_b: u64,
    current: Option<Lane>,
    halt_both_on_message: bool,
    forced_done: bool,
}

impl<P: SlotProtocol, Q: SlotProtocol> BalancedDuo<P, Q> {
    /// Combines `a` and `b`. With `halt_both_on_message` (receiver side),
    /// the whole device halts as soon as either lane obtains `m`.
    pub fn new(a: P, b: Q, halt_both_on_message: bool) -> Self {
        Self {
            a,
            b,
            spent_a: 0,
            spent_b: 0,
            current: None,
            halt_both_on_message,
            forced_done: false,
        }
    }

    /// Energy spent by lane A so far.
    pub fn spent_a(&self) -> u64 {
        self.spent_a
    }

    /// Energy spent by lane B so far.
    pub fn spent_b(&self) -> u64 {
        self.spent_b
    }

    pub fn lane_a(&self) -> &P {
        &self.a
    }

    pub fn lane_b(&self) -> &Q {
        &self.b
    }

    fn pick_lane(&self) -> Option<Lane> {
        match (self.a.is_done(), self.b.is_done()) {
            (true, true) => None,
            (false, true) => Some(Lane::A),
            (true, false) => Some(Lane::B),
            (false, false) => {
                if self.spent_a <= self.spent_b {
                    Some(Lane::A)
                } else {
                    Some(Lane::B)
                }
            }
        }
    }
}

impl<P: SlotProtocol, Q: SlotProtocol> SlotProtocol for BalancedDuo<P, Q> {
    fn act(&mut self, rng: &mut RcbRng) -> Action {
        if self.forced_done {
            self.current = None;
            return Action::Sleep;
        }
        let Some(lane) = self.pick_lane() else {
            self.current = None;
            return Action::Sleep;
        };
        self.current = Some(lane);
        let action = match lane {
            Lane::A => self.a.act(rng),
            Lane::B => self.b.act(rng),
        };
        if action.is_active() {
            match lane {
                Lane::A => self.spent_a += 1,
                Lane::B => self.spent_b += 1,
            }
        }
        action
    }

    fn end_slot(&mut self, heard: Option<&Reception>) {
        let Some(lane) = self.current.take() else {
            return;
        };
        match lane {
            Lane::A => self.a.end_slot(heard),
            Lane::B => self.b.end_slot(heard),
        }
        if self.halt_both_on_message && (self.a.received_message() || self.b.received_message()) {
            self.forced_done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.forced_done || (self.a.is_done() && self.b.is_done())
    }

    fn received_message(&self) -> bool {
        self.a.received_message() || self.b.received_message()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_channel::message::Payload;

    /// Test double: listens every slot until it has heard `limit` slots,
    /// then is done; reports `m` if it ever received it.
    #[derive(Debug)]
    struct Greedy {
        heard: u64,
        limit: u64,
        got_m: bool,
    }

    impl Greedy {
        fn new(limit: u64) -> Self {
            Self {
                heard: 0,
                limit,
                got_m: false,
            }
        }
    }

    impl SlotProtocol for Greedy {
        fn act(&mut self, _rng: &mut RcbRng) -> Action {
            if self.is_done() {
                Action::Sleep
            } else {
                Action::Listen
            }
        }

        fn end_slot(&mut self, heard: Option<&Reception>) {
            if self.is_done() {
                return;
            }
            if let Some(r) = heard {
                if r.is_message() {
                    self.got_m = true;
                }
                self.heard += 1;
            }
        }

        fn is_done(&self) -> bool {
            self.heard >= self.limit || self.got_m
        }

        fn received_message(&self) -> bool {
            self.got_m
        }
    }

    fn drive(duo: &mut BalancedDuo<Greedy, Greedy>, slots: u64) {
        let mut rng = RcbRng::new(9);
        for _ in 0..slots {
            let action = duo.act(&mut rng);
            let heard = matches!(action, Action::Listen).then_some(Reception::Clear);
            duo.end_slot(heard.as_ref());
        }
    }

    #[test]
    fn spend_stays_balanced() {
        let mut duo = BalancedDuo::new(Greedy::new(1000), Greedy::new(1000), false);
        drive(&mut duo, 100);
        let diff = duo.spent_a() as i64 - duo.spent_b() as i64;
        assert!(diff.abs() <= 1, "spend imbalance {diff}");
    }

    #[test]
    fn total_cost_tracks_the_cheaper_lane() {
        // Lane A finishes after 5 units; lane B would need 10_000. The duo
        // must stop lane B from racing ahead: when A finishes at spend 5,
        // B has spent at most 6.
        let mut duo = BalancedDuo::new(Greedy::new(5), Greedy::new(10_000), false);
        drive(&mut duo, 10);
        assert!(duo.lane_a().is_done());
        assert!(duo.spent_b() <= duo.spent_a() + 1);
        // Afterwards all slots go to B (it is the only lane left running).
        drive(&mut duo, 10);
        assert!(duo.spent_b() > duo.spent_a());
    }

    #[test]
    fn message_on_either_lane_halts_both_when_requested() {
        let mut duo = BalancedDuo::new(Greedy::new(1000), Greedy::new(1000), true);
        let mut rng = RcbRng::new(10);
        // First slot goes to lane A; deliver m.
        let action = duo.act(&mut rng);
        assert!(matches!(action, Action::Listen));
        duo.end_slot(Some(&Reception::Received(Payload::message())));
        assert!(duo.is_done());
        assert!(duo.received_message());
        // Both lanes are now inert at the duo level.
        assert!(matches!(duo.act(&mut rng), Action::Sleep));
    }

    #[test]
    fn without_halt_flag_lanes_finish_independently() {
        let mut duo = BalancedDuo::new(Greedy::new(2), Greedy::new(4), false);
        drive(&mut duo, 20);
        assert!(duo.is_done());
        assert_eq!(duo.spent_a(), 2);
        assert_eq!(duo.spent_b(), 4);
    }

    #[test]
    fn done_duo_sleeps() {
        let mut duo = BalancedDuo::new(Greedy::new(0), Greedy::new(0), false);
        let mut rng = RcbRng::new(11);
        assert!(duo.is_done());
        assert!(matches!(duo.act(&mut rng), Action::Sleep));
        duo.end_slot(None); // must not panic
    }
}
