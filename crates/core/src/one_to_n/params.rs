//! Parameters of 1-to-n BROADCAST (Figure 2).
//!
//! The paper fixes the *shape* of every quantity and leaves the constants
//! "sufficiently large": epoch `i` has `b·i²` repetitions of `2^i` slots; a
//! node with rate variable `S_u` sends with probability `S_u/2^i`, listens
//! with probability `S_u·d·i³/2^i`, grows `S_u` by `2^(C′ᵤ/(S_u·d·i⁴))`,
//! becomes a helper after hearing `m` more than `d·i³/200` times in one
//! repetition, and terminates when `S_u ≥ 360·√(2^i/n_u)` (or the safety
//! valve `S_u > 360·2^(i/2)` fires).
//!
//! [`OneToNParams`] exposes every constant and — because the literal paper
//! constants put even the *first* epoch beyond laptop reach (`d > 79.2`
//! forces `2^i > 16·d·i³` before listen probabilities drop below 1) — also
//! the polylog *exponents*: `listen_pow` replaces the cubes (`i³ → i^κ`)
//! and `rep_pow` the squares. Scaling exponents and constants together
//! preserves every ratio the analysis relies on (growth per repetition,
//! helper threshold as a fraction of the expected message count, termination
//! as a multiple of the ideal rate), so the asymptotic shapes — cost
//! `√(T/n)·polylog`, latency `O(T + n·polylog)` — survive; the benches
//! verify them. See DESIGN.md §2 for the substitution argument.

use serde::{Deserialize, Serialize};

/// Full parameterization of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OneToNParams {
    /// Repetitions per epoch = `⌈b·i^rep_pow⌉` (paper: `b·i²`, `b ≥ 10`).
    pub b: f64,
    /// Exponent of `i` in the repetition count (paper: 2).
    pub rep_pow: u32,
    /// Listen-rate multiplier (paper: `d > 79.2`).
    pub d: f64,
    /// Exponent of `i` in the listen multiplier (paper: 3, the `i³`).
    pub listen_pow: u32,
    /// Initial and epoch-reset value of `S_u` (paper: 16).
    pub s_init: f64,
    /// Helper threshold as a fraction of `d·i^listen_pow` (paper: 1/200).
    pub helper_frac: f64,
    /// Extra power of `i` in the growth denominator (paper: 1 — the step
    /// from `i³` to `i⁴`).
    pub growth_extra_pow: u32,
    /// Helper termination factor (paper: 360): terminate when
    /// `S_u ≥ term_factor·√(2^i/n_u)`.
    pub term_factor: f64,
    /// Safety-valve factor (paper: 360): terminate when
    /// `S_u > safety_factor·2^(i/2)`.
    pub safety_factor: f64,
    /// First epoch index (paper: "some sufficiently large constant").
    pub first_epoch: u32,
}

impl OneToNParams {
    /// The literal constants of Figure 2. Faithful, and astronomically
    /// expensive to execute — provided for completeness and for unit tests
    /// of the formulas, not for end-to-end runs.
    pub fn paper() -> Self {
        Self {
            b: 10.0,
            rep_pow: 2,
            d: 80.0,
            listen_pow: 3,
            s_init: 16.0,
            helper_frac: 1.0 / 200.0,
            growth_extra_pow: 1,
            term_factor: 360.0,
            safety_factor: 360.0,
            first_epoch: 11,
        }
    }

    /// Laptop-scale constants, calibrated (see `rcb-bench`'s `calibrate`
    /// binary) so that executions with `n` up to a few hundred inform
    /// everyone and terminate within ~2 epochs of the termination point the
    /// constants predict, while keeping every structural ratio of the paper
    /// (see module docs). The calibration constraints, in brief:
    ///
    /// * `helper_frac·d·i` (the helper threshold) must exceed
    ///   `max_x(x·e^{-x})·s_init·d·i ≈ 0.37·s_init·d·i` so that helpers
    ///   only form once `S_u` has grown to ≈ `√(helper_frac·2^j/n)` — which
    ///   pins the population estimate to `n_u ≈ n/(1.15·helper_frac)`, a
    ///   *stable* constant-factor bias instead of an unbounded one;
    /// * `b > 1` strictly, so the per-epoch growth capacity `2^(b·i/2)`
    ///   outruns the `2^(i/2)`-shaped termination/safety bounds;
    /// * `term_factor` as small as empirically safe: it multiplies into the
    ///   final `S_u`, hence into every node's cost.
    ///
    /// Two degrees of freedom are deliberately spent on tractability: the
    /// dynamics depend on `d` and `helper_frac` only through the product
    /// `helper_frac·d·i` and on rates relative to `E[listens]`, so `d = 1`
    /// with a proportionally larger `helper_frac` halves nothing *logical*
    /// while quartering the listen cost; and `growth_extra_pow = 0` (growth
    /// `2^(q−1/2)` per repetition instead of `2^((q−1/2)/i)`) lets an epoch
    /// need only `Θ(i)` repetitions (`rep_pow = 1`) instead of `Θ(i²)`.
    pub fn practical() -> Self {
        Self {
            b: 3.0,
            rep_pow: 1,
            d: 1.0,
            listen_pow: 1,
            s_init: 6.0,
            helper_frac: 7.0,
            growth_extra_pow: 0,
            term_factor: 2.0,
            safety_factor: 8.0,
            first_epoch: 5,
        }
    }

    /// Number of slots in one repetition of epoch `i`: `2^i`.
    pub fn slots(&self, epoch: u32) -> u64 {
        assert!(epoch < 62, "epoch {epoch} out of range");
        1u64 << epoch
    }

    /// Number of repetitions in epoch `i`: `⌈b·i^rep_pow⌉`.
    pub fn reps(&self, epoch: u32) -> u64 {
        (self.b * (epoch as f64).powi(self.rep_pow as i32)).ceil() as u64
    }

    /// The listen multiplier `d·i^listen_pow` (paper: `d·i³`).
    pub fn listen_mult(&self, epoch: u32) -> f64 {
        self.d * (epoch as f64).powi(self.listen_pow as i32)
    }

    /// Per-slot send probability for rate variable `s`: `min(1, s/2^i)`.
    pub fn send_prob(&self, epoch: u32, s: f64) -> f64 {
        (s / self.slots(epoch) as f64).min(1.0)
    }

    /// Per-slot listen probability: `min(1, s·d·i^κ/2^i)`.
    pub fn listen_prob(&self, epoch: u32, s: f64) -> f64 {
        (s * self.listen_mult(epoch) / self.slots(epoch) as f64).min(1.0)
    }

    /// Expected number of listened slots per repetition (probability × slot
    /// count; saturates with the probability clamp).
    pub fn expected_listens(&self, epoch: u32, s: f64) -> f64 {
        self.listen_prob(epoch, s) * self.slots(epoch) as f64
    }

    /// Helper threshold: hear `m` strictly more than this many times in one
    /// repetition to switch from informed to helper (paper: `d·i³/200`).
    pub fn helper_threshold(&self, epoch: u32) -> f64 {
        self.helper_frac * self.listen_mult(epoch)
    }

    /// The growth exponent denominator (paper: `S_u·d·i⁴`).
    ///
    /// Written as `E[listens]·i^extra`: in the paper's (unsaturated) regime
    /// `E[listens] = S_u·d·i³`, so this is literally `S_u·d·i⁴`. Using the
    /// *clamped* expectation keeps the growth rate at the intended
    /// `2^(1/2i)` per all-clear repetition even when the listen probability
    /// saturates at 1 (which happens at practical scales but never in the
    /// paper's asymptotic regime) — otherwise growth stalls and the case-1
    /// safety valve becomes unreachable.
    pub fn growth_denom(&self, epoch: u32, s: f64) -> f64 {
        self.expected_listens(epoch, s) * (epoch as f64).powi(self.growth_extra_pow as i32)
    }

    /// Safety-valve bound (case 1): terminate when `s` exceeds
    /// `safety_factor·2^(i/2)`.
    pub fn safety_bound(&self, epoch: u32) -> f64 {
        self.safety_factor * (self.slots(epoch) as f64).sqrt()
    }

    /// Helper termination bound (case 4): `term_factor·√(2^i/n_est)`.
    pub fn term_bound(&self, epoch: u32, n_est: f64) -> f64 {
        assert!(n_est > 0.0, "n estimate must be positive");
        self.term_factor * (self.slots(epoch) as f64 / n_est).sqrt()
    }

    /// Total slots in epoch `i`: `reps(i)·2^i`.
    pub fn epoch_slots(&self, epoch: u32) -> u64 {
        self.reps(epoch) * self.slots(epoch)
    }

    /// The "ideal" epoch for a system of `n` nodes: the `i` with
    /// `√(2^i/n) = s_init`, i.e. `i* = lg n + 2·lg s_init` — where
    /// dissemination is cheapest and unjammed executions terminate.
    pub fn ideal_epoch(&self, n: usize) -> u32 {
        ((n as f64).log2() + 2.0 * self.s_init.log2()).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_the_figure_2_values() {
        let p = OneToNParams::paper();
        assert_eq!(p.s_init, 16.0);
        assert_eq!(p.term_factor, 360.0);
        assert_eq!(p.safety_factor, 360.0);
        assert!((p.helper_frac - 0.005).abs() < 1e-12);
        assert_eq!(p.listen_pow, 3);
        assert_eq!(p.rep_pow, 2);
        // Lemma 9 needs d > 79.2; Lemma 8/9 need b ≥ 10.
        assert!(p.d > 79.2);
        assert!(p.b >= 10.0);
    }

    #[test]
    fn paper_formulas() {
        let p = OneToNParams::paper();
        let i = 11u32;
        assert_eq!(p.slots(i), 2048);
        assert_eq!(p.reps(i), (10.0 * 121.0) as u64);
        assert!((p.listen_mult(i) - 80.0 * 1331.0).abs() < 1e-9);
        assert!((p.helper_threshold(i) - 80.0 * 1331.0 / 200.0).abs() < 1e-9);
        // Growth denominator is S·d·i⁴ wherever the listen probability is
        // unsaturated (epoch 40 with paper constants qualifies).
        let j = 40u32;
        assert!(p.listen_prob(j, 16.0) < 1.0);
        let expect = 16.0 * 80.0 * (j as f64).powi(3) * j as f64;
        assert!((p.growth_denom(j, 16.0) - expect).abs() < 1e-6 * expect);
        // In the saturated regime it is E[listens]·i = 2^i·i instead.
        assert!((p.growth_denom(i, 16.0) - 2048.0 * 11.0).abs() < 1e-9);
        assert!((p.safety_bound(i) - 360.0 * 2048.0_f64.sqrt()).abs() < 1e-9);
        assert!((p.term_bound(i, 4.0) - 360.0 * (2048.0_f64 / 4.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn probabilities_are_clamped() {
        let p = OneToNParams::paper();
        // Early epoch, paper constants: nominal listen probability ≫ 1.
        assert_eq!(p.listen_prob(11, 16.0), 1.0);
        assert!(p.send_prob(11, 16.0) < 1.0);
        assert_eq!(p.send_prob(4, 100.0), 1.0);
    }

    #[test]
    fn practical_listen_probability_is_subunit_at_ideal_epoch() {
        // The practical preset must actually be runnable: at the ideal epoch
        // for n = 64, a node at S = s_init listens with probability < 1.
        let p = OneToNParams::practical();
        let i = p.ideal_epoch(64);
        assert!(
            p.listen_prob(i, p.s_init) < 1.0,
            "listen prob {} not subunit",
            p.listen_prob(i, p.s_init)
        );
        // And the helper threshold is large enough to mean something.
        assert!(p.helper_threshold(i) >= 2.0);
    }

    #[test]
    fn ideal_epoch_tracks_n() {
        let p = OneToNParams::practical();
        // i* = ⌈lg n + 2·lg s_init⌉; s_init = 6 → lg n + 5.17.
        assert_eq!(p.ideal_epoch(64), 12);
        assert_eq!(p.ideal_epoch(256), 14);
        // Growing n by 4× moves the ideal epoch by 2.
        assert_eq!(p.ideal_epoch(1024), p.ideal_epoch(64) + 4);
    }

    #[test]
    fn growth_exponent_matches_paper_rate() {
        // With all-clear listening, C ≈ expected listens = s·d·i^κ, so
        // C′ ≈ C/2 and the growth exponent is C′/(s·d·i^(κ+1)) = 1/(2i):
        // the 2^(1/(2i)) factor of §3.1.
        let p = OneToNParams::paper();
        // Epoch 34 is the first regime where the paper constants give an
        // unsaturated listen probability (1280·i³ < 2^i).
        let (i, s) = (34u32, 16.0);
        assert!(p.listen_prob(i, s) < 1.0);
        let c = s * p.listen_mult(i);
        let c_prime = c / 2.0;
        let exponent = c_prime / p.growth_denom(i, s);
        assert!((exponent - 1.0 / (2.0 * i as f64)).abs() < 1e-12);
        // The same relation, generalized, holds for the practical preset:
        // exponent = 1/(2·i^extra); with extra = 0 that is a flat 1/2.
        let q = OneToNParams::practical();
        assert!(q.listen_prob(i, s) < 1.0, "need the unsaturated regime");
        let c2 = s * q.listen_mult(i);
        let e2 = (c2 / 2.0) / q.growth_denom(i, s);
        let expect2 = 0.5 / (i as f64).powi(q.growth_extra_pow as i32);
        assert!((e2 - expect2).abs() < 1e-12);
    }

    #[test]
    fn epoch_slots_product() {
        let p = OneToNParams::practical();
        assert_eq!(p.epoch_slots(6), p.reps(6) * 64);
    }

    #[test]
    #[should_panic]
    fn term_bound_rejects_zero_estimate() {
        OneToNParams::paper().term_bound(12, 0.0);
    }
}
