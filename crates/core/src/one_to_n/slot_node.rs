//! Slot-granularity adapter: one 1-to-n node as a [`SlotProtocol`].
//!
//! Wraps [`OneToNNode`] with per-slot coin flips and per-repetition
//! counters, for the exact engine. Send and listen are mutually exclusive
//! within a slot: the send coin is flipped first (a radio cannot do both;
//! see DESIGN.md §3).

use crate::one_to_n::node::OneToNNode;
use crate::one_to_n::params::OneToNParams;
use crate::protocol::{Rearm, SlotProtocol};
use rcb_channel::message::Payload;
use rcb_channel::slot::{Action, Reception};
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::bernoulli;

/// A 1-to-n node driven slot by slot.
#[derive(Debug, Clone)]
pub struct OneToNSlotNode {
    params: OneToNParams,
    node: OneToNNode,
    /// Informed flag at construction time — what [`Rearm`] resets to.
    informed_at_start: bool,
    /// Offset within the current repetition.
    offset: u64,
    /// Repetition index within the current epoch.
    repetition: u64,
    clear_heard: u64,
    msgs_heard: u64,
}

impl OneToNSlotNode {
    pub fn new(params: OneToNParams, informed: bool) -> Self {
        let node = OneToNNode::new(&params, informed);
        Self {
            params,
            node,
            informed_at_start: informed,
            offset: 0,
            repetition: 0,
            clear_heard: 0,
            msgs_heard: 0,
        }
    }

    /// The underlying repetition-granularity state.
    pub fn node(&self) -> &OneToNNode {
        &self.node
    }

    pub fn params(&self) -> &OneToNParams {
        &self.params
    }
}

impl Rearm for OneToNSlotNode {
    fn rearm(&mut self) {
        self.node = OneToNNode::new(&self.params, self.informed_at_start);
        self.offset = 0;
        self.repetition = 0;
        self.clear_heard = 0;
        self.msgs_heard = 0;
    }
}

impl SlotProtocol for OneToNSlotNode {
    fn act(&mut self, rng: &mut RcbRng) -> Action {
        if self.node.is_terminated() {
            return Action::Sleep;
        }
        if bernoulli(rng, self.node.send_prob(&self.params)) {
            if self.node.sends_message() {
                return Action::Send(Payload::message());
            }
            return Action::Send(Payload::Noise);
        }
        if bernoulli(rng, self.node.listen_prob(&self.params)) {
            return Action::Listen;
        }
        Action::Sleep
    }

    fn end_slot(&mut self, heard: Option<&Reception>) {
        // Terminated nodes are inert but the clock below must not run for
        // them either — they have left the protocol.
        if self.node.is_terminated() {
            return;
        }
        if let Some(r) = heard {
            match r {
                Reception::Clear => self.clear_heard += 1,
                r if r.is_message() => self.msgs_heard += 1,
                _ => {}
            }
        }
        self.offset += 1;
        if self.offset < self.params.slots(self.node.epoch()) {
            return;
        }
        // Repetition epilogue.
        self.node
            .end_repetition(&self.params, self.clear_heard, self.msgs_heard);
        self.offset = 0;
        self.clear_heard = 0;
        self.msgs_heard = 0;
        self.repetition += 1;
        if self.repetition >= self.params.reps(self.node.epoch()) {
            self.repetition = 0;
            let next = self.node.epoch() + 1;
            self.node.begin_epoch(next, &self.params);
        }
    }

    fn is_done(&self) -> bool {
        self.node.is_terminated()
    }

    fn received_message(&self) -> bool {
        self.node.ever_informed()
    }

    fn reboot(&mut self) {
        self.node.reboot(&self.params);
        // The per-repetition counters were RAM too. (Crash windows are
        // period-aligned, so both are zero here anyway; clearing keeps the
        // semantics honest for any caller.)
        self.clear_heard = 0;
        self.msgs_heard = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_to_n::node::Status;

    fn tiny_params() -> OneToNParams {
        let mut p = OneToNParams::practical();
        p.first_epoch = 4; // repetitions of 16 slots
        p
    }

    #[test]
    fn sender_sends_message_payload() {
        let p = tiny_params();
        let mut sender = OneToNSlotNode::new(p, true);
        let mut rng = RcbRng::new(1);
        let mut saw_message = false;
        for _ in 0..2000 {
            if let Action::Send(payload) = sender.act(&mut rng) {
                assert!(payload.kind() == rcb_channel::PayloadKind::Message);
                saw_message = true;
            }
            sender.end_slot(None);
        }
        assert!(saw_message, "sender should transmit m at rate S/2^i");
    }

    #[test]
    fn uninformed_sends_noise_payload() {
        let p = tiny_params();
        let mut node = OneToNSlotNode::new(p, false);
        let mut rng = RcbRng::new(2);
        let mut saw_noise = false;
        for _ in 0..2000 {
            if let Action::Send(payload) = node.act(&mut rng) {
                assert!(payload.kind() == rcb_channel::PayloadKind::Noise);
                saw_noise = true;
            }
            node.end_slot(None);
        }
        assert!(saw_noise);
    }

    #[test]
    fn message_reception_informs_at_repetition_end() {
        let p = tiny_params();
        let mut node = OneToNSlotNode::new(p, false);
        // Deliver m in the middle of the first repetition.
        node.end_slot(Some(&Reception::Received(Payload::message())));
        assert_eq!(
            node.node().status(),
            Status::Uninformed,
            "cases fire at repetition end, not mid-repetition"
        );
        for _ in 0..p.slots(p.first_epoch) - 1 {
            node.end_slot(None);
        }
        assert_eq!(node.node().status(), Status::Informed);
        assert!(node.received_message());
    }

    #[test]
    fn epoch_advances_after_all_repetitions() {
        let p = tiny_params();
        let mut node = OneToNSlotNode::new(p, false);
        let epoch_slots = p.epoch_slots(p.first_epoch);
        for _ in 0..epoch_slots {
            node.end_slot(None);
        }
        assert_eq!(node.node().epoch(), p.first_epoch + 1);
        assert_eq!(node.node().s(), p.s_init, "S resets at the epoch boundary");
    }

    #[test]
    fn clear_slots_grow_s_via_slot_path() {
        let p = tiny_params();
        let mut node = OneToNSlotNode::new(p, false);
        // Hear clear in every slot of one repetition (as if it listened
        // constantly): S must grow.
        for _ in 0..p.slots(p.first_epoch) {
            node.end_slot(Some(&Reception::Clear));
        }
        assert!(node.node().s() > p.s_init);
    }

    #[test]
    fn terminated_node_sleeps_forever() {
        let p = tiny_params();
        let mut node = OneToNSlotNode::new(p, false);
        let mut rng = RcbRng::new(3);
        // Flood with clear until the safety valve fires.
        let mut guard = 0u64;
        while !node.is_done() {
            node.end_slot(Some(&Reception::Clear));
            guard += 1;
            assert!(guard < 100_000_000, "safety valve should have fired");
        }
        for _ in 0..100 {
            assert!(matches!(node.act(&mut rng), Action::Sleep));
            node.end_slot(None);
        }
    }

    #[test]
    fn noise_receptions_are_ignored_by_counters() {
        let p = tiny_params();
        let mut node = OneToNSlotNode::new(p, false);
        for _ in 0..p.slots(p.first_epoch) {
            node.end_slot(Some(&Reception::Noise));
        }
        // Noise is neither clear nor m: no growth, no status change.
        assert_eq!(node.node().s(), p.s_init);
        assert_eq!(node.node().status(), Status::Uninformed);
    }
}
