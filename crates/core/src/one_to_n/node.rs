//! The per-node state machine of Figure 2, at repetition granularity.
//!
//! A node's entire behaviour is a function of `(status, S_u, epoch)` plus
//! two per-repetition counters supplied by whichever engine drives it: the
//! number of **clear** slots it heard and the number of times it heard the
//! message **m**. Both engines (exact and fast) call
//! [`OneToNNode::end_repetition`] with those counts, so the update rule and
//! the four termination/promotion cases live in exactly one place.

use crate::one_to_n::params::OneToNParams;
use serde::{Deserialize, Serialize};

/// Node status `t_u` (Figure 2) plus the absorbing terminated state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Does not know `m`; transmits noise to make the population audible.
    Uninformed,
    /// Knows `m`; transmits it.
    Informed,
    /// Knows `m`, has heard it often enough to estimate `n`, and is waiting
    /// for its rate variable to certify that everyone else knows it too.
    Helper,
    /// Halted.
    Terminated,
}

/// Why a node terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TermReason {
    /// Case 1: `S_u > safety_factor·2^(i/2)` — some property was already
    /// violated; bail out to keep the expected cost finite (§3.4).
    Safety,
    /// Case 4: helper reached `S_u ≥ term_factor·√(2^i/n_u)`.
    HelperDone,
}

/// One node of the 1-to-n protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OneToNNode {
    status: Status,
    /// The rate variable `S_u`.
    s: f64,
    /// `n_u = 2^j/S_u²`, fixed at the helper transition in epoch `j`.
    n_est: Option<f64>,
    epoch: u32,
    term_reason: Option<TermReason>,
    /// Whether this node ever held `m` (for outcome accounting).
    ever_informed: bool,
}

impl OneToNNode {
    /// A fresh node at the first epoch. `informed` marks the designated
    /// sender (status `informed` from the start).
    pub fn new(params: &OneToNParams, informed: bool) -> Self {
        Self {
            status: if informed {
                Status::Informed
            } else {
                Status::Uninformed
            },
            s: params.s_init,
            n_est: None,
            epoch: params.first_epoch,
            term_reason: None,
            ever_informed: informed,
        }
    }

    /// Resets the node to its just-constructed state (the session layer's
    /// re-arm path; see [`crate::protocol::Rearm`]). Takes `params` and
    /// `informed` because the node deliberately stores neither — the
    /// engines own them and pass them back in.
    pub fn rearm(&mut self, params: &OneToNParams, informed: bool) {
        *self = Self::new(params, informed);
    }

    pub fn status(&self) -> Status {
        self.status
    }

    pub fn s(&self) -> f64 {
        self.s
    }

    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    pub fn n_estimate(&self) -> Option<f64> {
        self.n_est
    }

    pub fn term_reason(&self) -> Option<TermReason> {
        self.term_reason
    }

    pub fn is_terminated(&self) -> bool {
        self.status == Status::Terminated
    }

    /// Whether the node ever learned `m` (true for the sender).
    pub fn ever_informed(&self) -> bool {
        self.ever_informed
    }

    /// Epoch prologue: `S_u ← s_init` ("S_u is reset to 16 at the beginning
    /// of each epoch").
    pub fn begin_epoch(&mut self, epoch: u32, params: &OneToNParams) {
        if self.is_terminated() {
            return;
        }
        assert!(epoch > self.epoch || epoch == params.first_epoch);
        self.epoch = epoch;
        self.s = params.s_init;
    }

    /// Crash–restart epilogue (fault injection): the node lost its volatile
    /// state — the rate variable `S_u` and the helper bookkeeping — while
    /// durable state survives: the message `m` (stable storage) and the
    /// epoch counter (re-synced from the public schedule, which §1.2 makes
    /// common knowledge). A terminated node stays terminated — it already
    /// left the protocol.
    pub fn reboot(&mut self, params: &OneToNParams) {
        if self.is_terminated() {
            return;
        }
        self.s = params.s_init;
        if self.status == Status::Helper {
            self.status = Status::Informed;
            self.n_est = None;
        }
    }

    /// Per-slot send probability in the current epoch.
    pub fn send_prob(&self, params: &OneToNParams) -> f64 {
        if self.is_terminated() {
            0.0
        } else {
            params.send_prob(self.epoch, self.s)
        }
    }

    /// Per-slot listen probability in the current epoch.
    pub fn listen_prob(&self, params: &OneToNParams) -> f64 {
        if self.is_terminated() {
            0.0
        } else {
            params.listen_prob(self.epoch, self.s)
        }
    }

    /// Whether this node's transmissions carry `m` (informed/helper) as
    /// opposed to bare noise (uninformed).
    pub fn sends_message(&self) -> bool {
        matches!(self.status, Status::Informed | Status::Helper)
    }

    /// Repetition epilogue: the `S_u` update followed by the four cases of
    /// Figure 2, executed **in order, at most one firing**.
    ///
    /// `clear_heard` — clear slots the node heard while listening;
    /// `msgs_heard` — receptions of `m`.
    pub fn end_repetition(&mut self, params: &OneToNParams, clear_heard: u64, msgs_heard: u64) {
        if self.is_terminated() {
            return;
        }
        let i = self.epoch;

        // S_u update: C′ᵤ = max(0, Cᵤ − ½·E[listens]); S_u ← S_u·2^(C′ᵤ/denom).
        // E[listens] uses the clamped expectation so a saturated listening
        // probability cannot make the baseline exceed the repetition length.
        let expected = params.expected_listens(i, self.s);
        let c_prime = (clear_heard as f64 - 0.5 * expected).max(0.0);
        if c_prime > 0.0 {
            let denom = params.growth_denom(i, self.s);
            self.s *= (c_prime / denom).exp2();
        }

        // Case 1: safety valve.
        if self.s > params.safety_bound(i) {
            self.status = Status::Terminated;
            self.term_reason = Some(TermReason::Safety);
            return;
        }
        // Case 2: uninformed hears m → informed.
        if self.status == Status::Uninformed {
            if msgs_heard > 0 {
                self.status = Status::Informed;
                self.ever_informed = true;
            }
            return;
        }
        // Case 3: informed hears m often → helper, estimate n.
        if self.status == Status::Informed {
            if msgs_heard as f64 > params.helper_threshold(i) {
                self.status = Status::Helper;
                self.n_est = Some(params.slots(i) as f64 / (self.s * self.s));
            }
            return;
        }
        // Case 4: helper whose rate certifies global helperhood terminates.
        if self.status == Status::Helper {
            let n_u = self.n_est.expect("helper always has an estimate");
            if self.s >= params.term_bound(i, n_u) {
                self.status = Status::Terminated;
                self.term_reason = Some(TermReason::HelperDone);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OneToNParams {
        OneToNParams::practical()
    }

    #[test]
    fn fresh_nodes_have_figure2_initial_state() {
        let p = params();
        let sender = OneToNNode::new(&p, true);
        let other = OneToNNode::new(&p, false);
        assert_eq!(sender.status(), Status::Informed);
        assert!(sender.sends_message());
        assert!(sender.ever_informed());
        assert_eq!(other.status(), Status::Uninformed);
        assert!(!other.sends_message());
        assert_eq!(other.s(), p.s_init);
        assert_eq!(other.epoch(), p.first_epoch);
    }

    #[test]
    fn silence_grows_s_at_the_paper_rate() {
        // All-clear repetition with an unsaturated listen probability:
        // C = E[listens] = s·d·i^κ, so C′ = E/2 and the growth factor is
        // 2^(E/2 / (s·d·i^(κ+extra))) = 2^(1/(2·i^extra)) — the paper's
        // 2^(1/(2i)) for extra = 1.
        let mut p = params();
        p.first_epoch = 12; // listen_prob(12, 16) ≈ 0.07 < 1: no clamping
        assert!(p.listen_prob(p.first_epoch, p.s_init) < 1.0);
        let mut node = OneToNNode::new(&p, false);
        let i = p.first_epoch;
        let clear = p.expected_listens(i, node.s()).round() as u64;
        let s_before = node.s();
        node.end_repetition(&p, clear, 0);
        let expected_factor = (0.5 / (i as f64).powi(p.growth_extra_pow as i32)).exp2();
        assert!(
            (node.s() / s_before - expected_factor).abs() < 1e-6,
            "factor {} vs {}",
            node.s() / s_before,
            expected_factor
        );
    }

    #[test]
    fn half_clear_or_less_does_not_grow_s() {
        let p = params();
        let mut node = OneToNNode::new(&p, false);
        let half = (p.expected_listens(p.first_epoch, node.s()) / 2.0).floor() as u64;
        let s = node.s();
        node.end_repetition(&p, half, 0);
        assert_eq!(node.s(), s, "C ≤ E/2 ⇒ C′ = 0 ⇒ no growth");
    }

    #[test]
    fn uninformed_becomes_informed_on_one_message() {
        let p = params();
        let mut node = OneToNNode::new(&p, false);
        node.end_repetition(&p, 0, 1);
        assert_eq!(node.status(), Status::Informed);
        assert!(node.ever_informed());
    }

    #[test]
    fn at_most_one_case_fires_per_repetition() {
        // A repetition delivering a flood of messages to an uninformed node
        // makes it informed — not helper (cases execute at most once).
        let p = params();
        let mut node = OneToNNode::new(&p, false);
        let flood = (p.helper_threshold(p.first_epoch) as u64 + 10).max(10);
        node.end_repetition(&p, 0, flood);
        assert_eq!(node.status(), Status::Informed, "not straight to helper");
        // Next repetition with the same flood: now the helper case fires.
        node.end_repetition(&p, 0, flood);
        assert_eq!(node.status(), Status::Helper);
    }

    #[test]
    fn helper_transition_records_n_estimate() {
        let p = params();
        let mut node = OneToNNode::new(&p, true);
        let flood = (p.helper_threshold(p.first_epoch) as u64) + 1;
        node.end_repetition(&p, 0, flood);
        assert_eq!(node.status(), Status::Helper);
        let n_u = node.n_estimate().expect("estimate set");
        let expect = p.slots(p.first_epoch) as f64 / (node.s() * node.s());
        assert!((n_u - expect).abs() < 1e-9);
    }

    #[test]
    fn helper_terminates_when_rate_reaches_bound() {
        let p = params();
        let mut node = OneToNNode::new(&p, true);
        let i = p.first_epoch;
        let flood = (p.helper_threshold(i) as u64) + 1;
        node.end_repetition(&p, 0, flood);
        assert_eq!(node.status(), Status::Helper);
        let n_u = node.n_estimate().expect("set");
        // Feed all-clear repetitions until S reaches the bound.
        let mut reps = 0;
        while node.status() == Status::Helper {
            let clear = p.expected_listens(i, node.s()).ceil() as u64;
            node.end_repetition(&p, clear, 0);
            reps += 1;
            assert!(reps < 100_000, "helper never terminated");
        }
        assert_eq!(node.status(), Status::Terminated);
        assert_eq!(node.term_reason(), Some(TermReason::HelperDone));
        assert!(node.s() >= p.term_bound(i, n_u));
    }

    #[test]
    fn safety_valve_fires_before_absurd_rates() {
        let p = params();
        let mut node = OneToNNode::new(&p, false);
        let i = p.first_epoch;
        let mut reps = 0;
        // All-clear forever with no messages: S must eventually trip case 1.
        while !node.is_terminated() {
            let clear = p.expected_listens(i, node.s()).ceil() as u64;
            node.end_repetition(&p, clear, 0);
            reps += 1;
            assert!(reps < 1_000_000, "safety valve never fired");
        }
        assert_eq!(node.term_reason(), Some(TermReason::Safety));
        assert!(!node.ever_informed());
    }

    #[test]
    fn epoch_reset_restores_s_init() {
        let p = params();
        let mut node = OneToNNode::new(&p, false);
        let clear = p.expected_listens(p.first_epoch, node.s()).ceil() as u64;
        node.end_repetition(&p, clear, 0);
        assert!(node.s() > p.s_init);
        node.begin_epoch(p.first_epoch + 1, &p);
        assert_eq!(node.s(), p.s_init);
        assert_eq!(node.epoch(), p.first_epoch + 1);
    }

    #[test]
    fn terminated_nodes_are_inert() {
        let p = params();
        let mut node = OneToNNode::new(&p, true);
        let flood = (p.helper_threshold(p.first_epoch) as u64) + 1;
        node.end_repetition(&p, 0, flood);
        while !node.is_terminated() {
            let clear = p.expected_listens(p.first_epoch, node.s()).ceil() as u64;
            node.end_repetition(&p, clear, 0);
        }
        let snapshot = node;
        node.end_repetition(&p, 1000, 1000);
        node.begin_epoch(node.epoch() + 1, &p);
        assert_eq!(node, snapshot, "terminated nodes never change");
        assert_eq!(node.send_prob(&p), 0.0);
        assert_eq!(node.listen_prob(&p), 0.0);
    }

    #[test]
    fn reboot_loses_volatile_state_but_keeps_m_and_termination() {
        let p = params();
        // An informed node that grew S and reached helper status.
        let mut node = OneToNNode::new(&p, true);
        let flood = (p.helper_threshold(p.first_epoch) as u64) + 1;
        node.end_repetition(&p, 0, flood);
        assert_eq!(node.status(), Status::Helper);
        node.reboot(&p);
        assert_eq!(node.status(), Status::Informed, "helper bookkeeping is RAM");
        assert_eq!(node.n_estimate(), None);
        assert_eq!(node.s(), p.s_init, "S_u is RAM");
        assert!(node.ever_informed(), "m is stable storage");

        // A terminated node is past rebooting.
        let mut dead = OneToNNode::new(&p, false);
        while !dead.is_terminated() {
            let clear = p.expected_listens(p.first_epoch, dead.s()).ceil() as u64;
            dead.end_repetition(&p, clear, 0);
        }
        let snapshot = dead;
        dead.reboot(&p);
        assert_eq!(dead, snapshot);
    }

    #[test]
    fn probabilities_match_params() {
        let p = params();
        let node = OneToNNode::new(&p, false);
        assert!((node.send_prob(&p) - p.send_prob(p.first_epoch, p.s_init)).abs() < 1e-15);
        assert!((node.listen_prob(&p) - p.listen_prob(p.first_epoch, p.s_init)).abs() < 1e-15);
    }
}
