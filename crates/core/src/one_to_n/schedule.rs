//! Public slot→repetition geometry of 1-to-n BROADCAST.
//!
//! Epoch `i` (from `first_epoch`) occupies `reps(i)·2^i` consecutive slots.
//! Periods — the units the adversary plans against — are repetitions.

use crate::one_to_n::params::OneToNParams;
use crate::protocol::{PeriodLoc, Schedule};
use rcb_channel::Slot;

/// Slot geometry induced by a parameter set.
#[derive(Debug, Clone, Copy)]
pub struct OneToNSchedule {
    params: OneToNParams,
}

/// Detailed location of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepLoc {
    pub epoch: u32,
    /// Repetition index within the epoch, `0 .. reps(epoch)`.
    pub repetition: u64,
    /// Offset within the repetition, `0 .. 2^epoch`.
    pub offset: u64,
    /// Global repetition index since the start of the execution.
    pub global_repetition: u64,
}

impl OneToNSchedule {
    pub fn new(params: OneToNParams) -> Self {
        Self { params }
    }

    pub fn params(&self) -> &OneToNParams {
        &self.params
    }

    /// Full location of a global slot.
    pub fn locate_rep(&self, slot: Slot) -> RepLoc {
        let mut epoch = self.params.first_epoch;
        let mut remaining = slot;
        let mut global_rep = 0u64;
        loop {
            let reps = self.params.reps(epoch);
            let rep_len = self.params.slots(epoch);
            let epoch_len = reps * rep_len;
            if remaining < epoch_len {
                let repetition = remaining / rep_len;
                return RepLoc {
                    epoch,
                    repetition,
                    offset: remaining % rep_len,
                    global_repetition: global_rep + repetition,
                };
            }
            remaining -= epoch_len;
            global_rep += reps;
            epoch += 1;
            assert!(epoch < 62, "slot index implies an absurd epoch");
        }
    }

    /// Slots consumed by all epochs strictly before `epoch`.
    pub fn slots_before_epoch(&self, epoch: u32) -> u64 {
        (self.params.first_epoch..epoch)
            .map(|i| self.params.epoch_slots(i))
            .sum()
    }
}

impl Schedule for OneToNSchedule {
    fn locate(&self, slot: Slot) -> PeriodLoc {
        let loc = self.locate_rep(slot);
        PeriodLoc {
            period: loc.global_repetition,
            offset: loc.offset,
            len: self.params.slots(loc.epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> OneToNSchedule {
        let mut p = OneToNParams::practical();
        p.first_epoch = 3; // repetitions of 8 slots
        OneToNSchedule::new(p)
    }

    #[test]
    fn first_epoch_layout() {
        let s = sched();
        let reps3 = s.params().reps(3);
        assert!(reps3 >= 2, "first epoch must have several repetitions");
        let l0 = s.locate_rep(0);
        assert_eq!((l0.epoch, l0.repetition, l0.offset), (3, 0, 0));
        let l9 = s.locate_rep(9);
        assert_eq!((l9.epoch, l9.repetition, l9.offset), (3, 1, 1));
        let last = s.locate_rep(reps3 * 8 - 1);
        assert_eq!(
            (last.epoch, last.repetition, last.offset),
            (3, reps3 - 1, 7)
        );
    }

    #[test]
    fn epoch_transition() {
        let s = sched();
        let reps3 = s.params().reps(3);
        let first_of_next = s.params().epoch_slots(3);
        let l = s.locate_rep(first_of_next);
        assert_eq!((l.epoch, l.repetition, l.offset), (4, 0, 0));
        assert_eq!(l.global_repetition, reps3);
    }

    #[test]
    fn slots_before_epoch_accumulates() {
        let s = sched();
        assert_eq!(s.slots_before_epoch(3), 0);
        assert_eq!(s.slots_before_epoch(4), s.params().epoch_slots(3));
        assert_eq!(
            s.slots_before_epoch(5),
            s.params().epoch_slots(3) + s.params().epoch_slots(4)
        );
    }

    #[test]
    fn schedule_trait_period_is_global_repetition() {
        let s = sched();
        let reps3 = s.params().reps(3);
        let slot = s.params().epoch_slots(3) + 16; // epoch 4, repetition 1
        let loc = s.locate(slot);
        assert_eq!(loc.period, reps3 + 1);
        assert_eq!(loc.offset, 0);
        assert_eq!(loc.len, 16);
    }

    #[test]
    fn locate_is_monotone_in_slots() {
        let s = sched();
        let mut last_rep = 0;
        for slot in 0..s.params().epoch_slots(3) + s.params().epoch_slots(4) {
            let rep = s.locate_rep(slot).global_repetition;
            assert!(rep >= last_rep);
            assert!(rep - last_rep <= 1);
            last_rep = rep;
        }
    }
}
