//! 1-to-n BROADCAST (Figure 2 of the paper) — the primary contribution.
//!
//! Every node runs the same loop, epoch by epoch (`b·i²` repetitions of
//! `2^i` slots each), with a rate variable `S_u` reset to 16 at each epoch:
//!
//! * informed/helper nodes send `m` with probability `S_u/2^i` per slot;
//! * **uninformed nodes send noise** at the same rate — deliberately — so
//!   the clear-slot frequency reveals how large `n` is relative to `2^i`;
//! * everyone listens with probability `S_u·d·i³/2^i`;
//! * hearing more clear slots than half the expectation grows `S_u` by
//!   `2^(C′ᵤ/(S_u·d·i⁴))` — silence is *free* evidence that the population
//!   is small, so rates ramp up without costing the adversary anything to
//!   prevent except jamming (which costs her);
//! * hearing `m` more than `d·i³/200` times promotes an informed node to
//!   **helper** with population estimate `n_u = 2^i/S_u²`; a helper whose
//!   `S_u` later reaches `360·√(2^i/n_u)` concludes every node is a helper
//!   (w.h.p.) and terminates; a safety valve (`S_u > 360·2^(i/2)`) bounds
//!   the cost of pathological executions.
//!
//! See [`params::OneToNParams`] for the paper-vs-practical constant story.

pub mod node;
pub mod params;
pub mod predict;
pub mod schedule;
pub mod slot_node;

pub use node::{OneToNNode, Status, TermReason};
pub use params::OneToNParams;
pub use predict::{
    blocked_through_epoch, budget_to_reach_epoch, estimated_termination_epoch,
    estimated_unjammed_slots, slots_in_epochs,
};
pub use schedule::{OneToNSchedule, RepLoc};
pub use slot_node::OneToNSlotNode;
