//! Schedule arithmetic for Figure 2 — the deterministic quantities that
//! experiment design and tests reason with.
//!
//! Everything here is exact combinatorics of the public schedule (no
//! randomness): how many slots a span of epochs occupies, how deep a
//! blanket-jamming budget can push the system, and a first-order estimate
//! of the unjammed timeline derived from the ideal-epoch calibration.

use crate::one_to_n::params::OneToNParams;

/// Total slots occupied by epochs `first..=last` (inclusive).
pub fn slots_in_epochs(params: &OneToNParams, first: u32, last: u32) -> u64 {
    assert!(first <= last, "need first <= last");
    (first..=last).map(|i| params.epoch_slots(i)).sum()
}

/// The last epoch a blanket blocker with `budget` slot-units can fully
/// block, starting from the first epoch. Returns `None` if the budget
/// cannot even cover the first epoch.
pub fn blocked_through_epoch(params: &OneToNParams, budget: u64) -> Option<u32> {
    let mut epoch = params.first_epoch;
    let mut remaining = budget;
    let mut last_blocked = None;
    loop {
        let cost = params.epoch_slots(epoch);
        if remaining < cost {
            return last_blocked;
        }
        remaining -= cost;
        last_blocked = Some(epoch);
        epoch += 1;
        assert!(epoch < 62, "budget implies an absurd epoch");
    }
}

/// First-order estimate of the epoch in which an unjammed execution with
/// `n` nodes terminates: the ideal epoch (where `√(2^i/n) = s_init`) — the
/// calibrated practical constants terminate within about one epoch of it
/// (see the `calibrate` binary's tables).
pub fn estimated_termination_epoch(params: &OneToNParams, n: usize) -> u32 {
    params.ideal_epoch(n).max(params.first_epoch)
}

/// First-order estimate of the unjammed latency in slots: every epoch up
/// to the estimated termination epoch runs to completion.
pub fn estimated_unjammed_slots(params: &OneToNParams, n: usize) -> u64 {
    slots_in_epochs(
        params,
        params.first_epoch,
        estimated_termination_epoch(params, n),
    )
}

/// The jamming budget needed to push termination to `target_epoch`: block
/// every epoch before it.
pub fn budget_to_reach_epoch(params: &OneToNParams, target_epoch: u32) -> u64 {
    if target_epoch <= params.first_epoch {
        return 0;
    }
    slots_in_epochs(params, params.first_epoch, target_epoch - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OneToNParams {
        OneToNParams::practical()
    }

    #[test]
    fn slots_in_epochs_sums_the_schedule() {
        let p = params();
        let direct = p.epoch_slots(5) + p.epoch_slots(6) + p.epoch_slots(7);
        assert_eq!(slots_in_epochs(&p, 5, 7), direct);
        assert_eq!(slots_in_epochs(&p, 5, 5), p.epoch_slots(5));
    }

    #[test]
    fn blocked_through_epoch_consumes_whole_epochs() {
        let p = params();
        let e5 = p.epoch_slots(5);
        let e6 = p.epoch_slots(6);
        assert_eq!(blocked_through_epoch(&p, 0), None);
        assert_eq!(blocked_through_epoch(&p, e5 - 1), None);
        assert_eq!(blocked_through_epoch(&p, e5), Some(5));
        assert_eq!(blocked_through_epoch(&p, e5 + e6 - 1), Some(5));
        assert_eq!(blocked_through_epoch(&p, e5 + e6), Some(6));
    }

    #[test]
    fn budget_to_reach_epoch_inverts_blocking() {
        let p = params();
        for target in [6u32, 9, 12] {
            let budget = budget_to_reach_epoch(&p, target);
            assert_eq!(blocked_through_epoch(&p, budget), Some(target - 1));
        }
        assert_eq!(budget_to_reach_epoch(&p, p.first_epoch), 0);
    }

    #[test]
    fn estimates_are_monotone_in_n() {
        let p = params();
        assert!(estimated_termination_epoch(&p, 64) > estimated_termination_epoch(&p, 8));
        assert!(estimated_unjammed_slots(&p, 64) > estimated_unjammed_slots(&p, 8));
    }
}
