//! Phase-granularity state machines for Figure 1.
//!
//! These are pure transition functions — no randomness, no channel — fed
//! with per-phase aggregates (did `m`/a nack arrive? how many noisy slots
//! were heard?). Both the exact slot-level adapters and the fast duel
//! engine drive executions through these same machines, so the two engines
//! cannot drift apart on halting logic.

use serde::{Deserialize, Serialize};

/// Which half of an epoch a slot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Alice transmits `m`; Bob listens.
    Send,
    /// Bob transmits nacks (if still uninformed); Alice listens.
    Nack,
}

/// Alice's phase-level state.
///
/// Reconstructed halting rule (Theorem 1 proof): at the end of a nack phase
/// Alice halts iff she received **no nack** and heard **fewer than Θᵢ**
/// noisy slots — silence means Bob is gone (he either received `m` and
/// halted, or halted prematurely); noise means the adversary is paying to
/// keep her guessing, so she continues.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AliceState {
    epoch: u32,
    done: bool,
}

impl AliceState {
    pub fn new(start_epoch: u32) -> Self {
        Self {
            epoch: start_epoch,
            done: false,
        }
    }

    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Epoch epilogue. `heard_nack`: whether any nack arrived during the
    /// nack phase; `noise_heard`: noisy slots Alice heard while listening
    /// in the nack phase; `threshold`: `Θᵢ` for the current epoch.
    ///
    /// Returns `true` if Alice halts.
    pub fn end_epoch(&mut self, heard_nack: bool, noise_heard: u64, threshold: f64) -> bool {
        assert!(!self.done, "end_epoch called on a halted Alice");
        if !heard_nack && (noise_heard as f64) < threshold {
            self.done = true;
        } else {
            self.epoch += 1;
        }
        self.done
    }
}

/// What Bob decides at the end of a send phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BobSendOutcome {
    /// `m` arrived: halt, success.
    Success,
    /// No `m` and little noise: conclude Alice has halted; give up.
    HaltPremature,
    /// No `m` but heavy jamming: stay in the game, send nacks.
    ContinueToNack,
}

/// Bob's phase-level state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BobState {
    epoch: u32,
    got_message: bool,
    done: bool,
}

impl BobState {
    pub fn new(start_epoch: u32) -> Self {
        Self {
            epoch: start_epoch,
            got_message: false,
            done: false,
        }
    }

    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn got_message(&self) -> bool {
        self.got_message
    }

    /// Send-phase epilogue. `got_m`: whether `m` arrived this phase;
    /// `noise_heard`: noisy slots heard; `threshold`: `Θᵢ`.
    pub fn end_send_phase(
        &mut self,
        got_m: bool,
        noise_heard: u64,
        threshold: f64,
    ) -> BobSendOutcome {
        assert!(!self.done, "end_send_phase called on a halted Bob");
        if got_m {
            self.got_message = true;
            self.done = true;
            BobSendOutcome::Success
        } else if (noise_heard as f64) < threshold {
            self.done = true;
            BobSendOutcome::HaltPremature
        } else {
            BobSendOutcome::ContinueToNack
        }
    }

    /// Nack-phase epilogue: Bob (still uninformed, still running) advances
    /// to the next epoch.
    pub fn end_nack_phase(&mut self) {
        assert!(!self.done, "end_nack_phase called on a halted Bob");
        self.epoch += 1;
    }

    /// Immediate halt upon receiving `m` mid-phase (saves the remaining
    /// listening cost; the analysis only needs Bob to halt by phase end).
    pub fn receive_message(&mut self) {
        self.got_message = true;
        self.done = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const THR: f64 = 10.0;

    #[test]
    fn alice_halts_on_silence() {
        let mut a = AliceState::new(14);
        assert!(a.end_epoch(false, 0, THR));
        assert!(a.is_done());
        assert_eq!(a.epoch(), 14, "epoch does not advance past halting");
    }

    #[test]
    fn alice_continues_on_nack() {
        let mut a = AliceState::new(14);
        assert!(!a.end_epoch(true, 0, THR));
        assert_eq!(a.epoch(), 15);
    }

    #[test]
    fn alice_continues_on_heavy_noise() {
        let mut a = AliceState::new(14);
        assert!(!a.end_epoch(false, 10, THR), "noise == Θ is 'heavy'");
        assert_eq!(a.epoch(), 15);
    }

    #[test]
    fn alice_halts_just_below_threshold() {
        let mut a = AliceState::new(14);
        assert!(a.end_epoch(false, 9, THR));
    }

    #[test]
    #[should_panic]
    fn alice_end_epoch_after_halt_panics() {
        let mut a = AliceState::new(14);
        a.end_epoch(false, 0, THR);
        a.end_epoch(false, 0, THR);
    }

    #[test]
    fn bob_success_dominates() {
        let mut b = BobState::new(14);
        // Even with heavy noise, receiving m is a success.
        assert_eq!(b.end_send_phase(true, 1000, THR), BobSendOutcome::Success);
        assert!(b.is_done() && b.got_message());
    }

    #[test]
    fn bob_gives_up_on_silence() {
        let mut b = BobState::new(14);
        assert_eq!(
            b.end_send_phase(false, 3, THR),
            BobSendOutcome::HaltPremature
        );
        assert!(b.is_done());
        assert!(!b.got_message());
    }

    #[test]
    fn bob_fights_through_jamming() {
        let mut b = BobState::new(14);
        assert_eq!(
            b.end_send_phase(false, 50, THR),
            BobSendOutcome::ContinueToNack
        );
        assert!(!b.is_done());
        b.end_nack_phase();
        assert_eq!(b.epoch(), 15);
    }

    #[test]
    fn bob_mid_phase_receive_halts() {
        let mut b = BobState::new(14);
        b.receive_message();
        assert!(b.is_done() && b.got_message());
    }

    #[test]
    #[should_panic]
    fn bob_send_phase_after_halt_panics() {
        let mut b = BobState::new(14);
        b.receive_message();
        b.end_send_phase(false, 0, THR);
    }
}
