//! Closed-form cost accounting for two-party epoch protocols — the
//! Theorem 1 proof's bookkeeping as executable math.
//!
//! Against the canonical blanket blocker with budget `T`, an execution
//! runs every epoch the budget can fully block plus (with probability
//! `≈ 1`) one final clean epoch. Each party's expected spend in epoch `i`
//! is `2·p_i·2^i` (two phases, rate `p_i`). Summing geometric series gives
//! the predicted cost curve; the experiments overlay it on measurements
//! and the tests pin the simulators to it within Monte-Carlo tolerance.

use crate::one_to_one::profile::DuelProfile;

/// Expected per-party activity in one epoch of `profile`: both phases at
/// rate `p_i` (`2·p_i·2^i`). For Alice this counts send-phase sends plus
/// nack-phase listens; Bob's send-phase listening matches the same bound
/// (he stops early on delivery, so it is an upper estimate for him).
pub fn epoch_activity<P: DuelProfile>(profile: &P, epoch: u32) -> f64 {
    2.0 * profile.rate(epoch) * profile.phase_len(epoch) as f64
}

/// The last epoch a blanket blocker with budget `T` can fully block, and
/// the epoch in which the parties therefore finish (one past it). With
/// `T = 0` the parties finish in the start epoch.
pub fn finishing_epoch<P: DuelProfile>(profile: &P, budget: u64) -> u32 {
    let mut epoch = profile.start_epoch();
    let mut remaining = budget;
    loop {
        let epoch_slots = 2 * profile.phase_len(epoch);
        if remaining < epoch_slots {
            return epoch;
        }
        remaining -= epoch_slots;
        epoch += 1;
        assert!(epoch < 62, "budget implies an absurd epoch");
    }
}

/// Predicted expected max-party cost against the blanket blocker: the sum
/// of per-epoch activity from the start epoch through the finishing epoch.
pub fn predicted_cost<P: DuelProfile>(profile: &P, budget: u64) -> f64 {
    let finish = finishing_epoch(profile, budget);
    (profile.start_epoch()..=finish)
        .map(|i| epoch_activity(profile, i))
        .sum()
}

/// Predicted latency in slots: every epoch through the finishing one runs
/// to completion (`Σ 2·2^i`).
pub fn predicted_latency<P: DuelProfile>(profile: &P, budget: u64) -> f64 {
    let finish = finishing_epoch(profile, budget);
    (profile.start_epoch()..=finish)
        .map(|i| 2.0 * profile.phase_len(i) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_to_one::profile::Fig1Profile;

    fn profile() -> Fig1Profile {
        Fig1Profile::with_start_epoch(0.01, 8)
    }

    #[test]
    fn finishing_epoch_tracks_budget() {
        let p = profile();
        assert_eq!(finishing_epoch(&p, 0), 8);
        // Epoch 8 costs 512 slots to block fully.
        assert_eq!(finishing_epoch(&p, 511), 8);
        assert_eq!(finishing_epoch(&p, 512), 9);
        // Blocking epochs 8 and 9 costs 512 + 1024.
        assert_eq!(finishing_epoch(&p, 1536), 10);
    }

    #[test]
    fn predicted_cost_scales_like_sqrt_t() {
        let p = profile();
        // Quadrupling the budget adds two epochs, i.e. multiplies the
        // dominant (last-epoch) activity by 2 — the √T law.
        let c1 = predicted_cost(&p, 1 << 14);
        let c2 = predicted_cost(&p, 1 << 16);
        let ratio = c2 / c1;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn predicted_latency_is_linear_in_t() {
        let p = profile();
        let l1 = predicted_latency(&p, 1 << 14);
        let l2 = predicted_latency(&p, 1 << 16);
        let ratio = l2 / l1;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn epoch_activity_formula() {
        let p = profile();
        let expect = 2.0 * p.rate(10) * 1024.0;
        assert!((epoch_activity(&p, 10) - expect).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_prediction_is_one_epoch() {
        let p = profile();
        assert!((predicted_cost(&p, 0) - epoch_activity(&p, 8)).abs() < 1e-9);
        assert!((predicted_latency(&p, 0) - 512.0).abs() < 1e-9);
    }
}
