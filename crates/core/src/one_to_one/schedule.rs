//! Public slot→phase geometry of the two-party epoch protocols.
//!
//! Epoch `i` (starting from `start_epoch`) occupies `2·2^i` consecutive
//! slots: a send phase of `2^i`, then a nack phase of `2^i`. The mapping is
//! deterministic, hence known to the adversary.

use crate::one_to_one::state::PhaseKind;
use crate::protocol::{PeriodLoc, Schedule};
use rcb_channel::Slot;

/// Slot geometry for a protocol starting at `start_epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuelSchedule {
    start_epoch: u32,
}

/// Detailed location of a slot in the duel schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuelLoc {
    pub epoch: u32,
    pub phase: PhaseKind,
    /// Offset within the phase, in `[0, 2^epoch)`.
    pub offset: u64,
}

impl DuelSchedule {
    pub fn new(start_epoch: u32) -> Self {
        assert!((1..62).contains(&start_epoch), "epoch out of range");
        Self { start_epoch }
    }

    pub fn start_epoch(&self) -> u32 {
        self.start_epoch
    }

    /// Slots consumed by all epochs strictly before `epoch`.
    pub fn slots_before_epoch(&self, epoch: u32) -> u64 {
        assert!(epoch >= self.start_epoch);
        // Σ_{j=s}^{e−1} 2^(j+1) = 2^(e+1) − 2^(s+1).
        (1u64 << (epoch + 1)) - (1u64 << (self.start_epoch + 1))
    }

    /// Full location of a global slot.
    pub fn locate_duel(&self, slot: Slot) -> DuelLoc {
        let mut epoch = self.start_epoch;
        let mut remaining = slot;
        loop {
            let epoch_len = 1u64 << (epoch + 1);
            if remaining < epoch_len {
                let phase_len = 1u64 << epoch;
                let (phase, offset) = if remaining < phase_len {
                    (PhaseKind::Send, remaining)
                } else {
                    (PhaseKind::Nack, remaining - phase_len)
                };
                return DuelLoc {
                    epoch,
                    phase,
                    offset,
                };
            }
            remaining -= epoch_len;
            epoch += 1;
            assert!(epoch < 62, "slot index implies an absurd epoch");
        }
    }
}

impl Schedule for DuelSchedule {
    fn locate(&self, slot: Slot) -> PeriodLoc {
        let loc = self.locate_duel(slot);
        let phase_index = match loc.phase {
            PhaseKind::Send => 0,
            PhaseKind::Nack => 1,
        };
        PeriodLoc {
            period: 2 * (loc.epoch - self.start_epoch) as u64 + phase_index,
            offset: loc.offset,
            len: 1u64 << loc.epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_epoch_layout() {
        let s = DuelSchedule::new(4); // phases of 16 slots
        let l0 = s.locate_duel(0);
        assert_eq!((l0.epoch, l0.phase, l0.offset), (4, PhaseKind::Send, 0));
        let l15 = s.locate_duel(15);
        assert_eq!((l15.epoch, l15.phase, l15.offset), (4, PhaseKind::Send, 15));
        let l16 = s.locate_duel(16);
        assert_eq!((l16.epoch, l16.phase, l16.offset), (4, PhaseKind::Nack, 0));
        let l31 = s.locate_duel(31);
        assert_eq!((l31.epoch, l31.phase, l31.offset), (4, PhaseKind::Nack, 15));
    }

    #[test]
    fn epoch_boundaries_double() {
        let s = DuelSchedule::new(4);
        // Epoch 4 occupies 32 slots; epoch 5 the next 64.
        let l32 = s.locate_duel(32);
        assert_eq!((l32.epoch, l32.phase, l32.offset), (5, PhaseKind::Send, 0));
        let l95 = s.locate_duel(95);
        assert_eq!((l95.epoch, l95.phase, l95.offset), (5, PhaseKind::Nack, 31));
        let l96 = s.locate_duel(96);
        assert_eq!(l96.epoch, 6);
    }

    #[test]
    fn slots_before_epoch_formula() {
        let s = DuelSchedule::new(4);
        assert_eq!(s.slots_before_epoch(4), 0);
        assert_eq!(s.slots_before_epoch(5), 32);
        assert_eq!(s.slots_before_epoch(6), 32 + 64);
        assert_eq!(s.slots_before_epoch(7), 32 + 64 + 128);
    }

    #[test]
    fn period_index_interleaves_phases() {
        let s = DuelSchedule::new(4);
        assert_eq!(s.locate(0).period, 0); // epoch 4 send
        assert_eq!(s.locate(16).period, 1); // epoch 4 nack
        assert_eq!(s.locate(32).period, 2); // epoch 5 send
        assert_eq!(s.locate(64).period, 3); // epoch 5 nack
        assert_eq!(s.locate(32).len, 32);
    }

    #[test]
    fn schedule_is_consistent_with_cumulative_lengths() {
        let s = DuelSchedule::new(5);
        let mut slot = 0u64;
        for epoch in 5..10u32 {
            for phase in [PhaseKind::Send, PhaseKind::Nack] {
                for offset in [0u64, (1 << epoch) - 1] {
                    let l = s.locate_duel(slot + offset);
                    assert_eq!((l.epoch, l.phase, l.offset), (epoch, phase, offset));
                }
                slot += 1 << epoch;
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_absurd_start() {
        DuelSchedule::new(62);
    }
}
