//! 1-to-1 BROADCAST (Figure 1 of the paper) — Alice sends `m` to Bob.
//!
//! The algorithm proceeds in epochs `i ≥ 11 + lg ln(8/ε)`, each consisting
//! of a **send phase** and a **nack phase** of `2^i` slots each. In epoch
//! `i` both parties act with probability `p_i = √(ln(8/ε)/2^(i−1))` per
//! slot:
//!
//! * send phase — Alice sends `m`, Bob listens. By a birthday-paradox
//!   argument an unjammed phase delivers `m` with probability `1 − ε/8`.
//! * nack phase — if Bob is still uninformed he sends nacks, Alice listens.
//!
//! Halting is driven by the *noise threshold* `Θᵢ = √(2^(i−1)·ln(8/ε))/4`:
//! hearing at least `Θᵢ` noisy slots is evidence of heavy jamming (the
//! adversary must be spending), so the party stays in the game; hearing
//! less, together with silence (no `m`, no nack), is evidence the other
//! party has halted.
//!
//! The module separates:
//! * [`profile`] — the numerical profile (rates, thresholds, start epoch);
//!   pluggable so the golden-ratio baseline can reuse everything else;
//! * [`state`] — the phase-granularity state machines (pure logic, used by
//!   both engines);
//! * [`schedule`] — the public slot→phase geometry;
//! * [`slot`] — [`SlotProtocol`](crate::protocol::SlotProtocol) adapters
//!   for the exact engine.

pub mod predict;
pub mod profile;
pub mod schedule;
pub mod slot;
pub mod state;

pub use predict::{epoch_activity, finishing_epoch, predicted_cost, predicted_latency};
pub use profile::{DuelProfile, Fig1Profile};
pub use schedule::DuelSchedule;
pub use slot::{AliceProtocol, BobProtocol};
pub use state::{AliceState, BobSendOutcome, BobState, PhaseKind};
