//! Numerical profiles for two-party epoch protocols.
//!
//! Figure 1 and the King–Saia–Young baseline share the same epoch/phase
//! skeleton and halting logic; they differ only in three numbers per epoch:
//! where epochs start, the per-slot activity rate, and the noise threshold.
//! [`DuelProfile`] captures exactly that surface.

/// The per-epoch numbers of a two-party epoch-doubling protocol.
pub trait DuelProfile {
    /// Index of the first epoch.
    fn start_epoch(&self) -> u32;

    /// Per-slot send/listen probability `p_i` in epoch `i` (clamped to
    /// `[0, 1]` by implementations).
    fn rate(&self, epoch: u32) -> f64;

    /// Noise threshold `Θᵢ`: hearing at least this many noisy slots in a
    /// phase means "the adversary is spending; keep running".
    fn noise_threshold(&self, epoch: u32) -> f64;

    /// Number of slots in one phase of epoch `i` (`2^i` for all profiles in
    /// this workspace; overridable for tests).
    fn phase_len(&self, epoch: u32) -> u64 {
        1u64 << epoch
    }
}

/// The Figure 1 profile: `p_i = √(ln(8/ε)/2^(i−1))`,
/// `Θᵢ = √(2^(i−1)·ln(8/ε))/4`, first epoch `⌈11 + lg ln(8/ε)⌉`.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Profile {
    epsilon: f64,
    ln8e: f64,
    start_epoch: u32,
}

impl Fig1Profile {
    /// The paper's profile for failure probability `ε ∈ (0, 1)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        let ln8e = (8.0 / epsilon).ln();
        let start_epoch = (11.0 + ln8e.log2()).ceil() as u32;
        Self {
            epsilon,
            ln8e,
            start_epoch,
        }
    }

    /// Same formulas but a custom first epoch. The paper's `11 + lg ln(8/ε)`
    /// exists to make each epoch's failure probability sum to `ε`; smaller
    /// start epochs trade a slightly larger failure constant for far cheaper
    /// executions, which is the right trade for simulation studies.
    pub fn with_start_epoch(epsilon: f64, start_epoch: u32) -> Self {
        let mut p = Self::new(epsilon);
        assert!(start_epoch >= 1, "start epoch must be at least 1");
        p.start_epoch = start_epoch;
        p
    }

    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// `ln(8/ε)` — the factor all rates and thresholds carry.
    pub fn ln8e(&self) -> f64 {
        self.ln8e
    }
}

impl DuelProfile for Fig1Profile {
    fn start_epoch(&self) -> u32 {
        self.start_epoch
    }

    fn rate(&self, epoch: u32) -> f64 {
        let half_phase = (1u64 << epoch) as f64 / 2.0;
        (self.ln8e / half_phase).sqrt().min(1.0)
    }

    fn noise_threshold(&self, epoch: u32) -> f64 {
        let half_phase = (1u64 << epoch) as f64 / 2.0;
        (half_phase * self.ln8e).sqrt() / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_epoch_matches_paper_formula() {
        // ε = 0.1: ln 80 ≈ 4.382, lg ≈ 2.13 → start = ⌈13.13⌉ = 14.
        let p = Fig1Profile::new(0.1);
        assert_eq!(p.start_epoch(), 14);
        // Smaller ε starts later.
        assert!(Fig1Profile::new(1e-4).start_epoch() > p.start_epoch());
    }

    #[test]
    fn rate_formula() {
        let p = Fig1Profile::new(0.1);
        let i = p.start_epoch();
        let expect = (p.ln8e() / (1u64 << (i - 1)) as f64).sqrt();
        assert!((p.rate(i) - expect).abs() < 1e-12);
        // Rate halves per two epochs: p_{i+2} = p_i / 2.
        assert!((p.rate(i + 2) - p.rate(i) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn rate_is_clamped_to_one() {
        // A tiny start epoch makes the nominal rate exceed 1.
        let p = Fig1Profile::with_start_epoch(0.1, 1);
        assert_eq!(p.rate(1), 1.0);
    }

    #[test]
    fn threshold_is_quarter_of_expected_noise_under_half_jamming() {
        // If the adversary jams 2^i/2 slots, the listener expects
        // p_i · 2^(i−1) = √(2^(i−1)·ln(8/ε)) noisy receptions; Θᵢ is a
        // quarter of that.
        let p = Fig1Profile::new(0.05);
        let i = p.start_epoch();
        let expected_noise = p.rate(i) * (1u64 << (i - 1)) as f64;
        assert!((p.noise_threshold(i) - expected_noise / 4.0).abs() < 1e-9);
    }

    #[test]
    fn expected_cost_per_phase_grows_sqrt() {
        // E[actions per phase] = p_i · 2^i = √(2^(i+1)·ln(8/ε)): doubles
        // every two epochs.
        let p = Fig1Profile::new(0.1);
        let i = p.start_epoch();
        let c1 = p.rate(i) * p.phase_len(i) as f64;
        let c3 = p.rate(i + 2) * p.phase_len(i + 2) as f64;
        assert!((c3 / c1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn phase_len_is_power_of_two() {
        let p = Fig1Profile::new(0.1);
        assert_eq!(p.phase_len(14), 1 << 14);
    }

    #[test]
    #[should_panic]
    fn rejects_epsilon_one() {
        Fig1Profile::new(1.0);
    }
}
