//! Slot-granularity adapters: Figure 1 as [`SlotProtocol`] state machines.
//!
//! These wrap the phase-level machines of [`super::state`] with per-slot
//! coin flips and counters, for use with the exact engine (and with the
//! [`combined`](crate::combined) combinator). The fast duel engine in
//! `rcb-sim` bypasses them and samples whole phases at once — against the
//! *same* underlying state machines.

use crate::one_to_one::profile::DuelProfile;
use crate::one_to_one::state::{AliceState, BobSendOutcome, BobState, PhaseKind};
use crate::protocol::{Rearm, SlotProtocol};
use rcb_channel::message::{Payload, PayloadKind};
use rcb_channel::slot::{Action, Reception};
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::bernoulli;

/// Alice: sends `m` during send phases, listens for nacks during nack
/// phases, halts on an epoch of silence.
#[derive(Debug, Clone)]
pub struct AliceProtocol<P> {
    profile: P,
    state: AliceState,
    phase: PhaseKind,
    offset: u64,
    heard_nack: bool,
    noise: u64,
}

impl<P: DuelProfile> AliceProtocol<P> {
    pub fn new(profile: P) -> Self {
        let state = AliceState::new(profile.start_epoch());
        Self {
            profile,
            state,
            phase: PhaseKind::Send,
            offset: 0,
            heard_nack: false,
            noise: 0,
        }
    }

    pub fn epoch(&self) -> u32 {
        self.state.epoch()
    }

    pub fn phase(&self) -> PhaseKind {
        self.phase
    }
}

impl<P: DuelProfile> Rearm for AliceProtocol<P> {
    fn rearm(&mut self) {
        self.state = AliceState::new(self.profile.start_epoch());
        self.phase = PhaseKind::Send;
        self.offset = 0;
        self.heard_nack = false;
        self.noise = 0;
    }
}

impl<P: DuelProfile> SlotProtocol for AliceProtocol<P> {
    fn act(&mut self, rng: &mut RcbRng) -> Action {
        if self.state.is_done() {
            return Action::Sleep;
        }
        let p = self.profile.rate(self.state.epoch());
        match self.phase {
            PhaseKind::Send => {
                if bernoulli(rng, p) {
                    Action::Send(Payload::message())
                } else {
                    Action::Sleep
                }
            }
            PhaseKind::Nack => {
                if bernoulli(rng, p) {
                    Action::Listen
                } else {
                    Action::Sleep
                }
            }
        }
    }

    fn end_slot(&mut self, heard: Option<&Reception>) {
        if self.state.is_done() {
            return;
        }
        if let Some(r) = heard {
            match r {
                Reception::Received(p) if p.kind() == PayloadKind::Nack => {
                    self.heard_nack = true;
                }
                Reception::Noise => self.noise += 1,
                _ => {}
            }
        }
        self.offset += 1;
        let phase_len = self.profile.phase_len(self.state.epoch());
        if self.offset < phase_len {
            return;
        }
        self.offset = 0;
        match self.phase {
            PhaseKind::Send => self.phase = PhaseKind::Nack,
            PhaseKind::Nack => {
                let thr = self.profile.noise_threshold(self.state.epoch());
                self.state.end_epoch(self.heard_nack, self.noise, thr);
                self.heard_nack = false;
                self.noise = 0;
                self.phase = PhaseKind::Send;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.state.is_done()
    }

    fn received_message(&self) -> bool {
        true // Alice is the sender; she holds m by definition.
    }
}

/// Bob: listens for `m` during send phases (halting the moment it arrives),
/// sends nacks during nack phases while jamming keeps him hopeful, gives up
/// after a quiet phase with no `m`.
#[derive(Debug, Clone)]
pub struct BobProtocol<P> {
    profile: P,
    state: BobState,
    phase: PhaseKind,
    offset: u64,
    noise: u64,
    nacking: bool,
}

impl<P: DuelProfile> BobProtocol<P> {
    pub fn new(profile: P) -> Self {
        let state = BobState::new(profile.start_epoch());
        Self {
            profile,
            state,
            phase: PhaseKind::Send,
            offset: 0,
            noise: 0,
            nacking: false,
        }
    }

    pub fn epoch(&self) -> u32 {
        self.state.epoch()
    }

    pub fn phase(&self) -> PhaseKind {
        self.phase
    }

    /// Bob halted without receiving `m` (the ε-probability failure mode).
    pub fn halted_prematurely(&self) -> bool {
        self.state.is_done() && !self.state.got_message()
    }
}

impl<P: DuelProfile> Rearm for BobProtocol<P> {
    fn rearm(&mut self) {
        self.state = BobState::new(self.profile.start_epoch());
        self.phase = PhaseKind::Send;
        self.offset = 0;
        self.noise = 0;
        self.nacking = false;
    }
}

impl<P: DuelProfile> SlotProtocol for BobProtocol<P> {
    fn act(&mut self, rng: &mut RcbRng) -> Action {
        if self.state.is_done() {
            return Action::Sleep;
        }
        let p = self.profile.rate(self.state.epoch());
        match self.phase {
            PhaseKind::Send => {
                if bernoulli(rng, p) {
                    Action::Listen
                } else {
                    Action::Sleep
                }
            }
            PhaseKind::Nack => {
                if self.nacking && bernoulli(rng, p) {
                    Action::Send(Payload::nack())
                } else {
                    Action::Sleep
                }
            }
        }
    }

    fn end_slot(&mut self, heard: Option<&Reception>) {
        if self.state.is_done() {
            return;
        }
        if let Some(r) = heard {
            match r {
                Reception::Received(p) if p.kind() == PayloadKind::Message => {
                    // Halt the moment m arrives; remaining slots are free.
                    self.state.receive_message();
                    return;
                }
                Reception::Noise => self.noise += 1,
                _ => {}
            }
        }
        self.offset += 1;
        let phase_len = self.profile.phase_len(self.state.epoch());
        if self.offset < phase_len {
            return;
        }
        self.offset = 0;
        match self.phase {
            PhaseKind::Send => {
                let thr = self.profile.noise_threshold(self.state.epoch());
                match self.state.end_send_phase(false, self.noise, thr) {
                    BobSendOutcome::Success => unreachable!("m handled mid-phase"),
                    BobSendOutcome::HaltPremature => {}
                    BobSendOutcome::ContinueToNack => {
                        self.nacking = true;
                        self.phase = PhaseKind::Nack;
                    }
                }
                self.noise = 0;
            }
            PhaseKind::Nack => {
                self.state.end_nack_phase();
                self.nacking = false;
                self.phase = PhaseKind::Send;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.state.is_done()
    }

    fn received_message(&self) -> bool {
        self.state.got_message()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_to_one::profile::Fig1Profile;

    fn tiny_profile() -> Fig1Profile {
        // Start epoch 3: phases of 8 slots, cheap to drive by hand.
        Fig1Profile::with_start_epoch(0.1, 3)
    }

    fn drive_silence<P: SlotProtocol>(proto: &mut P, slots: u64, rng: &mut RcbRng) {
        for _ in 0..slots {
            let action = proto.act(rng);
            let heard = matches!(action, Action::Listen).then_some(Reception::Clear);
            proto.end_slot(heard.as_ref());
        }
    }

    #[test]
    fn bob_halts_immediately_on_message() {
        let mut bob = BobProtocol::new(tiny_profile());
        let mut rng = RcbRng::new(1);
        // Force a listen by looping act until Bob listens, then deliver m.
        loop {
            match bob.act(&mut rng) {
                Action::Listen => {
                    bob.end_slot(Some(&Reception::Received(Payload::message())));
                    break;
                }
                _ => bob.end_slot(None),
            }
        }
        assert!(bob.is_done());
        assert!(bob.received_message());
        assert!(!bob.halted_prematurely());
        // Done nodes sleep forever.
        assert!(matches!(bob.act(&mut rng), Action::Sleep));
    }

    #[test]
    fn bob_gives_up_after_one_silent_phase() {
        let mut bob = BobProtocol::new(tiny_profile());
        let mut rng = RcbRng::new(2);
        drive_silence(&mut bob, 8, &mut rng); // full send phase, all clear
        assert!(
            bob.is_done(),
            "silent phase, no m: Bob concludes Alice left"
        );
        assert!(bob.halted_prematurely());
    }

    #[test]
    fn bob_continues_under_jamming() {
        let mut bob = BobProtocol::new(tiny_profile());
        let mut rng = RcbRng::new(3);
        // Feed noise every listened slot of the send phase. Rate at epoch 3
        // is 1.0 (clamped), so Bob listens every slot and hears 8 noisy
        // slots; Θ₃ = √(4·ln 80)/4 ≈ 1.05, so he continues.
        for _ in 0..8 {
            let action = bob.act(&mut rng);
            let heard = matches!(action, Action::Listen).then_some(Reception::Noise);
            bob.end_slot(heard.as_ref());
        }
        assert!(!bob.is_done());
        assert_eq!(bob.phase(), PhaseKind::Nack);
        // Drive the nack phase silently; Bob then advances to epoch 4.
        drive_silence(&mut bob, 8, &mut rng);
        assert!(!bob.is_done());
        assert_eq!(bob.epoch(), 4);
        assert_eq!(bob.phase(), PhaseKind::Send);
    }

    #[test]
    fn alice_halts_after_silent_epoch() {
        let mut alice = AliceProtocol::new(tiny_profile());
        let mut rng = RcbRng::new(4);
        drive_silence(&mut alice, 16, &mut rng); // send + nack phases
        assert!(alice.is_done());
        assert_eq!(alice.epoch(), 3);
    }

    #[test]
    fn alice_continues_on_nack() {
        let mut alice = AliceProtocol::new(tiny_profile());
        let mut rng = RcbRng::new(5);
        // Send phase silently.
        drive_silence(&mut alice, 8, &mut rng);
        assert_eq!(alice.phase(), PhaseKind::Nack);
        // Nack phase: deliver a nack on every listen.
        for _ in 0..8 {
            let action = alice.act(&mut rng);
            let heard =
                matches!(action, Action::Listen).then_some(Reception::Received(Payload::nack()));
            alice.end_slot(heard.as_ref());
        }
        assert!(!alice.is_done());
        assert_eq!(alice.epoch(), 4);
    }

    #[test]
    fn alice_continues_on_jammed_nack_phase() {
        let mut alice = AliceProtocol::new(tiny_profile());
        let mut rng = RcbRng::new(6);
        drive_silence(&mut alice, 8, &mut rng);
        for _ in 0..8 {
            let action = alice.act(&mut rng);
            let heard = matches!(action, Action::Listen).then_some(Reception::Noise);
            alice.end_slot(heard.as_ref());
        }
        // Rate 1.0 at epoch 3 → 8 noisy slots ≥ Θ₃ ≈ 1.05 → continue.
        assert!(!alice.is_done());
        assert_eq!(alice.epoch(), 4);
    }

    #[test]
    fn alice_sends_at_profile_rate() {
        // At a later epoch the rate is < 1; check empirical frequency.
        let profile = Fig1Profile::with_start_epoch(0.1, 10);
        let mut alice = AliceProtocol::new(profile);
        let mut rng = RcbRng::new(7);
        let mut sends = 0u64;
        let phase = 1u64 << 10;
        for _ in 0..phase {
            if matches!(alice.act(&mut rng), Action::Send(_)) {
                sends += 1;
            }
            alice.end_slot(None);
        }
        let expect = profile.rate(10) * phase as f64;
        assert!(
            (sends as f64 - expect).abs() < 4.0 * expect.sqrt() + 4.0,
            "sends {sends} vs expected {expect}"
        );
    }

    #[test]
    fn bob_does_not_nack_after_success_epoch() {
        // Bob that got m sleeps through everything afterwards.
        let mut bob = BobProtocol::new(tiny_profile());
        let mut rng = RcbRng::new(8);
        loop {
            match bob.act(&mut rng) {
                Action::Listen => {
                    bob.end_slot(Some(&Reception::Received(Payload::message())));
                    break;
                }
                _ => bob.end_slot(None),
            }
        }
        for _ in 0..100 {
            assert!(matches!(bob.act(&mut rng), Action::Sleep));
            bob.end_slot(None);
        }
    }

    #[test]
    fn alice_is_the_sender() {
        let alice = AliceProtocol::new(tiny_profile());
        assert!(alice.received_message());
    }
}
