//! Nonparametric hypothesis testing for engine cross-validation.
//!
//! The exact and fast engines must agree *in distribution*, not just in
//! mean. The Mann–Whitney U test (two-sample rank test) detects location
//! shifts without any normality assumption — right for the skewed cost
//! distributions jamming produces. The normal approximation with tie
//! correction is accurate for the sample sizes our tests use (≥ 20 per
//! side).

use serde::{Deserialize, Serialize};

/// Result of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MannWhitney {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Standardized statistic (continuity-corrected, tie-corrected).
    pub z: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_two_sided: f64,
    /// Common-language effect size: `P(X > Y) + ½P(X = Y)`.
    pub effect_size: f64,
}

/// Standard normal CDF via the complementary error function (Abramowitz &
/// Stegun 7.1.26 polynomial, |error| < 1.5e-7 — ample for test verdicts).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf_abs = 1.0 - poly * (-(x / std::f64::consts::SQRT_2).powi(2)).exp();
    let erf = if x >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

/// Two-sided Mann–Whitney U test of `xs` vs `ys`.
///
/// ```
/// use rcb_mathkit::hypothesis::mann_whitney_u;
///
/// let same = mann_whitney_u(&[1.0, 2.0, 3.0, 4.0], &[1.5, 2.5, 3.5]);
/// assert!(same.p_two_sided > 0.3);
/// let shifted = mann_whitney_u(&[1.0; 30], &[9.0; 30]);
/// assert!(shifted.p_two_sided < 1e-6);
/// ```
///
/// # Panics
/// If either sample is empty or any value is NaN.
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> MannWhitney {
    assert!(
        !xs.is_empty() && !ys.is_empty(),
        "samples must be non-empty"
    );
    let n1 = xs.len() as f64;
    let n2 = ys.len() as f64;

    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = xs
        .iter()
        .map(|&v| (v, 0usize))
        .chain(ys.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in sample"));

    let total = pooled.len();
    let mut rank_sum_x = 0.0;
    let mut tie_term = 0.0;
    let mut i = 0usize;
    while i < total {
        let mut j = i;
        while j < total && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        // Midrank for positions i..j (1-based ranks).
        let midrank = (i + 1 + j) as f64 / 2.0;
        let tie_size = (j - i) as f64;
        if tie_size > 1.0 {
            tie_term += tie_size.powi(3) - tie_size;
        }
        for entry in &pooled[i..j] {
            if entry.1 == 0 {
                rank_sum_x += midrank;
            }
        }
        i = j;
    }

    let u1 = rank_sum_x - n1 * (n1 + 1.0) / 2.0;
    let mean_u = n1 * n2 / 2.0;
    let n = n1 + n2;
    let var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    let z = if var_u <= 0.0 {
        0.0 // all values identical: no evidence of a shift
    } else {
        // Continuity correction toward the mean.
        let diff = u1 - mean_u;
        let corrected = diff - 0.5 * diff.signum();
        corrected / var_u.sqrt()
    };
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    MannWhitney {
        u: u1,
        z,
        p_two_sided: p.clamp(0.0, 1.0),
        effect_size: u1 / (n1 * n2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RcbRng;

    #[test]
    fn normal_cdf_anchors() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999_999);
        assert!(normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn identical_distributions_are_not_rejected() {
        let mut rng = RcbRng::new(1);
        let xs: Vec<f64> = (0..200).map(|_| rng.f64()).collect();
        let ys: Vec<f64> = (0..200).map(|_| rng.f64()).collect();
        let r = mann_whitney_u(&xs, &ys);
        assert!(r.p_two_sided > 0.01, "p = {}", r.p_two_sided);
        assert!((r.effect_size - 0.5).abs() < 0.1);
    }

    #[test]
    fn shifted_distribution_is_detected() {
        let mut rng = RcbRng::new(2);
        let xs: Vec<f64> = (0..200).map(|_| rng.f64()).collect();
        let ys: Vec<f64> = (0..200).map(|_| rng.f64() + 0.3).collect();
        let r = mann_whitney_u(&xs, &ys);
        assert!(r.p_two_sided < 1e-6, "p = {}", r.p_two_sided);
        assert!(r.effect_size < 0.35, "X mostly below Y");
    }

    #[test]
    fn handles_heavy_ties() {
        // Integer-valued (cost-like) data with many ties.
        let xs: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect();
        let r = mann_whitney_u(&xs, &ys);
        assert!(
            r.p_two_sided > 0.5,
            "identical tied samples: p = {}",
            r.p_two_sided
        );
    }

    #[test]
    fn all_constant_samples_are_equal() {
        let r = mann_whitney_u(&[3.0; 10], &[3.0; 10]);
        assert_eq!(r.z, 0.0);
        assert!(r.p_two_sided > 0.99);
    }

    #[test]
    fn asymmetric_sizes_work() {
        let mut rng = RcbRng::new(3);
        let xs: Vec<f64> = (0..30).map(|_| rng.f64()).collect();
        let ys: Vec<f64> = (0..300).map(|_| rng.f64()).collect();
        let r = mann_whitney_u(&xs, &ys);
        assert!(r.p_two_sided > 0.01);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        mann_whitney_u(&[], &[1.0]);
    }

    #[test]
    fn direction_of_effect_size() {
        // xs entirely below ys: effect size ≈ 0; reversed: ≈ 1.
        let low: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let high: Vec<f64> = (0..50).map(|i| 1000.0 + i as f64).collect();
        assert!(mann_whitney_u(&low, &high).effect_size < 0.01);
        assert!(mann_whitney_u(&high, &low).effect_size > 0.99);
    }
}
