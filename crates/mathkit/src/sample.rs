//! Exact samplers for the distributions the simulation engines draw from.
//!
//! The central object is the *Bernoulli process over a block of `n` slots*:
//! a node that sends with probability `p` in each of `n` slots produces a
//! random subset of slots. The fast 1-to-n engine needs that subset sampled
//! in time proportional to its (typically tiny) size, not to `n`. We use
//! geometric skips: the gap to the next success is `Geometric(p)`, sampled by
//! inversion, so the whole subset costs `O(np + 1)` expected work and is
//! *exactly* distributed as per-slot coin flips.

use crate::rng::RcbRng;
use std::collections::HashSet;

/// A single biased coin flip.
#[inline]
pub fn bernoulli(rng: &mut RcbRng, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.f64() < p
    }
}

/// Number of failures before the first success of a `p`-coin
/// (support `0, 1, 2, …`), sampled by inversion.
///
/// Returns `u64::MAX` when `p` is so small the skip overflows — callers use
/// the value as "skip past the end of the block", so saturation is correct.
#[inline]
pub fn geometric_failures(rng: &mut RcbRng, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0, "geometric needs 0 < p <= 1, got {p}");
    if p >= 1.0 {
        return 0;
    }
    geometric_failures_with_denom(rng, (-p).ln_1p())
}

/// [`geometric_failures`] with the denominator `ln(1-p)` precomputed.
///
/// `ln_1p` is an opaque libm call the optimiser cannot hoist, yet inside
/// [`sample_slots_into`] and [`binomial`] it is loop-invariant — one of the
/// two transcendental ops per sampled event. Callers must pass exactly
/// `(-p).ln_1p()`; the division then produces bit-identical skips.
#[inline]
fn geometric_failures_with_denom(rng: &mut RcbRng, ln_one_minus_p: f64) -> u64 {
    // U in (0,1]: use 1 - f64() so ln() is finite.
    let u = 1.0 - rng.f64();
    let skip = (u.ln() / ln_one_minus_p).floor();
    if skip >= u64::MAX as f64 {
        u64::MAX
    } else {
        skip as u64
    }
}

/// Exact `Binomial(n, p)` sample in `O(np + 1)` expected time via geometric
/// skips. This is exact (not an approximation): it counts the successes of
/// `n` independent `p`-coins.
pub fn binomial(rng: &mut RcbRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let denom = (-p).ln_1p();
    let mut successes = 0u64;
    let mut pos = 0u64;
    loop {
        let skip = geometric_failures_with_denom(rng, denom);
        pos = match pos.checked_add(skip) {
            Some(v) => v,
            None => return successes,
        };
        if pos >= n {
            return successes;
        }
        successes += 1;
        pos += 1;
    }
}

/// Initial reservation for a block sample: 1.5× the expected count `np`
/// plus slack, clamped to the block length and to a fixed upper bound.
///
/// The unclamped heuristic misallocates at the extremes: `n·p` near `2^64`
/// saturates the `f64 → usize` cast and asks for a multi-exabyte buffer,
/// and even realistic large blocks would pre-commit memory the tail of the
/// distribution rarely needs. `Vec` doubling amortises the rare overflow
/// past the clamp.
fn slot_capacity_hint(n: u64, p: f64) -> usize {
    const MAX_INITIAL: usize = 1 << 16;
    let expected = ((n as f64 * p) * 1.5) as usize; // saturating cast
    expected
        .saturating_add(4)
        .min(usize::try_from(n).unwrap_or(usize::MAX))
        .min(MAX_INITIAL)
}

/// The success *positions* of `n` independent `p`-coins, sorted ascending.
///
/// Equivalent in distribution to flipping a coin per slot, but costs
/// `O(np + 1)` expected time. This is the workhorse of the fast engine:
/// "the slots in which node `u` sends during this repetition".
pub fn sample_slots(rng: &mut RcbRng, n: u64, p: f64) -> Vec<u64> {
    let mut out = Vec::new();
    sample_slots_into(rng, n, p, &mut out);
    out
}

/// [`sample_slots`] writing into a caller-owned buffer (cleared first), so
/// hot loops reuse one allocation across repetitions. Consumes the RNG
/// stream identically to [`sample_slots`] for every `(n, p)`.
pub fn sample_slots_into(rng: &mut RcbRng, n: u64, p: f64, out: &mut Vec<u64>) {
    out.clear();
    if n == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.extend(0..n);
        return;
    }
    out.reserve(slot_capacity_hint(n, p));
    let denom = (-p).ln_1p();
    let mut pos = 0u64;
    loop {
        let skip = geometric_failures_with_denom(rng, denom);
        pos = match pos.checked_add(skip) {
            Some(v) => v,
            None => return,
        };
        if pos >= n {
            return;
        }
        out.push(pos);
        pos += 1;
    }
}

/// `k` distinct values drawn uniformly from `0..n` (Floyd's algorithm),
/// returned in arbitrary order. Panics if `k > n`.
///
/// Membership is tracked in a hash set, so the whole draw is expected
/// `O(k)` — the natural `chosen.contains(&t)` scan would make Floyd's
/// algorithm quadratic in `k`. The value sequence is identical to the
/// scan-based version for a given RNG stream: only the lookup changed.
pub fn sample_distinct(rng: &mut RcbRng, n: u64, k: u64) -> Vec<u64> {
    assert!(k <= n, "cannot draw {k} distinct values from 0..{n}");
    let mut chosen: Vec<u64> = Vec::with_capacity(k as usize);
    let mut member: HashSet<u64> = HashSet::with_capacity(k as usize);
    // Floyd: for j in n-k..n, pick t in [0, j]; if t already chosen, take j.
    for j in (n - k)..n {
        let t = rng.below(j + 1);
        if member.insert(t) {
            chosen.push(t);
        } else {
            // `j` has never been drawn before (every earlier element is
            // at most the previous `j`), so this insert always succeeds.
            member.insert(j);
            chosen.push(j);
        }
    }
    chosen
}

/// A reusable sampler handle bundling an RNG; convenience for code that does
/// many draws and wants method syntax.
#[derive(Debug)]
pub struct Sampler {
    rng: RcbRng,
}

impl Sampler {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: RcbRng::new(seed),
        }
    }

    pub fn from_rng(rng: RcbRng) -> Self {
        Self { rng }
    }

    pub fn rng_mut(&mut self) -> &mut RcbRng {
        &mut self.rng
    }

    pub fn bernoulli(&mut self, p: f64) -> bool {
        bernoulli(&mut self.rng, p)
    }

    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        binomial(&mut self.rng, n, p)
    }

    pub fn slots(&mut self, n: u64, p: f64) -> Vec<u64> {
        sample_slots(&mut self.rng, n, p)
    }

    pub fn slots_into(&mut self, n: u64, p: f64, out: &mut Vec<u64>) {
        sample_slots_into(&mut self.rng, n, p, out)
    }

    pub fn distinct(&mut self, n: u64, k: u64) -> Vec<u64> {
        sample_distinct(&mut self.rng, n, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = RcbRng::new(1);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
        assert!(!bernoulli(&mut rng, -0.5));
        assert!(bernoulli(&mut rng, 1.5));
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = RcbRng::new(2);
        let n = 200_000;
        let hits = (0..n).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        // E[failures before success] = (1-p)/p.
        let mut rng = RcbRng::new(3);
        let p = 0.2;
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            stats.push(geometric_failures(&mut rng, p) as f64);
        }
        let expected = (1.0 - p) / p;
        assert!(
            (stats.mean() - expected).abs() < 0.1,
            "mean {} vs {}",
            stats.mean(),
            expected
        );
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = RcbRng::new(4);
        for _ in 0..100 {
            assert_eq!(geometric_failures(&mut rng, 1.0), 0);
        }
    }

    #[test]
    fn binomial_edges() {
        let mut rng = RcbRng::new(5);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn binomial_moments_match_theory() {
        let mut rng = RcbRng::new(6);
        let (n, p) = (400u64, 0.1);
        let mut stats = RunningStats::new();
        for _ in 0..50_000 {
            stats.push(binomial(&mut rng, n, p) as f64);
        }
        let mean = n as f64 * p;
        let var = n as f64 * p * (1.0 - p);
        assert!((stats.mean() - mean).abs() < 0.15, "mean {}", stats.mean());
        assert!(
            (stats.variance() - var).abs() < var * 0.05,
            "var {} vs {var}",
            stats.variance()
        );
    }

    #[test]
    fn binomial_tiny_p_is_usually_zero() {
        let mut rng = RcbRng::new(7);
        let mut total = 0;
        for _ in 0..1000 {
            total += binomial(&mut rng, 1000, 1e-9);
        }
        assert!(total <= 2, "np = 1e-6 per draw; got {total} in 1000 draws");
    }

    #[test]
    fn sample_slots_sorted_distinct_in_range() {
        let mut rng = RcbRng::new(8);
        for _ in 0..100 {
            let slots = sample_slots(&mut rng, 1000, 0.05);
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "sorted+distinct");
            assert!(slots.iter().all(|&s| s < 1000));
        }
    }

    #[test]
    fn sample_slots_count_is_binomial() {
        let mut rng = RcbRng::new(9);
        let (n, p) = (2000u64, 0.01);
        let mut stats = RunningStats::new();
        for _ in 0..20_000 {
            stats.push(sample_slots(&mut rng, n, p).len() as f64);
        }
        assert!((stats.mean() - 20.0).abs() < 0.3, "mean {}", stats.mean());
    }

    #[test]
    fn sample_slots_p_one_gives_all() {
        let mut rng = RcbRng::new(10);
        assert_eq!(sample_slots(&mut rng, 5, 1.0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_slots_positions_are_uniform() {
        // Each slot should be hit with probability p: check the first and
        // last deciles get roughly equal mass.
        let mut rng = RcbRng::new(11);
        let n = 100u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..50_000 {
            for s in sample_slots(&mut rng, n, 0.1) {
                counts[s as usize] += 1;
            }
        }
        let first: u64 = counts[..10].iter().sum();
        let last: u64 = counts[90..].iter().sum();
        let ratio = first as f64 / last as f64;
        assert!((0.93..1.07).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sample_slots_into_matches_sample_slots() {
        // Same seed ⇒ identical positions AND identical post-call RNG
        // state, including the edge probabilities that skip the RNG.
        for seed in 0..50u64 {
            for &(n, p) in &[
                (0u64, 0.5),
                (1, 0.5),
                (1000, 0.0),
                (1000, -1.0),
                (7, 1.0),
                (7, 2.0),
                (1000, 0.05),
                (100_000, 0.001),
                (64, 0.9),
            ] {
                let mut rng_a = RcbRng::new(seed);
                let owned = sample_slots(&mut rng_a, n, p);
                let mut rng_b = RcbRng::new(seed);
                let mut reused = vec![u64::MAX; 3]; // stale contents must be cleared
                sample_slots_into(&mut rng_b, n, p, &mut reused);
                assert_eq!(owned, reused, "seed {seed}, n {n}, p {p}");
                assert_eq!(rng_a, rng_b, "seed {seed}, n {n}, p {p}: RNG drift");
            }
        }
    }

    #[test]
    fn sample_slots_into_reuses_capacity() {
        let mut rng = RcbRng::new(21);
        let mut buf = Vec::new();
        sample_slots_into(&mut rng, 10_000, 0.1, &mut buf);
        let cap = buf.capacity();
        for _ in 0..20 {
            sample_slots_into(&mut rng, 10_000, 0.1, &mut buf);
        }
        assert_eq!(buf.capacity(), cap, "repeat draws must not reallocate");
    }

    #[test]
    fn slot_capacity_hint_is_clamped() {
        // Saturating n·p must not request an exabyte-scale reservation.
        assert!(slot_capacity_hint(u64::MAX, 1.0 - 1e-9) <= 1 << 16);
        assert!(slot_capacity_hint(1 << 40, 0.9) <= 1 << 16);
        // And the hint never exceeds the block length.
        assert!(slot_capacity_hint(3, 0.9) <= 3);
        assert_eq!(slot_capacity_hint(0, 0.5), 0);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = RcbRng::new(12);
        for _ in 0..200 {
            let k = rng.below(50);
            let mut v = sample_distinct(&mut rng, 50, k);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), k as usize, "distinctness");
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = RcbRng::new(13);
        let mut v = sample_distinct(&mut rng, 10, 10);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn sample_distinct_k_too_large_panics() {
        let mut rng = RcbRng::new(14);
        sample_distinct(&mut rng, 3, 4);
    }

    #[test]
    fn sample_distinct_matches_linear_scan_reference() {
        // The hash-set membership check must not change the sampled
        // sequence: replay the same RNG stream through the textbook
        // contains()-based Floyd and demand identical output.
        fn reference(rng: &mut RcbRng, n: u64, k: u64) -> Vec<u64> {
            let mut chosen: Vec<u64> = Vec::with_capacity(k as usize);
            for j in (n - k)..n {
                let t = rng.below(j + 1);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            chosen
        }
        for seed in 0..20 {
            for &(n, k) in &[(1u64, 1u64), (10, 3), (100, 100), (5000, 700)] {
                let fast = sample_distinct(&mut RcbRng::new(seed), n, k);
                let slow = reference(&mut RcbRng::new(seed), n, k);
                assert_eq!(fast, slow, "seed {seed}, n {n}, k {k}");
            }
        }
    }

    #[test]
    fn sample_distinct_large_k_is_fast() {
        // 200k draws would take minutes under the quadratic scan; the hash
        // set keeps it well under a second.
        let mut rng = RcbRng::new(16);
        let v = sample_distinct(&mut rng, 1 << 20, 200_000);
        assert_eq!(v.len(), 200_000);
    }

    #[test]
    fn sampler_wrapper_smoke() {
        let mut s = Sampler::new(15);
        assert!(s.binomial(10, 1.0) == 10);
        assert!(s.slots(10, 0.0).is_empty());
        assert_eq!(s.distinct(5, 5).len(), 5);
        let _ = s.bernoulli(0.5);
        let _ = s.rng_mut().f64();
    }
}
