//! Exact samplers for the distributions the simulation engines draw from.
//!
//! The central object is the *Bernoulli process over a block of `n` slots*:
//! a node that sends with probability `p` in each of `n` slots produces a
//! random subset of slots. The fast 1-to-n engine needs that subset sampled
//! in time proportional to its (typically tiny) size, not to `n`. We use
//! geometric skips: the gap to the next success is `Geometric(p)`, sampled by
//! inversion, so the whole subset costs `O(np + 1)` expected work and is
//! *exactly* distributed as per-slot coin flips.

use crate::rng::RcbRng;
use std::collections::HashSet;

/// A single biased coin flip.
#[inline]
pub fn bernoulli(rng: &mut RcbRng, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.f64() < p
    }
}

/// Number of failures before the first success of a `p`-coin
/// (support `0, 1, 2, …`), sampled by inversion.
///
/// Returns `u64::MAX` when `p` is so small the skip overflows — callers use
/// the value as "skip past the end of the block", so saturation is correct.
/// Out-of-domain `p` (≤ 0, `−0.0`, or NaN) is clamped to the same saturated
/// value in every build profile: a coin that never lands heads.
#[inline]
pub fn geometric_failures(rng: &mut RcbRng, p: f64) -> u64 {
    // Domain guard, active in every build profile (this used to be a
    // debug_assert, which vanished in release and let NaN reach the
    // inversion): a coin that never succeeds — p ≤ 0, −0.0, or NaN — skips
    // past any block, which is what the saturated value means to every
    // caller. NaN fails `p > 0.0`, so it cannot fall through and divide by
    // ln(1) = 0.
    if p.is_nan() || p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 0;
    }
    geometric_failures_with_denom(rng, (-p).ln_1p())
}

/// [`geometric_failures`] with the denominator `ln(1-p)` precomputed.
///
/// `ln_1p` is an opaque libm call the optimiser cannot hoist, yet inside
/// [`sample_slots_into`] and [`binomial`] it is loop-invariant — one of the
/// two transcendental ops per sampled event. Callers must pass exactly
/// `(-p).ln_1p()`; the division then produces bit-identical skips.
#[inline]
fn geometric_failures_with_denom(rng: &mut RcbRng, ln_one_minus_p: f64) -> u64 {
    // U in (0,1]: use 1 - f64() so ln() is finite.
    let u = 1.0 - rng.f64();
    let skip = (u.ln() / ln_one_minus_p).floor();
    if skip >= u64::MAX as f64 {
        u64::MAX
    } else {
        skip as u64
    }
}

/// Exact `Binomial(n, p)` sample in `O(np + 1)` expected time via geometric
/// skips. This is exact (not an approximation): it counts the successes of
/// `n` independent `p`-coins.
///
/// Out-of-domain `p` is clamped: anything that is not a positive
/// probability — `p ≤ 0`, `−0.0`, or NaN — yields 0 successes, and `p ≥ 1`
/// yields `n`. The NaN case matters: it used to fall through both guards
/// (NaN fails `<=` and `>=` alike) into the skip loop, where `NaN as u64`
/// is 0 and every skip landed on a "success" — a silent `n` from a
/// poisoned probability.
pub fn binomial(rng: &mut RcbRng, n: u64, p: f64) -> u64 {
    if n == 0 || p.is_nan() || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let denom = (-p).ln_1p();
    let mut successes = 0u64;
    let mut pos = 0u64;
    loop {
        let skip = geometric_failures_with_denom(rng, denom);
        pos = match pos.checked_add(skip) {
            Some(v) => v,
            None => return successes,
        };
        if pos >= n {
            return successes;
        }
        successes += 1;
        pos += 1;
    }
}

/// Below this expected count, [`binomial_fast`] uses BINV inversion; at or
/// above it, the BTPE rejection sampler. The crossover follows
/// Kachitvichyanukul & Schmeiser (1988): BTPE's setup cost only pays off
/// once the distribution is wide enough for its triangle to catch most of
/// the mass.
const BTPE_THRESHOLD: f64 = 10.0;

/// Exact `Binomial(n, p)` sample in **O(1) amortised** time, independent of
/// `n` and `p`.
///
/// [`binomial`] costs `O(np)` — and, worse, stays `O(np)` when `p > ½`
/// (`n = 10^6`, `p = 0.9` walks ~900k geometric skips). This sampler fixes
/// both asymmetries without touching the existing function, so every RNG
/// stream already pinned by committed BENCH checksums stays bit-identical:
///
/// * **Complement split:** for `p > ½` it draws `n − Binomial(n, 1 − p)`,
///   which is the same distribution (count failures instead of successes).
/// * **Small mean:** `n·min(p, 1−p) < 10` uses BINV — textbook CDF
///   inversion from the `(1−p)^n` atom upward, `O(np)` but with `np < 10`.
/// * **Large mean:** the BTPE rejection algorithm of Kachitvichyanukul &
///   Schmeiser ("Binomial random variate generation", CACM 31(2), 1988):
///   a triangle/parallelogram/exponential-tail envelope over the scaled
///   pmf with a squeeze step, accepting in `O(1)` expected draws.
///
/// Both branches sample the exact binomial law (BTPE's final acceptance
/// compares against the true pmf via a Stirling-series `ln n!`), so this is
/// a faster sampler, not an approximation. For `n` beyond 2^53 the f64
/// parameterisation of the pmf rounds `n`; the resulting relative error is
/// ~1e-16, far below anything the engines can observe.
///
/// Out-of-domain `p` follows the same documented clamp as [`binomial`]:
/// non-positive or NaN → 0, `p ≥ 1` → `n`.
pub fn binomial_fast(rng: &mut RcbRng, n: u64, p: f64) -> u64 {
    if n == 0 || p.is_nan() || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Complement split: sample the rarer outcome.
    if p > 0.5 {
        return n - binomial_fast_half(rng, n, 1.0 - p);
    }
    binomial_fast_half(rng, n, p)
}

/// [`binomial_fast`] after the complement split: `0 < p ≤ ½`.
fn binomial_fast_half(rng: &mut RcbRng, n: u64, p: f64) -> u64 {
    if (n as f64) * p < BTPE_THRESHOLD {
        binomial_binv(rng, n, p)
    } else {
        binomial_btpe(rng, n, p)
    }
}

/// BINV: CDF inversion from the zero atom upward (`np < 10`, `p ≤ ½`).
fn binomial_binv(rng: &mut RcbRng, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let s = p / q;
    let f0 = (nf * q.ln()).exp(); // P(X = 0); np < 10 keeps this ≫ f64::MIN
    loop {
        let mut u = rng.f64();
        let mut f = f0;
        let mut x = 0u64;
        loop {
            if u < f {
                return x;
            }
            if x >= n {
                break; // f64 rounding ate the tail mass: redraw
            }
            u -= f;
            x += 1;
            f *= s * (nf - (x - 1) as f64) / x as f64;
        }
    }
}

/// BTPE (Kachitvichyanukul & Schmeiser 1988) for `p ≤ ½`, `np ≥ 10`.
///
/// Region probabilities `p1..p4` cover: the central triangle (accepted
/// outright), the parallelogram above it, and two exponential tails. A
/// candidate from outside the triangle passes a cheap squeeze or, rarely,
/// the exact pmf comparison with Stirling-series `ln n!` correction terms.
fn binomial_btpe(rng: &mut RcbRng, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let r = p;
    let q = 1.0 - r;
    let nrq = nf * r * q;
    let ffm = nf * r + r;
    let m = ffm.floor(); // mode
    let p1 = (2.195 * nrq.sqrt() - 4.6 * q).floor() + 0.5;
    let xm = m + 0.5;
    let xl = xm - p1;
    let xr = xm + p1;
    let c = 0.134 + 20.5 / (15.3 + m);
    let a = (ffm - xl) / (ffm - xl * r);
    let lambda_l = a * (1.0 + 0.5 * a);
    let a = (xr - ffm) / (xr * q);
    let lambda_r = a * (1.0 + 0.5 * a);
    let p2 = p1 * (1.0 + c + c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    loop {
        let u = rng.f64() * p4;
        let mut v = rng.f64();

        let y: f64;
        if u <= p1 {
            // Central triangle: accept immediately.
            return (xm - p1 * v + u).floor() as u64;
        } else if u <= p2 {
            // Parallelogram: scale v onto the pmf-ratio line.
            let x = xl + (u - p1) / c;
            v = v * c + 1.0 - (x - xm).abs() / p1;
            if v > 1.0 || v <= 0.0 {
                continue;
            }
            y = x.floor();
        } else if u <= p3 {
            // Left exponential tail.
            y = (xl + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (xr - v.ln() / lambda_r).floor();
            if y > nf {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        // Accept/reject y against f(y)/f(m), where f is the binomial pmf.
        let k = (y - m).abs();
        if k <= 20.0 || k >= nrq / 2.0 - 1.0 {
            // Narrow distribution or near the mode: evaluate the pmf ratio
            // by the multiplicative recurrence — few factors, exact.
            let s = r / q;
            let aa = s * (nf + 1.0);
            let mut f = 1.0;
            if m < y {
                let mut i = m;
                while i < y {
                    i += 1.0;
                    f *= aa / i - s;
                }
            } else if m > y {
                let mut i = y;
                while i < m {
                    i += 1.0;
                    f /= aa / i - s;
                }
            }
            if v <= f {
                return y as u64;
            }
            continue;
        }
        // Squeeze: bounds on ln(f(y)/f(m)) that avoid the Stirling
        // evaluation for most candidates.
        let rho = (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
        let t = -k * k / (2.0 * nrq);
        let alv = v.ln();
        if alv < t - rho {
            return y as u64;
        }
        if alv > t + rho {
            continue;
        }
        // Final exact comparison: ln(f(y)/f(m)) via Stirling's series,
        // with the (13860 − …)/166320 polynomial correction terms of the
        // published algorithm.
        let x1 = y + 1.0;
        let f1 = m + 1.0;
        let z = nf + 1.0 - m;
        let w = nf - y + 1.0;
        let z2 = z * z;
        let x2 = x1 * x1;
        let f2 = f1 * f1;
        let w2 = w * w;
        let stirling = |v2: f64| 13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / v2) / v2) / v2) / v2;
        let bound = xm * (f1 / x1).ln()
            + (nf - m + 0.5) * (z / w).ln()
            + (y - m) * (w * r / (x1 * q)).ln()
            + stirling(f2) / f1 / 166320.0
            + stirling(z2) / z / 166320.0
            + stirling(x2) / x1 / 166320.0
            + stirling(w2) / w / 166320.0;
        if alv <= bound {
            return y as u64;
        }
    }
}

/// One multinomial draw by sequential conditional binomial splits: `n`
/// items distributed over `weights.len()` categories with probabilities
/// proportional to `weights`, written into `out` (cleared first).
///
/// This is the cohort engine's batched draw: classifying a repetition's
/// slots (clear / single-message / noise) or a cohort's members (per clear
/// count) is one multinomial, costing `O(categories)` [`binomial_fast`]
/// draws instead of `O(n)` per-item coins. Weights must be non-negative
/// and finite; NaN or negative weights are treated as zero. If every
/// weight is zero the entire count lands in the final category (callers
/// use a trailing "rest" bucket).
pub fn multinomial_into(rng: &mut RcbRng, n: u64, weights: &[f64], out: &mut Vec<u64>) {
    out.clear();
    if weights.is_empty() {
        return;
    }
    out.reserve(weights.len());
    let sanitize = |w: f64| if w > 0.0 && w.is_finite() { w } else { 0.0 };
    let mut remaining_weight: f64 = weights.iter().copied().map(sanitize).sum();
    let mut remaining = n;
    for (idx, &raw) in weights.iter().enumerate() {
        if idx + 1 == weights.len() {
            out.push(remaining);
            break;
        }
        let w = sanitize(raw);
        let p = if remaining_weight > 0.0 {
            (w / remaining_weight).min(1.0)
        } else {
            0.0
        };
        let k = binomial_fast(rng, remaining, p);
        out.push(k);
        remaining -= k;
        remaining_weight = (remaining_weight - w).max(0.0);
    }
}

/// Default clamp for [`slot_capacity_hint`]: generous for the repetition
/// lengths the engines historically drew (≤ 2^16 events was effectively
/// unbounded), conservative against the saturating-cast extremes.
const DEFAULT_CAPACITY_CLAMP: usize = 1 << 16;

/// Initial reservation for a block sample: 1.5× the expected count `np`
/// plus slack, clamped to the block length and to a fixed upper bound.
///
/// The unclamped heuristic misallocates at the extremes: `n·p` near `2^64`
/// saturates the `f64 → usize` cast and asks for a multi-exabyte buffer,
/// and even realistic large blocks would pre-commit memory the tail of the
/// distribution rarely needs. `Vec` doubling amortises the rare overflow
/// past the clamp. Callers with a better bound (the cohort engine knows its
/// population) use [`slot_capacity_hint_capped`] directly.
fn slot_capacity_hint(n: u64, p: f64) -> usize {
    slot_capacity_hint_capped(n, p, DEFAULT_CAPACITY_CLAMP)
}

/// [`slot_capacity_hint`] with a caller-chosen clamp.
///
/// The fixed `1 << 16` default was tuned for per-node repetition draws; a
/// large-`n` caller that knows it will collect millions of events pays for
/// the low clamp with repeated `Vec` doubling (a ~2^4 cascade of reallocs
/// and copies at `n = 10^6`). The expected-count arithmetic keeps the
/// saturating-cast protections: `n·p` overflow saturates, and the hint
/// never exceeds the block length or the clamp.
pub fn slot_capacity_hint_capped(n: u64, p: f64, clamp: usize) -> usize {
    let p = if p > 0.0 { p.min(1.0) } else { 0.0 }; // NaN/negative → 0
    let expected = ((n as f64 * p) * 1.5) as usize; // saturating cast
    expected
        .saturating_add(4)
        .min(usize::try_from(n).unwrap_or(usize::MAX))
        .min(clamp)
}

/// The success *positions* of `n` independent `p`-coins, sorted ascending.
///
/// Equivalent in distribution to flipping a coin per slot, but costs
/// `O(np + 1)` expected time. This is the workhorse of the fast engine:
/// "the slots in which node `u` sends during this repetition".
pub fn sample_slots(rng: &mut RcbRng, n: u64, p: f64) -> Vec<u64> {
    let mut out = Vec::new();
    sample_slots_into(rng, n, p, &mut out);
    out
}

/// [`sample_slots`] writing into a caller-owned buffer (cleared first), so
/// hot loops reuse one allocation across repetitions. Consumes the RNG
/// stream identically to [`sample_slots`] for every `(n, p)`.
///
/// `p` is clamped like [`binomial`]: a non-positive or NaN probability
/// selects no slots (NaN used to walk the skip loop and select *every*
/// slot), and `p ≥ 1` selects all of them.
pub fn sample_slots_into(rng: &mut RcbRng, n: u64, p: f64, out: &mut Vec<u64>) {
    out.clear();
    if n == 0 || p.is_nan() || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.extend(0..n);
        return;
    }
    out.reserve(slot_capacity_hint(n, p));
    let denom = (-p).ln_1p();
    let mut pos = 0u64;
    loop {
        let skip = geometric_failures_with_denom(rng, denom);
        pos = match pos.checked_add(skip) {
            Some(v) => v,
            None => return,
        };
        if pos >= n {
            return;
        }
        out.push(pos);
        pos += 1;
    }
}

/// `k` distinct values drawn uniformly from `0..n` (Floyd's algorithm),
/// returned in arbitrary order. Panics if `k > n`.
///
/// Membership is tracked in a hash set, so the whole draw is expected
/// `O(k)` — the natural `chosen.contains(&t)` scan would make Floyd's
/// algorithm quadratic in `k`. The value sequence is identical to the
/// scan-based version for a given RNG stream: only the lookup changed.
pub fn sample_distinct(rng: &mut RcbRng, n: u64, k: u64) -> Vec<u64> {
    assert!(k <= n, "cannot draw {k} distinct values from 0..{n}");
    let mut chosen: Vec<u64> = Vec::with_capacity(k as usize);
    let mut member: HashSet<u64> = HashSet::with_capacity(k as usize);
    // Floyd: for j in n-k..n, pick t in [0, j]; if t already chosen, take j.
    for j in (n - k)..n {
        let t = rng.below(j + 1);
        if member.insert(t) {
            chosen.push(t);
        } else {
            // `j` has never been drawn before (every earlier element is
            // at most the previous `j`), so this insert always succeeds.
            member.insert(j);
            chosen.push(j);
        }
    }
    chosen
}

/// A reusable sampler handle bundling an RNG; convenience for code that does
/// many draws and wants method syntax.
#[derive(Debug)]
pub struct Sampler {
    rng: RcbRng,
}

impl Sampler {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: RcbRng::new(seed),
        }
    }

    pub fn from_rng(rng: RcbRng) -> Self {
        Self { rng }
    }

    pub fn rng_mut(&mut self) -> &mut RcbRng {
        &mut self.rng
    }

    pub fn bernoulli(&mut self, p: f64) -> bool {
        bernoulli(&mut self.rng, p)
    }

    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        binomial(&mut self.rng, n, p)
    }

    pub fn slots(&mut self, n: u64, p: f64) -> Vec<u64> {
        sample_slots(&mut self.rng, n, p)
    }

    pub fn slots_into(&mut self, n: u64, p: f64, out: &mut Vec<u64>) {
        sample_slots_into(&mut self.rng, n, p, out)
    }

    pub fn distinct(&mut self, n: u64, k: u64) -> Vec<u64> {
        sample_distinct(&mut self.rng, n, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = RcbRng::new(1);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
        assert!(!bernoulli(&mut rng, -0.5));
        assert!(bernoulli(&mut rng, 1.5));
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = RcbRng::new(2);
        let n = 200_000;
        let hits = (0..n).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        // E[failures before success] = (1-p)/p.
        let mut rng = RcbRng::new(3);
        let p = 0.2;
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            stats.push(geometric_failures(&mut rng, p) as f64);
        }
        let expected = (1.0 - p) / p;
        assert!(
            (stats.mean() - expected).abs() < 0.1,
            "mean {} vs {}",
            stats.mean(),
            expected
        );
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = RcbRng::new(4);
        for _ in 0..100 {
            assert_eq!(geometric_failures(&mut rng, 1.0), 0);
        }
    }

    #[test]
    fn binomial_edges() {
        let mut rng = RcbRng::new(5);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn binomial_moments_match_theory() {
        let mut rng = RcbRng::new(6);
        let (n, p) = (400u64, 0.1);
        let mut stats = RunningStats::new();
        for _ in 0..50_000 {
            stats.push(binomial(&mut rng, n, p) as f64);
        }
        let mean = n as f64 * p;
        let var = n as f64 * p * (1.0 - p);
        assert!((stats.mean() - mean).abs() < 0.15, "mean {}", stats.mean());
        assert!(
            (stats.variance() - var).abs() < var * 0.05,
            "var {} vs {var}",
            stats.variance()
        );
    }

    #[test]
    fn binomial_tiny_p_is_usually_zero() {
        let mut rng = RcbRng::new(7);
        let mut total = 0;
        for _ in 0..1000 {
            total += binomial(&mut rng, 1000, 1e-9);
        }
        assert!(total <= 2, "np = 1e-6 per draw; got {total} in 1000 draws");
    }

    #[test]
    fn sample_slots_sorted_distinct_in_range() {
        let mut rng = RcbRng::new(8);
        for _ in 0..100 {
            let slots = sample_slots(&mut rng, 1000, 0.05);
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "sorted+distinct");
            assert!(slots.iter().all(|&s| s < 1000));
        }
    }

    #[test]
    fn sample_slots_count_is_binomial() {
        let mut rng = RcbRng::new(9);
        let (n, p) = (2000u64, 0.01);
        let mut stats = RunningStats::new();
        for _ in 0..20_000 {
            stats.push(sample_slots(&mut rng, n, p).len() as f64);
        }
        assert!((stats.mean() - 20.0).abs() < 0.3, "mean {}", stats.mean());
    }

    #[test]
    fn sample_slots_p_one_gives_all() {
        let mut rng = RcbRng::new(10);
        assert_eq!(sample_slots(&mut rng, 5, 1.0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_slots_positions_are_uniform() {
        // Each slot should be hit with probability p: check the first and
        // last deciles get roughly equal mass.
        let mut rng = RcbRng::new(11);
        let n = 100u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..50_000 {
            for s in sample_slots(&mut rng, n, 0.1) {
                counts[s as usize] += 1;
            }
        }
        let first: u64 = counts[..10].iter().sum();
        let last: u64 = counts[90..].iter().sum();
        let ratio = first as f64 / last as f64;
        assert!((0.93..1.07).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sample_slots_into_matches_sample_slots() {
        // Same seed ⇒ identical positions AND identical post-call RNG
        // state, including the edge probabilities that skip the RNG.
        for seed in 0..50u64 {
            for &(n, p) in &[
                (0u64, 0.5),
                (1, 0.5),
                (1000, 0.0),
                (1000, -1.0),
                (7, 1.0),
                (7, 2.0),
                (1000, 0.05),
                (100_000, 0.001),
                (64, 0.9),
            ] {
                let mut rng_a = RcbRng::new(seed);
                let owned = sample_slots(&mut rng_a, n, p);
                let mut rng_b = RcbRng::new(seed);
                let mut reused = vec![u64::MAX; 3]; // stale contents must be cleared
                sample_slots_into(&mut rng_b, n, p, &mut reused);
                assert_eq!(owned, reused, "seed {seed}, n {n}, p {p}");
                assert_eq!(rng_a, rng_b, "seed {seed}, n {n}, p {p}: RNG drift");
            }
        }
    }

    #[test]
    fn sample_slots_into_reuses_capacity() {
        let mut rng = RcbRng::new(21);
        let mut buf = Vec::new();
        sample_slots_into(&mut rng, 10_000, 0.1, &mut buf);
        let cap = buf.capacity();
        for _ in 0..20 {
            sample_slots_into(&mut rng, 10_000, 0.1, &mut buf);
        }
        assert_eq!(buf.capacity(), cap, "repeat draws must not reallocate");
    }

    #[test]
    fn slot_capacity_hint_is_clamped() {
        // Saturating n·p must not request an exabyte-scale reservation.
        assert!(slot_capacity_hint(u64::MAX, 1.0 - 1e-9) <= 1 << 16);
        assert!(slot_capacity_hint(1 << 40, 0.9) <= 1 << 16);
        // And the hint never exceeds the block length.
        assert!(slot_capacity_hint(3, 0.9) <= 3);
        assert_eq!(slot_capacity_hint(0, 0.5), 0);
    }

    #[test]
    fn slot_capacity_hint_capped_honours_caller_bound() {
        // The cohort engine passes its own clamp so a single n=10^6 draw
        // reserves once instead of doubling past the old 1<<16 ceiling.
        let hinted = slot_capacity_hint_capped(1_000_000, 0.9, 4 << 20);
        assert!(hinted > 1 << 16, "caller clamp must beat the default");
        assert!(hinted <= 4 << 20);
        // Expected count wins when below both clamps.
        assert_eq!(
            slot_capacity_hint_capped(1000, 0.1, 4 << 20),
            slot_capacity_hint(1000, 0.1)
        );
        // Caller clamp still protects against saturating products.
        assert!(slot_capacity_hint_capped(u64::MAX, 1.0, 1 << 10) <= 1 << 10);
        // Degenerate p sanitises instead of poisoning the cast.
        assert_eq!(slot_capacity_hint_capped(100, f64::NAN, 1 << 10), 4);
        assert_eq!(slot_capacity_hint_capped(100, -3.0, 1 << 10), 4);
    }

    #[test]
    fn samplers_reject_invalid_p_in_release_builds() {
        // NaN used to fall through both guards: `NaN as u64 == 0` made every
        // geometric skip zero, so binomial(n, NaN) returned n and
        // sample_slots(n, NaN) selected every slot. These asserts run in
        // release CI, where the old debug_assert provided no protection.
        let mut rng = RcbRng::new(77);
        assert_eq!(binomial(&mut rng, 1000, f64::NAN), 0);
        assert_eq!(binomial_fast(&mut rng, 1000, f64::NAN), 0);
        assert!(sample_slots(&mut rng, 1000, f64::NAN).is_empty());
        assert_eq!(geometric_failures(&mut rng, f64::NAN), u64::MAX);

        // ±0.0: a coin that never lands heads.
        for &zero in &[0.0f64, -0.0] {
            assert_eq!(binomial(&mut rng, 1000, zero), 0);
            assert_eq!(binomial_fast(&mut rng, 1000, zero), 0);
            assert!(sample_slots(&mut rng, 1000, zero).is_empty());
            assert_eq!(geometric_failures(&mut rng, zero), u64::MAX);
            assert_eq!(geometric_failures(&mut rng, -1.0), u64::MAX);
        }

        // Subnormal p is a valid (if absurd) probability: it must neither
        // hang nor divide by ln(1) = 0. ln_1p keeps the denominator finite
        // and nonzero, so the skip is astronomically large and the draw
        // terminates immediately.
        let tiny = f64::MIN_POSITIVE / 2.0;
        assert!(tiny > 0.0 && !tiny.is_normal());
        assert_eq!(binomial(&mut rng, 1_000_000, tiny), 0);
        assert_eq!(binomial_fast(&mut rng, 1_000_000, tiny), 0);
        let skip = geometric_failures(&mut rng, tiny);
        assert!(skip > 1 << 40, "subnormal p must skip ~1/p failures");
    }

    #[test]
    fn binomial_fast_edge_cases() {
        let mut rng = RcbRng::new(78);
        assert_eq!(binomial_fast(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial_fast(&mut rng, 10, 1.0), 10);
        assert_eq!(binomial_fast(&mut rng, 10, 2.0), 10);
        assert_eq!(binomial_fast(&mut rng, 10, -1.0), 0);
        // Complement path near 1: all three sampler regimes stay in range.
        for &(n, p) in &[(5u64, 0.999f64), (1000, 0.97), (1_000_000, 0.9)] {
            for _ in 0..50 {
                let k = binomial_fast(&mut rng, n, p);
                assert!(k <= n, "n {n}, p {p}, k {k}");
            }
        }
    }

    #[test]
    fn binomial_fast_moments_match_theory() {
        // Mean and variance across BINV (np < 10), BTPE (np ≥ 10), and the
        // p > 1/2 complement path.
        let mut rng = RcbRng::new(79);
        for &(n, p) in &[
            (40u64, 0.1f64), // BINV
            (400, 0.3),      // BTPE
            (400, 0.7),      // complement → BTPE
            (30, 0.9),       // complement → BINV
            (1_000_000, 0.5),
        ] {
            let trials = 20_000;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..trials {
                let k = binomial_fast(&mut rng, n, p) as f64;
                sum += k;
                sumsq += k * k;
            }
            let mean = sum / trials as f64;
            let var = sumsq / trials as f64 - mean * mean;
            let (m, v) = (n as f64 * p, n as f64 * p * (1.0 - p));
            // 6-sigma tolerance on the sample mean, 10% on the variance.
            let mean_tol = 6.0 * (v / trials as f64).sqrt();
            assert!(
                (mean - m).abs() < mean_tol,
                "n {n} p {p}: mean {mean} vs {m}"
            );
            assert!((var - v).abs() < 0.1 * v, "n {n} p {p}: var {var} vs {v}");
        }
    }

    #[test]
    fn binomial_fast_agrees_with_exact_binomial_in_distribution() {
        // Two-sample KS between the geometric-skip reference sampler and
        // the BINV/BTPE paths: same law, different streams.
        use crate::gof::ks_two_sample;
        for &(n, p) in &[(300u64, 0.37f64), (300, 0.63), (24, 0.25)] {
            let mut rng_a = RcbRng::new(80);
            let mut rng_b = RcbRng::new(81);
            let trials = 4000;
            let a: Vec<f64> = (0..trials)
                .map(|_| binomial(&mut rng_a, n, p) as f64)
                .collect();
            let b: Vec<f64> = (0..trials)
                .map(|_| binomial_fast(&mut rng_b, n, p) as f64)
                .collect();
            let ks = ks_two_sample(&a, &b);
            assert!(ks.p > 1e-4, "n {n} p {p}: KS d {} p {}", ks.d, ks.p);
        }
    }

    #[test]
    fn binomial_fast_is_deterministic_per_seed() {
        for seed in 0..10u64 {
            let mut a = RcbRng::new(seed);
            let mut b = RcbRng::new(seed);
            for &(n, p) in &[(50u64, 0.2f64), (5000, 0.4), (5000, 0.8)] {
                assert_eq!(binomial_fast(&mut a, n, p), binomial_fast(&mut b, n, p));
            }
            assert_eq!(a, b);
        }
    }

    #[test]
    fn multinomial_into_conserves_and_distributes() {
        let mut rng = RcbRng::new(82);
        let mut out = Vec::new();
        // Conservation for arbitrary weights, including zero and NaN cells.
        multinomial_into(&mut rng, 10_000, &[3.0, 0.0, 1.0, f64::NAN, 6.0], &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(out.iter().sum::<u64>(), 10_000);
        assert_eq!(out[1], 0, "zero weight gets zero mass");
        assert_eq!(out[3], 0, "NaN weight is treated as zero");

        // Means track the weight proportions.
        let mut totals = [0u64; 3];
        let reps = 2000;
        for _ in 0..reps {
            multinomial_into(&mut rng, 100, &[1.0, 2.0, 1.0], &mut out);
            for (t, &k) in totals.iter_mut().zip(&out) {
                *t += k;
            }
        }
        let mean1 = totals[1] as f64 / reps as f64;
        assert!((mean1 - 50.0).abs() < 2.0, "mean {mean1}");

        // All-zero weights: everything in the trailing rest bucket.
        multinomial_into(&mut rng, 7, &[0.0, 0.0], &mut out);
        assert_eq!(out, vec![0, 7]);
        // Empty weights: nothing to write.
        multinomial_into(&mut rng, 7, &[], &mut out);
        assert!(out.is_empty());
        // Single category takes it all.
        multinomial_into(&mut rng, 7, &[0.25], &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = RcbRng::new(12);
        for _ in 0..200 {
            let k = rng.below(50);
            let mut v = sample_distinct(&mut rng, 50, k);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), k as usize, "distinctness");
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = RcbRng::new(13);
        let mut v = sample_distinct(&mut rng, 10, 10);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn sample_distinct_k_too_large_panics() {
        let mut rng = RcbRng::new(14);
        sample_distinct(&mut rng, 3, 4);
    }

    #[test]
    fn sample_distinct_matches_linear_scan_reference() {
        // The hash-set membership check must not change the sampled
        // sequence: replay the same RNG stream through the textbook
        // contains()-based Floyd and demand identical output.
        fn reference(rng: &mut RcbRng, n: u64, k: u64) -> Vec<u64> {
            let mut chosen: Vec<u64> = Vec::with_capacity(k as usize);
            for j in (n - k)..n {
                let t = rng.below(j + 1);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            chosen
        }
        for seed in 0..20 {
            for &(n, k) in &[(1u64, 1u64), (10, 3), (100, 100), (5000, 700)] {
                let fast = sample_distinct(&mut RcbRng::new(seed), n, k);
                let slow = reference(&mut RcbRng::new(seed), n, k);
                assert_eq!(fast, slow, "seed {seed}, n {n}, k {k}");
            }
        }
    }

    #[test]
    fn sample_distinct_large_k_is_fast() {
        // 200k draws would take minutes under the quadratic scan; the hash
        // set keeps it well under a second.
        let mut rng = RcbRng::new(16);
        let v = sample_distinct(&mut rng, 1 << 20, 200_000);
        assert_eq!(v.len(), 200_000);
    }

    #[test]
    fn sampler_wrapper_smoke() {
        let mut s = Sampler::new(15);
        assert!(s.binomial(10, 1.0) == 10);
        assert!(s.slots(10, 0.0).is_empty());
        assert_eq!(s.distinct(5, 5).len(), 5);
        let _ = s.bernoulli(0.5);
        let _ = s.rng_mut().f64();
    }
}
