//! Log-binned histograms for cost and latency distributions.
//!
//! Jamming produces heavy-tailed cost distributions (a run that survives
//! one extra epoch costs ~√2 more), so linear bins waste resolution;
//! log-spaced bins give constant relative resolution across decades.

use serde::{Deserialize, Serialize};

/// A histogram with logarithmically spaced bins over `(0, ∞)`, plus a
/// dedicated underflow bin for zeros.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Bin boundaries grow by this factor per bin.
    growth: f64,
    /// Smallest positive value the first bin covers.
    base: f64,
    counts: Vec<u64>,
    zeros: u64,
    total: u64,
    sum: f64,
    max: f64,
}

impl LogHistogram {
    /// Bins cover `[base·growth^k, base·growth^(k+1))`. `growth` must
    /// exceed 1; `base` must be positive.
    pub fn new(base: f64, growth: f64) -> Self {
        assert!(base > 0.0, "base must be positive");
        assert!(growth > 1.0, "growth must exceed 1");
        Self {
            growth,
            base,
            counts: Vec::new(),
            zeros: 0,
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Default: bins from 1 upward, doubling — right for slot costs.
    pub fn doubling() -> Self {
        Self::new(1.0, 2.0)
    }

    fn bin_of(&self, value: f64) -> usize {
        ((value / self.base).ln() / self.growth.ln()).max(0.0) as usize
    }

    /// Records one observation (must be ≥ 0 and finite).
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite() && value >= 0.0, "bad observation {value}");
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
        if value < self.base {
            self.zeros += 1;
            return;
        }
        let bin = self.bin_of(value);
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum / self.total as f64
        }
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper edge of the bin
    /// containing the q-th observation. Exact to within one bin's relative
    /// width (`growth`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "q in [0,1]");
        if self.total == 0 {
            return f64::NAN;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.zeros;
        if seen >= target {
            return 0.0;
        }
        for (bin, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return self.base * self.growth.powi(bin as i32 + 1);
            }
        }
        self.max
    }

    /// Renders the histogram as ASCII bars, widest bin normalized to
    /// `width` characters. Empty leading/trailing bins are skipped.
    pub fn render(&self, width: usize) -> String {
        assert!(width >= 1);
        let mut out = String::new();
        if self.total == 0 {
            out.push_str("(empty)\n");
            return out;
        }
        let peak = self
            .counts
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.zeros);
        let bar = |count: u64| -> String {
            let len = if peak == 0 {
                0
            } else {
                ((count as f64 / peak as f64) * width as f64).round() as usize
            };
            "#".repeat(len)
        };
        if self.zeros > 0 {
            out.push_str(&format!(
                "{:>12} | {} ({})\n",
                format!("< {}", self.base),
                bar(self.zeros),
                self.zeros
            ));
        }
        let first = self.counts.iter().position(|&c| c > 0).unwrap_or(0);
        let last = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        for bin in first..=last {
            let lo = self.base * self.growth.powi(bin as i32);
            out.push_str(&format!(
                "{lo:>12.0} | {} ({})\n",
                bar(self.counts[bin]),
                self.counts[bin]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RcbRng;

    #[test]
    fn records_and_counts() {
        let mut h = LogHistogram::doubling();
        for v in [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 110.5 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_bin_accurate() {
        let mut h = LogHistogram::doubling();
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        // Median of 1..1000 is ~500; the containing bin [256,512) reports
        // its upper edge 512.
        let med = h.quantile(0.5);
        assert!((500.0..=1024.0).contains(&med), "median bin edge {med}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 990.0, "p99 {p99}");
        assert_eq!(h.quantile(0.0), 0.0_f64.max(h.quantile(0.0))); // no panic
    }

    #[test]
    fn zeros_live_in_the_underflow_bin() {
        let mut h = LogHistogram::doubling();
        for _ in 0..10 {
            h.record(0.0);
        }
        h.record(8.0);
        assert_eq!(h.quantile(0.5), 0.0);
        let rendered = h.render(20);
        assert!(rendered.contains("< 1"));
    }

    #[test]
    fn render_shows_bars() {
        let mut h = LogHistogram::doubling();
        let mut rng = RcbRng::new(1);
        for _ in 0..500 {
            h.record(rng.below(1000) as f64);
        }
        let s = h.render(30);
        assert!(s.contains('#'));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn empty_histogram_renders_and_nan_means() {
        let h = LogHistogram::doubling();
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
        assert_eq!(h.render(10), "(empty)\n");
    }

    #[test]
    #[should_panic]
    fn rejects_negative_values() {
        LogHistogram::doubling().record(-1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_growth() {
        LogHistogram::new(1.0, 1.0);
    }
}
