//! # rcb-mathkit
//!
//! Numerical primitives shared by the `rcb` workspace: a deterministic,
//! splittable random-number generator, exact samplers for the distributions
//! the simulation engines need (Bernoulli processes, binomials, geometric
//! skips, distinct-subset sampling), streaming statistics, power-law fitting
//! for the experiment harness, and the Chernoff-bound calculators that the
//! paper's analysis (Theorem 6 / Corollary 1 of Motwani–Raghavan) relies on.
//!
//! Everything here is dependency-light on purpose: `rand_distr` is not part
//! of the approved dependency set, so the binomial/geometric samplers are
//! implemented from first principles and validated by property tests.

pub mod binom;
pub mod bounds;
pub mod fit;
pub mod gof;
pub mod histogram;
pub mod hypothesis;
pub mod rng;
pub mod sample;
pub mod stats;

pub use binom::{binomial_cdf_le, binomial_tail_gt, ln_binomial_pmf, ln_choose, ln_factorial};
pub use bounds::{chernoff_lower_tail, chernoff_upper_tail, concentration_radius};
pub use fit::{
    linear_fit, power_law_fit, power_law_fit_with_offset, LinearFit, OffsetPowerLawFit, PowerLawFit,
};
pub use gof::{chi_square_gof, ks_two_sample, ChiSquare, KsTest};
pub use histogram::LogHistogram;
pub use hypothesis::{mann_whitney_u, normal_cdf, MannWhitney};
pub use rng::{seed_stream, RcbRng, SeedSequence};
pub use sample::{
    bernoulli, binomial, binomial_fast, geometric_failures, multinomial_into, sample_distinct,
    sample_slots, slot_capacity_hint_capped, Sampler,
};
pub use stats::{percentile, summarize, RunningStats, Summary};

/// The golden ratio φ = (1 + √5)/2, used by the King–Saia–Young baseline and
/// the Theorem 5 lower-bound experiment.
pub const PHI: f64 = 1.618_033_988_749_895;

/// φ − 1 = 1/φ ≈ 0.618, the cost exponent of the KSY baseline.
pub const PHI_MINUS_ONE: f64 = PHI - 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_satisfies_defining_identity() {
        // φ² = φ + 1 and (φ − 1)·φ = 1 are the identities the golden-ratio
        // baseline's self-consistency argument uses.
        assert!((PHI * PHI - (PHI + 1.0)).abs() < 1e-12);
        assert!((PHI_MINUS_ONE * PHI - 1.0).abs() < 1e-12);
    }
}
