//! Chernoff-bound calculators (Theorem 6 / Corollary 1 of the paper, citing
//! Motwani–Raghavan).
//!
//! These are used two ways:
//!
//! * by tests, to choose statistically sound tolerances ("with 50k samples a
//!   deviation beyond `concentration_radius(μ, 1e-9)` indicates a bug, not
//!   bad luck");
//! * by the analysis crate, to annotate experiment tables with the failure
//!   probabilities the paper's proofs would predict for the measured
//!   parameters.

/// Upper-tail Chernoff bound (Corollary 1, first inequality):
/// `Pr[X > (1+δ)·μ] ≤ exp(−δ²μ/3)` for `0 < δ < 1`.
///
/// For `δ ≥ 1` falls back to the generic Theorem-6 form
/// `(e^δ / (1+δ)^(1+δ))^μ`, which remains valid for all `δ > 0`.
pub fn chernoff_upper_tail(mu: f64, delta: f64) -> f64 {
    assert!(
        mu >= 0.0 && delta >= 0.0,
        "mu and delta must be nonnegative"
    );
    if mu == 0.0 || delta == 0.0 {
        return 1.0;
    }
    if delta < 1.0 {
        (-delta * delta * mu / 3.0).exp()
    } else {
        // exp(μ·(δ − (1+δ)·ln(1+δ))), computed in log space for stability.
        let ln_bound = mu * (delta - (1.0 + delta) * (1.0 + delta).ln());
        ln_bound.exp()
    }
}

/// Lower-tail Chernoff bound (Corollary 1, second inequality):
/// `Pr[X < (1−δ)·μ] ≤ exp(−δ²μ/2)` for `0 < δ < 1`.
pub fn chernoff_lower_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0, "mu must be nonnegative");
    assert!(
        (0.0..=1.0).contains(&delta),
        "lower tail needs 0 <= delta <= 1"
    );
    if mu == 0.0 || delta == 0.0 {
        return 1.0;
    }
    (-delta * delta * mu / 2.0).exp()
}

/// Two-sided concentration radius (Corollary 1, last bound):
/// `Pr[|X − μ| > √(3·μ·ln(1/ε))] < 2ε`.
///
/// Returns the radius `√(3·μ·ln(1/ε))`.
pub fn concentration_radius(mu: f64, epsilon: f64) -> f64 {
    assert!(mu >= 0.0, "mu must be nonnegative");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    (3.0 * mu * (1.0 / epsilon).ln()).sqrt()
}

/// Fact 1 of the paper: `1 − y ≥ e^(−2y)` for `0 ≤ y ≤ 1/2`.
///
/// Provided as a checked helper so tests can assert the inequality the
/// Lemma 2 bounds (`p_m`, `p_c`) rest on.
pub fn fact1_holds(y: f64) -> bool {
    (0.0..=0.5).contains(&y) && (1.0 - y) >= (-2.0 * y).exp() - 1e-15
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RcbRng;
    use crate::sample::binomial;

    #[test]
    fn upper_tail_decreases_in_mu_and_delta() {
        assert!(chernoff_upper_tail(100.0, 0.5) < chernoff_upper_tail(10.0, 0.5));
        assert!(chernoff_upper_tail(100.0, 0.9) < chernoff_upper_tail(100.0, 0.1));
    }

    #[test]
    fn upper_tail_large_delta_uses_theorem6_form() {
        // δ = 2, μ = 10: exp(10·(2 − 3·ln3)) ≈ exp(−12.96).
        let b = chernoff_upper_tail(10.0, 2.0);
        let expect = (10.0_f64 * (2.0 - 3.0 * 3.0_f64.ln())).exp();
        assert!((b - expect).abs() < 1e-12);
        assert!(b < 1e-5);
    }

    #[test]
    fn degenerate_inputs_give_trivial_bound() {
        assert_eq!(chernoff_upper_tail(0.0, 0.5), 1.0);
        assert_eq!(chernoff_upper_tail(10.0, 0.0), 1.0);
        assert_eq!(chernoff_lower_tail(0.0, 0.5), 1.0);
    }

    #[test]
    fn bounds_are_valid_empirically() {
        // Empirical tail mass of Binomial(1000, 0.1) must not exceed the
        // Chernoff prediction by a wide margin (the bound must be an upper
        // bound up to Monte-Carlo noise).
        let mut rng = RcbRng::new(21);
        let (n, p) = (1000u64, 0.1);
        let mu = n as f64 * p;
        let delta = 0.3;
        let trials = 200_000;
        let mut upper_hits = 0u64;
        let mut lower_hits = 0u64;
        for _ in 0..trials {
            let x = binomial(&mut rng, n, p) as f64;
            if x > (1.0 + delta) * mu {
                upper_hits += 1;
            }
            if x < (1.0 - delta) * mu {
                lower_hits += 1;
            }
        }
        let upper_freq = upper_hits as f64 / trials as f64;
        let lower_freq = lower_hits as f64 / trials as f64;
        assert!(upper_freq <= chernoff_upper_tail(mu, delta) * 1.5 + 1e-4);
        assert!(lower_freq <= chernoff_lower_tail(mu, delta) * 1.5 + 1e-4);
    }

    #[test]
    fn concentration_radius_matches_formula() {
        let r = concentration_radius(100.0, 0.01);
        let expect = (3.0 * 100.0 * (1.0 / 0.01_f64).ln()).sqrt();
        assert!((r - expect).abs() < 1e-12);
    }

    #[test]
    fn concentration_radius_captures_mass() {
        // |X − μ| > radius(μ, ε) should happen with frequency < 2ε.
        let mut rng = RcbRng::new(22);
        let (n, p) = (500u64, 0.2);
        let mu = n as f64 * p;
        let eps = 0.01;
        let radius = concentration_radius(mu, eps);
        let trials = 100_000;
        let escapes = (0..trials)
            .filter(|_| {
                let x = binomial(&mut rng, n, p) as f64;
                (x - mu).abs() > radius
            })
            .count();
        let freq = escapes as f64 / trials as f64;
        assert!(
            freq < 2.0 * eps,
            "escape frequency {freq} vs bound {}",
            2.0 * eps
        );
    }

    #[test]
    #[should_panic]
    fn concentration_radius_rejects_bad_epsilon() {
        concentration_radius(10.0, 1.5);
    }

    #[test]
    fn fact1_holds_on_valid_range() {
        for i in 0..=50 {
            let y = i as f64 / 100.0;
            assert!(fact1_holds(y), "Fact 1 failed at y = {y}");
        }
        assert!(!fact1_holds(0.6));
        assert!(!fact1_holds(-0.1));
    }
}
