//! Log-domain binomial pmf/cdf evaluation.
//!
//! The cohort engine classifies a repetition's slots by drawing from
//! conditional binomial distributions whose parameters it derives from
//! closed-form probabilities — "what fraction of slots are clear given the
//! cohort histogram", "what is the chance a node hears more than the helper
//! threshold". Those probabilities are products and tails of binomial pmfs
//! over populations up to 10^6, so everything here works in log space and
//! uses a Stirling-series `ln n!` that stays accurate (≤ 1e-12 relative)
//! across the whole range.

/// Exact `ln(n!)` for small n; Stirling's series beyond the table.
///
/// The series `n·ln n − n + ½·ln(2πn) + 1/(12n) − 1/(360n³)` has absolute
/// error below 1e-13 for n ≥ 16, so the table covers 0..16 and the series
/// the rest.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE: [f64; 16] = [
        0.0,
        0.0,
        std::f64::consts::LN_2, // ln 2!
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
    ];
    if n < 16 {
        return TABLE[n as usize];
    }
    let x = n as f64;
    let x2 = x * x;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x2)
}

/// `ln C(n, k)` — the log binomial coefficient; `-inf` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln P(Binomial(n, p) = k)`.
///
/// `p` outside `(0, 1)` degenerates: the point mass sits at 0 (for
/// `p ≤ 0`/NaN, matching the samplers' documented clamp) or at `n` (for
/// `p ≥ 1`).
pub fn ln_binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p.is_nan() || p <= 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p >= 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p()
}

/// `P(Binomial(n, p) > k)` — the upper tail, evaluated from whichever end
/// of the support is cheaper.
///
/// The helper-promotion rule compares messages heard against a threshold
/// `7·i`, so the tail is always cut at a small `k` (≤ a few hundred) even
/// when `n` is 10^6. Summing the pmf by the multiplicative recurrence from
/// the nearer end keeps this `O(min(k, n·p) + 1)`-ish in practice and free
/// of catastrophic cancellation: each term is computed in log space once,
/// then accumulated in linear space relative to the largest term.
pub fn binomial_tail_gt(n: u64, k: u64, p: f64) -> f64 {
    if p.is_nan() || p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return if k < n { 1.0 } else { 0.0 };
    }
    if k >= n {
        return 0.0;
    }
    if (k as f64) < n as f64 * p {
        // Cut below the mean: sum the *lower* tail P(X ≤ k) and subtract.
        1.0 - lower_cdf_direct(n, k, p)
    } else {
        upper_tail_direct(n, k, p)
    }
}

/// `P(Binomial(n, p) ≤ k)`, summed from whichever end of the support is
/// numerically safe.
pub fn binomial_cdf_le(n: u64, k: u64, p: f64) -> f64 {
    if p.is_nan() || p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return if k >= n { 1.0 } else { 0.0 };
    }
    if k >= n {
        return 1.0;
    }
    if (k as f64) < n as f64 * p {
        lower_cdf_direct(n, k, p)
    } else {
        1.0 - upper_tail_direct(n, k, p)
    }
}

/// `P(X ≤ k)` for `k` below the mean, summed *downward* from `j = k`.
///
/// Anchoring the linear-space accumulator at the largest summed term —
/// `pmf(k)`, since the pmf increases up to the mode — keeps every relative
/// term in `[0, 1]` no matter how far the distribution's bulk sits from 0.
/// (The previous anchor, `pmf(0)`, underflows once `n·ln(1−p) < −745`
/// while the relative terms overflow, and `0·∞ = NaN` silently collapsed
/// the whole tail; see the regression test.) Terms decay geometrically
/// away from the mode, so the loop is `O(σ)`-ish, not `O(k)`.
fn lower_cdf_direct(n: u64, k: u64, p: f64) -> f64 {
    let ln_top = ln_binomial_pmf(n, k, p);
    if ln_top == f64::NEG_INFINITY {
        return 0.0;
    }
    let s = (1.0 - p) / p;
    let mut rel = 1.0f64; // term / pmf(k)
    let mut sum = 0.0f64;
    let mut j = k;
    loop {
        sum += rel;
        if j == 0 {
            break;
        }
        rel *= s * j as f64 / (n - j + 1) as f64;
        j -= 1;
        if rel < 1e-18 * sum {
            break;
        }
    }
    (ln_top.exp() * sum).min(1.0)
}

/// `P(X > k)` for `k` at or above the mean, summed *upward* from
/// `j = k + 1` — the largest term of the upper tail, so the same
/// anchored-at-the-top argument applies.
fn upper_tail_direct(n: u64, k: u64, p: f64) -> f64 {
    let ln_first = ln_binomial_pmf(n, k + 1, p);
    if ln_first == f64::NEG_INFINITY {
        return 0.0;
    }
    let mut rel = 1.0f64; // term / pmf(k+1)
    let mut sum = 0.0f64;
    let s = p / (1.0 - p);
    let mut j = k + 1;
    loop {
        sum += rel;
        if j >= n {
            break;
        }
        rel *= s * (n - j) as f64 / (j + 1) as f64;
        j += 1;
        if rel < 1e-18 * sum {
            break;
        }
    }
    (ln_first.exp() * sum).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_ln_factorial(n: u64) -> f64 {
        (1..=n).map(|i| (i as f64).ln()).sum()
    }

    #[test]
    fn ln_factorial_matches_brute_force() {
        for n in 0..500u64 {
            let got = ln_factorial(n);
            let want = brute_ln_factorial(n);
            let tol = 1e-10 * want.max(1.0);
            assert!((got - want).abs() < tol, "n {n}: {got} vs {want}");
        }
        // Spot-check deep into the Stirling regime.
        for &n in &[10_000u64, 1_000_000] {
            let got = ln_factorial(n);
            let want = brute_ln_factorial(n);
            assert!((got - want).abs() < 1e-8 * want, "n {n}: {got} vs {want}");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(1u64, 0.5f64), (10, 0.2), (100, 0.73), (257, 0.01)] {
            let total: f64 = (0..=n).map(|k| ln_binomial_pmf(n, k, p).exp()).sum();
            assert!((total - 1.0).abs() < 1e-10, "n {n} p {p}: {total}");
        }
    }

    #[test]
    fn degenerate_p_is_a_point_mass() {
        assert_eq!(ln_binomial_pmf(10, 0, 0.0), 0.0);
        assert_eq!(ln_binomial_pmf(10, 0, f64::NAN), 0.0);
        assert_eq!(ln_binomial_pmf(10, 3, -0.0), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_pmf(10, 10, 1.0), 0.0);
        assert_eq!(ln_binomial_pmf(10, 9, 1.5), f64::NEG_INFINITY);
        assert_eq!(binomial_tail_gt(10, 3, f64::NAN), 0.0);
        assert_eq!(binomial_cdf_le(10, 3, f64::NAN), 1.0);
        assert_eq!(binomial_tail_gt(10, 3, 1.0), 1.0);
        assert_eq!(binomial_tail_gt(10, 10, 1.0), 0.0);
    }

    #[test]
    fn tail_and_cdf_are_complements() {
        for &(n, p) in &[(20u64, 0.3f64), (100, 0.5), (1000, 0.007), (50, 0.9)] {
            for k in [0u64, 1, n / 4, n / 2, n - 1] {
                let tail = binomial_tail_gt(n, k, p);
                let cdf = binomial_cdf_le(n, k, p);
                assert!(
                    (tail + cdf - 1.0).abs() < 1e-9,
                    "n {n} p {p} k {k}: {tail} + {cdf}"
                );
                assert!((0.0..=1.0).contains(&tail));
            }
        }
    }

    #[test]
    fn tail_matches_brute_force_summation() {
        for &(n, p) in &[(30u64, 0.25f64), (200, 0.04), (64, 0.6)] {
            for k in 0..n {
                let want: f64 = (k + 1..=n).map(|j| ln_binomial_pmf(n, j, p).exp()).sum();
                let got = binomial_tail_gt(n, k, p);
                assert!(
                    (got - want).abs() < 1e-9,
                    "n {n} p {p} k {k}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn tails_survive_pmf_underflow_at_the_support_ends() {
        // Regression: with n·ln(1−p) < −745, pmf(0) underflows to 0 while
        // the term ratios up to the mode overflow; an accumulator anchored
        // at pmf(0) produced 0·∞ = NaN, which `.min(1.0)` silently turned
        // into cdf = 1 and tail = 0 — freezing every cohort whose clear
        // channel was this wide. The threshold here cuts 5σ below the
        // mean, so the true tail is ≈ 1.
        let (n, p) = (8107u64, 0.12808f64);
        let mean = n as f64 * p; // ≈ 1038, ln pmf(0) ≈ −1111
        let sigma = (mean * (1.0 - p)).sqrt();
        let k = (mean - 5.0 * sigma) as u64;
        let tail = binomial_tail_gt(n, k, p);
        assert!(tail > 1.0 - 1e-4, "k {k}: tail {tail}");
        let cdf = binomial_cdf_le(n, k, p);
        assert!(cdf < 1e-4 && cdf > 0.0, "k {k}: cdf {cdf}");
        // And the mirrored regime: k far above a far-from-zero mean.
        let hi = (mean + 5.0 * sigma) as u64;
        let t_hi = binomial_tail_gt(n, hi, p);
        assert!(t_hi < 1e-4 && t_hi > 0.0, "k {hi}: tail {t_hi}");
        assert!(binomial_cdf_le(n, hi, p) > 1.0 - 1e-4);
    }

    #[test]
    fn large_population_tails_stay_finite_and_monotone() {
        // The helper rule at n = 10^6: threshold cuts far below the mean
        // and far above it must both behave.
        let n = 1_000_000u64;
        let p = 2e-4; // mean 200
        let mut prev = 1.0;
        for k in [0u64, 50, 150, 200, 250, 400, 1000] {
            let t = binomial_tail_gt(n, k, p);
            assert!(t.is_finite() && (0.0..=1.0).contains(&t), "k {k}: {t}");
            assert!(t <= prev + 1e-12, "tail must be non-increasing in k");
            prev = t;
        }
        assert!(binomial_tail_gt(n, 0, p) > 1.0 - 1e-12);
        assert!(binomial_tail_gt(n, 1000, p) < 1e-100);
    }
}
