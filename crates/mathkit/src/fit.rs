//! Least-squares fitting for the experiment harness.
//!
//! The paper's claims are asymptotic: cost = Θ(T^α · polylog) with α = 1/2
//! for Theorem 1, α = 1/2 (and n-exponent −1/2) for Theorem 3, α = φ−1 for
//! the KSY baseline. The harness verifies them by fitting a power law
//! `y = c·x^α` on log-log axes and reporting the exponent with R².

use serde::{Deserialize, Serialize};

/// Result of an ordinary least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r2: f64,
}

/// Result of a power-law fit `y = amplitude · x^exponent`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerLawFit {
    pub exponent: f64,
    pub amplitude: f64,
    /// R² of the underlying log-log linear fit.
    pub r2: f64,
}

/// Ordinary least squares on `(x, y)` pairs. Returns `None` when fewer than
/// two distinct x-values are provided (slope undefined).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mean_x;
        let dy = ys[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 {
        1.0 // all y equal: a horizontal line fits perfectly
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

/// Result of an offset power-law fit `y = offset + amplitude·x^exponent`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OffsetPowerLawFit {
    pub offset: f64,
    pub exponent: f64,
    pub amplitude: f64,
    /// R² of the log-log fit at the chosen offset.
    pub r2: f64,
}

/// Fits `y = A + c·x^α` by grid-searching the additive offset `A` over
/// `[0, min(y))` and fitting a power law to `y − A` at each candidate,
/// keeping the offset with the best log-log R².
///
/// This is the right model for resource-competitive cost functions, which
/// are `ρ(T) + τ` (paper §1.1): the efficiency term `τ` is additive and
/// flattens the small-`T` end of a plain power-law fit. A plain fit is the
/// `A = 0` grid point, so this can only improve R².
///
/// ```
/// use rcb_mathkit::fit::power_law_fit_with_offset;
///
/// let xs: Vec<f64> = (4..20).map(|k| (2.0f64).powi(k)).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 500.0 + 2.0 * x.sqrt()).collect();
/// let fit = power_law_fit_with_offset(&xs, &ys).unwrap();
/// assert!((fit.exponent - 0.5).abs() < 0.05);
/// ```
pub fn power_law_fit_with_offset(xs: &[f64], ys: &[f64]) -> Option<OffsetPowerLawFit> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
    let min_y = ys.iter().copied().fold(f64::INFINITY, f64::min);
    if !min_y.is_finite() {
        return None;
    }
    let mut best: Option<OffsetPowerLawFit> = None;
    // 256 grid points over [0, min_y): resolution ~0.4% of the smallest
    // observation, plenty for exponent recovery.
    let steps = 256;
    for k in 0..steps {
        let offset = min_y.max(0.0) * k as f64 / steps as f64;
        let adjusted: Vec<f64> = ys.iter().map(|y| y - offset).collect();
        if let Some(f) = power_law_fit(xs, &adjusted) {
            if best.as_ref().is_none_or(|b| f.r2 > b.r2) {
                best = Some(OffsetPowerLawFit {
                    offset,
                    exponent: f.exponent,
                    amplitude: f.amplitude,
                    r2: f.r2,
                });
            }
        }
    }
    best
}

/// Fits `y = c·x^α` by linear regression on `(ln x, ln y)`.
///
/// Pairs with non-positive `x` or `y` are skipped (a `T = 0` data point has
/// no place on log-log axes). Returns `None` if fewer than two usable pairs
/// with distinct `x` remain.
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> Option<PowerLawFit> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
    let mut lx = Vec::with_capacity(xs.len());
    let mut ly = Vec::with_capacity(ys.len());
    for i in 0..xs.len() {
        if xs[i] > 0.0 && ys[i] > 0.0 {
            lx.push(xs[i].ln());
            ly.push(ys[i].ln());
        }
    }
    let lin = linear_fit(&lx, &ly)?;
    Some(PowerLawFit {
        exponent: lin.slope,
        amplitude: lin.intercept.exp(),
        r2: lin.r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let f = linear_fit(&xs, &ys).expect("fit");
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 7.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_line_r2_below_one() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let f = linear_fit(&xs, &ys).expect("fit");
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r2 < 1.0 && f.r2 > 0.95);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(linear_fit(&[], &[]).is_none());
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        // All x equal: vertical line, undefined slope.
        assert!(linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn linear_fit_constant_y_has_r2_one() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).expect("fit");
        assert_eq!(f.slope, 0.0);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_recovers_sqrt() {
        let xs: Vec<f64> = (1..200).map(|i| i as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.2 * x.sqrt()).collect();
        let f = power_law_fit(&xs, &ys).expect("fit");
        assert!((f.exponent - 0.5).abs() < 1e-9, "exp {}", f.exponent);
        assert!((f.amplitude - 4.2).abs() < 1e-6);
        assert!(f.r2 > 0.999_999);
    }

    #[test]
    fn power_law_recovers_golden_ratio_exponent() {
        let alpha = crate::PHI_MINUS_ONE;
        let xs: Vec<f64> = (1..100).map(|i| (i * i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.powf(alpha)).collect();
        let f = power_law_fit(&xs, &ys).expect("fit");
        assert!((f.exponent - alpha).abs() < 1e-9);
    }

    #[test]
    fn power_law_skips_nonpositive_points() {
        let xs = [0.0, -1.0, 1.0, 2.0, 4.0, 8.0];
        let ys = [5.0, 5.0, 1.0, 2.0, 4.0, 8.0];
        let f = power_law_fit(&xs, &ys).expect("fit");
        assert!((f.exponent - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_insufficient_points_is_none() {
        assert!(power_law_fit(&[0.0, -2.0], &[1.0, 1.0]).is_none());
        assert!(power_law_fit(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn offset_fit_recovers_shifted_sqrt() {
        // y = 1000 + 3·√x: a plain power-law fit is badly flattened; the
        // offset fit must recover both the offset and the exponent.
        let xs: Vec<f64> = (4..20).map(|k| (2.0f64).powi(k)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1000.0 + 3.0 * x.sqrt()).collect();
        let plain = power_law_fit(&xs, &ys).expect("plain");
        assert!(
            plain.exponent < 0.45,
            "plain fit is flattened: {}",
            plain.exponent
        );
        let f = power_law_fit_with_offset(&xs, &ys).expect("offset fit");
        assert!(
            (f.exponent - 0.5).abs() < 0.05,
            "offset fit exponent {} ≈ 0.5",
            f.exponent
        );
        assert!(
            (f.offset - 1000.0).abs() < 100.0,
            "offset {} ≈ 1000",
            f.offset
        );
        assert!(f.r2 > plain.r2);
    }

    #[test]
    fn offset_fit_equals_plain_when_no_offset() {
        let xs: Vec<f64> = (1..12).map(|k| (3.0f64).powi(k)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.powf(0.7)).collect();
        let f = power_law_fit_with_offset(&xs, &ys).expect("fit");
        assert!((f.exponent - 0.7).abs() < 0.02, "exp {}", f.exponent);
        // The best grid offset is (near) zero for a pure power law.
        assert!(f.offset < ys[0] * 0.2);
    }

    #[test]
    fn offset_fit_handles_degenerate_input() {
        assert!(power_law_fit_with_offset(&[1.0], &[5.0]).is_none());
    }
}
