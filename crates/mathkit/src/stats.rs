//! Streaming and batch statistics for Monte-Carlo trial aggregation.

use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator with min/max tracking.
///
/// Supports `merge` so per-thread accumulators can be combined by the
/// parallel trial runner without storing raw samples.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Combines two accumulators (Chan et al. parallel update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n − 1 denominator). NaN with < 2 observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        self.std_dev() / (self.count as f64).sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// 95% normal-approximation confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.sem();
        (self.mean() - half, self.mean() + half)
    }
}

/// Batch summary of a sample: moments plus selected percentiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    pub count: u64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

/// Linear-interpolation percentile of a **sorted** slice, `q` in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Summarizes a sample (sorts a copy internally).
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "summarize of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let mut stats = RunningStats::new();
    for &x in samples {
        stats.push(x);
    }
    Summary {
        count: stats.count(),
        mean: stats.mean(),
        std_dev: if stats.count() < 2 {
            0.0
        } else {
            stats.std_dev()
        },
        min: sorted[0],
        p25: percentile(&sorted, 0.25),
        median: percentile(&sorted, 0.50),
        p75: percentile(&sorted, 0.75),
        p95: percentile(&sorted, 0.95),
        p99: percentile(&sorted, 0.99),
        max: *sorted.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic_moments() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = RunningStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..317] {
            a.push(x);
        }
        for &x in &data[317..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ci95_shrinks_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        let mut rng = crate::rng::RcbRng::new(1);
        for i in 0..10_000 {
            let x = rng.f64();
            if i < 100 {
                small.push(x);
            }
            large.push(x);
        }
        let w_small = small.ci95().1 - small.ci95().0;
        let w_large = large.ci95().1 - large.ci95().0;
        assert!(w_large < w_small / 5.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert!((percentile(&sorted, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 0.37), 42.0);
    }

    #[test]
    #[should_panic]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    fn summary_fields_are_ordered() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let s = summarize(&data);
        assert_eq!(s.count, 101);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.0).abs() < 1e-9);
        assert!(s.p25 <= s.median && s.median <= s.p75);
        assert!(s.p75 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean - 50.0).abs() < 1e-9);
    }
}
