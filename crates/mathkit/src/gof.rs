//! Goodness-of-fit tests for the conformance harness.
//!
//! The cross-engine differ needs more than a location test: two engines can
//! share a mean while disagreeing in shape. [`ks_two_sample`] compares full
//! empirical distributions; [`chi_square_gof`] checks observed category
//! counts against expected frequencies (used to prove the geometric-skip
//! samplers match naive per-slot coin flips).

use serde::{Deserialize, Serialize};

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KsTest {
    /// Supremum distance between the two empirical CDFs.
    pub d: f64,
    /// Two-sided p-value (asymptotic Kolmogorov distribution with the
    /// Stephens small-sample correction).
    pub p: f64,
}

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChiSquare {
    /// The χ² statistic.
    pub stat: f64,
    /// Degrees of freedom (categories − 1).
    pub df: u64,
    /// Upper-tail p-value `P(χ²_df ≥ stat)`.
    pub p: f64,
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2·Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100u32 {
        let term = (-2.0 * (k as f64 * lambda).powi(2)).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample Kolmogorov–Smirnov test of `xs` vs `ys`.
///
/// ```
/// use rcb_mathkit::gof::ks_two_sample;
///
/// let same = ks_two_sample(&[1.0, 2.0, 3.0, 4.0], &[1.5, 2.5, 3.5]);
/// assert!(same.p > 0.3);
/// let apart: Vec<f64> = (0..50).map(f64::from).collect();
/// let far: Vec<f64> = (100..150).map(f64::from).collect();
/// assert!(ks_two_sample(&apart, &far).p < 1e-6);
/// ```
///
/// # Panics
/// If either sample is empty or any value is NaN.
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> KsTest {
    assert!(
        !xs.is_empty() && !ys.is_empty(),
        "samples must be non-empty"
    );
    let mut a: Vec<f64> = xs.to_vec();
    let mut b: Vec<f64> = ys.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    let (n1, n2) = (a.len() as f64, b.len() as f64);

    // Sweep the merged order, tracking the CDF gap. Advance past ties in
    // *both* samples before measuring, so tied values do not inflate D.
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let v = a[i].min(b[j]);
        while i < a.len() && a[i] == v {
            i += 1;
        }
        while j < b.len() && b[j] == v {
            j += 1;
        }
        d = d.max((i as f64 / n1 - j as f64 / n2).abs());
    }
    // The remaining tail of the longer sample only shrinks the gap toward
    // |1 − 1| = 0, so no further sweep is needed.

    let ne = n1 * n2 / (n1 + n2);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsTest {
        d,
        p: kolmogorov_survival(lambda),
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = Γ(a, x)/Γ(a)`, via the
/// series for `x < a + 1` and the continued fraction otherwise (Numerical
/// Recipes §6.2). Accurate to ~1e-10 over the chi-square range we use.
fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain");
    if x == 0.0 {
        return 1.0;
    }
    let ln_gamma_a = ln_gamma(a);
    if x < a + 1.0 {
        // P(a,x) by series; Q = 1 − P.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-14 {
                break;
            }
        }
        let p = sum * (-x + a * x.ln() - ln_gamma_a).exp();
        (1.0 - p).clamp(0.0, 1.0)
    } else {
        // Q(a,x) by Lentz's continued fraction.
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-14 {
                break;
            }
        }
        (h * (-x + a * x.ln() - ln_gamma_a).exp()).clamp(0.0, 1.0)
    }
}

/// `ln Γ(x)` by the Lanczos approximation (g = 7, n = 9), |ε| < 1e-13 for
/// positive arguments.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π/sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Chi-square goodness-of-fit: `observed[i]` counts vs `expected[i]`
/// frequencies (same length, expected all positive).
///
/// ```
/// use rcb_mathkit::gof::chi_square_gof;
///
/// let even = chi_square_gof(&[52, 48], &[50.0, 50.0]);
/// assert!(even.p > 0.5);
/// let skew = chi_square_gof(&[90, 10], &[50.0, 50.0]);
/// assert!(skew.p < 1e-6);
/// ```
///
/// # Panics
/// If lengths differ, fewer than two categories, or an expected count is
/// not positive.
pub fn chi_square_gof(observed: &[u64], expected: &[f64]) -> ChiSquare {
    assert_eq!(observed.len(), expected.len(), "category count mismatch");
    assert!(observed.len() >= 2, "need at least two categories");
    assert!(
        expected.iter().all(|&e| e > 0.0),
        "expected counts must be positive"
    );
    let stat: f64 = observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| (o as f64 - e).powi(2) / e)
        .sum();
    let df = (observed.len() - 1) as u64;
    ChiSquare {
        stat,
        df,
        p: gamma_q(df as f64 / 2.0, stat / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RcbRng;

    #[test]
    fn ln_gamma_anchors() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_q_anchors() {
        // Q(1/2, x/2) is the χ²₁ survival function: Q at the 95th
        // percentile (3.841) is 0.05.
        assert!((gamma_q(0.5, 3.841 / 2.0) - 0.05).abs() < 1e-3);
        // χ²₅ 95th percentile is 11.070.
        assert!((gamma_q(2.5, 11.070 / 2.0) - 0.05).abs() < 1e-3);
        assert!((gamma_q(1.0, 0.0) - 1.0).abs() < 1e-12);
        assert!(gamma_q(1.0, 50.0) < 1e-20);
    }

    #[test]
    fn ks_identical_samples_not_rejected() {
        let mut rng = RcbRng::new(1);
        let xs: Vec<f64> = (0..300).map(|_| rng.f64()).collect();
        let ys: Vec<f64> = (0..300).map(|_| rng.f64()).collect();
        let r = ks_two_sample(&xs, &ys);
        assert!(r.p > 0.01, "p = {}", r.p);
        assert!(r.d < 0.15);
    }

    #[test]
    fn ks_detects_shift_and_spread() {
        let mut rng = RcbRng::new(2);
        let xs: Vec<f64> = (0..300).map(|_| rng.f64()).collect();
        let shifted: Vec<f64> = (0..300).map(|_| rng.f64() + 0.4).collect();
        assert!(ks_two_sample(&xs, &shifted).p < 1e-6);
        // Same mean, different spread: a pure location test misses this.
        let wide: Vec<f64> = (0..300).map(|_| (rng.f64() - 0.5) * 4.0 + 0.5).collect();
        assert!(ks_two_sample(&xs, &wide).p < 1e-6);
    }

    #[test]
    fn ks_handles_heavy_ties() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 4) as f64).collect();
        let ys: Vec<f64> = (0..200).map(|i| (i % 4) as f64).collect();
        let r = ks_two_sample(&xs, &ys);
        assert_eq!(r.d, 0.0, "identical tied samples");
        assert!(r.p > 0.99);
    }

    #[test]
    fn ks_statistic_matches_hand_computation() {
        // xs = {1, 2}, ys = {1, 3}: after 1 the CDFs agree (1/2, 1/2);
        // after 2 they are (1, 1/2); D = 1/2.
        let r = ks_two_sample(&[1.0, 2.0], &[1.0, 3.0]);
        assert!((r.d - 0.5).abs() < 1e-12, "d = {}", r.d);
    }

    #[test]
    #[should_panic]
    fn ks_empty_sample_panics() {
        ks_two_sample(&[], &[1.0]);
    }

    #[test]
    fn chi_square_uniform_die() {
        // A fair die rolled 600 times with mild fluctuation.
        let obs = [95u64, 102, 105, 98, 103, 97];
        let r = chi_square_gof(&obs, &[100.0; 6]);
        assert_eq!(r.df, 5);
        assert!(r.p > 0.5, "p = {}", r.p);
        // A loaded die is rejected.
        let loaded = [200u64, 80, 80, 80, 80, 80];
        assert!(chi_square_gof(&loaded, &[100.0; 6]).p < 1e-6);
    }

    #[test]
    fn chi_square_statistic_is_exact() {
        // obs (60, 40) vs exp (50, 50): χ² = 100/50 + 100/50 = 4, df 1,
        // p = Q(1/2, 2) ≈ 0.0455.
        let r = chi_square_gof(&[60, 40], &[50.0, 50.0]);
        assert!((r.stat - 4.0).abs() < 1e-12);
        assert!((r.p - 0.0455).abs() < 1e-3, "p = {}", r.p);
    }

    #[test]
    #[should_panic]
    fn chi_square_rejects_nonpositive_expected() {
        chi_square_gof(&[1, 2], &[0.0, 3.0]);
    }

    #[test]
    fn p_values_are_roughly_uniform_under_null() {
        // Repeated same-distribution KS tests should not pile up tiny
        // p-values: with 40 runs the minimum should comfortably exceed
        // 1/1000 and the median sit near 1/2.
        let mut rng = RcbRng::new(3);
        let mut ps = Vec::new();
        for _ in 0..40 {
            let xs: Vec<f64> = (0..80).map(|_| rng.f64()).collect();
            let ys: Vec<f64> = (0..80).map(|_| rng.f64()).collect();
            ps.push(ks_two_sample(&xs, &ys).p);
        }
        ps.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        assert!(ps[0] > 1e-3, "min p = {}", ps[0]);
        assert!(ps[20] > 0.1, "median p = {}", ps[20]);
    }
}
