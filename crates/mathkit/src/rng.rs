//! Deterministic, splittable randomness.
//!
//! All simulation code in this workspace draws randomness through [`RcbRng`],
//! an xoshiro256++ generator seeded through SplitMix64. Two properties matter:
//!
//! 1. **Reproducibility** — the stream produced for a given seed is fixed by
//!    this crate, not by whichever version of `rand` happens to be linked.
//!    Every experiment in EXPERIMENTS.md records its master seed.
//! 2. **Splittability** — parallel trial runners need one independent stream
//!    per trial. [`SeedSequence`] fans a master seed out into child seeds with
//!    SplitMix64, whose increments are far apart in the xoshiro state space.

use rand::{RngCore, SeedableRng};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// This is the standard seeding recommendation of the xoshiro authors; it is
/// also used directly by [`SeedSequence`] to derive child seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — a small, fast, high-quality non-cryptographic generator.
///
/// The adversaries in this workspace are *adaptive but not clairvoyant*
/// (paper §1.2: the adversary knows the protocol but not the random bits of
/// the current slot), so a non-cryptographic generator is sound here: the
/// adversary implementations are never handed the generator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcbRng {
    s: [u64; 4],
}

impl RcbRng {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway for safety.
        if s == [0, 0, 0, 0] {
            return Self { s: [1, 2, 3, 4] };
        }
        Self { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fills `out` with the generator's next `out.len()` raw outputs.
    ///
    /// **Stream-order invariant:** element `j` is exactly the value the
    /// `j`-th call to [`next_u64`](RngCore::next_u64) would have returned,
    /// so a call site may switch between the loop form and the batched form
    /// without perturbing any downstream draw — recorded checksums depend
    /// on this. Batch consumers (block samplers, the scenario executor's
    /// chunked trial claiming) use it to hoist RNG access out of their hot
    /// loops.
    pub fn fill_u64s(&mut self, out: &mut [u64]) {
        for slot in out.iter_mut() {
            *slot = self.next();
        }
    }

    /// Fills `out` with uniform `[0, 1)` doubles. Same stream-order
    /// invariant as [`fill_u64s`](Self::fill_u64s): element `j` is
    /// bit-identical to the `j`-th [`f64`](Self::f64) call.
    pub fn fill_f64s(&mut self, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.f64();
        }
    }

    /// A fresh generator whose stream is independent of `self`'s future
    /// output (derived by hashing the current state through SplitMix64).
    pub fn split(&mut self) -> RcbRng {
        let mut sm = self.next() ^ 0xA076_1D64_78BD_642F;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        RcbRng { s }
    }
}

impl RngCore for RcbRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl SeedableRng for RcbRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        RcbRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        RcbRng::new(state)
    }
}

/// Derives independent child seeds from a master seed.
///
/// Child `k` of master seed `m` is the `k`-th SplitMix64 output of
/// `m ^ GOLDEN`, so two different masters produce unrelated families and two
/// different children of the same master are unrelated.
#[derive(Debug, Clone, Copy)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed this sequence was built from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The `index`-th child seed.
    pub fn child(&self, index: u64) -> u64 {
        let mut state = self
            .master
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
        splitmix64(&mut state)
    }

    /// A generator for the `index`-th child.
    pub fn rng(&self, index: u64) -> RcbRng {
        RcbRng::new(self.child(index))
    }

    /// Batched child derivation: writes children `start .. start + out.len()`
    /// into `out`, so `out[j] == self.child(start + j)`. The scenario
    /// executor derives a claimed chunk's trial seeds in one pass with this
    /// instead of re-entering [`child`](Self::child) per trial.
    pub fn children_into(&self, start: u64, out: &mut [u64]) {
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = self.child(start.wrapping_add(j as u64));
        }
    }
}

/// Convenience: the `index`-th independent generator for `master`.
pub fn seed_stream(master: u64, index: u64) -> RcbRng {
    SeedSequence::new(master).rng(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = RcbRng::new(42);
        let mut b = RcbRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RcbRng::new(1);
        let mut b = RcbRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = RcbRng::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_is_in_range_and_covers_small_domains() {
        let mut rng = RcbRng::new(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        RcbRng::new(0).below(0);
    }

    #[test]
    fn split_produces_distinct_streams() {
        let mut parent = RcbRng::new(3);
        let mut child = parent.split();
        let equal = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn seed_sequence_children_are_distinct() {
        let seq = SeedSequence::new(99);
        let mut seeds: Vec<u64> = (0..1000).map(|i| seq.child(i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn fill_u64s_matches_elementwise_stream() {
        let mut batched = RcbRng::new(21);
        let mut looped = RcbRng::new(21);
        let mut buf = [0u64; 37];
        batched.fill_u64s(&mut buf);
        for (j, &v) in buf.iter().enumerate() {
            assert_eq!(v, looped.next_u64(), "element {j} diverged");
        }
        // The generators are in identical states afterwards.
        assert_eq!(batched.next_u64(), looped.next_u64());
    }

    #[test]
    fn fill_f64s_matches_elementwise_stream() {
        let mut batched = RcbRng::new(22);
        let mut looped = RcbRng::new(22);
        let mut buf = [0.0f64; 19];
        batched.fill_f64s(&mut buf);
        for (j, &v) in buf.iter().enumerate() {
            assert_eq!(v.to_bits(), looped.f64().to_bits(), "element {j} diverged");
        }
        assert_eq!(batched, looped);
    }

    #[test]
    fn children_into_matches_child() {
        let seq = SeedSequence::new(2014);
        let mut buf = [0u64; 16];
        for start in [0u64, 1, 7, u64::MAX - 3] {
            seq.children_into(start, &mut buf);
            for (j, &s) in buf.iter().enumerate() {
                assert_eq!(
                    s,
                    seq.child(start.wrapping_add(j as u64)),
                    "start {start}, j {j}"
                );
            }
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = RcbRng::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rngcore_next_u32_varies() {
        let mut rng = RcbRng::new(17);
        let a = rng.next_u32();
        let b = rng.next_u32();
        assert_ne!(a, b);
    }
}
