//! Property tests for the math kit: sampler laws, statistics algebra, and
//! fit invariances under arbitrary inputs.

use proptest::prelude::*;
use rcb_mathkit::fit::{linear_fit, power_law_fit};
use rcb_mathkit::rng::{RcbRng, SeedSequence};
use rcb_mathkit::sample::{binomial, geometric_failures, sample_distinct, sample_slots};
use rcb_mathkit::stats::RunningStats;

proptest! {
    /// Binomial by geometric skips == counting the sampled slot positions.
    #[test]
    fn binomial_consistent_with_slots(seed in any::<u64>(), n in 0u64..5000, p in 0.0f64..1.0) {
        // Same RNG stream, two readings: the count distribution must match
        // in expectation; here we check the structural law count == len on
        // the *same* draw by re-deriving the count from positions.
        let mut rng = RcbRng::new(seed);
        let slots = sample_slots(&mut rng, n, p);
        prop_assert!(slots.len() as u64 <= n);
        // Positions strictly increasing ⇒ count is exactly the cardinality.
        prop_assert!(slots.windows(2).all(|w| w[0] < w[1]));
    }

    /// Geometric sampler stays within [0, ∞) and respects p = 1.
    #[test]
    fn geometric_bounds(seed in any::<u64>(), p in 0.0001f64..1.0) {
        let mut rng = RcbRng::new(seed);
        let g = geometric_failures(&mut rng, p);
        // With p ≥ 0.0001 the skip must be far below the saturation value.
        prop_assert!(g < u64::MAX / 2);
    }

    /// Mean/variance algebra: merging in any split point gives the same
    /// result as a single pass.
    #[test]
    fn running_stats_merge_associative(
        data in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(data.len());
        let mut whole = RunningStats::new();
        for &x in &data { whole.push(x); }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..split] { left.push(x); }
        for &x in &data[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// Power-law fit is exactly scale-equivariant: scaling y by c scales the
    /// amplitude, never the exponent.
    #[test]
    fn power_law_scale_invariance(
        alpha in -2.0f64..2.0,
        c in 0.1f64..100.0,
        amp in 0.1f64..10.0,
    ) {
        let xs: Vec<f64> = (1..12).map(|k| (2.0f64).powi(k)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| amp * x.powf(alpha)).collect();
        let ys_scaled: Vec<f64> = ys.iter().map(|y| c * y).collect();
        let f1 = power_law_fit(&xs, &ys).expect("fit");
        let f2 = power_law_fit(&xs, &ys_scaled).expect("fit");
        prop_assert!((f1.exponent - f2.exponent).abs() < 1e-9);
        prop_assert!((f2.amplitude / f1.amplitude - c).abs() < 1e-6 * c);
    }

    /// Linear fit residual orthogonality: slope of residuals vs x is ~0.
    #[test]
    fn linear_fit_residuals_are_unbiased(
        pts in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..40),
    ) {
        let xs: Vec<f64> = pts.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f64> = pts.iter().map(|(_, y)| *y).collect();
        if let Some(f) = linear_fit(&xs, &ys) {
            let residuals: Vec<f64> =
                xs.iter().zip(&ys).map(|(x, y)| y - (f.slope * x + f.intercept)).collect();
            if let Some(rf) = linear_fit(&xs, &residuals) {
                let scale = ys.iter().fold(1.0f64, |a, &b| a.max(b.abs()));
                prop_assert!(rf.slope.abs() < 1e-6 * scale.max(1.0),
                    "residual slope {} should vanish", rf.slope);
            }
        }
    }

    /// Distinct sampling really is distinct and in range for any k ≤ n.
    #[test]
    fn distinct_sampling_laws(seed in any::<u64>(), n in 1u64..2000, frac in 0.0f64..=1.0) {
        let k = ((n as f64) * frac) as u64;
        let mut rng = RcbRng::new(seed);
        let mut v = sample_distinct(&mut rng, n, k);
        v.sort_unstable();
        let len_before = v.len();
        v.dedup();
        prop_assert_eq!(v.len(), len_before);
        prop_assert_eq!(v.len() as u64, k);
        prop_assert!(v.iter().all(|&x| x < n));
    }

    /// Seed streams never collide across nearby masters and indices.
    #[test]
    fn seed_streams_distinct(master in any::<u64>(), i in 0u64..1000, j in 0u64..1000) {
        prop_assume!(i != j);
        let seq = SeedSequence::new(master);
        prop_assert_ne!(seq.child(i), seq.child(j));
    }

    /// Binomial stays within support for extreme p.
    #[test]
    fn binomial_extremes(seed in any::<u64>(), n in 0u64..10_000) {
        let mut rng = RcbRng::new(seed);
        prop_assert_eq!(binomial(&mut rng, n, 0.0), 0);
        prop_assert_eq!(binomial(&mut rng, n, 1.0), n);
    }
}
