//! Execution traces for instrumented runs (experiment E10 and debugging).
//!
//! Tracing is off by default; the exact engine records a [`SlotRecord`] per
//! slot only when handed an enabled [`Trace`], so the hot path pays one
//! branch when disabled.

use crate::slot::{ChannelState, Reception, SlotResolution};
use crate::{NodeId, Slot};
use serde::{Deserialize, Serialize};

/// Compact, serializable description of what happened in one slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    pub slot: Slot,
    /// Number of transmissions (nodes + adversary injection).
    pub senders: usize,
    /// Number of listeners.
    pub listeners: usize,
    /// Bitmask of jammed groups.
    pub jam_mask: u64,
    /// Whether group 0 was clear / delivered a message (the common summary
    /// the experiments need; full per-group state is not retained to keep
    /// traces small).
    pub group0: Group0State,
    /// What each listening node heard, in node order. Bodies are stripped —
    /// a trace replayer (conformance harness) only needs the kind to feed
    /// the protocol state machines.
    pub receptions: Vec<(NodeId, ReceptionKind)>,
}

/// A [`Reception`] with the payload body stripped, cheap to store per slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReceptionKind {
    /// CCA idle: nothing on the channel.
    Clear,
    /// Decoded the broadcast message `m`.
    Message,
    /// Decoded a (possibly spoofed) nack.
    Nack,
    /// Decoded an ack.
    Ack,
    /// Undecodable energy: jamming, collision, or a noise payload.
    Noise,
}

impl ReceptionKind {
    pub fn from_reception(reception: &Reception) -> Self {
        match reception {
            Reception::Clear => ReceptionKind::Clear,
            Reception::Noise => ReceptionKind::Noise,
            Reception::Received(payload) => match payload.kind() {
                crate::message::PayloadKind::Message => ReceptionKind::Message,
                crate::message::PayloadKind::Nack => ReceptionKind::Nack,
                crate::message::PayloadKind::Ack => ReceptionKind::Ack,
                // A lone noise payload normally resolves to `Reception::Noise`,
                // but classify defensively.
                crate::message::PayloadKind::Noise => ReceptionKind::Noise,
            },
        }
    }

    /// Did this reception deliver the broadcast message?
    pub fn is_message(&self) -> bool {
        matches!(self, ReceptionKind::Message)
    }
}

/// Reduced channel state for group 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Group0State {
    Clear,
    Message,
    OtherSingle,
    Collision,
    Jammed,
    /// The partition had no groups (empty system).
    None,
}

impl Group0State {
    fn from_states(states: &[ChannelState]) -> Self {
        match states.first() {
            None => Group0State::None,
            Some(ChannelState::Clear) => Group0State::Clear,
            Some(ChannelState::Jammed) => Group0State::Jammed,
            Some(ChannelState::Collision) => Group0State::Collision,
            Some(ChannelState::Single(_, payload)) => {
                if payload.kind() == crate::message::PayloadKind::Message {
                    Group0State::Message
                } else {
                    Group0State::OtherSingle
                }
            }
        }
    }
}

/// A bounded trace of slot records.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<SlotRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` records; further records are
    /// counted but dropped (experiments care about the beginning of runs).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub fn record(&mut self, slot: Slot, jam_mask: u64, resolution: &SlotResolution) {
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(SlotRecord {
            slot,
            senders: resolution.senders,
            listeners: resolution.receptions.len(),
            jam_mask,
            group0: Group0State::from_states(&resolution.states),
            receptions: resolution
                .receptions
                .iter()
                .map(|(node, r)| (*node, ReceptionKind::from_reception(r)))
                .collect(),
        });
    }

    /// Rebuilds a trace from raw records — e.g. deserialized from disk, or
    /// synthesized by replay tooling.
    pub fn from_records(records: Vec<SlotRecord>) -> Self {
        let capacity = records.len();
        Self {
            records,
            capacity,
            dropped: 0,
        }
    }

    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Records that arrived after capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Empties the trace in place, retaining the record buffer's capacity
    /// and the configured cap — the session layer's re-arm path.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::EnergyLedger;
    use crate::message::Payload;
    use crate::partition::Partition;
    use crate::slot::{resolve_slot, Action, JamDecision};

    fn resolution(actions: &[Action], jam: &JamDecision) -> SlotResolution {
        let p = Partition::uniform(actions.len());
        let mut l = EnergyLedger::new(actions.len());
        resolve_slot(actions, jam, &p, &mut l)
    }

    #[test]
    fn records_summarize_slots() {
        let mut t = Trace::with_capacity(10);
        let r = resolution(
            &[Action::Send(Payload::message()), Action::Listen],
            &JamDecision::none(),
        );
        t.record(0, 0, &r);
        assert_eq!(t.len(), 1);
        let rec = &t.records()[0];
        assert_eq!(rec.senders, 1);
        assert_eq!(rec.listeners, 1);
        assert_eq!(rec.group0, Group0State::Message);
        assert_eq!(rec.receptions, vec![(1, ReceptionKind::Message)]);
    }

    #[test]
    fn receptions_record_what_each_listener_heard() {
        let mut t = Trace::with_capacity(10);
        // Two listeners, one nack sender: both listeners decode the nack.
        let r = resolution(
            &[
                Action::Listen,
                Action::Send(Payload::nack()),
                Action::Listen,
            ],
            &JamDecision::none(),
        );
        t.record(0, 0, &r);
        let rec = &t.records()[0];
        assert_eq!(
            rec.receptions,
            vec![(0, ReceptionKind::Nack), (2, ReceptionKind::Nack)]
        );

        // Jammed slot: the listener hears noise.
        let p = Partition::uniform(1);
        let mut l = EnergyLedger::new(1);
        let jammed = resolve_slot(&[Action::Listen], &JamDecision::jam_all(&p), &p, &mut l);
        t.record(1, 1, &jammed);
        assert_eq!(t.records()[1].receptions, vec![(0, ReceptionKind::Noise)]);
        assert!(!t.records()[1].receptions[0].1.is_message());
    }

    #[test]
    fn capacity_bound_drops_extras() {
        let mut t = Trace::with_capacity(2);
        let r = resolution(&[Action::Sleep], &JamDecision::none());
        for s in 0..5 {
            t.record(s, 0, &r);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn group0_state_classification() {
        let clear = resolution(&[Action::Sleep], &JamDecision::none());
        assert_eq!(Group0State::from_states(&clear.states), Group0State::Clear);

        let noise = resolution(&[Action::Send(Payload::Noise)], &JamDecision::none());
        assert_eq!(
            Group0State::from_states(&noise.states),
            Group0State::OtherSingle
        );

        let collision = resolution(
            &[
                Action::Send(Payload::message()),
                Action::Send(Payload::message()),
            ],
            &JamDecision::none(),
        );
        assert_eq!(
            Group0State::from_states(&collision.states),
            Group0State::Collision
        );

        let p = Partition::uniform(1);
        let mut l = EnergyLedger::new(1);
        let jammed = resolve_slot(&[Action::Sleep], &JamDecision::jam_all(&p), &p, &mut l);
        assert_eq!(
            Group0State::from_states(&jammed.states),
            Group0State::Jammed
        );
    }

    #[test]
    fn empty_partition_state_is_none() {
        assert_eq!(Group0State::from_states(&[]), Group0State::None);
    }
}
