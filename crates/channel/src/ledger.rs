//! Energy accounting — the currency of resource competitiveness.
//!
//! §1.1: every node (good or bad) pays one unit per slot in which it sends
//! or listens; the adversary pays one unit per (group, slot) jammed and one
//! per spoofed transmission. `T` — the adversary's total spend — is what all
//! cost functions are measured against.

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Per-execution energy ledger. Good-node costs are split into send/listen
/// components for reporting; the adversary's spend is split into jamming and
/// spoofing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyLedger {
    sends: Vec<u64>,
    listens: Vec<u64>,
    jam_cost: u64,
    spoof_cost: u64,
}

impl EnergyLedger {
    pub fn new(nodes: usize) -> Self {
        Self {
            sends: vec![0; nodes],
            listens: vec![0; nodes],
            jam_cost: 0,
            spoof_cost: 0,
        }
    }

    /// Number of nodes tracked.
    pub fn nodes(&self) -> usize {
        self.sends.len()
    }

    /// Zeroes every counter in place, keeping the per-node vectors'
    /// capacity — the session layer's re-arm path. After `reset` the ledger
    /// is indistinguishable from `EnergyLedger::new(self.nodes())`.
    pub fn reset(&mut self) {
        self.sends.iter_mut().for_each(|c| *c = 0);
        self.listens.iter_mut().for_each(|c| *c = 0);
        self.jam_cost = 0;
        self.spoof_cost = 0;
    }

    pub fn charge_send(&mut self, node: NodeId) {
        self.sends[node] += 1;
    }

    pub fn charge_listen(&mut self, node: NodeId) {
        self.listens[node] += 1;
    }

    /// Charges the adversary for jamming `groups` groups in one slot.
    pub fn charge_jam(&mut self, groups: u64) {
        self.jam_cost += groups;
    }

    /// Charges the adversary for one spoofed transmission.
    pub fn charge_spoof(&mut self) {
        self.spoof_cost += 1;
    }

    /// Total cost of `node` (sends + listens): the `C(i)` of §1.1.
    pub fn node_cost(&self, node: NodeId) -> u64 {
        self.sends[node] + self.listens[node]
    }

    pub fn node_sends(&self, node: NodeId) -> u64 {
        self.sends[node]
    }

    pub fn node_listens(&self, node: NodeId) -> u64 {
        self.listens[node]
    }

    /// The maximum cost over all nodes — the left side of the
    /// resource-competitiveness guarantee `max C(i) = O(ρ + τ)`.
    pub fn max_node_cost(&self) -> u64 {
        (0..self.nodes())
            .map(|i| self.node_cost(i))
            .max()
            .unwrap_or(0)
    }

    /// Mean per-node cost.
    pub fn mean_node_cost(&self) -> f64 {
        if self.nodes() == 0 {
            return 0.0;
        }
        let total: u64 = (0..self.nodes()).map(|i| self.node_cost(i)).sum();
        total as f64 / self.nodes() as f64
    }

    /// The adversary's total spend `T` (jamming plus spoofing).
    pub fn adversary_cost(&self) -> u64 {
        self.jam_cost + self.spoof_cost
    }

    pub fn jam_cost(&self) -> u64 {
        self.jam_cost
    }

    pub fn spoof_cost(&self) -> u64 {
        self.spoof_cost
    }

    /// Merges another ledger's counters into this one (same node count).
    /// Used when a protocol execution is simulated in stages.
    pub fn merge(&mut self, other: &EnergyLedger) {
        assert_eq!(self.nodes(), other.nodes(), "ledger size mismatch");
        for i in 0..self.sends.len() {
            self.sends[i] += other.sends[i];
            self.listens[i] += other.listens[i];
        }
        self.jam_cost += other.jam_cost;
        self.spoof_cost += other.spoof_cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = EnergyLedger::new(3);
        l.charge_send(0);
        l.charge_send(0);
        l.charge_listen(0);
        l.charge_listen(2);
        assert_eq!(l.node_cost(0), 3);
        assert_eq!(l.node_cost(1), 0);
        assert_eq!(l.node_cost(2), 1);
        assert_eq!(l.node_sends(0), 2);
        assert_eq!(l.node_listens(0), 1);
    }

    #[test]
    fn adversary_cost_sums_jam_and_spoof() {
        let mut l = EnergyLedger::new(1);
        l.charge_jam(2);
        l.charge_jam(1);
        l.charge_spoof();
        assert_eq!(l.jam_cost(), 3);
        assert_eq!(l.spoof_cost(), 1);
        assert_eq!(l.adversary_cost(), 4);
    }

    #[test]
    fn max_and_mean_costs() {
        let mut l = EnergyLedger::new(4);
        for _ in 0..5 {
            l.charge_send(1);
        }
        l.charge_listen(3);
        assert_eq!(l.max_node_cost(), 5);
        assert!((l.mean_node_cost() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = EnergyLedger::new(0);
        assert_eq!(l.max_node_cost(), 0);
        assert_eq!(l.mean_node_cost(), 0.0);
        assert_eq!(l.adversary_cost(), 0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = EnergyLedger::new(2);
        a.charge_send(0);
        a.charge_jam(1);
        let mut b = EnergyLedger::new(2);
        b.charge_listen(0);
        b.charge_send(1);
        b.charge_spoof();
        a.merge(&b);
        assert_eq!(a.node_cost(0), 2);
        assert_eq!(a.node_cost(1), 1);
        assert_eq!(a.adversary_cost(), 2);
    }

    #[test]
    #[should_panic]
    fn merge_size_mismatch_panics() {
        let mut a = EnergyLedger::new(2);
        let b = EnergyLedger::new(3);
        a.merge(&b);
    }
}
