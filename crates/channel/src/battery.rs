//! Finite energy supplies — the paper's motivating economics (§1.1).
//!
//! Resource competitiveness matters because both sides run on batteries:
//! "if the costs to the [bad nodes] are disproportionately high, then
//! sustained attacks are not feasible ... the bad nodes are effectively
//! *bankrupted*." [`Battery`] models one supply; applying an execution's
//! [`EnergyLedger`](crate::ledger::EnergyLedger) against batteries answers
//! the question the abstract poses: who runs out first?

use serde::{Deserialize, Serialize};

/// A finite energy supply.
///
/// ```
/// use rcb_channel::battery::Battery;
///
/// let mut b = Battery::new(10);
/// assert!(b.spend(7));
/// assert!(!b.spend(7)); // cannot cover the draw: dead
/// assert!(b.is_depleted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Battery {
    capacity: u64,
    used: u64,
}

impl Battery {
    pub fn new(capacity: u64) -> Self {
        Self { capacity, used: 0 }
    }

    /// Draws `amount` units. Returns `false` (drawing nothing further) if
    /// the battery cannot supply the full amount — the device is dead.
    pub fn spend(&mut self, amount: u64) -> bool {
        if self.used + amount > self.capacity {
            self.used = self.capacity;
            false
        } else {
            self.used += amount;
            true
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn remaining(&self) -> u64 {
        self.capacity - self.used
    }

    pub fn is_depleted(&self) -> bool {
        self.used >= self.capacity
    }

    /// Fraction of capacity consumed, in `[0, 1]`.
    pub fn fraction_used(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }
}

/// Outcome of settling an execution's costs against batteries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankruptcyReport {
    /// Nodes whose cost exceeded their battery.
    pub dead_nodes: Vec<crate::NodeId>,
    /// The adversary's battery state after the execution.
    pub adversary: Battery,
    /// Worst node battery utilization, in `[0, 1]` (can exceed 1 logically;
    /// clamped by the battery model).
    pub worst_node_fraction: f64,
}

impl BankruptcyReport {
    /// Settles a finished execution: each node draws its ledger cost from a
    /// battery of `node_capacity`; the adversary draws its spend from
    /// `adversary_capacity`.
    pub fn settle(
        ledger: &crate::ledger::EnergyLedger,
        node_capacity: u64,
        adversary_capacity: u64,
    ) -> Self {
        let mut dead = Vec::new();
        let mut worst: f64 = 0.0;
        for node in 0..ledger.nodes() {
            let mut battery = Battery::new(node_capacity);
            if !battery.spend(ledger.node_cost(node)) {
                dead.push(node);
            }
            worst = worst.max(if node_capacity == 0 {
                1.0
            } else {
                ledger.node_cost(node) as f64 / node_capacity as f64
            });
        }
        let mut adversary = Battery::new(adversary_capacity);
        adversary.spend(ledger.adversary_cost());
        Self {
            dead_nodes: dead,
            adversary,
            worst_node_fraction: worst,
        }
    }

    /// The headline verdict: the attack bankrupted the adversary without
    /// killing a single good node.
    pub fn jammer_bankrupted(&self) -> bool {
        self.dead_nodes.is_empty() && self.adversary.is_depleted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::EnergyLedger;

    #[test]
    fn battery_accounting() {
        let mut b = Battery::new(10);
        assert!(b.spend(4));
        assert_eq!(b.remaining(), 6);
        assert!(b.spend(6));
        assert!(b.is_depleted());
        assert!(!b.spend(1), "dead batteries supply nothing");
        assert_eq!(b.used(), 10);
        assert!((b.fraction_used() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overdraw_kills_but_clamps() {
        let mut b = Battery::new(5);
        assert!(!b.spend(7));
        assert!(b.is_depleted());
        assert_eq!(b.used(), 5, "clamped at capacity");
    }

    #[test]
    fn zero_capacity_is_born_dead() {
        let b = Battery::new(0);
        assert!(b.is_depleted());
        assert_eq!(b.fraction_used(), 1.0);
    }

    #[test]
    fn settle_identifies_casualties() {
        let mut ledger = EnergyLedger::new(3);
        for _ in 0..5 {
            ledger.charge_send(0); // node 0: cost 5
        }
        ledger.charge_listen(1); // node 1: cost 1
        ledger.charge_jam(7); // adversary: 7

        let report = BankruptcyReport::settle(&ledger, 3, 10);
        assert_eq!(report.dead_nodes, vec![0]);
        assert!(!report.adversary.is_depleted());
        assert!(!report.jammer_bankrupted());
        assert!((report.worst_node_fraction - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn settle_detects_bankrupted_jammer() {
        let mut ledger = EnergyLedger::new(2);
        ledger.charge_send(0);
        ledger.charge_listen(1);
        ledger.charge_jam(100);
        let report = BankruptcyReport::settle(&ledger, 50, 100);
        assert!(report.dead_nodes.is_empty());
        assert!(report.adversary.is_depleted());
        assert!(report.jammer_bankrupted());
    }
}
