//! # rcb-channel
//!
//! The slotted, single-hop, single-channel wireless substrate of the paper's
//! network model (§1.2):
//!
//! * time is divided into discrete **slots**;
//! * in a slot each node **sends**, **listens**, or **sleeps**; sending and
//!   listening cost one unit of energy, sleeping is free;
//! * if two or more messages are sent in a slot, a **collision** occurs and
//!   listeners hear only noise (clear-channel assessment distinguishes
//!   *noise* from a *clear* slot, but cannot tell jamming from collisions);
//! * an **ℓ-uniform adversary** partitions the nodes into at most ℓ groups,
//!   each of which experiences its own jamming schedule; jamming one group
//!   for one slot costs the adversary one unit;
//! * the broadcast message `m` is **authenticated**: the adversary may spoof
//!   other payloads (nack/ack, in the Theorem 5 model) but cannot forge `m`.
//!
//! This crate is purely mechanism: given everyone's actions for a slot, it
//! resolves what each listener hears and charges the energy ledger. Policy
//! (protocols, adversary strategies) lives in `rcb-core`, `rcb-baselines`,
//! and `rcb-adversary`.

pub mod battery;
pub mod fault;
pub mod ledger;
pub mod message;
pub mod partition;
pub mod slot;
pub mod trace;

pub use battery::{BankruptcyReport, Battery};
pub use fault::ReceiverCondition;
pub use ledger::EnergyLedger;
pub use message::{Payload, PayloadKind};
pub use partition::Partition;
pub use slot::{
    resolve_slot, Action, ChannelState, GroupOutOfRange, JamDecision, Reception, SlotResolution,
};
pub use trace::{Group0State, ReceptionKind, SlotRecord, Trace};

/// Index of a node in the system. The broadcast sender is conventionally
/// node 0 in the 1-to-n protocol and "Alice" in the 1-to-1 protocol.
pub type NodeId = usize;

/// A discrete time slot index.
pub type Slot = u64;

/// Index of a jamming-partition group (ℓ-uniform adversary, §1.2).
pub type GroupId = usize;
