//! ℓ-uniform jamming partitions (§1.2).
//!
//! "An ℓ-uniform adversary may partition n nodes into at most 1 ≤ ℓ ≤ n
//! sets, each of which experiences a different jamming schedule." The
//! partition is fixed for an execution; per-slot the adversary chooses which
//! groups to jam. The partition affects *only* jamming — transmissions are
//! heard network-wide (single-hop).

use crate::{GroupId, NodeId};
use serde::{Deserialize, Serialize};

/// Assignment of nodes to jamming groups. Supports up to 64 groups, which
/// covers every adversary in the paper (1-uniform for broadcast, 2-uniform
/// for Alice/Bob).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    group_of: Vec<GroupId>,
    groups: usize,
}

impl Partition {
    /// All `n` nodes in one group: the 1-uniform adversary of Theorems 3/4.
    pub fn uniform(n: usize) -> Self {
        Self {
            group_of: vec![0; n],
            groups: 1,
        }
    }

    /// Two nodes, two groups: the 2-uniform adversary of Theorems 1/5, which
    /// can jam Bob (node 1) without jamming Alice (node 0) or vice versa.
    pub fn pair() -> Self {
        Self {
            group_of: vec![0, 1],
            groups: 2,
        }
    }

    /// Arbitrary assignment. Group ids must be dense in `0..groups`.
    ///
    /// # Panics
    /// If more than 64 groups are used or an id is out of range.
    pub fn custom(group_of: Vec<GroupId>) -> Self {
        let groups = group_of.iter().copied().max().map_or(0, |g| g + 1);
        assert!(groups <= 64, "at most 64 jamming groups are supported");
        Self { group_of, groups }
    }

    /// Number of nodes covered by the partition.
    pub fn nodes(&self) -> usize {
        self.group_of.len()
    }

    /// Number of groups (the ℓ in ℓ-uniform).
    pub fn groups(&self) -> usize {
        self.groups.max(1)
    }

    /// The group of `node`.
    ///
    /// # Panics
    /// If `node` is out of range.
    pub fn group_of(&self, node: NodeId) -> GroupId {
        self.group_of[node]
    }

    /// Iterator over the members of `group`.
    pub fn members(&self, group: GroupId) -> impl Iterator<Item = NodeId> + '_ {
        self.group_of
            .iter()
            .enumerate()
            .filter(move |(_, &g)| g == group)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_puts_everyone_in_group_zero() {
        let p = Partition::uniform(5);
        assert_eq!(p.nodes(), 5);
        assert_eq!(p.groups(), 1);
        for i in 0..5 {
            assert_eq!(p.group_of(i), 0);
        }
        assert_eq!(p.members(0).count(), 5);
    }

    #[test]
    fn pair_separates_alice_and_bob() {
        let p = Partition::pair();
        assert_eq!(p.nodes(), 2);
        assert_eq!(p.groups(), 2);
        assert_ne!(p.group_of(0), p.group_of(1));
    }

    #[test]
    fn custom_counts_groups() {
        let p = Partition::custom(vec![0, 1, 1, 2, 0]);
        assert_eq!(p.groups(), 3);
        assert_eq!(p.members(1).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(p.members(2).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn empty_partition_has_one_group_by_convention() {
        let p = Partition::custom(vec![]);
        assert_eq!(p.nodes(), 0);
        assert_eq!(p.groups(), 1);
    }

    #[test]
    #[should_panic]
    fn too_many_groups_panics() {
        Partition::custom(vec![65]);
    }

    #[test]
    #[should_panic]
    fn group_of_out_of_range_panics() {
        Partition::uniform(2).group_of(2);
    }
}
