//! Payloads transmitted on the channel.
//!
//! The paper's model needs four distinguishable transmissions:
//!
//! * the broadcast **message** `m` itself (authenticated — §1.2: "the
//!   adversary cannot modify m without this being detected and ignored");
//! * a **nack** from Bob in the 1-to-1 protocol (authenticated under
//!   Theorem 1's model, spoofable under Theorem 5's);
//! * an **ack** (used by baseline protocols);
//! * **noise** — what Figure 2's uninformed nodes deliberately transmit so
//!   that everyone can gauge the population size from clear-slot frequency.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// The kind of a payload, without its body. This is what protocol logic
/// branches on; the body only matters to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadKind {
    /// The authenticated broadcast message `m`.
    Message,
    /// Negative acknowledgement ("I have not received m yet").
    Nack,
    /// Positive acknowledgement.
    Ack,
    /// Deliberate, meaningless energy on the channel.
    Noise,
}

/// A transmission: a kind plus, for `Message`, the application body.
///
/// Bodies ride in [`Bytes`] so cloning a payload (which the channel does for
/// every listener) is a reference-count bump, not a copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// The authenticated broadcast message `m` with its content.
    Message(Bytes),
    /// A nack. `spoofed` records whether the adversary injected it; the
    /// *receiver never sees this flag* (that is the point of the Theorem 5
    /// model) — it exists so experiments can audit outcomes afterwards.
    Nack { spoofed: bool },
    /// An ack, with the same spoofing audit flag as `Nack`.
    Ack { spoofed: bool },
    /// Deliberate noise.
    Noise,
}

impl Payload {
    /// A genuine (non-spoofed) nack.
    pub fn nack() -> Self {
        Payload::Nack { spoofed: false }
    }

    /// A genuine (non-spoofed) ack.
    pub fn ack() -> Self {
        Payload::Ack { spoofed: false }
    }

    /// The broadcast message with an empty body (protocol tests rarely care
    /// about content).
    pub fn message() -> Self {
        Payload::Message(Bytes::new())
    }

    /// The broadcast message with the given content.
    pub fn message_with(body: impl Into<Bytes>) -> Self {
        Payload::Message(body.into())
    }

    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::Message(_) => PayloadKind::Message,
            Payload::Nack { .. } => PayloadKind::Nack,
            Payload::Ack { .. } => PayloadKind::Ack,
            Payload::Noise => PayloadKind::Noise,
        }
    }

    /// Whether this payload was injected by the adversary.
    pub fn is_spoofed(&self) -> bool {
        matches!(
            self,
            Payload::Nack { spoofed: true } | Payload::Ack { spoofed: true }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_constructors() {
        assert_eq!(Payload::message().kind(), PayloadKind::Message);
        assert_eq!(Payload::nack().kind(), PayloadKind::Nack);
        assert_eq!(Payload::ack().kind(), PayloadKind::Ack);
        assert_eq!(Payload::Noise.kind(), PayloadKind::Noise);
    }

    #[test]
    fn spoof_flag_is_audit_only() {
        let real = Payload::nack();
        let fake = Payload::Nack { spoofed: true };
        // Same kind: a receiver branching on kind cannot tell them apart.
        assert_eq!(real.kind(), fake.kind());
        assert!(!real.is_spoofed());
        assert!(fake.is_spoofed());
    }

    #[test]
    fn message_body_is_preserved() {
        let p = Payload::message_with(&b"hello motes"[..]);
        match p {
            Payload::Message(b) => assert_eq!(&b[..], b"hello motes"),
            _ => panic!("expected message"),
        }
    }

    #[test]
    fn message_is_never_spoofed() {
        // m is authenticated; the constructor set simply provides no way to
        // build a spoofed message, mirroring the model.
        assert!(!Payload::message().is_spoofed());
        assert!(!Payload::Noise.is_spoofed());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let p = Payload::message_with(vec![7u8; 1024]);
        let q = p.clone();
        assert_eq!(p, q);
    }
}
