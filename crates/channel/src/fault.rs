//! Receiver-side reception degradation: the channel-facing half of the
//! fault-injection layer.
//!
//! Non-adversarial failure processes (benign packet loss, symbol-clock
//! skew) act at the *receiver*: the channel delivered energy or a payload,
//! but this particular radio failed to decode it. This module owns the
//! mechanism — what a degraded radio hears, given what was physically on
//! the air — while the policy deciding *when* a receiver is degraded
//! (fault windows, per-trial seeding, per-node plans) lives in
//! `rcb_sim::faults`.
//!
//! Two invariants the simulation engines rely on:
//!
//! * degradation never **creates** receptions — [`ReceiverCondition::apply`]
//!   returns either its input or [`Reception::Noise`], so a faulty radio
//!   can lose information but never fabricate it;
//! * a nominal condition draws **no** randomness, so a run with faults
//!   disabled is bit-identical to one executed without the fault layer.

use crate::slot::Reception;
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::bernoulli;
use serde::{Deserialize, Serialize};

/// The condition of one receiver in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReceiverCondition {
    /// The receiver's symbol clock is misaligned in this slot: nothing can
    /// be decoded and even a clear channel reads as energy (the correlator
    /// integrates across the slot boundary).
    pub skewed: bool,
    /// Probability that a successfully delivered payload fails to decode
    /// (benign loss: fading, interference outside the adversary's budget).
    pub loss_p: f64,
}

impl ReceiverCondition {
    /// A healthy radio: perfectly synchronized, lossless.
    pub fn nominal() -> Self {
        Self {
            skewed: false,
            loss_p: 0.0,
        }
    }

    pub fn is_nominal(&self) -> bool {
        !self.skewed && self.loss_p == 0.0
    }

    /// What this radio decodes from the channel truth `heard`.
    ///
    /// A skewed slot is unconditionally noise. Otherwise a delivered
    /// payload is lost with probability `loss_p` (heard as noise — the
    /// energy was real, the decode failed); `Clear` and `Noise` pass
    /// through untouched. The loss coin is drawn **only** for
    /// [`Reception::Received`] inputs with `loss_p > 0`, so nominal
    /// conditions leave `rng` untouched.
    pub fn apply(&self, heard: Reception, rng: &mut RcbRng) -> Reception {
        if self.skewed {
            return Reception::Noise;
        }
        match heard {
            Reception::Received(p) => {
                if self.loss_p > 0.0 && bernoulli(rng, self.loss_p) {
                    Reception::Noise
                } else {
                    Reception::Received(p)
                }
            }
            other => other,
        }
    }
}

impl Default for ReceiverCondition {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;

    #[test]
    fn nominal_condition_is_identity_and_draws_nothing() {
        let cond = ReceiverCondition::nominal();
        let mut rng = RcbRng::new(7);
        let snapshot = rng.clone();
        for r in [
            Reception::Clear,
            Reception::Noise,
            Reception::Received(Payload::message()),
        ] {
            assert_eq!(cond.apply(r.clone(), &mut rng), r);
        }
        assert_eq!(rng, snapshot, "no coins consumed");
    }

    #[test]
    fn skew_turns_everything_into_noise() {
        let cond = ReceiverCondition {
            skewed: true,
            loss_p: 0.0,
        };
        let mut rng = RcbRng::new(8);
        let snapshot = rng.clone();
        for r in [
            Reception::Clear,
            Reception::Noise,
            Reception::Received(Payload::message()),
        ] {
            assert_eq!(cond.apply(r, &mut rng), Reception::Noise);
        }
        assert_eq!(rng, snapshot, "skew consumes no loss coin");
    }

    #[test]
    fn certain_loss_drops_payloads_but_not_cca() {
        let cond = ReceiverCondition {
            skewed: false,
            loss_p: 1.0,
        };
        let mut rng = RcbRng::new(9);
        assert_eq!(
            cond.apply(Reception::Received(Payload::message()), &mut rng),
            Reception::Noise,
            "the energy was real; only the decode failed"
        );
        assert_eq!(cond.apply(Reception::Clear, &mut rng), Reception::Clear);
        assert_eq!(cond.apply(Reception::Noise, &mut rng), Reception::Noise);
    }

    #[test]
    fn loss_never_creates_receptions() {
        let cond = ReceiverCondition {
            skewed: false,
            loss_p: 0.5,
        };
        let mut rng = RcbRng::new(10);
        for _ in 0..500 {
            let out = cond.apply(Reception::Received(Payload::message()), &mut rng);
            assert!(
                matches!(out, Reception::Noise) || out.is_message(),
                "output is the input or noise, never something new"
            );
            assert_eq!(cond.apply(Reception::Clear, &mut rng), Reception::Clear);
        }
    }
}
