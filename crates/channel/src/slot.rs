//! Per-slot channel resolution: who hears what.
//!
//! Semantics (paper §1.2):
//!
//! * a slot with **no** transmissions and no jamming is *clear*;
//! * a slot with **exactly one** transmission delivers that payload to every
//!   listener in an unjammed group (a lone *noise* payload is heard as
//!   noise — CCA cannot decode energy);
//! * a slot with **two or more** transmissions is a collision: noise;
//! * a **jammed** group hears noise no matter what — and cannot tell that
//!   noise apart from a collision.
//!
//! The adversary may also *inject* a payload (the Theorem 5 spoofing model);
//! an injected payload behaves exactly like a node's transmission.

use crate::ledger::EnergyLedger;
use crate::message::{Payload, PayloadKind};
use crate::partition::Partition;
use crate::{GroupId, NodeId};
use serde::{Deserialize, Serialize};

/// What a node elects to do in a slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Radio off; costs nothing.
    Sleep,
    /// Transmit `payload`; costs 1.
    Send(Payload),
    /// Receive; costs 1.
    Listen,
}

impl Action {
    pub fn is_active(&self) -> bool {
        !matches!(self, Action::Sleep)
    }
}

/// A group id that does not fit the 64-bit jam mask (ℓ-uniform adversaries
/// in this workspace support ℓ ≤ 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupOutOfRange {
    pub group: GroupId,
}

impl std::fmt::Display for GroupOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "jam group {} out of range: the jam mask supports groups 0..64",
            self.group
        )
    }
}

impl std::error::Error for GroupOutOfRange {}

/// The adversary's move for one slot: a bitmask of groups to jam plus an
/// optional spoofed transmission. Constructed by `rcb-adversary` strategies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JamDecision {
    /// Bit `g` set ⇒ group `g` is jammed this slot.
    pub jam_mask: u64,
    /// A payload the adversary itself transmits (spoofing model only).
    pub inject: Option<Payload>,
}

impl JamDecision {
    /// No jamming, no injection.
    pub fn none() -> Self {
        Self::default()
    }

    /// Jam every group of `partition`.
    pub fn jam_all(partition: &Partition) -> Self {
        let g = partition.groups();
        let mask = if g >= 64 { u64::MAX } else { (1u64 << g) - 1 };
        Self {
            jam_mask: mask,
            inject: None,
        }
    }

    /// Jam exactly one group, rejecting group ids the 64-bit mask cannot
    /// represent. Experiment configs built from user input should use this
    /// so a malformed partition fails with a message at construction time
    /// rather than a panic deep in the slot loop.
    pub fn try_jam_group(group: GroupId) -> Result<Self, GroupOutOfRange> {
        if group >= 64 {
            return Err(GroupOutOfRange { group });
        }
        Ok(Self {
            jam_mask: 1u64 << group,
            inject: None,
        })
    }

    /// Jam exactly one group.
    ///
    /// # Panics
    ///
    /// Panics if `group >= 64`; use [`JamDecision::try_jam_group`] for
    /// configurations that are not statically known to be in range.
    pub fn jam_group(group: GroupId) -> Self {
        match Self::try_jam_group(group) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Inject a spoofed payload without jamming.
    pub fn inject(payload: Payload) -> Self {
        Self {
            jam_mask: 0,
            inject: Some(payload),
        }
    }

    pub fn is_jammed(&self, group: GroupId) -> bool {
        group < 64 && (self.jam_mask >> group) & 1 == 1
    }

    /// Number of groups jammed (the adversary's jam spend for the slot).
    pub fn jam_count(&self) -> u64 {
        self.jam_mask.count_ones() as u64
    }
}

/// What a listening node perceives in a slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Reception {
    /// Neither noise nor any message: a clear slot (CCA idle).
    Clear,
    /// A successfully decoded payload (exactly one sender, no jamming).
    Received(Payload),
    /// Undecodable energy: jamming, collision, or a lone noise payload.
    Noise,
}

impl Reception {
    pub fn is_clear(&self) -> bool {
        matches!(self, Reception::Clear)
    }

    pub fn is_noise(&self) -> bool {
        matches!(self, Reception::Noise)
    }

    /// The decoded payload kind, if any.
    pub fn kind(&self) -> Option<PayloadKind> {
        match self {
            Reception::Received(p) => Some(p.kind()),
            _ => None,
        }
    }

    /// True iff the authenticated broadcast message `m` was decoded.
    pub fn is_message(&self) -> bool {
        self.kind() == Some(PayloadKind::Message)
    }
}

/// Who transmitted in a slot (for traces and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SenderId {
    Node(NodeId),
    Adversary,
}

/// The physical state of the channel in one group for one slot.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelState {
    Clear,
    /// Exactly one transmission, successfully receivable.
    Single(SenderId, Payload),
    /// Two or more simultaneous transmissions.
    Collision,
    Jammed,
}

impl ChannelState {
    /// The reception a listener in this group experiences.
    pub fn reception(&self) -> Reception {
        match self {
            ChannelState::Clear => Reception::Clear,
            ChannelState::Single(_, payload) => match payload.kind() {
                // A lone noise payload is energy without structure.
                PayloadKind::Noise => Reception::Noise,
                _ => Reception::Received(payload.clone()),
            },
            ChannelState::Collision | ChannelState::Jammed => Reception::Noise,
        }
    }
}

/// Outcome of resolving one slot: the per-group channel state plus the
/// reception each listener got.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotResolution {
    /// Channel state per group (indexed by `GroupId`).
    pub states: Vec<ChannelState>,
    /// `(listener, what it heard)` for every node that listened.
    pub receptions: Vec<(NodeId, Reception)>,
    /// Total number of transmissions in the slot (nodes + injection).
    pub senders: usize,
}

/// Resolves one slot and charges the ledger.
///
/// `actions[i]` is node `i`'s action; `actions.len()` must equal
/// `partition.nodes()`. The ledger is charged for every send, every listen,
/// every jammed group, and any injection.
///
/// Allocates a fresh [`SlotResolution`]; hot loops should prefer
/// [`resolve_slot_into`], which reuses the output's buffers.
pub fn resolve_slot(
    actions: &[Action],
    jam: &JamDecision,
    partition: &Partition,
    ledger: &mut EnergyLedger,
) -> SlotResolution {
    let mut out = SlotResolution {
        states: Vec::new(),
        receptions: Vec::new(),
        senders: 0,
    };
    resolve_slot_into(actions, jam, partition, ledger, &mut out);
    out
}

/// Buffer-reusing form of [`resolve_slot`]: clears and refills `out`
/// in place, so a slot-per-iteration engine performs no per-slot heap
/// allocation once the buffers have warmed up.
pub fn resolve_slot_into(
    actions: &[Action],
    jam: &JamDecision,
    partition: &Partition,
    ledger: &mut EnergyLedger,
    out: &mut SlotResolution,
) {
    assert_eq!(
        actions.len(),
        partition.nodes(),
        "one action per node required"
    );

    // Collect transmissions.
    let mut single: Option<(SenderId, Payload)> = None;
    let mut senders = 0usize;
    for (node, action) in actions.iter().enumerate() {
        if let Action::Send(payload) = action {
            ledger.charge_send(node);
            senders += 1;
            if senders == 1 {
                single = Some((SenderId::Node(node), payload.clone()));
            } else {
                single = None;
            }
        }
    }
    if let Some(payload) = &jam.inject {
        ledger.charge_spoof();
        senders += 1;
        if senders == 1 {
            single = Some((SenderId::Adversary, payload.clone()));
        } else {
            single = None;
        }
    }

    // Charge jamming (only bits that correspond to real groups count —
    // jamming a nonexistent group would be free noise-making; forbid it).
    let group_count = partition.groups();
    let valid_mask = if group_count >= 64 {
        u64::MAX
    } else {
        (1u64 << group_count) - 1
    };
    debug_assert_eq!(
        jam.jam_mask & !valid_mask,
        0,
        "jam mask targets nonexistent groups"
    );
    let effective_mask = jam.jam_mask & valid_mask;
    ledger.charge_jam(effective_mask.count_ones() as u64);

    // Per-group channel state.
    out.states.clear();
    for g in 0..group_count {
        let state = if (effective_mask >> g) & 1 == 1 {
            ChannelState::Jammed
        } else {
            match senders {
                0 => ChannelState::Clear,
                1 => {
                    let (sender, payload) = single.clone().expect("single sender recorded");
                    ChannelState::Single(sender, payload)
                }
                _ => ChannelState::Collision,
            }
        };
        out.states.push(state);
    }

    // Listener receptions.
    out.receptions.clear();
    for (node, action) in actions.iter().enumerate() {
        if matches!(action, Action::Listen) {
            ledger.charge_listen(node);
            let g = partition.group_of(node);
            out.receptions.push((node, out.states[g].reception()));
        }
    }
    out.senders = senders;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Partition, EnergyLedger) {
        (Partition::uniform(n), EnergyLedger::new(n))
    }

    #[test]
    fn empty_slot_is_clear() {
        let (p, mut l) = setup(3);
        let r = resolve_slot(
            &[Action::Sleep, Action::Listen, Action::Sleep],
            &JamDecision::none(),
            &p,
            &mut l,
        );
        assert_eq!(r.senders, 0);
        assert_eq!(r.receptions, vec![(1, Reception::Clear)]);
        assert_eq!(l.node_cost(1), 1);
        assert_eq!(l.node_cost(0), 0);
        assert_eq!(l.adversary_cost(), 0);
    }

    #[test]
    fn single_sender_delivers_message() {
        let (p, mut l) = setup(3);
        let r = resolve_slot(
            &[
                Action::Send(Payload::message_with(&b"m"[..])),
                Action::Listen,
                Action::Listen,
            ],
            &JamDecision::none(),
            &p,
            &mut l,
        );
        assert_eq!(r.senders, 1);
        for (_, rec) in &r.receptions {
            assert!(rec.is_message());
        }
        assert_eq!(l.node_sends(0), 1);
    }

    #[test]
    fn two_senders_collide() {
        let (p, mut l) = setup(3);
        let r = resolve_slot(
            &[
                Action::Send(Payload::message()),
                Action::Send(Payload::message()),
                Action::Listen,
            ],
            &JamDecision::none(),
            &p,
            &mut l,
        );
        assert_eq!(r.senders, 2);
        assert_eq!(r.receptions, vec![(2, Reception::Noise)]);
    }

    #[test]
    fn lone_noise_payload_is_heard_as_noise() {
        // Figure 2's uninformed nodes send noise; a single such sender must
        // produce a non-clear, non-message slot.
        let (p, mut l) = setup(2);
        let r = resolve_slot(
            &[Action::Send(Payload::Noise), Action::Listen],
            &JamDecision::none(),
            &p,
            &mut l,
        );
        assert_eq!(r.receptions, vec![(1, Reception::Noise)]);
    }

    #[test]
    fn jamming_overrides_message() {
        let (p, mut l) = setup(2);
        let r = resolve_slot(
            &[Action::Send(Payload::message()), Action::Listen],
            &JamDecision::jam_all(&p),
            &p,
            &mut l,
        );
        assert_eq!(r.receptions, vec![(1, Reception::Noise)]);
        assert_eq!(l.jam_cost(), 1);
        // The sender is still charged even though nobody could hear it.
        assert_eq!(l.node_sends(0), 1);
    }

    #[test]
    fn two_uniform_jamming_is_selective() {
        // Jam Bob's group only: Alice (group 0) hears the nack, Bob
        // (group 1) hears noise.
        let p = Partition::pair();
        let mut l = EnergyLedger::new(2);
        // Both listen; adversary injects a nack and jams group 1.
        let jam = JamDecision {
            jam_mask: 1 << 1,
            inject: Some(Payload::Nack { spoofed: true }),
        };
        let r = resolve_slot(&[Action::Listen, Action::Listen], &jam, &p, &mut l);
        let alice = r.receptions.iter().find(|(n, _)| *n == 0).expect("alice");
        let bob = r.receptions.iter().find(|(n, _)| *n == 1).expect("bob");
        assert_eq!(alice.1.kind(), Some(PayloadKind::Nack));
        assert!(bob.1.is_noise());
        // Adversary paid 1 jam + 1 spoof.
        assert_eq!(l.adversary_cost(), 2);
    }

    #[test]
    fn injection_collides_with_node_sends() {
        let (p, mut l) = setup(2);
        let jam = JamDecision::inject(Payload::Nack { spoofed: true });
        let r = resolve_slot(
            &[Action::Send(Payload::message()), Action::Listen],
            &jam,
            &p,
            &mut l,
        );
        assert_eq!(r.senders, 2);
        assert_eq!(r.receptions, vec![(1, Reception::Noise)]);
        assert_eq!(l.spoof_cost(), 1);
    }

    #[test]
    fn spoofed_nack_is_indistinguishable() {
        let (p, mut l) = setup(2);
        let jam = JamDecision::inject(Payload::Nack { spoofed: true });
        let r = resolve_slot(&[Action::Sleep, Action::Listen], &jam, &p, &mut l);
        let (_, rec) = &r.receptions[0];
        // Kind is Nack — receivers cannot branch on the spoofed flag via kind().
        assert_eq!(rec.kind(), Some(PayloadKind::Nack));
        if let Reception::Received(payload) = rec {
            assert!(payload.is_spoofed(), "audit flag retained for experiments");
        } else {
            panic!("expected reception");
        }
    }

    #[test]
    fn jam_count_costs_per_group() {
        let p = Partition::pair();
        let mut l = EnergyLedger::new(2);
        resolve_slot(
            &[Action::Sleep, Action::Sleep],
            &JamDecision::jam_all(&p),
            &p,
            &mut l,
        );
        assert_eq!(l.jam_cost(), 2, "jamming both groups costs 2");
    }

    #[test]
    fn sleepers_pay_nothing_and_hear_nothing() {
        let (p, mut l) = setup(2);
        let r = resolve_slot(
            &[Action::Sleep, Action::Send(Payload::message())],
            &JamDecision::none(),
            &p,
            &mut l,
        );
        assert!(r.receptions.is_empty());
        assert_eq!(l.node_cost(0), 0);
    }

    #[test]
    fn channel_state_reception_mapping() {
        assert_eq!(ChannelState::Clear.reception(), Reception::Clear);
        assert_eq!(ChannelState::Collision.reception(), Reception::Noise);
        assert_eq!(ChannelState::Jammed.reception(), Reception::Noise);
        let s = ChannelState::Single(SenderId::Node(0), Payload::message());
        assert!(s.reception().is_message());
        let n = ChannelState::Single(SenderId::Node(0), Payload::Noise);
        assert!(n.reception().is_noise());
    }

    #[test]
    #[should_panic]
    fn action_count_mismatch_panics() {
        let (p, mut l) = setup(2);
        resolve_slot(&[Action::Sleep], &JamDecision::none(), &p, &mut l);
    }

    #[test]
    fn jam_decision_helpers() {
        let d = JamDecision::jam_group(3);
        assert!(d.is_jammed(3));
        assert!(!d.is_jammed(2));
        assert_eq!(d.jam_count(), 1);
        assert_eq!(JamDecision::none().jam_count(), 0);
    }

    #[test]
    fn out_of_range_group_is_a_typed_error() {
        assert!(JamDecision::try_jam_group(63).is_ok());
        let err = JamDecision::try_jam_group(64).expect_err("64 groups max");
        assert_eq!(err, GroupOutOfRange { group: 64 });
        assert!(err.to_string().contains("64"));
    }

    #[test]
    #[should_panic]
    fn jam_group_wrapper_still_panics() {
        let _ = JamDecision::jam_group(64);
    }
}
