//! Property tests for the channel substrate with arbitrary partitions and
//! jam masks — the root-level suite covers the 1-uniform case; this one
//! exercises ℓ-uniform selectivity.

use proptest::prelude::*;
use rcb_channel::ledger::EnergyLedger;
use rcb_channel::message::Payload;
use rcb_channel::partition::Partition;
use rcb_channel::slot::{resolve_slot, Action, JamDecision, Reception};

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => Just(Action::Sleep),
        2 => Just(Action::Listen),
        1 => Just(Action::Send(Payload::message())),
        1 => Just(Action::Send(Payload::Noise)),
    ]
}

proptest! {
    /// Listeners in the same group always hear the same thing; listeners in
    /// unjammed groups are unaffected by jamming elsewhere.
    #[test]
    fn group_selective_jamming(
        actions in prop::collection::vec(arb_action(), 2..12),
        groups in prop::collection::vec(0usize..4, 2..12),
        jam_mask in 0u64..16,
    ) {
        let n = actions.len().min(groups.len());
        let actions = &actions[..n];
        let groups: Vec<usize> = groups[..n].to_vec();
        let partition = Partition::custom(groups.clone());
        let valid_mask = (1u64 << partition.groups()) - 1;
        let jam = JamDecision { jam_mask: jam_mask & valid_mask, inject: None };

        let mut ledger = EnergyLedger::new(n);
        let res = resolve_slot(actions, &jam, &partition, &mut ledger);

        // Same-group listeners agree.
        for (a, ra) in &res.receptions {
            for (b, rb) in &res.receptions {
                if partition.group_of(*a) == partition.group_of(*b) {
                    prop_assert_eq!(ra, rb);
                }
            }
        }
        // Jammed-group listeners hear noise; unjammed groups behave as if
        // no jamming existed anywhere.
        let mut clean_ledger = EnergyLedger::new(n);
        let clean = resolve_slot(actions, &JamDecision::none(), &partition, &mut clean_ledger);
        for (node, r) in &res.receptions {
            let g = partition.group_of(*node);
            if jam.is_jammed(g) {
                prop_assert_eq!(r, &Reception::Noise);
            } else {
                let clean_r = clean
                    .receptions
                    .iter()
                    .find(|(m, _)| m == node)
                    .map(|(_, r)| r)
                    .expect("same listener set");
                prop_assert_eq!(r, clean_r);
            }
        }
        // The adversary pays exactly the number of (valid) groups jammed.
        prop_assert_eq!(ledger.jam_cost(), (jam_mask & valid_mask).count_ones() as u64);
    }

    /// Energy conservation generalizes to every partition shape.
    #[test]
    fn ledger_totals(
        actions in prop::collection::vec(arb_action(), 1..16),
        jam in any::<bool>(),
    ) {
        let n = actions.len();
        let partition = Partition::uniform(n);
        let decision = if jam { JamDecision::jam_all(&partition) } else { JamDecision::none() };
        let mut ledger = EnergyLedger::new(n);
        resolve_slot(&actions, &decision, &partition, &mut ledger);
        let active = actions.iter().filter(|a| a.is_active()).count() as u64;
        let total: u64 = (0..n).map(|i| ledger.node_cost(i)).sum();
        prop_assert_eq!(total, active);
        prop_assert_eq!(ledger.adversary_cost(), jam as u64);
    }

    /// Merging ledgers is associative-compatible with sequential charging.
    #[test]
    fn ledger_merge_linearity(
        charges_a in prop::collection::vec((0usize..4, any::<bool>()), 0..32),
        charges_b in prop::collection::vec((0usize..4, any::<bool>()), 0..32),
    ) {
        let mut la = EnergyLedger::new(4);
        let mut lb = EnergyLedger::new(4);
        let mut combined = EnergyLedger::new(4);
        for (node, is_send) in &charges_a {
            if *is_send { la.charge_send(*node); combined.charge_send(*node); }
            else { la.charge_listen(*node); combined.charge_listen(*node); }
        }
        for (node, is_send) in &charges_b {
            if *is_send { lb.charge_send(*node); combined.charge_send(*node); }
            else { lb.charge_listen(*node); combined.charge_listen(*node); }
        }
        la.merge(&lb);
        for i in 0..4 {
            prop_assert_eq!(la.node_cost(i), combined.node_cost(i));
        }
        prop_assert_eq!(la.max_node_cost(), combined.max_node_cost());
    }
}
