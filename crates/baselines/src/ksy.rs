//! King–Saia–Young golden-ratio baseline (reconstruction of \[23\]).
//!
//! What the paper uses about KSY is its cost curve and the self-consistency
//! that produces it: in epoch `i` each party budgets `Θ(2^((φ−1)·i))`
//! actions over `2^i` slots. Because `(φ−1)·φ = 1`, an adversary who wants
//! to block an epoch must jam `Θ(2^i)` slots — the good-node spend raised
//! to the power `φ` — so by the time the adversary has spent `T`, the
//! parties have spent `Θ(T^(φ−1))`.
//!
//! Our reconstruction plugs that activity budget into the same
//! send/nack/noise-threshold skeleton as Figure 1 (the
//! [`DuelProfile`] abstraction), which yields exactly the curve the paper
//! compares against: `O(T^0.62 + 1)`, *and* `O(1)` cost when `T = 0`
//! (KSY has no ε-dependence — its first epoch is a small constant).
//!
//! Faithfulness caveat (recorded in DESIGN.md §2): the real KSY works even
//! when Bob cannot be authenticated, via a more intricate acknowledgement
//! scheme; against the jam-only adversaries of our experiments the
//! nack-threshold skeleton is behaviourally equivalent, and the spoofing
//! model is exercised separately through the Theorem 5 experiment (E8).

use rcb_core::one_to_one::profile::DuelProfile;
use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};
use rcb_mathkit::PHI_MINUS_ONE;

/// Golden-ratio activity profile: `p_i = 2^(−(2−φ)·i)`, i.e. an expected
/// `2^((φ−1)·i)` actions per `2^i`-slot phase.
#[derive(Debug, Clone, Copy)]
pub struct KsyProfile {
    start_epoch: u32,
}

impl KsyProfile {
    /// Default first epoch: 4 — a small constant, since KSY has no ε to
    /// amortize (it is the `+1` in `O(T^(φ−1) + 1)`).
    pub fn new() -> Self {
        Self { start_epoch: 4 }
    }

    pub fn with_start_epoch(start_epoch: u32) -> Self {
        assert!(start_epoch >= 1, "start epoch must be at least 1");
        Self { start_epoch }
    }

    /// Expected actions per phase: `p_i·2^i = 2^((φ−1)·i)`.
    pub fn phase_budget(&self, epoch: u32) -> f64 {
        (PHI_MINUS_ONE * epoch as f64).exp2()
    }
}

impl Default for KsyProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl DuelProfile for KsyProfile {
    fn start_epoch(&self) -> u32 {
        self.start_epoch
    }

    fn rate(&self, epoch: u32) -> f64 {
        // 2^((φ−1)i)/2^i = 2^(−(2−φ)i).
        (-(2.0 - rcb_mathkit::PHI) * epoch as f64).exp2().min(1.0)
    }

    fn noise_threshold(&self, epoch: u32) -> f64 {
        // Same shape as Figure 1: a quarter of the expected noisy
        // receptions under half-phase jamming, p_i·2^(i−1)/4.
        self.rate(epoch) * (1u64 << epoch) as f64 / 8.0
    }
}

/// Alice running the KSY profile.
pub type KsyAlice = AliceProtocol<KsyProfile>;

/// Bob running the KSY profile.
pub type KsyBob = BobProtocol<KsyProfile>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_gives_golden_ratio_budget() {
        let p = KsyProfile::new();
        for i in 4..20u32 {
            let budget = p.rate(i) * (1u64 << i) as f64;
            let expect = (PHI_MINUS_ONE * i as f64).exp2();
            assert!(
                (budget - expect).abs() < 1e-6 * expect,
                "epoch {i}: {budget} vs {expect}"
            );
            assert!((budget - p.phase_budget(i)).abs() < 1e-9 * expect);
        }
    }

    #[test]
    fn budget_grows_by_golden_factor_per_epoch() {
        let p = KsyProfile::new();
        let ratio = p.phase_budget(11) / p.phase_budget(10);
        assert!((ratio - PHI_MINUS_ONE.exp2()).abs() < 1e-9);
    }

    #[test]
    fn blocking_cost_is_budget_to_the_phi() {
        // The self-consistency: (per-phase good spend)^φ = phase length.
        let p = KsyProfile::new();
        for i in [8u32, 16, 24] {
            let spend = p.phase_budget(i);
            let blocking_cost = (1u64 << i) as f64;
            assert!(
                (spend.powf(rcb_mathkit::PHI) - blocking_cost).abs() < 1e-3 * blocking_cost,
                "epoch {i}"
            );
        }
    }

    #[test]
    fn rate_is_clamped_and_decreasing() {
        let p = KsyProfile::with_start_epoch(1);
        assert!(p.rate(1) < 1.0);
        for i in 2..30 {
            assert!(p.rate(i) < p.rate(i - 1));
        }
    }

    #[test]
    fn threshold_tracks_quarter_of_half_phase_noise() {
        let p = KsyProfile::new();
        let i = 10;
        let expected_noise_under_half_jam = p.rate(i) * (1u64 << (i - 1)) as f64;
        assert!((p.noise_threshold(i) - expected_noise_under_half_jam / 4.0).abs() < 1e-9);
    }

    #[test]
    fn protocols_construct() {
        use rcb_core::protocol::SlotProtocol;
        let alice = KsyAlice::new(KsyProfile::new());
        let bob = KsyBob::new(KsyProfile::new());
        assert!(!alice.is_done());
        assert!(!bob.is_done());
        assert!(alice.received_message(), "Alice is the sender");
        assert!(!bob.received_message());
    }
}
