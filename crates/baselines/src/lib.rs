//! # rcb-baselines
//!
//! The protocols the paper measures itself against:
//!
//! * [`ksy`] — a reconstruction of the King–Saia–Young algorithm
//!   (PODC 2011, reference \[23\] of the paper), the prior state of the art
//!   for 1-to-1 communication with expected cost `O(T^(φ−1) + 1)`. No
//!   public implementation exists; ours reuses the Figure 1 skeleton with
//!   the golden-ratio activity budget (see module docs for why this
//!   preserves the comparison).
//! * [`naive`] — the deterministic always-on pair: the `T + 1` cost anchor
//!   from §1.2 ("without any randomness, an adversary can easily force a
//!   cost of T + 1").
//! * [`oblivious`] — constant-rate probability-vector protocols, the
//!   WLOG-optimal form the Theorem 2 lower-bound proof reduces every
//!   protocol to; parameterized by the asymmetric split `δ` used in the
//!   Theorem 5 golden-ratio experiment.
//! * [`combined`] — ready-made `min{Figure 1, KSY}` device pairs via the
//!   energy-balanced combinator from `rcb-core`.

pub mod combined;
pub mod ksy;
pub mod naive;
pub mod oblivious;

pub use combined::{combined_alice, combined_bob, CombinedAlice, CombinedBob};
pub use ksy::{KsyAlice, KsyBob, KsyProfile};
pub use naive::{NaiveAlice, NaiveBob};
pub use oblivious::{ConstantRatePair, ObliviousOutcome};
