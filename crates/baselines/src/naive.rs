//! The deterministic always-on baseline.
//!
//! §1.2: "without any randomness, an adversary can easily force a cost of
//! T + 1 since sending and listening will be deterministic." This pair
//! realizes that anchor: Alice transmits every slot, Bob listens every slot
//! until `m` lands. Against a front-loaded jammer with budget `T`, Bob's
//! cost is exactly `T + 1` — linear in the adversary's spend, i.e. *not*
//! resource-competitive. It exists as the comparison-table anchor (E9).

use rcb_channel::message::Payload;
use rcb_channel::slot::{Action, Reception};
use rcb_core::protocol::SlotProtocol;
use rcb_mathkit::rng::RcbRng;

/// Sends `m` in every slot until `horizon` slots have elapsed (she has no
/// feedback channel in this baseline, so a horizon stands in for "long
/// enough"; experiments set it comfortably above the adversary budget).
#[derive(Debug, Clone)]
pub struct NaiveAlice {
    horizon: u64,
    sent: u64,
}

impl NaiveAlice {
    pub fn new(horizon: u64) -> Self {
        Self { horizon, sent: 0 }
    }
}

impl SlotProtocol for NaiveAlice {
    fn act(&mut self, _rng: &mut RcbRng) -> Action {
        if self.sent >= self.horizon {
            Action::Sleep
        } else {
            Action::Send(Payload::message())
        }
    }

    fn end_slot(&mut self, _heard: Option<&Reception>) {
        if self.sent < self.horizon {
            self.sent += 1;
        }
    }

    fn is_done(&self) -> bool {
        self.sent >= self.horizon
    }

    fn received_message(&self) -> bool {
        true
    }
}

/// Listens every slot until `m` arrives (or `horizon` slots pass).
#[derive(Debug, Clone)]
pub struct NaiveBob {
    horizon: u64,
    listened: u64,
    got_m: bool,
}

impl NaiveBob {
    pub fn new(horizon: u64) -> Self {
        Self {
            horizon,
            listened: 0,
            got_m: false,
        }
    }

    /// Slots spent listening (Bob's cost).
    pub fn cost(&self) -> u64 {
        self.listened
    }
}

impl SlotProtocol for NaiveBob {
    fn act(&mut self, _rng: &mut RcbRng) -> Action {
        if self.is_done() {
            Action::Sleep
        } else {
            Action::Listen
        }
    }

    fn end_slot(&mut self, heard: Option<&Reception>) {
        if self.is_done() {
            return;
        }
        self.listened += 1;
        if let Some(r) = heard {
            if r.is_message() {
                self.got_m = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.got_m || self.listened >= self.horizon
    }

    fn received_message(&self) -> bool {
        self.got_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bob_cost_is_t_plus_one_under_front_jamming() {
        // Jam the first T slots: Bob hears noise T times, then m.
        let t = 57u64;
        let mut bob = NaiveBob::new(10_000);
        let mut rng = RcbRng::new(1);
        for _ in 0..t {
            assert!(matches!(bob.act(&mut rng), Action::Listen));
            bob.end_slot(Some(&Reception::Noise));
        }
        assert!(!bob.is_done());
        bob.act(&mut rng);
        bob.end_slot(Some(&Reception::Received(Payload::message())));
        assert!(bob.is_done());
        assert!(bob.received_message());
        assert_eq!(bob.cost(), t + 1, "the paper's T + 1 anchor");
    }

    #[test]
    fn alice_sends_until_horizon() {
        let mut alice = NaiveAlice::new(3);
        let mut rng = RcbRng::new(2);
        for _ in 0..3 {
            assert!(matches!(alice.act(&mut rng), Action::Send(_)));
            alice.end_slot(None);
        }
        assert!(alice.is_done());
        assert!(matches!(alice.act(&mut rng), Action::Sleep));
    }

    #[test]
    fn bob_gives_up_at_horizon() {
        let mut bob = NaiveBob::new(5);
        for _ in 0..5 {
            bob.end_slot(Some(&Reception::Clear));
        }
        assert!(bob.is_done());
        assert!(!bob.received_message());
    }
}
