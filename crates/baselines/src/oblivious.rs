//! Oblivious constant-rate protocols — the normal form of the Theorem 2
//! lower-bound proof.
//!
//! Steps (I)–(III) of the proof show that against the threshold adversary
//! any protocol can be assumed to (I) pay fractional costs, (II) commit to
//! probability vectors in advance, and (III) use equal coordinates with
//! maximal product `a·b = 1/T`. [`ConstantRatePair`] is that normal form,
//! parameterized by the split `δ` (`E(A) ∝ T^(1−δ)`, `E(B) ∝ T^δ`). It
//! supports both a closed-form expected-cost computation (fractional model)
//! and a Monte-Carlo run in the 0/1 cost model, so experiment E4 can check
//! `E(A)·E(B) ≈ T` two independent ways.

use rcb_adversary::threshold::ThresholdAdversary;
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::bernoulli;
use serde::{Deserialize, Serialize};

/// Alice sends with probability `a` and Bob listens with probability `b`
/// in every slot, until the message lands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantRatePair {
    pub a: f64,
    pub b: f64,
}

/// Closed-form outcome of a pair against the threshold adversary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObliviousOutcome {
    /// Alice's expected cost (fractional model).
    pub expected_a: f64,
    /// Bob's expected cost (fractional model).
    pub expected_b: f64,
    /// Expected number of slots until success.
    pub expected_slots: f64,
    /// Slots the adversary jams (0 or its full budget).
    pub jammed: u64,
}

impl ConstantRatePair {
    pub fn new(a: f64, b: f64) -> Self {
        assert!((0.0..=1.0).contains(&a) && a > 0.0, "a in (0,1]");
        assert!((0.0..=1.0).contains(&b) && b > 0.0, "b in (0,1]");
        Self { a, b }
    }

    /// The δ-split pair at the adversary-budget boundary:
    /// `a = T^(−δ)`, `b ≈ T^(δ−1)` with `a·b` nudged one part in 10⁹ below
    /// `1/T` — mathematically the proof's strategy (ii) sits *at* the
    /// boundary, but floating-point `powf` rounding can land a hair above
    /// it, which would (wrongly) trigger the strict `a·b > 1/T` jamming
    /// rule and quadruple the measured product.
    pub fn from_split(budget: u64, delta: f64) -> Self {
        assert!(budget >= 1);
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let t = budget as f64;
        let a = t.powf(-delta).min(1.0);
        let b = ((1.0 - 1e-9) / (t * a)).min(1.0);
        Self::new(a, b)
    }

    /// The exhaust pair — the proof's strategy (i): act every slot, forcing
    /// the adversary to burn her whole budget, then deliver.
    pub fn exhaust() -> Self {
        Self::new(1.0, 1.0)
    }

    /// Per-slot success probability in an unjammed slot.
    pub fn success_rate(&self) -> f64 {
        self.a * self.b
    }

    /// Closed-form expected costs against a fresh threshold adversary with
    /// the given budget, in the fractional model, running until success.
    ///
    /// If `a·b > 1/T` the adversary jams the first `T` slots (during which
    /// both parties still pay their fractional rates), then communication
    /// proceeds with per-slot success `a·b` — expected `1/(a·b)` extra
    /// slots. If `a·b ≤ 1/T` no slot is ever jammed.
    pub fn expected_costs(&self, budget: u64) -> ObliviousOutcome {
        let adv = ThresholdAdversary::new(budget);
        let p = self.success_rate();
        if adv.would_jam(self.a, self.b) {
            let t = budget as f64;
            ObliviousOutcome {
                expected_a: self.a * t + self.a / p,
                expected_b: self.b * t + self.b / p,
                expected_slots: t + 1.0 / p,
                jammed: budget,
            }
        } else {
            ObliviousOutcome {
                expected_a: self.a / p, // = 1/b
                expected_b: self.b / p, // = 1/a
                expected_slots: 1.0 / p,
                jammed: 0,
            }
        }
    }

    /// One Monte-Carlo execution in the 0/1 cost model against a fresh
    /// threshold adversary. Returns `(alice_cost, bob_cost, slots, jammed)`.
    /// `max_slots` bounds the run (a hit is reported as a truncated run by
    /// returning `slots == max_slots`).
    pub fn simulate(&self, budget: u64, max_slots: u64, rng: &mut RcbRng) -> (u64, u64, u64, u64) {
        let mut adv = ThresholdAdversary::new(budget);
        let mut cost_a = 0u64;
        let mut cost_b = 0u64;
        for slot in 0..max_slots {
            let jammed = adv.decide(self.a, self.b);
            let alice_acts = bernoulli(rng, self.a);
            let bob_acts = bernoulli(rng, self.b);
            if alice_acts {
                cost_a += 1;
            }
            if bob_acts {
                cost_b += 1;
            }
            if alice_acts && bob_acts && !jammed {
                return (cost_a, cost_b, slot + 1, adv.jammed());
            }
        }
        (cost_a, cost_b, max_slots, adv.jammed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_pair_sits_on_the_threshold() {
        let t = 10_000u64;
        for delta in [0.3, 0.5, rcb_mathkit::PHI_MINUS_ONE, 0.7] {
            let pair = ConstantRatePair::from_split(t, delta);
            assert!(
                (pair.success_rate() - 1.0 / t as f64).abs() < 1e-12,
                "a·b must equal 1/T"
            );
        }
    }

    #[test]
    fn sub_threshold_product_is_exactly_t() {
        // The heart of Theorem 2: E(A)·E(B) = 1/(a·b) = T for boundary pairs.
        let t = 4096u64;
        let pair = ConstantRatePair::from_split(t, 0.5);
        let out = pair.expected_costs(t);
        assert_eq!(out.jammed, 0);
        let product = out.expected_a * out.expected_b;
        assert!(
            (product - t as f64).abs() < 1e-6 * t as f64,
            "product {product} vs T {t}"
        );
    }

    #[test]
    fn asymmetric_splits_trade_cost_but_keep_the_product() {
        let t = 1u64 << 16;
        let balanced = ConstantRatePair::from_split(t, 0.5).expected_costs(t);
        let skewed = ConstantRatePair::from_split(t, 0.8).expected_costs(t);
        // δ = 0.8: Bob pays T^0.8, Alice T^0.2.
        assert!(skewed.expected_b > balanced.expected_b);
        assert!(skewed.expected_a < balanced.expected_a);
        let p1 = balanced.expected_a * balanced.expected_b;
        let p2 = skewed.expected_a * skewed.expected_b;
        assert!((p1 - p2).abs() < 1e-6 * p1, "product is split-invariant");
    }

    #[test]
    fn exhaust_strategy_pays_t_each() {
        let t = 1000u64;
        let out = ConstantRatePair::exhaust().expected_costs(t);
        assert_eq!(out.jammed, t);
        // Jammed for T slots at cost 1/slot each, then succeed immediately.
        assert!((out.expected_a - (t as f64 + 1.0)).abs() < 1e-9);
        assert!((out.expected_b - (t as f64 + 1.0)).abs() < 1e-9);
        assert!((out.expected_slots - (t as f64 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let t = 256u64;
        let pair = ConstantRatePair::from_split(t, 0.5);
        let expect = pair.expected_costs(t);
        let mut rng = RcbRng::new(5);
        let trials = 20_000;
        let (mut sa, mut sb, mut truncated) = (0.0, 0.0, 0u64);
        for _ in 0..trials {
            let (a, b, slots, jammed) = pair.simulate(t, 1_000_000, &mut rng);
            assert_eq!(jammed, 0, "boundary pair is never jammed");
            if slots == 1_000_000 {
                truncated += 1;
            }
            sa += a as f64;
            sb += b as f64;
        }
        assert_eq!(truncated, 0, "runs should finish well before the cap");
        let (ma, mb) = (sa / trials as f64, sb / trials as f64);
        assert!(
            (ma - expect.expected_a).abs() < 0.05 * expect.expected_a,
            "E(A): {ma} vs {}",
            expect.expected_a
        );
        assert!(
            (mb - expect.expected_b).abs() < 0.05 * expect.expected_b,
            "E(B): {mb} vs {}",
            expect.expected_b
        );
    }

    #[test]
    fn above_threshold_pair_gets_jammed_in_simulation() {
        let t = 64u64;
        let pair = ConstantRatePair::new(0.5, 0.5); // 0.25 > 1/64
        let mut rng = RcbRng::new(6);
        let (_, _, slots, jammed) = pair.simulate(t, 1_000_000, &mut rng);
        assert_eq!(jammed, t, "adversary burns its whole budget");
        assert!(slots > t, "success only after the budget is gone");
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        ConstantRatePair::new(0.0, 0.5);
    }
}
