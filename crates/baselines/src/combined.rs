//! Ready-made `min{Figure 1, KSY}` devices (§1.3, remark after Theorem 1).
//!
//! The Figure 1 lane contributes the `O(√(T·log(1/ε)))` behaviour under
//! heavy jamming; the KSY lane contributes `O(1)` cost when `T = 0` (no
//! ε-dependence). The energy-balanced combinator keeps the total within a
//! constant factor of whichever lane is cheaper.

use rcb_core::combined::BalancedDuo;
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};

use crate::ksy::KsyProfile;

/// Alice running Figure 1 and KSY side by side.
pub type CombinedAlice = BalancedDuo<AliceProtocol<Fig1Profile>, AliceProtocol<KsyProfile>>;

/// Bob running Figure 1 and KSY side by side; halts both lanes as soon as
/// either delivers `m`.
pub type CombinedBob = BalancedDuo<BobProtocol<Fig1Profile>, BobProtocol<KsyProfile>>;

/// Builds the combined Alice for failure parameter `ε`.
pub fn combined_alice(fig1: Fig1Profile, ksy: KsyProfile) -> CombinedAlice {
    BalancedDuo::new(AliceProtocol::new(fig1), AliceProtocol::new(ksy), false)
}

/// Builds the combined Bob for failure parameter `ε`.
pub fn combined_bob(fig1: Fig1Profile, ksy: KsyProfile) -> CombinedBob {
    BalancedDuo::new(BobProtocol::new(fig1), BobProtocol::new(ksy), true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_core::protocol::SlotProtocol;
    use rcb_mathkit::rng::RcbRng;

    #[test]
    fn combined_devices_construct_and_run() {
        let fig1 = Fig1Profile::with_start_epoch(0.1, 6);
        let ksy = KsyProfile::new();
        let mut alice = combined_alice(fig1, ksy);
        let mut bob = combined_bob(fig1, ksy);
        let mut rng = RcbRng::new(1);
        for _ in 0..64 {
            let _ = alice.act(&mut rng);
            alice.end_slot(None);
            let _ = bob.act(&mut rng);
            bob.end_slot(None);
        }
        assert!(alice.received_message(), "Alice holds m by definition");
    }

    #[test]
    fn ksy_lane_runs_first_when_cheaper() {
        // KSY's first epochs are far cheaper than Figure 1's; the balanced
        // combinator should therefore advance the KSY lane more in the
        // beginning — its spend can never lag more than one unit behind.
        let fig1 = Fig1Profile::new(0.1); // start epoch 14: expensive lane
        let ksy = KsyProfile::new(); // start epoch 4: cheap lane
        let mut alice = combined_alice(fig1, ksy);
        let mut rng = RcbRng::new(2);
        for _ in 0..10_000 {
            let _ = alice.act(&mut rng);
            alice.end_slot(None);
            if alice.lane_a().is_done() || alice.lane_b().is_done() {
                // A silent channel legitimately halts a lane (no nacks, no
                // noise); balance is only promised while both lanes run.
                break;
            }
            assert!(
                alice.spent_a() <= alice.spent_b() + 1 && alice.spent_b() <= alice.spent_a() + 1,
                "fig1 {} vs ksy {}",
                alice.spent_a(),
                alice.spent_b()
            );
        }
    }
}
