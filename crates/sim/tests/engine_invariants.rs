//! Engine-level invariant tests: conservation between outcomes and
//! adversary accounting, monotonicity of cost in the budget, and
//! reproducibility guarantees.

use rcb_adversary::rep_strategies::{BudgetedRepBlocker, NoJamRep};
use rcb_core::one_to_n::OneToNParams;
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_mathkit::rng::RcbRng;
use rcb_sim::duel::{run_duel, DuelConfig};
use rcb_sim::fast::{run_broadcast, FastConfig};
use rcb_sim::runner::{run_trials, Parallelism};

#[test]
fn duel_same_seed_same_outcome() {
    let profile = Fig1Profile::with_start_epoch(0.05, 7);
    let run = |seed| {
        let mut rng = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(5000, 1.0);
        run_duel(&profile, &mut adv, &mut rng, DuelConfig::default())
    };
    assert_eq!(run(7), run(7), "bitwise reproducibility");
    // And different seeds differ somewhere across a few tries.
    let varied = (0..5).map(run).collect::<Vec<_>>();
    assert!(varied.iter().any(|o| o != &varied[0]));
}

#[test]
fn broadcast_same_seed_same_outcome() {
    let params = OneToNParams::practical();
    let run = |seed| {
        let mut rng = RcbRng::new(seed);
        let mut adv = NoJamRep;
        run_broadcast(&params, 12, &mut adv, &mut rng, FastConfig::default())
    };
    assert_eq!(run(3), run(3));
}

#[test]
fn adversary_cost_never_exceeds_budget() {
    let profile = Fig1Profile::with_start_epoch(0.05, 7);
    for budget in [0u64, 100, 5_000, 100_000] {
        let mut rng = RcbRng::new(budget ^ 11);
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig::default());
        assert!(
            out.adversary_cost <= budget,
            "spent {} on budget {budget}",
            out.adversary_cost
        );
    }
}

#[test]
fn broadcast_adversary_cost_never_exceeds_budget() {
    let params = OneToNParams::practical();
    for budget in [0u64, 1000, 50_000] {
        let mut rng = RcbRng::new(budget ^ 5);
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let out = run_broadcast(&params, 8, &mut adv, &mut rng, FastConfig::default());
        assert!(out.adversary_cost <= budget);
    }
}

#[test]
fn duel_costs_grow_with_budget_on_average() {
    let profile = Fig1Profile::with_start_epoch(0.05, 8);
    let mean_cost = |budget: u64| {
        let outs = run_trials(40, 17 ^ budget, Parallelism::Auto, |_, rng| {
            let mut adv = BudgetedRepBlocker::new(budget, 1.0);
            run_duel(&profile, &mut adv, rng, DuelConfig::default())
        });
        outs.iter().map(|o| o.max_cost() as f64).sum::<f64>() / outs.len() as f64
    };
    let c0 = mean_cost(0);
    let c1 = mean_cost(1 << 14);
    let c2 = mean_cost(1 << 19);
    assert!(c0 < c1 && c1 < c2, "{c0} < {c1} < {c2} expected");
}

#[test]
fn delivery_slot_is_within_run() {
    let profile = Fig1Profile::with_start_epoch(0.05, 7);
    for seed in 0..30 {
        let mut rng = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(2000, 1.0);
        let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig::default());
        if let Some(t) = out.delivery_slot {
            assert!(out.delivered);
            assert!(t < out.slots, "delivery slot {t} vs total {}", out.slots);
        }
    }
}

#[test]
fn broadcast_outcome_counts_are_consistent() {
    let params = OneToNParams::practical();
    for seed in 0..10 {
        let mut rng = RcbRng::new(seed);
        let mut adv = NoJamRep;
        let out = run_broadcast(&params, 16, &mut adv, &mut rng, FastConfig::default());
        assert_eq!(out.n, 16);
        assert_eq!(out.node_costs.len(), 16);
        assert!(out.informed <= out.n);
        assert_eq!(out.all_informed, out.informed == out.n);
        assert!(out.safety_terminations <= out.n);
        assert!(out.max_cost() as f64 >= out.mean_cost());
        // The sender is node 0 and always informed.
        assert!(out.informed >= 1);
    }
}

#[test]
fn sender_alone_is_node_zero_semantics() {
    // n = 1 runs to termination and reports the sender informed.
    let params = OneToNParams::practical();
    let mut rng = RcbRng::new(1);
    let mut adv = NoJamRep;
    let out = run_broadcast(&params, 1, &mut adv, &mut rng, FastConfig::default());
    assert!(out.all_informed);
    assert!(out.all_terminated);
}

#[test]
fn duel_engine_matches_closed_form_prediction() {
    // The Theorem 1 bookkeeping (rcb_core::one_to_one::predict) and the
    // fast engine must agree on expected cost and latency within
    // Monte-Carlo tolerance: they encode the same model independently.
    use rcb_core::one_to_one::predict::{predicted_cost, predicted_latency};
    let profile = Fig1Profile::with_start_epoch(0.05, 8);
    for budget in [0u64, 1 << 12, 1 << 16] {
        let outs = run_trials(80, 3 ^ budget, Parallelism::Auto, |_, rng| {
            let mut adv = BudgetedRepBlocker::new(budget, 1.0);
            run_duel(&profile, &mut adv, rng, DuelConfig::default())
        });
        let mean_alice: f64 =
            outs.iter().map(|o| o.alice_cost as f64).sum::<f64>() / outs.len() as f64;
        let mean_slots: f64 = outs.iter().map(|o| o.slots as f64).sum::<f64>() / outs.len() as f64;
        let pc = predicted_cost(&profile, budget);
        let pl = predicted_latency(&profile, budget);
        assert!(
            (mean_alice - pc).abs() < 0.25 * pc + 10.0,
            "T={budget}: alice {mean_alice} vs predicted {pc}"
        );
        assert!(
            (mean_slots - pl).abs() < 0.25 * pl + 10.0,
            "T={budget}: slots {mean_slots} vs predicted {pl}"
        );
    }
}

#[test]
fn unjammed_broadcast_latency_matches_schedule_estimate() {
    // The predict module's unjammed-latency estimate (slots through the
    // ideal epoch) and the fast engine must agree within epoch
    // granularity: one epoch of slack either way.
    use rcb_core::one_to_n::predict::{estimated_termination_epoch, slots_in_epochs};
    let params = OneToNParams::practical();
    for n in [8usize, 32, 64] {
        let mut slots_sum = 0u64;
        let trials = 4u64;
        for seed in 0..trials {
            let mut rng = RcbRng::new(900 + seed + n as u64);
            let mut adv = NoJamRep;
            let out = run_broadcast(&params, n, &mut adv, &mut rng, FastConfig::default());
            assert!(out.all_terminated);
            slots_sum += out.slots;
        }
        let measured = slots_sum as f64 / trials as f64;
        let est_epoch = estimated_termination_epoch(&params, n);
        let lo = slots_in_epochs(&params, params.first_epoch, est_epoch.saturating_sub(1)) as f64;
        let hi = slots_in_epochs(&params, params.first_epoch, est_epoch + 2) as f64;
        assert!(
            measured >= lo * 0.5 && measured <= hi,
            "n={n}: measured {measured} outside [{lo}, {hi}]"
        );
    }
}
