//! Golden re-arm equivalence suite: for every engine session,
//! `rearm(seed)` followed by a run must be **bit-identical** to a freshly
//! constructed session at `seed` — same outcome fields, same FNV-1a fold
//! over the batch. The "used" session is deliberately dirtied first (a
//! full run at a different seed, with a different adversary), so the test
//! certifies the reset covers protocol state, epoch position, cost
//! ledgers, fault flags, and the RNG stream — not just a lucky overlap.
//!
//! The streaming workload leans on exactly this contract (one session,
//! re-armed per message), so a regression here silently corrupts every
//! stream baseline.

use rcb_adversary::rep_strategies::{BudgetedRepBlocker, KeepAliveBlocker};
use rcb_adversary::traits::RepetitionAdversary;
use rcb_core::one_to_n::OneToNParams;
use rcb_core::one_to_one::profile::Fig1Profile;
use rcb_mathkit::rng::RcbRng;
use rcb_sim::cohort::{run_cohort, CohortConfig, CohortSession};
use rcb_sim::deadline::Deadline;
use rcb_sim::duel::{run_duel, DuelConfig, DuelSession};
use rcb_sim::exact::ExactConfig;
use rcb_sim::fast::{run_broadcast, BroadcastSession, FastConfig};
use rcb_sim::faults::FaultPlan;
use rcb_sim::scenario::{fnv1a_bytes, FNV_OFFSET};
use rcb_sim::session::{ExactBroadcastSession, Session};

/// FNV-1a over the outcome's full debug rendering: every field
/// participates, so two folds agree iff the outcomes are identical.
fn checksum<T: std::fmt::Debug>(h: u64, out: &T) -> u64 {
    fnv1a_bytes(h, format!("{out:?}").as_bytes())
}

/// Runs `session` fresh-vs-rearmed across `seeds` and asserts the folds
/// match. `fresh` builds a new session at a seed; `adversary` builds the
/// per-run strategy (same construction both sides, so any divergence is
/// the session's fault).
fn assert_rearm_equivalent<S, F, A>(label: &str, seeds: &[u64], mut fresh: F, mut adversary: A)
where
    S: Session,
    S::Outcome: std::fmt::Debug + PartialEq,
    F: FnMut(u64) -> S,
    A: FnMut() -> Box<dyn RepetitionAdversary>,
{
    // The reused session: constructed once at a sacrificial seed and
    // dirtied with a full run under a different adversary, then re-armed
    // for every golden seed.
    let mut used = fresh(0xDEAD_BEEF);
    let mut dirty_adv = KeepAliveBlocker::new(10_000, 1.0);
    let _ = used.run(&mut dirty_adv, &Deadline::NONE);

    let mut fold_fresh = FNV_OFFSET;
    let mut fold_rearm = FNV_OFFSET;
    for &seed in seeds {
        let mut a = fresh(seed);
        let mut adv_a = adversary();
        let (out_fresh, err_fresh) = a.run(adv_a.as_mut(), &Deadline::NONE);

        used.rearm(seed);
        let mut adv_b = adversary();
        let (out_rearm, err_rearm) = used.run(adv_b.as_mut(), &Deadline::NONE);

        assert_eq!(
            out_fresh, out_rearm,
            "{label}: seed {seed} diverged after rearm"
        );
        assert_eq!(
            err_fresh.is_some(),
            err_rearm.is_some(),
            "{label}: seed {seed} truncation flag diverged"
        );
        fold_fresh = checksum(fold_fresh, &out_fresh);
        fold_rearm = checksum(fold_rearm, &out_rearm);
    }
    assert_eq!(fold_fresh, fold_rearm, "{label}: batch checksum diverged");
}

const SEEDS: [u64; 6] = [0, 1, 2, 7, 2014, 0xFFFF_FFFF_FFFF_FFFE];

#[test]
fn duel_fast_session_rearm_is_bit_identical() {
    assert_rearm_equivalent(
        "duel-fast",
        &SEEDS,
        |seed| {
            DuelSession::new(
                Fig1Profile::with_start_epoch(0.1, 8),
                DuelConfig::default(),
                FaultPlan::none(),
                seed,
            )
        },
        || Box::new(BudgetedRepBlocker::new(4096, 1.0)),
    );
}

#[test]
fn duel_fast_session_rearm_with_faults() {
    let faults = FaultPlan::none().with_loss(0.1).with_skew(1, 1);
    assert_rearm_equivalent(
        "duel-fast+faults",
        &SEEDS,
        move |seed| {
            DuelSession::new(
                Fig1Profile::with_start_epoch(0.1, 8),
                DuelConfig::default(),
                faults,
                seed,
            )
        },
        || Box::new(BudgetedRepBlocker::new(2048, 1.0)),
    );
}

#[test]
fn broadcast_fast_session_rearm_is_bit_identical() {
    assert_rearm_equivalent(
        "broadcast-fast",
        &SEEDS,
        |seed| {
            BroadcastSession::new(
                OneToNParams::practical(),
                12,
                vec![0],
                FastConfig::default(),
                FaultPlan::none(),
                seed,
            )
        },
        || Box::new(BudgetedRepBlocker::new(50_000, 1.0)),
    );
}

#[test]
fn exact_broadcast_session_rearm_is_bit_identical() {
    assert_rearm_equivalent(
        "exact",
        &SEEDS[..3],
        |seed| {
            ExactBroadcastSession::new(
                OneToNParams::practical(),
                4,
                vec![0],
                ExactConfig::default(),
                FaultPlan::none(),
                seed,
            )
        },
        || Box::new(BudgetedRepBlocker::new(2_000, 1.0)),
    );
}

#[test]
fn cohort_session_rearm_collapses_materialized_nodes() {
    // n = 600 sits above the exact-member threshold (384), so the run
    // materializes tracked singletons out of anonymous cohorts; the
    // re-arm must collapse them back into the single initial cohort.
    assert_rearm_equivalent(
        "broadcast-cohort",
        &SEEDS,
        |seed| {
            CohortSession::new(
                OneToNParams::practical(),
                600,
                vec![0],
                CohortConfig::default(),
                FaultPlan::none(),
                seed,
            )
        },
        || Box::new(BudgetedRepBlocker::new(100_000, 1.0)),
    );
}

#[test]
fn cohort_session_rearm_all_tracked_regime() {
    assert_rearm_equivalent(
        "broadcast-cohort/all-tracked",
        &SEEDS,
        |seed| {
            CohortSession::new(
                OneToNParams::practical(),
                24,
                vec![0],
                CohortConfig::default(),
                FaultPlan::none(),
                seed,
            )
        },
        || Box::new(BudgetedRepBlocker::new(50_000, 1.0)),
    );
}

// ---------------------------------------------------------------------------
// Session-vs-legacy: a fresh session run equals the construct-run-discard
// entry point at the same seed, so the session layer is a pure refactor.
// ---------------------------------------------------------------------------

#[test]
fn fresh_sessions_match_legacy_entry_points() {
    for seed in [1u64, 9, 77] {
        let mut session = DuelSession::new(
            Fig1Profile::with_start_epoch(0.1, 8),
            DuelConfig::default(),
            FaultPlan::none(),
            seed,
        );
        let mut adv = BudgetedRepBlocker::new(4096, 1.0);
        let (via_session, _) = session.run(&mut adv, &Deadline::NONE);
        let mut rng = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(4096, 1.0);
        let legacy = run_duel(
            &Fig1Profile::with_start_epoch(0.1, 8),
            &mut adv,
            &mut rng,
            DuelConfig::default(),
        );
        assert_eq!(via_session, legacy, "duel seed {seed}");

        let mut session = BroadcastSession::new(
            OneToNParams::practical(),
            12,
            vec![0],
            FastConfig::default(),
            FaultPlan::none(),
            seed,
        );
        let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
        let (via_session, _) = session.run(&mut adv, &Deadline::NONE);
        let mut rng = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
        let legacy = run_broadcast(
            &OneToNParams::practical(),
            12,
            &mut adv,
            &mut rng,
            FastConfig::default(),
        );
        assert_eq!(via_session, legacy, "broadcast seed {seed}");

        let mut session = CohortSession::new(
            OneToNParams::practical(),
            24,
            vec![0],
            CohortConfig::default(),
            FaultPlan::none(),
            seed,
        );
        let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
        let (via_session, _) = session.run(&mut adv, &Deadline::NONE);
        let mut rng = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
        let legacy = run_cohort(
            &OneToNParams::practical(),
            24,
            &mut adv,
            &mut rng,
            CohortConfig::default(),
        );
        assert_eq!(via_session, legacy, "cohort seed {seed}");
    }
}
