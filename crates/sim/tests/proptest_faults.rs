//! Property tests for the fault-injection layer.
//!
//! Three invariants the whole subsystem leans on:
//!
//! 1. `FaultPlan::none()` is a *byte-identical* no-op — the faulted entry
//!    points with an empty plan replay exactly the unfaulted engine,
//!    including the caller's RNG stream position afterwards.
//! 2. Fault-injected runs are deterministic under seed replay: the same
//!    `(seed, plan)` always produces the same outcome.
//! 3. Loss and skew only ever *remove* information: a receiver condition
//!    can turn a decoded payload into noise, never conjure a payload out
//!    of a clear or noisy slot.

use proptest::prelude::*;
use rcb_adversary::rep_strategies::{BudgetedRepBlocker, NoJamRep};
use rcb_channel::fault::ReceiverCondition;
use rcb_channel::slot::Reception;
use rcb_channel::Payload;
use rcb_core::one_to_n::OneToNParams;
use rcb_core::one_to_one::Fig1Profile;
use rcb_mathkit::rng::RcbRng;
use rcb_sim::duel::{run_duel, run_duel_faulted, DuelConfig};
use rcb_sim::fast::{run_broadcast_faulted, FastConfig};
use rcb_sim::faults::FaultPlan;

/// Assembles a plan from flat primitives (the vendored proptest stub has
/// no `prop_map`/`option` combinators). Each component is present iff its
/// flag is set; all values are in their validated ranges.
#[allow(clippy::too_many_arguments)]
fn plan_from(
    use_loss: bool,
    loss_p: f64,
    use_crash: bool,
    crash: (usize, u64, u64, bool),
    use_skew: bool,
    skew: (usize, u64),
    use_battery: bool,
    battery: u64,
) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if use_loss {
        plan = plan.with_loss(loss_p);
    }
    if use_crash {
        plan = plan.with_crash(crash.0, crash.1, crash.2, crash.3);
    }
    if use_skew {
        plan = plan.with_skew(skew.0, skew.1);
    }
    if use_battery {
        plan = plan.with_battery(battery);
    }
    plan
}

proptest! {
    /// Invariant 1, duel engine: an empty plan replays the unfaulted run
    /// bit for bit, and leaves the caller's RNG in the identical state.
    #[test]
    fn empty_plan_is_byte_identical_noop(seed in any::<u64>(), budget in 0u64..4096) {
        let profile = Fig1Profile::with_start_epoch(0.1, 6);

        let mut rng_plain = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let plain = run_duel(&profile, &mut adv, &mut rng_plain, DuelConfig::default());

        let mut rng_faulted = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let faulted = run_duel_faulted(
            &profile,
            &mut adv,
            &mut rng_faulted,
            DuelConfig::default(),
            &FaultPlan::none(),
        );

        prop_assert_eq!(plain, faulted);
        prop_assert_eq!(rng_plain, rng_faulted, "RNG stream position must match");
    }

    /// Invariant 2, duel engine: identical `(seed, plan)` → identical run.
    #[test]
    fn faulted_duel_is_deterministic_under_seed_replay(
        seed in any::<u64>(),
        use_loss in any::<bool>(),
        loss_p in 0.0f64..=1.0,
        use_crash in any::<bool>(),
        crash in (0usize..2, 0u64..8, 1u64..8, any::<bool>()),
        use_skew in any::<bool>(),
        skew in (0usize..2, 0u64..4),
        use_battery in any::<bool>(),
        battery in 1u64..500,
    ) {
        let plan = plan_from(
            use_loss, loss_p, use_crash, crash, use_skew, skew, use_battery, battery,
        );
        plan.validate().expect("generated plans are in range");
        let profile = Fig1Profile::with_start_epoch(0.1, 6);
        // Keep pathological plans (total loss) cheap to replay.
        let config = DuelConfig { max_slots: 1 << 16 };
        let run = || {
            let mut rng = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(512, 1.0);
            run_duel_faulted(&profile, &mut adv, &mut rng, config, &plan)
        };
        prop_assert_eq!(run(), run());
    }

    /// Invariant 2, fast broadcast engine.
    #[test]
    fn faulted_broadcast_is_deterministic_under_seed_replay(
        seed in any::<u64>(),
        use_loss in any::<bool>(),
        loss_p in 0.0f64..=0.5,
        use_crash in any::<bool>(),
        crash in (0usize..4, 0u64..8, 1u64..8, any::<bool>()),
        use_battery in any::<bool>(),
        battery in 50u64..500,
    ) {
        let plan = plan_from(
            use_loss, loss_p, use_crash, crash, false, (0, 0), use_battery, battery,
        );
        let params = OneToNParams::practical();
        let run = || {
            let mut rng = RcbRng::new(seed);
            let mut adv = NoJamRep;
            run_broadcast_faulted(
                &params,
                6,
                &[0],
                &mut adv,
                &mut rng,
                FastConfig::default(),
                &mut (),
                &plan,
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.node_costs, b.node_costs);
        prop_assert_eq!(a.informed, b.informed);
        prop_assert_eq!(a.slots, b.slots);
        prop_assert_eq!(a.truncated, b.truncated);
    }

    /// Invariant 3: a receiver condition never creates a reception. Loss
    /// and skew map payloads to noise (and clear slots stay clear unless
    /// skewed); nothing maps *to* a decoded payload.
    #[test]
    fn faults_never_create_receptions(
        skewed in any::<bool>(),
        loss_p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let cond = ReceiverCondition { skewed, loss_p };
        let mut rng = RcbRng::new(seed);
        for heard in [Reception::Clear, Reception::Noise] {
            let out = cond.apply(heard.clone(), &mut rng);
            prop_assert!(
                !matches!(out, Reception::Received(_)),
                "{:?} must not become a payload, got {:?}", heard, out
            );
        }
        let out = cond.apply(Reception::Received(Payload::message()), &mut rng);
        prop_assert!(
            matches!(out, Reception::Received(_) | Reception::Noise),
            "a payload either survives or degrades to noise, got {:?}", out
        );
        if skewed {
            prop_assert_eq!(
                cond.apply(Reception::Received(Payload::message()), &mut rng),
                Reception::Noise,
                "skewed boundary slots are never decodable"
            );
        }
    }
}
