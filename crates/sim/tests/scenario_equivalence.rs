//! Golden equivalence: `ScenarioSpec::run_*` against the legacy entry
//! points it subsumes.
//!
//! The scenario layer promises *bit-identical* behavior — same outcomes,
//! same slot counts, same FNV-1a checksum folds — for every (workload,
//! engine, adversary, faults) combination the repo ships. This suite pins
//! that promise on the two shipped catalogs:
//!
//! * every cell of the conformance differ's default grid, on both engines;
//! * every named registry entry behind `rcbsim scenario run`.
//!
//! Each spec is replayed through a hand-built legacy harness that calls
//! `run_duel_faulted` / `run_broadcast_faulted` / `run_exact_faulted`
//! directly, mirroring the constructions `ScenarioSpec` performs. A drift
//! in either direction — the spec layer or the legacy path — fails here.
//!
//! A property test additionally pins that a spec with an empty `FaultPlan`
//! replays the *clean* (unfaulted) entry point byte for byte, including
//! the caller's RNG stream position afterwards.

use proptest::prelude::*;
use rcb_adversary::rep_strategies::{BudgetedRepBlocker, KeepAliveBlocker, NoJamRep, RandomRep};
use rcb_adversary::traits::RepetitionAdversary;
use rcb_adversary::RepAsSlotAdversary;
use rcb_baselines::ksy::KsyProfile;
use rcb_channel::partition::Partition;
use rcb_core::one_to_n::{OneToNSchedule, OneToNSlotNode};
use rcb_core::one_to_one::profile::{DuelProfile, Fig1Profile};
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};
use rcb_core::protocol::SlotProtocol;
use rcb_mathkit::rng::RcbRng;
use rcb_sim::cohort::{run_cohort_faulted, CohortConfig};
use rcb_sim::conformance::default_grid;
use rcb_sim::duel::{run_duel, run_duel_faulted, DuelConfig};
use rcb_sim::exact::{run_exact_faulted, ExactConfig};
use rcb_sim::fast::{run_broadcast, run_broadcast_faulted, FastConfig};
use rcb_sim::faults::FaultPlan;
use rcb_sim::outcome::{BroadcastOutcome, DuelOutcome};
use rcb_sim::runner::run_trials;
use rcb_sim::scenario::{
    fnv1a, registry, AdversarySpec, BroadcastWorkload, DuelProtocol, DuelWorkload, Engine, Outcome,
    ScenarioSpec, Workload, FNV_OFFSET,
};

// ---------------------------------------------------------------------------
// Legacy harness: the pre-scenario construction for each (workload, engine)
// ---------------------------------------------------------------------------

/// The adversary construction `AdversarySpec::build` replaced, spelled out
/// the way call sites used to write it.
fn legacy_adversary(spec: &AdversarySpec, seed: u64) -> Box<dyn RepetitionAdversary> {
    match *spec {
        AdversarySpec::NoJam => Box::new(NoJamRep),
        AdversarySpec::Budgeted { budget, fraction } => {
            Box::new(BudgetedRepBlocker::new(budget, fraction))
        }
        AdversarySpec::KeepAlive { budget, fraction } => {
            Box::new(KeepAliveBlocker::new(budget, fraction))
        }
        AdversarySpec::Random { budget, rate } => Box::new(RandomRep::new(rate, budget, seed)),
    }
}

fn legacy_fast_duel(
    w: &DuelWorkload,
    adv: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    faults: &FaultPlan,
) -> DuelOutcome {
    let config = DuelConfig {
        max_slots: w.max_slots,
    };
    match w.protocol {
        DuelProtocol::Fig1 {
            epsilon,
            start_epoch,
        } => run_duel_faulted(
            &Fig1Profile::with_start_epoch(epsilon, start_epoch),
            adv,
            rng,
            config,
            faults,
        ),
        DuelProtocol::Ksy { start_epoch } => run_duel_faulted(
            &KsyProfile::with_start_epoch(start_epoch),
            adv,
            rng,
            config,
            faults,
        ),
    }
}

fn legacy_exact_duel<P: DuelProfile + Copy>(
    profile: P,
    w: &DuelWorkload,
    adversary: Box<dyn RepetitionAdversary>,
    rng: &mut RcbRng,
    faults: &FaultPlan,
) -> DuelOutcome {
    let mut alice = AliceProtocol::new(profile);
    let mut bob = BobProtocol::new(profile);
    let schedule = DuelSchedule::new(profile.start_epoch());
    let partition = Partition::pair();
    let mut adv = RepAsSlotAdversary::duel(adversary);
    let out = run_exact_faulted(
        &mut [&mut alice, &mut bob],
        &mut adv,
        &schedule,
        &partition,
        rng,
        ExactConfig {
            max_slots: w.exact_max_slots,
        },
        None,
        faults,
    );
    let delivered = bob.received_message();
    DuelOutcome {
        delivered,
        bob_premature: !delivered && out.completed,
        alice_cost: out.ledger.node_cost(0),
        bob_cost: out.ledger.node_cost(1),
        adversary_cost: out.ledger.adversary_cost(),
        slots: out.slots,
        delivery_slot: None,
        last_epoch: 0,
        truncated: !out.completed,
    }
}

fn legacy_exact_broadcast(
    w: &BroadcastWorkload,
    adversary: Box<dyn RepetitionAdversary>,
    rng: &mut RcbRng,
    faults: &FaultPlan,
) -> BroadcastOutcome {
    let mut nodes: Vec<OneToNSlotNode> = (0..w.n)
        .map(|u| OneToNSlotNode::new(w.params, w.sources.contains(&u)))
        .collect();
    let mut refs: Vec<&mut dyn SlotProtocol> = Vec::new();
    for node in nodes.iter_mut() {
        refs.push(node);
    }
    let schedule = OneToNSchedule::new(w.params);
    let partition = Partition::uniform(w.n);
    let mut adv = RepAsSlotAdversary::broadcast(adversary, w.n);
    let out = run_exact_faulted(
        &mut refs,
        &mut adv,
        &schedule,
        &partition,
        rng,
        ExactConfig {
            max_slots: w.exact_max_slots,
        },
        None,
        faults,
    );
    let informed = nodes.iter().filter(|v| v.received_message()).count();
    BroadcastOutcome {
        n: w.n,
        informed,
        all_informed: informed == w.n,
        all_terminated: out.completed,
        safety_terminations: 0,
        node_costs: (0..w.n).map(|u| out.ledger.node_cost(u)).collect(),
        adversary_cost: out.ledger.adversary_cost(),
        slots: out.slots,
        last_epoch: 0,
        truncated: !out.completed,
    }
}

/// One legacy trial for a spec: the dispatch `run_trial_raw` replaced.
fn legacy_trial(spec: &ScenarioSpec, trial: u64, rng: &mut RcbRng) -> Outcome {
    let seed = spec.seeds.adversary_seed(trial);
    match (&spec.workload, spec.engine) {
        (Workload::Duel(w), Engine::Fast) => {
            let mut adv = legacy_adversary(&spec.adversary, seed);
            Outcome::Duel(legacy_fast_duel(w, adv.as_mut(), rng, &spec.faults))
        }
        (Workload::Duel(w), Engine::Exact) => {
            let adv = legacy_adversary(&spec.adversary, seed);
            let out = match w.protocol {
                DuelProtocol::Fig1 {
                    epsilon,
                    start_epoch,
                } => legacy_exact_duel(
                    Fig1Profile::with_start_epoch(epsilon, start_epoch),
                    w,
                    adv,
                    rng,
                    &spec.faults,
                ),
                DuelProtocol::Ksy { start_epoch } => legacy_exact_duel(
                    KsyProfile::with_start_epoch(start_epoch),
                    w,
                    adv,
                    rng,
                    &spec.faults,
                ),
            };
            Outcome::Duel(out)
        }
        (Workload::Broadcast(w), Engine::Fast) => {
            let mut adv = legacy_adversary(&spec.adversary, seed);
            Outcome::Broadcast(run_broadcast_faulted(
                &w.params,
                w.n,
                &w.sources,
                adv.as_mut(),
                rng,
                FastConfig {
                    max_epoch: w.max_epoch,
                },
                &mut (),
                &spec.faults,
            ))
        }
        (Workload::Broadcast(w), Engine::Exact) => {
            let adv = legacy_adversary(&spec.adversary, seed);
            Outcome::Broadcast(legacy_exact_broadcast(w, adv, rng, &spec.faults))
        }
        (Workload::Broadcast(w), Engine::CohortFast) => {
            let mut adv = legacy_adversary(&spec.adversary, seed);
            Outcome::Broadcast(run_cohort_faulted(
                &w.params,
                w.n,
                &w.sources,
                adv.as_mut(),
                rng,
                CohortConfig {
                    max_epoch: w.max_epoch,
                    ..CohortConfig::default()
                },
                &spec.faults,
            ))
        }
        (Workload::Duel(_), Engine::CohortFast) => {
            unreachable!("validate() rejects duel workloads on the cohort engine")
        }
        (Workload::Stream(_), _) => {
            unreachable!("streams have no legacy entry point to compare against")
        }
    }
}

/// Runs `spec` through both paths and asserts outcome equality, slot
/// equality, and identical FNV-1a checksum folds over the whole batch.
fn assert_spec_matches_legacy(spec: &ScenarioSpec, label: &str) {
    spec.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
    let via_spec = spec.run_batch_raw();
    let via_legacy = run_trials(
        spec.trials,
        spec.seeds.master,
        spec.parallelism,
        |i, rng| legacy_trial(spec, i, rng),
    );
    assert_eq!(via_spec.len(), via_legacy.len(), "{label}: trial counts");

    let mut checksum_spec = FNV_OFFSET;
    let mut checksum_legacy = FNV_OFFSET;
    for (i, ((spec_out, err), legacy_out)) in via_spec.iter().zip(&via_legacy).enumerate() {
        assert_eq!(spec_out, legacy_out, "{label}: trial {i} outcome diverged");
        assert_eq!(
            spec_out.slots(),
            legacy_out.slots(),
            "{label}: trial {i} slot count diverged"
        );
        // A surfaced engine cap must agree with the outcome's own flag —
        // the typed error adds information, never changes the numbers.
        let truncated = spec_out.truncated();
        assert_eq!(
            err.is_some(),
            truncated,
            "{label}: trial {i} error/truncation mismatch"
        );
        checksum_spec = fnv1a(checksum_spec, &[spec.outcome_checksum(spec_out)]);
        checksum_legacy = fnv1a(checksum_legacy, &[spec.outcome_checksum(legacy_out)]);
    }
    assert_eq!(
        checksum_spec, checksum_legacy,
        "{label}: batch checksum diverged"
    );
}

// ---------------------------------------------------------------------------
// Catalog sweeps
// ---------------------------------------------------------------------------

#[test]
fn default_grid_duel_cells_match_legacy() {
    let (duel_cells, _) = default_grid();
    assert!(!duel_cells.is_empty(), "grid must have duel cells");
    for (i, cell) in duel_cells.iter().enumerate() {
        for engine in [Engine::Fast, Engine::Exact] {
            let trials = if engine == Engine::Fast { 4 } else { 2 };
            let spec = cell
                .spec
                .clone()
                .with_engine(engine)
                .with_trials(trials)
                .with_seed(0xC0FFEE ^ i as u64);
            assert_spec_matches_legacy(&spec, &format!("duel grid cell {i} ({engine:?})"));
        }
    }
}

#[test]
fn default_grid_broadcast_cells_match_legacy() {
    let (_, broadcast_cells) = default_grid();
    assert!(
        !broadcast_cells.is_empty(),
        "grid must have broadcast cells"
    );
    for (i, cell) in broadcast_cells.iter().enumerate() {
        // Sweep the engines the differ actually runs for this cell: the
        // historical cells pin both slot-level engines; the cohort cells
        // pin their own (reference, candidate) pair, which keeps the
        // exact engine away from populations it was never sized for.
        for engine in [cell.engines.0, cell.engines.1] {
            let trials = if engine == Engine::Exact { 2 } else { 4 };
            let spec = cell
                .spec
                .clone()
                .with_engine(engine)
                .with_trials(trials)
                .with_seed(0xBCA57 ^ i as u64);
            assert_spec_matches_legacy(&spec, &format!("broadcast grid cell {i} ({engine:?})"));
        }
    }
}

#[test]
fn registry_entries_match_legacy() {
    let entries = registry();
    assert!(!entries.is_empty(), "registry must not be empty");
    for entry in &entries {
        // The 10^6 scale-ceiling entry takes ~70 s per trial even on the
        // cohort engine; replaying it through both paths would dominate
        // the whole suite. Its engine dispatch is the same code path the
        // n = 65536 entry certifies below, and the perf harness asserts
        // its batch determinism end-to-end on every run.
        if let Workload::Broadcast(w) = &entry.spec.workload {
            if w.n > 65_536 {
                continue;
            }
        }
        // Stream entries predate no legacy entry point — there is nothing
        // to replay. Their determinism and re-arm equivalence are pinned
        // by `crates/sim/tests/rearm_equivalence.rs`.
        if matches!(entry.spec.workload, Workload::Stream(_)) {
            continue;
        }
        // Registry trial counts are sized for perf runs; cap them so the
        // equivalence check stays cheap while still folding a multi-trial
        // checksum. Seeds are the entries' own pinned seeds.
        let cap = match entry.spec.engine {
            Engine::Exact => 4,
            // The cohort entry runs at n = 65536; two trials still fold
            // a multi-trial checksum through both paths without
            // dominating the suite.
            Engine::CohortFast => 2,
            Engine::Fast => 8,
        };
        let spec = entry.spec.clone().with_trials(entry.spec.trials.min(cap));
        assert_spec_matches_legacy(&spec, entry.name);
    }
}

// ---------------------------------------------------------------------------
// Empty fault plan ≡ clean path
// ---------------------------------------------------------------------------

proptest! {
    /// A duel spec carrying `FaultPlan::none()` replays the *clean*
    /// (pre-faults) entry point bit for bit, and leaves the caller's RNG
    /// in the identical stream position.
    #[test]
    fn empty_fault_plan_spec_is_byte_identical_to_clean_duel(
        seed in any::<u64>(),
        budget in 0u64..4096,
    ) {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 6))
            .with_adversary(AdversarySpec::Budgeted { budget, fraction: 1.0 })
            .with_faults(FaultPlan::none())
            .with_seed(seed);

        let mut rng_spec = RcbRng::new(seed);
        let via_spec = spec.run(&mut rng_spec);

        let mut rng_clean = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let clean = run_duel(
            &Fig1Profile::with_start_epoch(0.1, 6),
            &mut adv,
            &mut rng_clean,
            DuelConfig::default(),
        );

        match via_spec {
            Ok(out) => prop_assert_eq!(out.into_duel(), clean),
            Err(_) => prop_assert!(clean.truncated, "spec errored but clean run completed"),
        }
        prop_assert_eq!(rng_spec, rng_clean, "RNG stream position must match");
    }

    /// Broadcast flavor of the same invariant, at a small fixed `n`.
    #[test]
    fn empty_fault_plan_spec_is_byte_identical_to_clean_broadcast(
        seed in any::<u64>(),
        budget in 0u64..2048,
    ) {
        let spec = ScenarioSpec::broadcast(5)
            .with_adversary(AdversarySpec::Budgeted { budget, fraction: 1.0 })
            .with_faults(FaultPlan::none())
            .with_seed(seed);
        let params = match &spec.workload {
            Workload::Broadcast(w) => w.params,
            _ => unreachable!(),
        };

        let mut rng_spec = RcbRng::new(seed);
        let via_spec = spec.run(&mut rng_spec);

        let mut rng_clean = RcbRng::new(seed);
        let mut adv = BudgetedRepBlocker::new(budget, 1.0);
        let clean = run_broadcast(&params, 5, &mut adv, &mut rng_clean, FastConfig::default());

        match via_spec {
            Ok(out) => prop_assert_eq!(out.into_broadcast(), clean),
            Err(_) => prop_assert!(clean.truncated, "spec errored but clean run completed"),
        }
        prop_assert_eq!(rng_spec, rng_clean, "RNG stream position must match");
    }
}
