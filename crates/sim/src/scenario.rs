//! Declarative scenario layer: one canonical description of "a run".
//!
//! Every consumer of the engines — the `rcbsim` CLI, the experiment
//! drivers' sweeps, the conformance grid, the perf grid — used to
//! re-invent its own ad-hoc bundle of (protocol, engine, params,
//! adversary, faults, seeds). A [`ScenarioSpec`] replaces all of them: it
//! names the workload, the engine, the adversary policy, the fault plan,
//! and the seed policy, and exposes one checked run path
//! ([`ScenarioSpec::run`]) plus a [`run_trials`]-integrated batch form
//! ([`ScenarioSpec::run_batch`]).
//!
//! The run paths call the *same* engine cores as the legacy
//! `run_{duel,exact,broadcast}*` entry points with the same argument
//! values and the same RNG stream usage, so a spec run is **bit-identical**
//! to the legacy call it subsumes (certified by the golden equivalence
//! suite in `crates/sim/tests/scenario_equivalence.rs`).
//!
//! ## Seed policy
//!
//! * Trial `i` of a batch draws its RNG from
//!   `SeedSequence::new(master).rng(i)` — exactly what [`run_trials`]
//!   derives, so batch results are independent of thread count.
//! * Seeded adversaries (the [`AdversarySpec::Random`] policy) receive
//!   `master ^ i` per trial ([`SeedPolicy::adversary_seed`]), matching the
//!   CLI's historical `seed ^ i` derivation.
//! * The conformance differ's fast-engine batch must not share trial
//!   streams with the exact batch; it salts the master seed with
//!   [`FAST_STREAM_SALT`].
//!
//! ## Registry
//!
//! The perf grid's pinned scenarios are published as named registry
//! entries ([`registry`]); `rcbsim scenario list` / `rcbsim scenario run
//! <name>` expose them from the CLI. Adding a protocol, engine, or
//! adversary now costs one registry entry instead of one change per
//! consumer.

use std::fmt;

use rcb_adversary::rep_strategies::{BudgetedRepBlocker, KeepAliveBlocker, NoJamRep, RandomRep};
use rcb_adversary::traits::RepetitionAdversary;
use rcb_adversary::RepAsSlotAdversary;
use rcb_baselines::ksy::KsyProfile;
use rcb_channel::partition::Partition;
use rcb_core::one_to_n::{OneToNParams, OneToNSchedule, OneToNSlotNode};
use rcb_core::one_to_one::profile::{DuelProfile, Fig1Profile};
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};
use rcb_core::protocol::SlotProtocol;
use rcb_mathkit::rng::RcbRng;

use crate::cohort::{run_cohort_core, CohortConfig, CohortSession, CohortStats};
use crate::deadline::Deadline;
use crate::duel::{run_duel_core, DuelConfig};
use crate::error::SimError;
use crate::exact::{run_exact_core, ExactConfig};
use crate::fast::{run_broadcast_core, BroadcastObserver, BroadcastSession, FastConfig};
use crate::faults::FaultPlan;
use crate::json::Json;
use crate::outcome::{BroadcastOutcome, DuelOutcome, StreamOutcome};
use crate::runner::{run_trials, Parallelism};
use crate::session::{ExactBroadcastSession, Session};

/// Salt for RNG streams that must not correlate with the master-seeded
/// batch (the conformance differ's fast-engine side). The constant is the
/// 64-bit golden-ratio increment; any fixed odd constant would do — what
/// matters is that it is pinned, because recorded baselines depend on it.
pub const FAST_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt for the cohort engine's conformance batches, for the same reason
/// as [`FAST_STREAM_SALT`]: all three engines consume different amounts of
/// randomness per trial, so each needs an uncorrelated stream. (This is
/// the golden-ratio constant multiplied by 3, an arbitrary pinned odd
/// word.)
pub const COHORT_STREAM_SALT: u64 = 0xdaa6_6d2c_7ddf_743f;

/// FNV-1a offset basis; the perf grid's checksums start here.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `words` into an FNV-1a hash byte-wise (little-endian), starting
/// from `h`. This is the exact fold the perf grid has always recorded, so
/// checksums in historical `BENCH_*.json` files stay comparable.
pub fn fnv1a(mut h: u64, words: &[u64]) -> u64 {
    for &w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Byte-granular FNV-1a fold — the same hash as [`fnv1a`] applied to a raw
/// byte stream. Used for spec fingerprints and journal record checksums,
/// where the payload is canonical JSON text rather than a word sequence.
pub fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// Which 1-to-1 protocol a duel workload runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DuelProtocol {
    /// The paper's Figure 1 profile at tolerance `epsilon`.
    Fig1 { epsilon: f64, start_epoch: u32 },
    /// The KSY 2012 golden-ratio baseline.
    Ksy { start_epoch: u32 },
}

impl DuelProtocol {
    pub fn fig1(epsilon: f64, start_epoch: u32) -> Self {
        Self::Fig1 {
            epsilon,
            start_epoch,
        }
    }

    /// KSY at its default start epoch (4).
    pub fn ksy() -> Self {
        Self::Ksy { start_epoch: 4 }
    }

    pub fn start_epoch(&self) -> u32 {
        match *self {
            Self::Fig1 { start_epoch, .. } | Self::Ksy { start_epoch } => start_epoch,
        }
    }
}

impl fmt::Display for DuelProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fig1 {
                epsilon,
                start_epoch,
            } => write!(f, "fig1(ε={epsilon}, i₀={start_epoch})"),
            Self::Ksy { start_epoch } => write!(f, "ksy(i₀={start_epoch})"),
        }
    }
}

/// A 1-to-1 workload: two parties dueling over one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuelWorkload {
    pub protocol: DuelProtocol,
    /// Fast-engine slot cap ([`DuelConfig::max_slots`]).
    pub max_slots: u64,
    /// Exact-engine slot cap ([`ExactConfig::max_slots`]).
    pub exact_max_slots: u64,
}

/// A 1-to-n workload: `n` nodes, the nodes in `sources` start informed.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastWorkload {
    pub params: OneToNParams,
    pub n: usize,
    pub sources: Vec<usize>,
    /// Fast-engine epoch cap ([`FastConfig::max_epoch`]).
    pub max_epoch: u32,
    /// Exact-engine slot cap. Defaults to the conformance grid's
    /// 40 M-slot budget (broadcast cells are tiny; the duel default of
    /// 100 M would let a wedged cell run for minutes).
    pub exact_max_slots: u64,
}

/// The arrival process feeding a [`StreamWorkload`]'s queue. Every
/// variant is deterministic given the trial RNG: arrivals are generated
/// from the trial stream *before* any per-message execution, so the
/// schedule is identical across engines.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Memoryless arrivals at `rate` messages per slot (exponential
    /// inter-arrival gaps, rounded up to whole slots, minimum gap 1).
    Poisson { rate: f64 },
    /// `size` messages land together every `period` slots, starting at
    /// slot 0 — the adversarial "thundering herd" pattern.
    Burst { period: u64, size: u64 },
    /// An explicit adversarial schedule: sorted arrival slots, all below
    /// the horizon.
    Schedule { arrivals: Vec<u64> },
}

impl ArrivalSpec {
    /// Materializes the arrival slots within `[0, horizon)`. Only the
    /// Poisson process consumes randomness.
    pub fn generate(&self, horizon: u64, rng: &mut RcbRng) -> Vec<u64> {
        match self {
            ArrivalSpec::Poisson { rate } => {
                let mut out = Vec::new();
                let mut t = 0u64;
                loop {
                    // 1 - f64() lies in (0, 1], so the log is finite.
                    let gap = (-(1.0 - rng.f64()).ln() / rate).ceil();
                    t = t.saturating_add((gap as u64).max(1));
                    if t >= horizon {
                        return out;
                    }
                    out.push(t);
                }
            }
            ArrivalSpec::Burst { period, size } => {
                let mut out = Vec::new();
                let mut t = 0u64;
                while t < horizon {
                    out.extend(std::iter::repeat_n(t, *size as usize));
                    t = t.saturating_add(*period);
                }
                out
            }
            ArrivalSpec::Schedule { arrivals } => arrivals.clone(),
        }
    }
}

impl fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalSpec::Poisson { rate } => write!(f, "poisson(λ={rate})"),
            ArrivalSpec::Burst { period, size } => write!(f, "burst({size}/{period})"),
            ArrivalSpec::Schedule { arrivals } => write!(f, "schedule({} msgs)", arrivals.len()),
        }
    }
}

/// How the jammer's budget is allocated across a stream's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamAlloc {
    /// One budget spans the whole stream: the adversary built at trial
    /// start drains monotonically across messages (the paper's model —
    /// total spend `T` is what resource-competitiveness charges against).
    Persistent,
    /// The adversary is re-armed (budget refilled, learning state and
    /// internal RNG reset) before every message — an adversary who can
    /// bring its full budget to bear on each broadcast.
    PerMessage,
}

/// A queue-driven streaming workload: messages arrive by `arrival` over
/// `[0, horizon)` slots and drain FIFO through a single re-armed broadcast
/// session ([`crate::session`]). One trial = one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamWorkload {
    pub params: OneToNParams,
    pub n: usize,
    pub sources: Vec<usize>,
    /// Fast/cohort per-message epoch cap ([`FastConfig::max_epoch`]).
    pub max_epoch: u32,
    /// Exact-engine per-message slot cap.
    pub exact_max_slots: u64,
    /// The arrival process.
    pub arrival: ArrivalSpec,
    /// Arrival window in slots; service may run past it.
    pub horizon: u64,
    /// Jammer budget allocation policy.
    pub alloc: StreamAlloc,
}

/// What the scenario simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    Duel(DuelWorkload),
    Broadcast(BroadcastWorkload),
    Stream(StreamWorkload),
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::Duel(w) => write!(f, "duel {}", w.protocol),
            Workload::Broadcast(w) => write!(f, "broadcast n={}", w.n),
            Workload::Stream(w) => write!(f, "stream n={} {}", w.n, w.arrival),
        }
    }
}

/// Which engine family executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Event-sampling engines ([`crate::duel`], [`crate::fast`]): agree
    /// with [`Exact`](Engine::Exact) in distribution, orders of magnitude
    /// faster.
    Fast,
    /// The slot-by-slot reference engine ([`crate::exact`]).
    Exact,
    /// The population-compressed engine ([`crate::cohort`]): broadcast
    /// workloads only, `O(active cohorts)` per repetition instead of
    /// `O(n)` — the large-n (10^4…10^6) engine. Agrees with the others in
    /// distribution up to the approximations documented on
    /// [`crate::cohort`].
    CohortFast,
}

// ---------------------------------------------------------------------------
// Adversary
// ---------------------------------------------------------------------------

/// An adversary policy every engine can run (promoted here from
/// `conformance::differ`, which re-exports it for compatibility). Each
/// trial gets a **fresh** instance via [`AdversarySpec::build`] (budgets
/// reset), so trials stay i.i.d.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversarySpec {
    /// No jamming (`T = 0`).
    NoJam,
    /// [`BudgetedRepBlocker`]: jam a `fraction`-suffix of every repetition
    /// while the budget lasts.
    Budgeted { budget: u64, fraction: f64 },
    /// [`KeepAliveBlocker`]: jam only odd repetitions, keeping the victims
    /// active for longer.
    KeepAlive { budget: u64, fraction: f64 },
    /// [`RandomRep`]: jam each repetition independently at `rate`. The only
    /// seeded policy; [`build`](AdversarySpec::build) hands it the seed.
    Random { budget: u64, rate: f64 },
}

impl AdversarySpec {
    /// A fresh strategy instance with its full budget. `seed` feeds the
    /// internally-randomised policies ([`AdversarySpec::Random`]) and is
    /// ignored by the deterministic ones; batch paths pass
    /// [`SeedPolicy::adversary_seed`] so each trial's adversary coin flips
    /// are independent.
    pub fn build(&self, seed: u64) -> Box<dyn RepetitionAdversary> {
        match *self {
            AdversarySpec::NoJam => Box::new(NoJamRep),
            AdversarySpec::Budgeted { budget, fraction } => {
                Box::new(BudgetedRepBlocker::new(budget, fraction))
            }
            AdversarySpec::KeepAlive { budget, fraction } => {
                Box::new(KeepAliveBlocker::new(budget, fraction))
            }
            AdversarySpec::Random { budget, rate } => Box::new(RandomRep::new(rate, budget, seed)),
        }
    }

    /// The policy's jamming budget (`0` for [`NoJam`](AdversarySpec::NoJam)).
    pub fn budget(&self) -> u64 {
        match *self {
            AdversarySpec::NoJam => 0,
            AdversarySpec::Budgeted { budget, .. }
            | AdversarySpec::KeepAlive { budget, .. }
            | AdversarySpec::Random { budget, .. } => budget,
        }
    }

    /// The same policy with a different budget — the sweep axis mutation.
    /// [`NoJam`](AdversarySpec::NoJam) stays `NoJam` (it has no budget).
    pub fn with_budget(self, budget: u64) -> Self {
        match self {
            AdversarySpec::NoJam => AdversarySpec::NoJam,
            AdversarySpec::Budgeted { fraction, .. } => {
                AdversarySpec::Budgeted { budget, fraction }
            }
            AdversarySpec::KeepAlive { fraction, .. } => {
                AdversarySpec::KeepAlive { budget, fraction }
            }
            AdversarySpec::Random { rate, .. } => AdversarySpec::Random { budget, rate },
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversarySpec::NoJam => write!(f, "T=0"),
            AdversarySpec::Budgeted { budget, fraction } => {
                write!(f, "blocker(T={budget}, q={fraction})")
            }
            AdversarySpec::KeepAlive { budget, fraction } => {
                write!(f, "keepalive(T={budget}, q={fraction})")
            }
            AdversarySpec::Random { budget, rate } => {
                write!(f, "random(T={budget}, q={rate})")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Seed policy
// ---------------------------------------------------------------------------

/// Deterministic seed derivation for a scenario's trial batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedPolicy {
    /// Master seed; trial `i` runs on `SeedSequence::new(master).rng(i)`.
    pub master: u64,
}

impl SeedPolicy {
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Per-trial seed for internally-randomised adversaries: `master ^ i`
    /// (the CLI's historical derivation, kept for bit-compatibility).
    pub fn adversary_seed(&self, trial: u64) -> u64 {
        self.master ^ trial
    }
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

/// The canonical, declarative description of a simulation run (or a batch
/// of them). Construct with [`ScenarioSpec::duel`] /
/// [`ScenarioSpec::broadcast`], refine with the `with_*` builders, execute
/// with [`run`](ScenarioSpec::run) / [`run_batch`](ScenarioSpec::run_batch).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    pub workload: Workload,
    pub engine: Engine,
    pub adversary: AdversarySpec,
    pub faults: FaultPlan,
    pub seeds: SeedPolicy,
    /// Batch size for [`run_batch`](ScenarioSpec::run_batch).
    pub trials: u64,
    pub parallelism: Parallelism,
}

impl ScenarioSpec {
    /// A fast-engine duel scenario with engine-default caps, no jamming,
    /// no faults, seed 2014, one trial.
    pub fn duel(protocol: DuelProtocol) -> Self {
        Self {
            workload: Workload::Duel(DuelWorkload {
                protocol,
                max_slots: DuelConfig::default().max_slots,
                exact_max_slots: ExactConfig::default().max_slots,
            }),
            engine: Engine::Fast,
            adversary: AdversarySpec::NoJam,
            faults: FaultPlan::none(),
            seeds: SeedPolicy::new(2014),
            trials: 1,
            parallelism: Parallelism::Auto,
        }
    }

    /// A fast-engine 1-to-n scenario over `OneToNParams::practical()`.
    pub fn broadcast(n: usize) -> Self {
        Self::broadcast_with(OneToNParams::practical(), n)
    }

    /// A fast-engine 1-to-n scenario over explicit params; node 0 is the
    /// source.
    pub fn broadcast_with(params: OneToNParams, n: usize) -> Self {
        Self {
            workload: Workload::Broadcast(BroadcastWorkload {
                params,
                n,
                sources: vec![0],
                max_epoch: FastConfig::default().max_epoch,
                exact_max_slots: 40_000_000,
            }),
            engine: Engine::Fast,
            adversary: AdversarySpec::NoJam,
            faults: FaultPlan::none(),
            seeds: SeedPolicy::new(2014),
            trials: 1,
            parallelism: Parallelism::Auto,
        }
    }

    /// A fast-engine streaming scenario over `OneToNParams::practical()`:
    /// node 0 is the source of every message, one persistent jammer budget
    /// spans the stream.
    pub fn stream(n: usize, arrival: ArrivalSpec, horizon: u64) -> Self {
        Self {
            workload: Workload::Stream(StreamWorkload {
                params: OneToNParams::practical(),
                n,
                sources: vec![0],
                max_epoch: FastConfig::default().max_epoch,
                exact_max_slots: 40_000_000,
                arrival,
                horizon,
                alloc: StreamAlloc::Persistent,
            }),
            engine: Engine::Fast,
            adversary: AdversarySpec::NoJam,
            faults: FaultPlan::none(),
            seeds: SeedPolicy::new(2014),
            trials: 1,
            parallelism: Parallelism::Auto,
        }
    }

    /// Sets the jammer allocation policy on a stream workload (no-op on
    /// the other workloads).
    pub fn with_stream_alloc(mut self, alloc: StreamAlloc) -> Self {
        if let Workload::Stream(w) = &mut self.workload {
            w.alloc = alloc;
        }
        self
    }

    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    pub fn with_seed(mut self, master: u64) -> Self {
        self.seeds = SeedPolicy::new(master);
        self
    }

    pub fn with_trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Checks the spec's cross-field invariants (fault plan validity,
    /// source bounds, adversary parameter ranges). The run paths enforce
    /// the same invariants by assertion; `validate` exists so front ends
    /// (the CLI) can surface a readable error instead of a panic.
    pub fn validate(&self) -> Result<(), String> {
        self.faults.validate().map_err(|e| e.to_string())?;
        if self.engine == Engine::CohortFast && matches!(self.workload, Workload::Duel(_)) {
            return Err("the cohort engine supports only broadcast workloads".into());
        }
        let check_population = |n: usize, sources: &[usize]| -> Result<(), String> {
            if n == 0 {
                return Err("broadcast workload needs at least one node".into());
            }
            if sources.is_empty() {
                return Err("broadcast workload needs at least one source".into());
            }
            if let Some(&s) = sources.iter().find(|&&s| s >= n) {
                return Err(format!("source id {s} out of range (n = {n})"));
            }
            Ok(())
        };
        match &self.workload {
            Workload::Duel(_) => {}
            Workload::Broadcast(w) => check_population(w.n, &w.sources)?,
            Workload::Stream(w) => {
                check_population(w.n, &w.sources)?;
                if w.horizon == 0 {
                    return Err("stream workload needs a horizon of at least one slot".into());
                }
                match &w.arrival {
                    ArrivalSpec::Poisson { rate } => {
                        if !(*rate > 0.0 && *rate <= 1.0) {
                            return Err(format!("poisson arrival rate {rate} outside (0, 1]"));
                        }
                    }
                    ArrivalSpec::Burst { period, size } => {
                        if *period == 0 || *size == 0 {
                            return Err("burst arrivals need period ≥ 1 and size ≥ 1".into());
                        }
                    }
                    ArrivalSpec::Schedule { arrivals } => {
                        if arrivals.is_empty() {
                            return Err("scheduled arrivals must list at least one slot".into());
                        }
                        if !arrivals.windows(2).all(|p| p[0] <= p[1]) {
                            return Err("scheduled arrivals must be sorted".into());
                        }
                        if arrivals.last().copied().unwrap_or(0) >= w.horizon {
                            return Err("scheduled arrivals must lie below the horizon".into());
                        }
                    }
                }
            }
        }
        match self.adversary {
            AdversarySpec::Budgeted { fraction, .. }
            | AdversarySpec::KeepAlive { fraction, .. }
                if !(0.0..=1.0).contains(&fraction) =>
            {
                Err(format!("blocking fraction {fraction} outside [0, 1]"))
            }
            AdversarySpec::Random { rate, .. } if !(0.0..1.0).contains(&rate) => {
                Err(format!("random jamming rate {rate} outside [0, 1)"))
            }
            _ => Ok(()),
        }
    }

    /// The engine label recorded in `BENCH_*.json` files (pinned: renaming
    /// a label would orphan the perf history).
    pub fn engine_label(&self) -> &'static str {
        match (&self.engine, &self.workload) {
            (Engine::Fast, Workload::Duel(_)) => "duel-fast",
            // Streams reuse the broadcast labels: the engine doing the
            // work is the same, and the workload kind is already visible
            // in the scenario name / spec JSON.
            (Engine::Fast, Workload::Broadcast(_) | Workload::Stream(_)) => "broadcast-fast",
            (Engine::Exact, _) => "exact",
            // `validate` rejects (CohortFast, Duel), so the label is
            // unconditionally the broadcast one.
            (Engine::CohortFast, _) => "broadcast-cohort",
        }
    }

    // -- run paths ----------------------------------------------------------

    /// Runs the scenario once on the caller's RNG. Truncation (an engine
    /// cap) surfaces as a typed [`SimError`]; the spec's trial index is 0
    /// for adversary-seed purposes.
    pub fn run(&self, rng: &mut RcbRng) -> Result<Outcome, SimError> {
        self.run_trial(0, rng)
    }

    /// [`run`](Self::run) for an explicit trial index (the index feeds
    /// seeded adversaries via [`SeedPolicy::adversary_seed`]).
    pub fn run_trial(&self, trial: u64, rng: &mut RcbRng) -> Result<Outcome, SimError> {
        match self.run_trial_raw(trial, rng) {
            (outcome, None) => Ok(outcome),
            (_, Some(err)) => Err(err),
        }
    }

    /// Tolerant form: returns the (possibly truncated) outcome *and* the
    /// error. The conformance differ samples truncated runs too — a cap is
    /// data about the engine, not a failure of the comparison.
    pub fn run_trial_raw(&self, trial: u64, rng: &mut RcbRng) -> (Outcome, Option<SimError>) {
        self.run_trial_ctl(trial, rng, &Deadline::NONE)
    }

    /// [`run_trial_raw`](Self::run_trial_raw) under a cooperative
    /// [`Deadline`]: the engine's slot loop checks it (without consuming
    /// RNG) and cuts the trial off with [`SimError::DeadlineExceeded`] and
    /// a partial outcome. An unbounded deadline is byte-identical to the
    /// raw path. Deadline-cut outcomes are wall-clock dependent and must
    /// never be journaled.
    pub fn run_trial_ctl(
        &self,
        trial: u64,
        rng: &mut RcbRng,
        deadline: &Deadline,
    ) -> (Outcome, Option<SimError>) {
        debug_assert!(self.validate().is_ok(), "invalid scenario spec");
        match (&self.workload, self.engine) {
            (Workload::Duel(w), Engine::Fast) => {
                let mut adv = self.adversary.build(self.seeds.adversary_seed(trial));
                let config = DuelConfig {
                    max_slots: w.max_slots,
                };
                let (out, err) = match w.protocol {
                    DuelProtocol::Fig1 {
                        epsilon,
                        start_epoch,
                    } => run_duel_core(
                        &Fig1Profile::with_start_epoch(epsilon, start_epoch),
                        adv.as_mut(),
                        rng,
                        config,
                        &self.faults,
                        deadline,
                    ),
                    DuelProtocol::Ksy { start_epoch } => run_duel_core(
                        &KsyProfile::with_start_epoch(start_epoch),
                        adv.as_mut(),
                        rng,
                        config,
                        &self.faults,
                        deadline,
                    ),
                };
                (Outcome::Duel(out), err)
            }
            (Workload::Duel(w), Engine::Exact) => {
                let adv = self.adversary.build(self.seeds.adversary_seed(trial));
                match w.protocol {
                    DuelProtocol::Fig1 {
                        epsilon,
                        start_epoch,
                    } => self.exact_duel(
                        Fig1Profile::with_start_epoch(epsilon, start_epoch),
                        w,
                        adv,
                        rng,
                        deadline,
                    ),
                    DuelProtocol::Ksy { start_epoch } => self.exact_duel(
                        KsyProfile::with_start_epoch(start_epoch),
                        w,
                        adv,
                        rng,
                        deadline,
                    ),
                }
            }
            (Workload::Broadcast(w), Engine::Fast) => {
                let mut adv = self.adversary.build(self.seeds.adversary_seed(trial));
                let (out, err) = run_broadcast_core(
                    &w.params,
                    w.n,
                    &w.sources,
                    adv.as_mut(),
                    rng,
                    FastConfig {
                        max_epoch: w.max_epoch,
                    },
                    &mut (),
                    &self.faults,
                    deadline,
                );
                (Outcome::Broadcast(out), err)
            }
            (Workload::Broadcast(w), Engine::Exact) => {
                let adv = self.adversary.build(self.seeds.adversary_seed(trial));
                self.exact_broadcast(w, adv, rng, deadline)
            }
            (Workload::Broadcast(w), Engine::CohortFast) => {
                let mut adv = self.adversary.build(self.seeds.adversary_seed(trial));
                let (out, err) = run_cohort_core(
                    &w.params,
                    w.n,
                    &w.sources,
                    adv.as_mut(),
                    rng,
                    CohortConfig {
                        max_epoch: w.max_epoch,
                        ..CohortConfig::default()
                    },
                    &self.faults,
                    deadline,
                    &mut CohortStats::default(),
                );
                (Outcome::Broadcast(out), err)
            }
            (Workload::Stream(w), _) => {
                let mut adv = self.adversary.build(self.seeds.adversary_seed(trial));
                let (out, err) = self.run_stream(w, adv.as_mut(), rng, deadline);
                (Outcome::Stream(out), err)
            }
            (Workload::Duel(_), Engine::CohortFast) => {
                unreachable!("validate() rejects duel workloads on the cohort engine")
            }
        }
    }

    /// Queue-driven streaming run: builds the engine's session once, then
    /// drains the arrival queue FIFO through it, re-arming between
    /// messages. The arrival schedule is drawn from the trial stream
    /// *before* any per-message execution, so it is engine-independent;
    /// each message then gets a fresh per-message seed from the same
    /// stream, making a stream trial exactly reproducible.
    fn run_stream(
        &self,
        w: &StreamWorkload,
        adversary: &mut dyn RepetitionAdversary,
        rng: &mut RcbRng,
        deadline: &Deadline,
    ) -> (StreamOutcome, Option<SimError>) {
        let arrivals = w.arrival.generate(w.horizon, rng);
        match self.engine {
            Engine::Fast => {
                let mut session = BroadcastSession::new(
                    w.params,
                    w.n,
                    w.sources.clone(),
                    FastConfig {
                        max_epoch: w.max_epoch,
                    },
                    self.faults,
                    0,
                );
                stream_loop(w, &arrivals, &mut session, adversary, rng, deadline)
            }
            Engine::Exact => {
                let mut session = ExactBroadcastSession::new(
                    w.params,
                    w.n,
                    w.sources.clone(),
                    ExactConfig {
                        max_slots: w.exact_max_slots,
                    },
                    self.faults,
                    0,
                );
                stream_loop(w, &arrivals, &mut session, adversary, rng, deadline)
            }
            Engine::CohortFast => {
                let mut session = CohortSession::new(
                    w.params,
                    w.n,
                    w.sources.clone(),
                    CohortConfig {
                        max_epoch: w.max_epoch,
                        ..CohortConfig::default()
                    },
                    self.faults,
                    0,
                );
                stream_loop(w, &arrivals, &mut session, adversary, rng, deadline)
            }
        }
    }

    /// Exact-engine duel: drives the slot-level protocol pair and converts
    /// the ledger into a [`DuelOutcome`]. Slot-granular bookkeeping the
    /// exact engine does not track is left at its zero value and documented
    /// on [`Outcome`].
    fn exact_duel<P: DuelProfile + Copy>(
        &self,
        profile: P,
        w: &DuelWorkload,
        adversary: Box<dyn RepetitionAdversary>,
        rng: &mut RcbRng,
        deadline: &Deadline,
    ) -> (Outcome, Option<SimError>) {
        let mut alice = AliceProtocol::new(profile);
        let mut bob = BobProtocol::new(profile);
        let schedule = DuelSchedule::new(profile.start_epoch());
        let partition = Partition::pair();
        let mut adv = RepAsSlotAdversary::duel(adversary);
        let (out, err) = run_exact_core(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig {
                max_slots: w.exact_max_slots,
            },
            None,
            &self.faults,
            deadline,
        );
        let delivered = bob.received_message();
        (
            Outcome::Duel(DuelOutcome {
                delivered,
                bob_premature: !delivered && out.completed,
                alice_cost: out.ledger.node_cost(0),
                bob_cost: out.ledger.node_cost(1),
                adversary_cost: out.ledger.adversary_cost(),
                slots: out.slots,
                delivery_slot: None, // not tracked at ledger granularity
                last_epoch: 0,       // not tracked by the exact engine
                truncated: !out.completed,
            }),
            err,
        )
    }

    /// Exact-engine broadcast: one [`OneToNSlotNode`] per node, informed
    /// iff listed in `sources`.
    fn exact_broadcast(
        &self,
        w: &BroadcastWorkload,
        adversary: Box<dyn RepetitionAdversary>,
        rng: &mut RcbRng,
        deadline: &Deadline,
    ) -> (Outcome, Option<SimError>) {
        let mut nodes: Vec<OneToNSlotNode> = (0..w.n)
            .map(|u| OneToNSlotNode::new(w.params, w.sources.contains(&u)))
            .collect();
        let mut refs: Vec<&mut dyn SlotProtocol> = Vec::new();
        for node in nodes.iter_mut() {
            refs.push(node);
        }
        let schedule = OneToNSchedule::new(w.params);
        let partition = Partition::uniform(w.n);
        let mut adv = RepAsSlotAdversary::broadcast(adversary, w.n);
        let (out, err) = run_exact_core(
            &mut refs,
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig {
                max_slots: w.exact_max_slots,
            },
            None,
            &self.faults,
            deadline,
        );
        let informed = nodes.iter().filter(|v| v.received_message()).count();
        (
            Outcome::Broadcast(BroadcastOutcome {
                n: w.n,
                informed,
                all_informed: informed == w.n,
                all_terminated: out.completed,
                safety_terminations: 0, // not tracked at slot granularity
                node_costs: (0..w.n).map(|u| out.ledger.node_cost(u)).collect(),
                adversary_cost: out.ledger.adversary_cost(),
                slots: out.slots,
                last_epoch: 0, // not tracked by the exact engine
                truncated: !out.completed,
            }),
            err,
        )
    }

    /// Runs `self.trials` independent executions through [`run_trials`]
    /// (deterministic per-trial streams; results independent of thread
    /// count). Truncated trials surface as `Err` entries.
    pub fn run_batch(&self) -> Vec<Result<Outcome, SimError>> {
        run_trials(
            self.trials,
            self.seeds.master,
            self.parallelism,
            |i, rng| self.run_trial(i, rng),
        )
    }

    /// Tolerant batch: every trial yields its (possibly truncated) outcome.
    pub fn run_batch_raw(&self) -> Vec<(Outcome, Option<SimError>)> {
        run_trials(
            self.trials,
            self.seeds.master,
            self.parallelism,
            |i, rng| self.run_trial_raw(i, rng),
        )
    }

    /// Single run with a per-repetition observer (calibration tooling).
    /// Tolerant like [`run_trial_raw`](Self::run_trial_raw): a truncated
    /// run still yields its partial outcome, because calibration wants the
    /// numbers *and* the cap diagnosis.
    ///
    /// # Panics
    ///
    /// Only the fast broadcast engine has an observer hook; any other
    /// (workload, engine) combination panics.
    pub fn run_observed(
        &self,
        rng: &mut RcbRng,
        observer: &mut dyn BroadcastObserver,
    ) -> (BroadcastOutcome, Option<SimError>) {
        match (&self.workload, self.engine) {
            (Workload::Broadcast(w), Engine::Fast) => {
                let mut adv = self.adversary.build(self.seeds.adversary_seed(0));
                run_broadcast_core(
                    &w.params,
                    w.n,
                    &w.sources,
                    adv.as_mut(),
                    rng,
                    FastConfig {
                        max_epoch: w.max_epoch,
                    },
                    observer,
                    &self.faults,
                    &Deadline::NONE,
                )
            }
            _ => panic!("run_observed: only the fast broadcast engine has an observer hook"),
        }
    }

    // -- checksums ----------------------------------------------------------

    /// FNV-1a fold of one outcome, in the exact word order the perf grid
    /// has always recorded for this (workload, engine). Batch checksums
    /// fold these per-trial hashes: `fnv1a(acc, &[outcome_checksum(..)])`.
    pub fn outcome_checksum(&self, outcome: &Outcome) -> u64 {
        match (outcome, self.engine) {
            (Outcome::Duel(o), Engine::Fast) => fnv1a(
                FNV_OFFSET,
                &[
                    o.alice_cost,
                    o.bob_cost,
                    o.adversary_cost,
                    o.slots,
                    o.delivered as u64,
                    o.delivery_slot.unwrap_or(u64::MAX),
                    o.last_epoch as u64,
                ],
            ),
            (Outcome::Duel(o), Engine::Exact) => fnv1a(
                FNV_OFFSET,
                &[
                    o.alice_cost,
                    o.bob_cost,
                    o.slots,
                    (!o.truncated) as u64,
                    o.delivered as u64,
                ],
            ),
            (Outcome::Duel(_), Engine::CohortFast) => {
                unreachable!("validate() rejects duel workloads on the cohort engine")
            }
            // Engine-agnostic on purpose: the broadcast word order predates
            // the cohort engine and stays pinned so fast-engine baselines
            // remain comparable.
            (Outcome::Broadcast(o), _) => {
                let h = fnv1a(
                    FNV_OFFSET,
                    &[
                        o.slots,
                        o.adversary_cost,
                        o.informed as u64,
                        o.last_epoch as u64,
                        o.safety_terminations as u64,
                    ],
                );
                fnv1a(h, &o.node_costs)
            }
            // Engine-agnostic like the broadcast order; pinned from the
            // day streams landed. Deadline-truncated streams must never
            // reach a checksum fold (they are machine-dependent).
            (Outcome::Stream(o), _) => fnv1a(
                FNV_OFFSET,
                &[
                    o.slots,
                    o.adversary_cost,
                    o.arrivals,
                    o.delivered,
                    o.truncated_msgs,
                    o.queue_area,
                    o.max_queue,
                    o.latency_p50,
                    o.latency_p95,
                    o.latency_max,
                    o.max_cost,
                ],
            ),
        }
    }

    // -- serialization ------------------------------------------------------

    /// Serializes everything that defines the scenario's *results* —
    /// workload, engine, adversary, faults, seed policy, trials.
    /// `parallelism` is deliberately excluded: the executor's seed folds
    /// make outcomes thread-count-invariant, so two runs of the same spec
    /// at different `--cpus` share a fingerprint and can resume each
    /// other's journals. `u64` fields are written as decimal strings
    /// (`Json::Num` is an `f64` and would round above 2^53).
    pub fn to_json(&self) -> Json {
        let workload = match &self.workload {
            Workload::Duel(w) => {
                let protocol = match w.protocol {
                    DuelProtocol::Fig1 {
                        epsilon,
                        start_epoch,
                    } => Json::obj(vec![
                        ("kind", Json::Str("fig1".into())),
                        ("epsilon", Json::Num(epsilon)),
                        ("start_epoch", Json::Num(f64::from(start_epoch))),
                    ]),
                    DuelProtocol::Ksy { start_epoch } => Json::obj(vec![
                        ("kind", Json::Str("ksy".into())),
                        ("start_epoch", Json::Num(f64::from(start_epoch))),
                    ]),
                };
                Json::obj(vec![
                    ("kind", Json::Str("duel".into())),
                    ("protocol", protocol),
                    ("max_slots", ju64(w.max_slots)),
                    ("exact_max_slots", ju64(w.exact_max_slots)),
                ])
            }
            Workload::Broadcast(w) => Json::obj(vec![
                ("kind", Json::Str("broadcast".into())),
                ("params", params_to_json(&w.params)),
                ("n", Json::Num(w.n as f64)),
                (
                    "sources",
                    Json::Arr(w.sources.iter().map(|&s| Json::Num(s as f64)).collect()),
                ),
                ("max_epoch", Json::Num(f64::from(w.max_epoch))),
                ("exact_max_slots", ju64(w.exact_max_slots)),
            ]),
            Workload::Stream(w) => {
                let arrival = match &w.arrival {
                    ArrivalSpec::Poisson { rate } => Json::obj(vec![
                        ("kind", Json::Str("poisson".into())),
                        ("rate", Json::Num(*rate)),
                    ]),
                    ArrivalSpec::Burst { period, size } => Json::obj(vec![
                        ("kind", Json::Str("burst".into())),
                        ("period", ju64(*period)),
                        ("size", ju64(*size)),
                    ]),
                    ArrivalSpec::Schedule { arrivals } => Json::obj(vec![
                        ("kind", Json::Str("schedule".into())),
                        (
                            "arrivals",
                            Json::Arr(arrivals.iter().map(|&a| ju64(a)).collect()),
                        ),
                    ]),
                };
                Json::obj(vec![
                    ("kind", Json::Str("stream".into())),
                    ("params", params_to_json(&w.params)),
                    ("n", Json::Num(w.n as f64)),
                    (
                        "sources",
                        Json::Arr(w.sources.iter().map(|&s| Json::Num(s as f64)).collect()),
                    ),
                    ("max_epoch", Json::Num(f64::from(w.max_epoch))),
                    ("exact_max_slots", ju64(w.exact_max_slots)),
                    ("arrival", arrival),
                    ("horizon", ju64(w.horizon)),
                    (
                        "alloc",
                        Json::Str(
                            match w.alloc {
                                StreamAlloc::Persistent => "persistent",
                                StreamAlloc::PerMessage => "per-message",
                            }
                            .into(),
                        ),
                    ),
                ])
            }
        };
        let engine = Json::Str(
            match self.engine {
                Engine::Fast => "fast",
                Engine::Exact => "exact",
                Engine::CohortFast => "cohort",
            }
            .into(),
        );
        let adversary = match self.adversary {
            AdversarySpec::NoJam => Json::obj(vec![("kind", Json::Str("nojam".into()))]),
            AdversarySpec::Budgeted { budget, fraction } => Json::obj(vec![
                ("kind", Json::Str("budgeted".into())),
                ("budget", ju64(budget)),
                ("fraction", Json::Num(fraction)),
            ]),
            AdversarySpec::KeepAlive { budget, fraction } => Json::obj(vec![
                ("kind", Json::Str("keepalive".into())),
                ("budget", ju64(budget)),
                ("fraction", Json::Num(fraction)),
            ]),
            AdversarySpec::Random { budget, rate } => Json::obj(vec![
                ("kind", Json::Str("random".into())),
                ("budget", ju64(budget)),
                ("rate", Json::Num(rate)),
            ]),
        };
        Json::obj(vec![
            ("workload", workload),
            ("engine", engine),
            ("adversary", adversary),
            ("faults", faults_to_json(&self.faults)),
            ("seed", ju64(self.seeds.master)),
            ("trials", ju64(self.trials)),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json). The deserialized spec runs
    /// at [`Parallelism::Auto`] (parallelism is not serialized).
    pub fn from_json(value: &Json) -> Result<ScenarioSpec, String> {
        let workload = value.get("workload").ok_or("spec missing `workload`")?;
        let workload = match workload.get("kind").and_then(Json::as_str) {
            Some("duel") => {
                let protocol = workload.get("protocol").ok_or("duel missing `protocol`")?;
                let start_epoch = pu32(protocol, "start_epoch")?;
                let protocol = match protocol.get("kind").and_then(Json::as_str) {
                    Some("fig1") => DuelProtocol::Fig1 {
                        epsilon: pf64(protocol, "epsilon")?,
                        start_epoch,
                    },
                    Some("ksy") => DuelProtocol::Ksy { start_epoch },
                    other => return Err(format!("unknown duel protocol kind {other:?}")),
                };
                Workload::Duel(DuelWorkload {
                    protocol,
                    max_slots: pu64(workload, "max_slots")?,
                    exact_max_slots: pu64(workload, "exact_max_slots")?,
                })
            }
            Some("broadcast") => {
                let sources = workload
                    .get("sources")
                    .and_then(Json::as_arr)
                    .ok_or("broadcast missing `sources`")?
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .map(|v| v as usize)
                            .ok_or_else(|| "bad source index".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Workload::Broadcast(BroadcastWorkload {
                    params: params_from_json(
                        workload.get("params").ok_or("broadcast missing `params`")?,
                    )?,
                    n: pu32(workload, "n")? as usize,
                    sources,
                    max_epoch: pu32(workload, "max_epoch")?,
                    exact_max_slots: pu64(workload, "exact_max_slots")?,
                })
            }
            Some("stream") => {
                let sources = workload
                    .get("sources")
                    .and_then(Json::as_arr)
                    .ok_or("stream missing `sources`")?
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .map(|v| v as usize)
                            .ok_or_else(|| "bad source index".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let arrival = workload.get("arrival").ok_or("stream missing `arrival`")?;
                let arrival = match arrival.get("kind").and_then(Json::as_str) {
                    Some("poisson") => ArrivalSpec::Poisson {
                        rate: pf64(arrival, "rate")?,
                    },
                    Some("burst") => ArrivalSpec::Burst {
                        period: pu64(arrival, "period")?,
                        size: pu64(arrival, "size")?,
                    },
                    Some("schedule") => ArrivalSpec::Schedule {
                        arrivals: arrival
                            .get("arrivals")
                            .and_then(Json::as_arr)
                            .ok_or("schedule missing `arrivals`")?
                            .iter()
                            .map(|a| {
                                a.as_str()
                                    .ok_or_else(|| "bad arrival slot".to_string())?
                                    .parse::<u64>()
                                    .map_err(|e| format!("bad arrival slot: {e}"))
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    },
                    other => return Err(format!("unknown arrival kind {other:?}")),
                };
                let alloc = match workload.get("alloc").and_then(Json::as_str) {
                    Some("persistent") => StreamAlloc::Persistent,
                    Some("per-message") => StreamAlloc::PerMessage,
                    other => return Err(format!("unknown stream alloc {other:?}")),
                };
                Workload::Stream(StreamWorkload {
                    params: params_from_json(
                        workload.get("params").ok_or("stream missing `params`")?,
                    )?,
                    n: pu32(workload, "n")? as usize,
                    sources,
                    max_epoch: pu32(workload, "max_epoch")?,
                    exact_max_slots: pu64(workload, "exact_max_slots")?,
                    arrival,
                    horizon: pu64(workload, "horizon")?,
                    alloc,
                })
            }
            other => return Err(format!("unknown workload kind {other:?}")),
        };
        let engine = match value.get("engine").and_then(Json::as_str) {
            Some("fast") => Engine::Fast,
            Some("exact") => Engine::Exact,
            Some("cohort") => Engine::CohortFast,
            other => return Err(format!("unknown engine {other:?}")),
        };
        let adversary = value.get("adversary").ok_or("spec missing `adversary`")?;
        let adversary = match adversary.get("kind").and_then(Json::as_str) {
            Some("nojam") => AdversarySpec::NoJam,
            Some("budgeted") => AdversarySpec::Budgeted {
                budget: pu64(adversary, "budget")?,
                fraction: pf64(adversary, "fraction")?,
            },
            Some("keepalive") => AdversarySpec::KeepAlive {
                budget: pu64(adversary, "budget")?,
                fraction: pf64(adversary, "fraction")?,
            },
            Some("random") => AdversarySpec::Random {
                budget: pu64(adversary, "budget")?,
                rate: pf64(adversary, "rate")?,
            },
            other => return Err(format!("unknown adversary kind {other:?}")),
        };
        let spec = ScenarioSpec {
            workload,
            engine,
            adversary,
            faults: faults_from_json(value.get("faults").ok_or("spec missing `faults`")?)?,
            seeds: SeedPolicy::new(pu64(value, "seed")?),
            trials: pu64(value, "trials")?,
            parallelism: Parallelism::Auto,
        };
        spec.validate().map_err(|e| format!("invalid spec: {e}"))?;
        Ok(spec)
    }

    /// FNV-1a over the canonical (compact) rendering of
    /// [`to_json`](Self::to_json) — the identity a journal header records.
    /// Two specs share a fingerprint iff they produce the same results.
    pub fn fingerprint(&self) -> u64 {
        fnv1a_bytes(FNV_OFFSET, self.to_json().render_compact().as_bytes())
    }
}

/// The FIFO single-server drain at the heart of a stream trial, generic
/// over the engine's session type. Message `k` starts service at
/// `max(clock, arrival_k)`; its latency is queue wait + service time.
///
/// Per-message engine caps (epoch/slot budgets) are *data*, not failures:
/// they count into `truncated_msgs`, the message still advances the
/// clock, and the stream continues. Only a wall-clock deadline aborts the
/// stream, marking the outcome `truncated` (such outcomes are
/// machine-dependent and must never be journaled).
fn stream_loop<S: Session<Outcome = BroadcastOutcome>>(
    w: &StreamWorkload,
    arrivals: &[u64],
    session: &mut S,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    deadline: &Deadline,
) -> (StreamOutcome, Option<SimError>) {
    let mut out = StreamOutcome {
        n: w.n,
        arrivals: arrivals.len() as u64,
        delivered: 0,
        truncated_msgs: 0,
        slots: 0,
        adversary_cost: 0,
        max_cost: 0,
        queue_area: 0,
        max_queue: 0,
        latency_p50: 0,
        latency_p95: 0,
        latency_max: 0,
        truncated: false,
    };
    let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());
    let mut clock = 0u64;
    let mut stream_err = None;
    let mut seed_buf = [0u64; 1];
    for (k, &arrival) in arrivals.iter().enumerate() {
        if deadline.exceeded() {
            out.truncated = true;
            stream_err = Some(SimError::DeadlineExceeded { slots: clock });
            break;
        }
        let start = clock.max(arrival);
        // Backlog sampled as service begins: arrivals at or before `start`
        // minus the k messages already completed (includes this one).
        let backlog = arrivals[k..].iter().take_while(|&&a| a <= start).count() as u64;
        out.max_queue = out.max_queue.max(backlog);
        if w.alloc == StreamAlloc::PerMessage {
            adversary.rearm();
        }
        rng.fill_u64s(&mut seed_buf);
        session.rearm(seed_buf[0]);
        let (msg, err) = session.run(adversary, deadline);
        out.adversary_cost += msg.adversary_cost;
        out.max_cost = out.max_cost.max(msg.max_cost());
        if let Some(e) = err {
            if matches!(e, SimError::DeadlineExceeded { .. }) {
                out.truncated = true;
                stream_err = Some(SimError::DeadlineExceeded { slots: clock });
                break;
            }
            out.truncated_msgs += 1;
        }
        let completion = start + msg.slots;
        let latency = completion - arrival;
        latencies.push(latency);
        out.queue_area += latency;
        clock = completion;
        if msg.all_informed {
            out.delivered += 1;
        }
    }
    out.slots = clock.max(arrivals.last().copied().unwrap_or(0));
    latencies.sort_unstable();
    out.latency_p50 = percentile(&latencies, 50);
    out.latency_p95 = percentile(&latencies, 95);
    out.latency_max = latencies.last().copied().unwrap_or(0);
    (out, stream_err)
}

/// Nearest-rank percentile over an ascending-sorted slice (0 if empty).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

// JSON field helpers shared by the spec and outcome (de)serializers. All
// `u64` quantities travel as decimal strings — `Json::Num` is an `f64`,
// which silently rounds past 2^53 (seeds and slot counts routinely exceed
// that).
fn ju64(x: u64) -> Json {
    Json::Str(x.to_string())
}

fn pu64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing u64 field `{key}`"))?
        .parse::<u64>()
        .map_err(|e| format!("field `{key}`: {e}"))
}

fn pf64(value: &Json, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing f64 field `{key}`"))
}

fn pu32(value: &Json, key: &str) -> Result<u32, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("missing u32 field `{key}`"))
}

fn pbool(value: &Json, key: &str) -> Result<bool, String> {
    value
        .get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing bool field `{key}`"))
}

fn params_to_json(p: &OneToNParams) -> Json {
    Json::obj(vec![
        ("b", Json::Num(p.b)),
        ("rep_pow", Json::Num(f64::from(p.rep_pow))),
        ("d", Json::Num(p.d)),
        ("listen_pow", Json::Num(f64::from(p.listen_pow))),
        ("s_init", Json::Num(p.s_init)),
        ("helper_frac", Json::Num(p.helper_frac)),
        ("growth_extra_pow", Json::Num(f64::from(p.growth_extra_pow))),
        ("term_factor", Json::Num(p.term_factor)),
        ("safety_factor", Json::Num(p.safety_factor)),
        ("first_epoch", Json::Num(f64::from(p.first_epoch))),
    ])
}

fn params_from_json(value: &Json) -> Result<OneToNParams, String> {
    Ok(OneToNParams {
        b: pf64(value, "b")?,
        rep_pow: pu32(value, "rep_pow")?,
        d: pf64(value, "d")?,
        listen_pow: pu32(value, "listen_pow")?,
        s_init: pf64(value, "s_init")?,
        helper_frac: pf64(value, "helper_frac")?,
        growth_extra_pow: pu32(value, "growth_extra_pow")?,
        term_factor: pf64(value, "term_factor")?,
        safety_factor: pf64(value, "safety_factor")?,
        first_epoch: pu32(value, "first_epoch")?,
    })
}

fn faults_to_json(plan: &FaultPlan) -> Json {
    let loss = match &plan.loss {
        None => Json::Null,
        Some(l) => Json::obj(vec![("p", Json::Num(l.p))]),
    };
    let crash = match &plan.crash {
        None => Json::Null,
        Some(c) => Json::obj(vec![
            ("node", Json::Num(c.node as f64)),
            ("start_period", ju64(c.start_period)),
            ("periods", ju64(c.periods)),
            ("lose_state", Json::Bool(c.lose_state)),
        ]),
    };
    let skew = match &plan.skew {
        None => Json::Null,
        Some(s) => Json::obj(vec![
            ("node", Json::Num(s.node as f64)),
            ("slots", ju64(s.slots)),
        ]),
    };
    let battery = match &plan.battery {
        None => Json::Null,
        Some(b) => Json::obj(vec![("capacity", ju64(b.capacity))]),
    };
    Json::obj(vec![
        ("loss", loss),
        ("crash", crash),
        ("skew", skew),
        ("battery", battery),
    ])
}

fn faults_from_json(value: &Json) -> Result<FaultPlan, String> {
    let opt = |key: &str| -> Result<Option<&Json>, String> {
        match value.get(key) {
            None => Err(format!("faults missing `{key}`")),
            Some(Json::Null) => Ok(None),
            Some(v) => Ok(Some(v)),
        }
    };
    let loss = opt("loss")?
        .map(|l| Ok::<_, String>(crate::faults::LossFault { p: pf64(l, "p")? }))
        .transpose()?;
    let crash = opt("crash")?
        .map(|c| {
            Ok::<_, String>(crate::faults::CrashFault {
                node: pu32(c, "node")? as usize,
                start_period: pu64(c, "start_period")?,
                periods: pu64(c, "periods")?,
                lose_state: pbool(c, "lose_state")?,
            })
        })
        .transpose()?;
    let skew = opt("skew")?
        .map(|s| {
            Ok::<_, String>(crate::faults::SkewFault {
                node: pu32(s, "node")? as usize,
                slots: pu64(s, "slots")?,
            })
        })
        .transpose()?;
    let battery = opt("battery")?
        .map(|b| {
            Ok::<_, String>(crate::faults::BatteryFault {
                capacity: pu64(b, "capacity")?,
            })
        })
        .transpose()?;
    Ok(FaultPlan {
        loss,
        crash,
        skew,
        battery,
    })
}

// ---------------------------------------------------------------------------
// Outcome
// ---------------------------------------------------------------------------

/// Unified result of a scenario run.
///
/// Exact-engine runs convert the energy ledger into the same outcome
/// structs the fast engines produce. Fields the slot-level engine does not
/// track are left at documented zero values: `delivery_slot` is `None`,
/// `last_epoch` is 0, and broadcast `safety_terminations` is 0.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    Duel(DuelOutcome),
    Broadcast(BroadcastOutcome),
    Stream(StreamOutcome),
}

impl Outcome {
    pub fn slots(&self) -> u64 {
        match self {
            Outcome::Duel(o) => o.slots,
            Outcome::Broadcast(o) => o.slots,
            Outcome::Stream(o) => o.slots,
        }
    }

    pub fn truncated(&self) -> bool {
        match self {
            Outcome::Duel(o) => o.truncated,
            Outcome::Broadcast(o) => o.truncated,
            Outcome::Stream(o) => o.truncated,
        }
    }

    pub fn adversary_cost(&self) -> u64 {
        match self {
            Outcome::Duel(o) => o.adversary_cost,
            Outcome::Broadcast(o) => o.adversary_cost,
            Outcome::Stream(o) => o.adversary_cost,
        }
    }

    /// Max per-node cost (the resource-competitive quantity). For streams
    /// this is the max over any single message's execution.
    pub fn max_cost(&self) -> u64 {
        match self {
            Outcome::Duel(o) => o.max_cost(),
            Outcome::Broadcast(o) => o.max_cost(),
            Outcome::Stream(o) => o.max_cost,
        }
    }

    pub fn as_duel(&self) -> Option<&DuelOutcome> {
        match self {
            Outcome::Duel(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_broadcast(&self) -> Option<&BroadcastOutcome> {
        match self {
            Outcome::Broadcast(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_stream(&self) -> Option<&StreamOutcome> {
        match self {
            Outcome::Stream(o) => Some(o),
            _ => None,
        }
    }

    /// # Panics
    ///
    /// Panics on a non-duel outcome.
    pub fn into_duel(self) -> DuelOutcome {
        match self {
            Outcome::Duel(o) => o,
            _ => panic!("expected a duel outcome"),
        }
    }

    /// # Panics
    ///
    /// Panics on a non-broadcast outcome.
    pub fn into_broadcast(self) -> BroadcastOutcome {
        match self {
            Outcome::Broadcast(o) => o,
            _ => panic!("expected a broadcast outcome"),
        }
    }

    /// # Panics
    ///
    /// Panics on a non-stream outcome.
    pub fn into_stream(self) -> StreamOutcome {
        match self {
            Outcome::Stream(o) => o,
            _ => panic!("expected a stream outcome"),
        }
    }

    /// Serializes for journal record payloads; [`Outcome::from_json`]
    /// inverts losslessly (`u64` fields travel as decimal strings).
    pub fn to_json(&self) -> Json {
        match self {
            Outcome::Duel(o) => Json::obj(vec![
                ("kind", Json::Str("duel".into())),
                ("delivered", Json::Bool(o.delivered)),
                ("bob_premature", Json::Bool(o.bob_premature)),
                ("alice_cost", ju64(o.alice_cost)),
                ("bob_cost", ju64(o.bob_cost)),
                ("adversary_cost", ju64(o.adversary_cost)),
                ("slots", ju64(o.slots)),
                (
                    "delivery_slot",
                    match o.delivery_slot {
                        None => Json::Null,
                        Some(t) => ju64(t),
                    },
                ),
                ("last_epoch", Json::Num(f64::from(o.last_epoch))),
                ("truncated", Json::Bool(o.truncated)),
            ]),
            Outcome::Broadcast(o) => Json::obj(vec![
                ("kind", Json::Str("broadcast".into())),
                ("n", Json::Num(o.n as f64)),
                ("informed", Json::Num(o.informed as f64)),
                ("all_informed", Json::Bool(o.all_informed)),
                ("all_terminated", Json::Bool(o.all_terminated)),
                (
                    "safety_terminations",
                    Json::Num(o.safety_terminations as f64),
                ),
                (
                    "node_costs",
                    Json::Arr(o.node_costs.iter().map(|&c| ju64(c)).collect()),
                ),
                ("adversary_cost", ju64(o.adversary_cost)),
                ("slots", ju64(o.slots)),
                ("last_epoch", Json::Num(f64::from(o.last_epoch))),
                ("truncated", Json::Bool(o.truncated)),
            ]),
            Outcome::Stream(o) => Json::obj(vec![
                ("kind", Json::Str("stream".into())),
                ("n", Json::Num(o.n as f64)),
                ("arrivals", ju64(o.arrivals)),
                ("delivered", ju64(o.delivered)),
                ("truncated_msgs", ju64(o.truncated_msgs)),
                ("slots", ju64(o.slots)),
                ("adversary_cost", ju64(o.adversary_cost)),
                ("max_cost", ju64(o.max_cost)),
                ("queue_area", ju64(o.queue_area)),
                ("max_queue", ju64(o.max_queue)),
                ("latency_p50", ju64(o.latency_p50)),
                ("latency_p95", ju64(o.latency_p95)),
                ("latency_max", ju64(o.latency_max)),
                ("truncated", Json::Bool(o.truncated)),
            ]),
        }
    }

    /// Inverse of [`Outcome::to_json`].
    pub fn from_json(value: &Json) -> Result<Outcome, String> {
        match value.get("kind").and_then(Json::as_str) {
            Some("duel") => Ok(Outcome::Duel(DuelOutcome {
                delivered: pbool(value, "delivered")?,
                bob_premature: pbool(value, "bob_premature")?,
                alice_cost: pu64(value, "alice_cost")?,
                bob_cost: pu64(value, "bob_cost")?,
                adversary_cost: pu64(value, "adversary_cost")?,
                slots: pu64(value, "slots")?,
                delivery_slot: match value.get("delivery_slot") {
                    Some(Json::Null) => None,
                    Some(_) => Some(pu64(value, "delivery_slot")?),
                    None => return Err("duel outcome missing `delivery_slot`".into()),
                },
                last_epoch: pu32(value, "last_epoch")?,
                truncated: pbool(value, "truncated")?,
            })),
            Some("broadcast") => Ok(Outcome::Broadcast(BroadcastOutcome {
                n: pu32(value, "n")? as usize,
                informed: pu32(value, "informed")? as usize,
                all_informed: pbool(value, "all_informed")?,
                all_terminated: pbool(value, "all_terminated")?,
                safety_terminations: pu32(value, "safety_terminations")? as usize,
                node_costs: value
                    .get("node_costs")
                    .and_then(Json::as_arr)
                    .ok_or("broadcast outcome missing `node_costs`")?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .ok_or_else(|| "bad node cost".to_string())?
                            .parse::<u64>()
                            .map_err(|e| format!("bad node cost: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                adversary_cost: pu64(value, "adversary_cost")?,
                slots: pu64(value, "slots")?,
                last_epoch: pu32(value, "last_epoch")?,
                truncated: pbool(value, "truncated")?,
            })),
            Some("stream") => Ok(Outcome::Stream(StreamOutcome {
                n: pu32(value, "n")? as usize,
                arrivals: pu64(value, "arrivals")?,
                delivered: pu64(value, "delivered")?,
                truncated_msgs: pu64(value, "truncated_msgs")?,
                slots: pu64(value, "slots")?,
                adversary_cost: pu64(value, "adversary_cost")?,
                max_cost: pu64(value, "max_cost")?,
                queue_area: pu64(value, "queue_area")?,
                max_queue: pu64(value, "max_queue")?,
                latency_p50: pu64(value, "latency_p50")?,
                latency_p95: pu64(value, "latency_p95")?,
                latency_max: pu64(value, "latency_max")?,
                truncated: pbool(value, "truncated")?,
            })),
            other => Err(format!("unknown outcome kind {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named, pinned scenario — the unit the perf grid measures and the
/// `rcbsim scenario` subcommand runs. Names, parameters, and order are
/// part of the recorded baselines' meaning: the perf comparator matches by
/// name, so renaming an entry orphans its history.
#[derive(Debug, Clone)]
pub struct NamedScenario {
    pub name: &'static str,
    /// One-line human description for `rcbsim scenario list`.
    pub summary: &'static str,
    pub spec: ScenarioSpec,
}

/// The pinned scenario registry. The specs carry their perf-grid trial
/// counts; `rcbsim scenario run` and the perf harness both read them.
pub fn registry() -> Vec<NamedScenario> {
    let duel = |adversary, faults: FaultPlan, trials| {
        ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8))
            .with_adversary(adversary)
            .with_faults(faults)
            .with_trials(trials)
    };
    let bcast = |n, budget, faults: FaultPlan, trials| {
        ScenarioSpec::broadcast(n)
            .with_adversary(AdversarySpec::Budgeted {
                budget,
                fraction: 1.0,
            })
            .with_faults(faults)
            .with_trials(trials)
    };
    vec![
        NamedScenario {
            name: "duel_clean",
            summary: "fast duel, no jamming (hot-path baseline)",
            // Clean duels finish in a couple of epochs, so the count is
            // high: a perf repeat must run for ≥ ~100 ms or scheduler
            // jitter (not engine speed) dominates the measurement.
            spec: duel(AdversarySpec::NoJam, FaultPlan::none(), 30_000),
        },
        NamedScenario {
            name: "duel_jammed",
            summary: "fast duel vs 64 Ki-budget blanket blocker",
            spec: duel(
                AdversarySpec::Budgeted {
                    budget: 1 << 16,
                    fraction: 1.0,
                },
                FaultPlan::none(),
                600,
            ),
        },
        NamedScenario {
            name: "duel_jammed_faulted",
            summary: "jammed fast duel with loss 0.1 and 1-slot skew",
            spec: duel(
                AdversarySpec::Budgeted {
                    budget: 1 << 16,
                    fraction: 1.0,
                },
                FaultPlan::none().with_loss(0.1).with_skew(1, 1),
                600,
            ),
        },
        NamedScenario {
            name: "exact_duel_jammed",
            summary: "exact-engine duel vs 4 Ki-budget blocker (reference)",
            spec: duel(
                AdversarySpec::Budgeted {
                    budget: 1 << 12,
                    fraction: 1.0,
                },
                FaultPlan::none(),
                160,
            )
            .with_engine(Engine::Exact),
        },
        NamedScenario {
            name: "bcast_n8_jammed",
            summary: "fast broadcast, n=8, 100 k-budget blocker",
            spec: bcast(8, 100_000, FaultPlan::none(), 60),
        },
        NamedScenario {
            name: "bcast_n64_jammed",
            summary: "fast broadcast, n=64, 200 k-budget blocker",
            spec: bcast(64, 200_000, FaultPlan::none(), 20),
        },
        NamedScenario {
            name: "bcast_n256_jammed",
            summary: "fast broadcast, n=256, 400 k-budget blocker",
            spec: bcast(256, 400_000, FaultPlan::none(), 8),
        },
        NamedScenario {
            name: "bcast_n64_faulted",
            summary: "jammed n=64 broadcast with loss, crash-reboot, skew",
            spec: bcast(
                64,
                200_000,
                FaultPlan::none()
                    .with_loss(0.1)
                    .with_crash(3, 2, 6, true)
                    .with_skew(5, 1),
                20,
            ),
        },
        // Streaming entries: queue-driven workloads draining through one
        // re-armed session, one entry per engine so `rcbsim scenario run`
        // demonstrates streaming end-to-end everywhere.
        NamedScenario {
            name: "stream_n8_poisson",
            summary: "fast stream, n=8, Poisson arrivals vs persistent 20 k jammer",
            spec: ScenarioSpec::stream(8, ArrivalSpec::Poisson { rate: 2e-4 }, 50_000)
                .with_adversary(AdversarySpec::Budgeted {
                    budget: 20_000,
                    fraction: 1.0,
                })
                .with_trials(12),
        },
        NamedScenario {
            name: "stream_n4_exact_burst",
            summary: "exact stream, n=4, bursty arrivals, per-message 2 k jammer",
            spec: ScenarioSpec::stream(
                4,
                ArrivalSpec::Burst {
                    period: 30_000,
                    size: 2,
                },
                60_000,
            )
            .with_engine(Engine::Exact)
            .with_stream_alloc(StreamAlloc::PerMessage)
            .with_adversary(AdversarySpec::KeepAlive {
                budget: 2_000,
                fraction: 1.0,
            })
            .with_trials(4),
        },
        NamedScenario {
            name: "stream_n4096_cohort",
            summary: "cohort stream, n=4096, scheduled arrivals, persistent 50 k jammer",
            spec: ScenarioSpec::stream(
                4096,
                ArrivalSpec::Schedule {
                    arrivals: vec![0, 1_000, 2_000, 3_000],
                },
                10_000,
            )
            .with_engine(Engine::CohortFast)
            .with_adversary(AdversarySpec::Budgeted {
                budget: 50_000,
                fraction: 1.0,
            })
            .with_trials(4),
        },
        // The large-n cohort entries sit last deliberately: their heap
        // high-water marks (tens of MiB at n = 10^6) would otherwise leak
        // into the following entries' per-scenario RSS attribution on a
        // serial perf pass.
        NamedScenario {
            name: "bcast_n65536",
            summary: "cohort broadcast, n=65536, 2 M-budget blocker",
            spec: bcast(65_536, 2_000_000, FaultPlan::none(), 4).with_engine(Engine::CohortFast),
        },
        NamedScenario {
            name: "bcast_n1e6",
            summary: "cohort broadcast, n=10^6, no jamming (scale ceiling)",
            spec: ScenarioSpec::broadcast(1_000_000)
                .with_trials(2)
                .with_engine(Engine::CohortFast),
        },
    ]
}

/// Looks up a registry entry by name.
pub fn find_scenario(name: &str) -> Option<NamedScenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duel::run_duel;
    use crate::fast::run_broadcast;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let entries = registry();
        assert_eq!(entries.len(), 13);
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                assert_ne!(a.name, b.name);
            }
            let found = find_scenario(a.name).expect("registered name resolves");
            assert_eq!(found.spec, a.spec);
            assert!(a.spec.validate().is_ok(), "{}", a.name);
            assert!(!a.summary.is_empty());
        }
        assert!(find_scenario("nonexistent").is_none());
    }

    #[test]
    fn fast_duel_spec_matches_legacy_entry_point() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8)).with_adversary(
            AdversarySpec::Budgeted {
                budget: 4096,
                fraction: 1.0,
            },
        );
        for seed in 0..5 {
            let mut rng_a = RcbRng::new(seed);
            let via_spec = spec.run(&mut rng_a).expect("no cap hit").into_duel();
            let mut rng_b = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(4096, 1.0);
            let legacy = run_duel(
                &Fig1Profile::with_start_epoch(0.1, 8),
                &mut adv,
                &mut rng_b,
                DuelConfig::default(),
            );
            assert_eq!(via_spec, legacy, "seed {seed}");
            assert_eq!(rng_a, rng_b, "seed {seed}: RNG streams diverged");
        }
    }

    #[test]
    fn fast_broadcast_spec_matches_legacy_entry_point() {
        let spec = ScenarioSpec::broadcast(12).with_adversary(AdversarySpec::Budgeted {
            budget: 50_000,
            fraction: 1.0,
        });
        for seed in 0..3 {
            let mut rng_a = RcbRng::new(seed);
            let via_spec = spec.run(&mut rng_a).expect("no cap hit").into_broadcast();
            let mut rng_b = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
            let legacy = run_broadcast(
                &OneToNParams::practical(),
                12,
                &mut adv,
                &mut rng_b,
                FastConfig::default(),
            );
            assert_eq!(via_spec, legacy, "seed {seed}");
            assert_eq!(rng_a, rng_b, "seed {seed}: RNG streams diverged");
        }
    }

    #[test]
    fn exact_duel_outcome_maps_the_ledger() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.05, 6)).with_engine(Engine::Exact);
        let mut rng = RcbRng::new(7);
        let out = spec.run(&mut rng).expect("completes").into_duel();
        assert!(!out.truncated);
        assert!(out.alice_cost > 0);
        assert_eq!(out.adversary_cost, 0);
        assert_eq!(out.delivery_slot, None, "not tracked at slot granularity");
        assert_eq!(out.last_epoch, 0, "not tracked by the exact engine");
    }

    #[test]
    fn run_batch_equals_sequential_run_trial() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8))
            .with_adversary(AdversarySpec::Budgeted {
                budget: 1024,
                fraction: 1.0,
            })
            .with_trials(8)
            .with_seed(99);
        let batch = spec.run_batch();
        let sequential: Vec<_> = (0..8)
            .map(|i| {
                let mut rng = rcb_mathkit::rng::SeedSequence::new(99).rng(i);
                spec.run_trial(i, &mut rng)
            })
            .collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn empty_fault_plan_spec_is_byte_identical_to_clean_path() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8))
            .with_adversary(AdversarySpec::Budgeted {
                budget: 2048,
                fraction: 1.0,
            })
            .with_faults(FaultPlan::none());
        for seed in 0..5 {
            let mut rng_a = RcbRng::new(seed);
            let spec_out = spec.run(&mut rng_a).unwrap().into_duel();
            let mut rng_b = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(2048, 1.0);
            let clean = run_duel(
                &Fig1Profile::with_start_epoch(0.1, 8),
                &mut adv,
                &mut rng_b,
                DuelConfig::default(),
            );
            assert_eq!(spec_out, clean, "seed {seed}");
            assert_eq!(rng_a, rng_b, "seed {seed}: no extra randomness drawn");
        }
    }

    #[test]
    fn checksum_word_order_is_pinned() {
        // The fast-duel fold order is part of the recorded baselines'
        // meaning; pin it against an independently computed value.
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8));
        let out = DuelOutcome {
            delivered: true,
            bob_premature: false,
            alice_cost: 1,
            bob_cost: 2,
            adversary_cost: 3,
            slots: 4,
            delivery_slot: None,
            last_epoch: 9,
            truncated: false,
        };
        let expected = fnv1a(FNV_OFFSET, &[1, 2, 3, 4, 1, u64::MAX, 9]);
        assert_eq!(spec.outcome_checksum(&Outcome::Duel(out)), expected);
    }

    #[test]
    fn adversary_budget_axis_mutation() {
        let a = AdversarySpec::Budgeted {
            budget: 10,
            fraction: 0.5,
        };
        assert_eq!(
            a.with_budget(99),
            AdversarySpec::Budgeted {
                budget: 99,
                fraction: 0.5
            }
        );
        assert_eq!(AdversarySpec::NoJam.with_budget(99), AdversarySpec::NoJam);
        assert_eq!(a.budget(), 10);
        assert_eq!(AdversarySpec::NoJam.budget(), 0);
    }

    #[test]
    fn adversary_display_is_stable() {
        // Conformance cell names embed these renders; report archaeology
        // depends on them staying fixed.
        assert_eq!(AdversarySpec::NoJam.to_string(), "T=0");
        assert_eq!(
            AdversarySpec::Budgeted {
                budget: 512,
                fraction: 1.0
            }
            .to_string(),
            "blocker(T=512, q=1)"
        );
        assert_eq!(
            AdversarySpec::KeepAlive {
                budget: 1024,
                fraction: 1.0
            }
            .to_string(),
            "keepalive(T=1024, q=1)"
        );
        assert_eq!(
            AdversarySpec::Random {
                budget: 64,
                rate: 0.5
            }
            .to_string(),
            "random(T=64, q=0.5)"
        );
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let bad_source = {
            let mut s = ScenarioSpec::broadcast(4);
            if let Workload::Broadcast(w) = &mut s.workload {
                w.sources = vec![4];
            }
            s
        };
        assert!(bad_source.validate().is_err());
        let bad_fraction =
            ScenarioSpec::duel(DuelProtocol::ksy()).with_adversary(AdversarySpec::Budgeted {
                budget: 1,
                fraction: 1.5,
            });
        assert!(bad_fraction.validate().is_err());
        assert!(ScenarioSpec::duel(DuelProtocol::ksy()).validate().is_ok());
    }

    #[test]
    fn random_adversary_is_seed_deterministic() {
        let spec =
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8)).with_adversary(AdversarySpec::Random {
                budget: 4096,
                rate: 0.5,
            });
        let run = || {
            let mut rng = RcbRng::new(3);
            spec.run(&mut rng).unwrap().into_duel()
        };
        assert_eq!(run(), run(), "same (seed, trial) must replay exactly");
    }

    #[test]
    fn engine_labels_are_pinned() {
        assert_eq!(
            ScenarioSpec::duel(DuelProtocol::ksy()).engine_label(),
            "duel-fast"
        );
        assert_eq!(ScenarioSpec::broadcast(4).engine_label(), "broadcast-fast");
        assert_eq!(
            ScenarioSpec::broadcast(4)
                .with_engine(Engine::Exact)
                .engine_label(),
            "exact"
        );
        assert_eq!(
            ScenarioSpec::broadcast(4)
                .with_engine(Engine::CohortFast)
                .engine_label(),
            "broadcast-cohort"
        );
    }

    #[test]
    fn cohort_engine_rejects_duel_workloads() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8)).with_engine(Engine::CohortFast);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn cohort_spec_matches_legacy_entry_point() {
        let spec = ScenarioSpec::broadcast(24)
            .with_engine(Engine::CohortFast)
            .with_adversary(AdversarySpec::Budgeted {
                budget: 50_000,
                fraction: 1.0,
            });
        for seed in 0..3 {
            let mut rng_a = RcbRng::new(seed);
            let via_spec = spec.run(&mut rng_a).expect("no cap hit").into_broadcast();
            let mut rng_b = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
            let legacy = crate::cohort::run_cohort(
                &OneToNParams::practical(),
                24,
                &mut adv,
                &mut rng_b,
                CohortConfig::default(),
            );
            assert_eq!(via_spec, legacy, "seed {seed}");
            assert_eq!(rng_a, rng_b, "seed {seed}: RNG streams diverged");
        }
    }

    #[test]
    fn truncation_surfaces_as_typed_error() {
        let mut spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8)).with_adversary(
            AdversarySpec::Budgeted {
                budget: 10_000,
                fraction: 1.0,
            },
        );
        if let Workload::Duel(w) = &mut spec.workload {
            w.max_slots = 100;
        }
        let mut rng = RcbRng::new(3);
        let err = spec.run(&mut rng).expect_err("100 slots cannot finish");
        assert!(matches!(
            err,
            SimError::SlotBudgetExhausted { max_slots: 100, .. }
        ));
        // The tolerant path still hands back the truncated outcome.
        let mut rng = RcbRng::new(3);
        let (out, err) = spec.run_trial_raw(0, &mut rng);
        assert!(out.truncated());
        assert!(err.is_some());
    }

    #[test]
    fn spec_json_round_trips_for_every_registry_scenario() {
        for named in registry() {
            let spec = named.spec.clone().with_parallelism(Parallelism::Auto);
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", named.name, json.render()));
            assert_eq!(back, spec, "{} drifted through JSON", named.name);
            assert_eq!(
                back.fingerprint(),
                spec.fingerprint(),
                "{}: fingerprint is not a pure function of the spec",
                named.name
            );
        }
    }

    #[test]
    fn spec_json_round_trips_the_exotic_branches() {
        // Ksy protocol, seeded Random adversary, every fault kind — the
        // branches the registry does not exercise.
        let spec = ScenarioSpec::duel(DuelProtocol::ksy())
            .with_engine(Engine::Exact)
            .with_adversary(AdversarySpec::Random {
                budget: 4096,
                rate: 0.25,
            })
            .with_faults(
                FaultPlan::none()
                    .with_loss(0.125)
                    .with_skew(1, 3)
                    .with_battery(1 << 40),
            )
            .with_trials(17)
            .with_seed(u64::MAX - 1);
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(back, spec.clone().with_parallelism(Parallelism::Auto));
    }

    #[test]
    fn fingerprints_separate_specs_and_ignore_parallelism() {
        let base = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8)).with_seed(7);
        assert_ne!(
            base.fingerprint(),
            base.clone().with_seed(8).fingerprint(),
            "the seed is part of the work's identity"
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_trials(2).fingerprint()
        );
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_parallelism(Parallelism::Fixed(4))
                .fingerprint(),
            "thread count is a runtime concern: seed folds make outcomes \
             thread-count-invariant, so any --cpus run may share a journal"
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[10], 50), 10);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 95), 4);
        assert_eq!(percentile(&[1, 2, 3, 4], 100), 4);
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 50), 50);
        assert_eq!(percentile(&hundred, 95), 95);
    }

    #[test]
    fn arrival_specs_generate_deterministic_sorted_schedules() {
        let gen = |seed| {
            let mut rng = RcbRng::new(seed);
            ArrivalSpec::Poisson { rate: 1e-3 }.generate(100_000, &mut rng)
        };
        let a = gen(3);
        assert_eq!(a, gen(3), "poisson schedule must replay from the seed");
        assert!(!a.is_empty(), "rate 1e-3 over 100k slots should arrive");
        assert!(a.windows(2).all(|p| p[0] <= p[1]), "sorted");
        assert!(a.iter().all(|&t| t < 100_000), "inside the horizon");

        let mut rng = RcbRng::new(0);
        let burst = ArrivalSpec::Burst {
            period: 10,
            size: 2,
        }
        .generate(25, &mut rng);
        assert_eq!(burst, vec![0, 0, 10, 10, 20, 20]);
        let sched = ArrivalSpec::Schedule {
            arrivals: vec![5, 9],
        }
        .generate(25, &mut rng);
        assert_eq!(sched, vec![5, 9]);
    }

    #[test]
    fn stream_runs_on_all_three_engines_and_replays() {
        for engine in [Engine::Fast, Engine::Exact, Engine::CohortFast] {
            let spec = ScenarioSpec::stream(
                4,
                ArrivalSpec::Burst {
                    period: 30_000,
                    size: 2,
                },
                60_000,
            )
            .with_engine(engine)
            .with_adversary(AdversarySpec::Budgeted {
                budget: 2_000,
                fraction: 1.0,
            });
            assert!(spec.validate().is_ok());
            let mut rng = RcbRng::new(5);
            let out = spec.run(&mut rng).expect("stream completes").into_stream();
            assert_eq!(out.arrivals, 4, "{engine:?}");
            assert_eq!(out.delivered, 4, "{engine:?}: jamming delays, not kills");
            assert_eq!(out.truncated_msgs, 0, "{engine:?}");
            assert!(!out.truncated, "{engine:?}");
            assert!(out.max_queue >= 2, "{engine:?}: bursts of 2 queue up");
            assert!(
                out.latency_p50 <= out.latency_p95 && out.latency_p95 <= out.latency_max,
                "{engine:?}: percentile ordering"
            );
            let mut rng2 = RcbRng::new(5);
            assert_eq!(
                spec.run(&mut rng2).unwrap().into_stream(),
                out,
                "{engine:?}: stream trials must replay exactly"
            );
        }
    }

    #[test]
    fn stream_alloc_policies_have_distinct_budget_semantics() {
        let base = ScenarioSpec::stream(
            8,
            ArrivalSpec::Burst {
                period: 10_000,
                size: 1,
            },
            50_000,
        )
        .with_adversary(AdversarySpec::Budgeted {
            budget: 3_000,
            fraction: 1.0,
        });
        let mut rng = RcbRng::new(9);
        let persistent = base.clone().run(&mut rng).unwrap().into_stream();
        assert!(
            persistent.adversary_cost <= 3_000,
            "one budget spans the stream: spent {}",
            persistent.adversary_cost
        );
        let per_msg = base.with_stream_alloc(StreamAlloc::PerMessage);
        let mut rng = RcbRng::new(9);
        let refill = per_msg.run(&mut rng).unwrap().into_stream();
        assert!(
            refill.adversary_cost >= persistent.adversary_cost,
            "a refilled jammer can spend at least as much ({} vs {})",
            refill.adversary_cost,
            persistent.adversary_cost
        );
    }

    #[test]
    fn stream_validate_rejects_bad_arrivals() {
        let bad_rate = ScenarioSpec::stream(4, ArrivalSpec::Poisson { rate: 0.0 }, 1_000);
        assert!(bad_rate.validate().is_err());
        let bad_burst = ScenarioSpec::stream(4, ArrivalSpec::Burst { period: 0, size: 1 }, 1_000);
        assert!(bad_burst.validate().is_err());
        let unsorted = ScenarioSpec::stream(
            4,
            ArrivalSpec::Schedule {
                arrivals: vec![9, 5],
            },
            1_000,
        );
        assert!(unsorted.validate().is_err());
        let past_horizon = ScenarioSpec::stream(
            4,
            ArrivalSpec::Schedule {
                arrivals: vec![1_000],
            },
            1_000,
        );
        assert!(past_horizon.validate().is_err());
        let no_horizon = ScenarioSpec::stream(4, ArrivalSpec::Poisson { rate: 0.5 }, 0);
        assert!(no_horizon.validate().is_err());
        let ok = ScenarioSpec::stream(4, ArrivalSpec::Poisson { rate: 0.5 }, 1_000);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn stream_checksum_word_order_is_pinned() {
        let spec = ScenarioSpec::stream(4, ArrivalSpec::Poisson { rate: 0.5 }, 1_000);
        let out = StreamOutcome {
            n: 4,
            arrivals: 3,
            delivered: 4,
            truncated_msgs: 5,
            slots: 1,
            adversary_cost: 2,
            max_cost: 11,
            queue_area: 6,
            max_queue: 7,
            latency_p50: 8,
            latency_p95: 9,
            latency_max: 10,
            truncated: false,
        };
        let expected = fnv1a(FNV_OFFSET, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(spec.outcome_checksum(&Outcome::Stream(out)), expected);
    }

    #[test]
    fn outcome_json_round_trips() {
        let duel = Outcome::Duel(DuelOutcome {
            delivered: true,
            bob_premature: false,
            alice_cost: 10,
            bob_cost: 20,
            adversary_cost: u64::MAX,
            slots: 1 << 60,
            delivery_slot: Some(12345),
            last_epoch: 9,
            truncated: false,
        });
        assert_eq!(Outcome::from_json(&duel.to_json()).unwrap(), duel);

        let bcast = Outcome::Broadcast(BroadcastOutcome {
            n: 3,
            informed: 3,
            all_informed: true,
            all_terminated: false,
            safety_terminations: 1,
            node_costs: vec![5, 0, u64::MAX - 3],
            adversary_cost: 7,
            slots: 99,
            last_epoch: 4,
            truncated: true,
        });
        assert_eq!(Outcome::from_json(&bcast.to_json()).unwrap(), bcast);

        let no_delivery = Outcome::Duel(DuelOutcome {
            delivery_slot: None,
            ..match duel {
                Outcome::Duel(d) => d,
                _ => unreachable!(),
            }
        });
        assert_eq!(
            Outcome::from_json(&no_delivery.to_json()).unwrap(),
            no_delivery
        );
    }
}
