//! Declarative scenario layer: one canonical description of "a run".
//!
//! Every consumer of the engines — the `rcbsim` CLI, the experiment
//! drivers' sweeps, the conformance grid, the perf grid — used to
//! re-invent its own ad-hoc bundle of (protocol, engine, params,
//! adversary, faults, seeds). A [`ScenarioSpec`] replaces all of them: it
//! names the workload, the engine, the adversary policy, the fault plan,
//! and the seed policy, and exposes one checked run path
//! ([`ScenarioSpec::run`]) plus a [`run_trials`]-integrated batch form
//! ([`ScenarioSpec::run_batch`]).
//!
//! The run paths call the *same* engine cores as the legacy
//! `run_{duel,exact,broadcast}*` entry points with the same argument
//! values and the same RNG stream usage, so a spec run is **bit-identical**
//! to the legacy call it subsumes (certified by the golden equivalence
//! suite in `crates/sim/tests/scenario_equivalence.rs`).
//!
//! ## Seed policy
//!
//! * Trial `i` of a batch draws its RNG from
//!   `SeedSequence::new(master).rng(i)` — exactly what [`run_trials`]
//!   derives, so batch results are independent of thread count.
//! * Seeded adversaries (the [`AdversarySpec::Random`] policy) receive
//!   `master ^ i` per trial ([`SeedPolicy::adversary_seed`]), matching the
//!   CLI's historical `seed ^ i` derivation.
//! * The conformance differ's fast-engine batch must not share trial
//!   streams with the exact batch; it salts the master seed with
//!   [`FAST_STREAM_SALT`].
//!
//! ## Registry
//!
//! The perf grid's pinned scenarios are published as named registry
//! entries ([`registry`]); `rcbsim scenario list` / `rcbsim scenario run
//! <name>` expose them from the CLI. Adding a protocol, engine, or
//! adversary now costs one registry entry instead of one change per
//! consumer.

use std::fmt;

use rcb_adversary::rep_strategies::{BudgetedRepBlocker, KeepAliveBlocker, NoJamRep, RandomRep};
use rcb_adversary::traits::RepetitionAdversary;
use rcb_adversary::RepAsSlotAdversary;
use rcb_baselines::ksy::KsyProfile;
use rcb_channel::partition::Partition;
use rcb_core::one_to_n::{OneToNParams, OneToNSchedule, OneToNSlotNode};
use rcb_core::one_to_one::profile::{DuelProfile, Fig1Profile};
use rcb_core::one_to_one::schedule::DuelSchedule;
use rcb_core::one_to_one::slot::{AliceProtocol, BobProtocol};
use rcb_core::protocol::SlotProtocol;
use rcb_mathkit::rng::RcbRng;

use crate::duel::{run_duel_core, DuelConfig};
use crate::error::SimError;
use crate::exact::{run_exact_core, ExactConfig};
use crate::fast::{run_broadcast_core, BroadcastObserver, FastConfig};
use crate::faults::FaultPlan;
use crate::outcome::{BroadcastOutcome, DuelOutcome};
use crate::runner::{run_trials, Parallelism};

/// Salt for RNG streams that must not correlate with the master-seeded
/// batch (the conformance differ's fast-engine side). The constant is the
/// 64-bit golden-ratio increment; any fixed odd constant would do — what
/// matters is that it is pinned, because recorded baselines depend on it.
pub const FAST_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a offset basis; the perf grid's checksums start here.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `words` into an FNV-1a hash byte-wise (little-endian), starting
/// from `h`. This is the exact fold the perf grid has always recorded, so
/// checksums in historical `BENCH_*.json` files stay comparable.
pub fn fnv1a(mut h: u64, words: &[u64]) -> u64 {
    for &w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// Which 1-to-1 protocol a duel workload runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DuelProtocol {
    /// The paper's Figure 1 profile at tolerance `epsilon`.
    Fig1 { epsilon: f64, start_epoch: u32 },
    /// The KSY 2012 golden-ratio baseline.
    Ksy { start_epoch: u32 },
}

impl DuelProtocol {
    pub fn fig1(epsilon: f64, start_epoch: u32) -> Self {
        Self::Fig1 {
            epsilon,
            start_epoch,
        }
    }

    /// KSY at its default start epoch (4).
    pub fn ksy() -> Self {
        Self::Ksy { start_epoch: 4 }
    }

    pub fn start_epoch(&self) -> u32 {
        match *self {
            Self::Fig1 { start_epoch, .. } | Self::Ksy { start_epoch } => start_epoch,
        }
    }
}

impl fmt::Display for DuelProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fig1 {
                epsilon,
                start_epoch,
            } => write!(f, "fig1(ε={epsilon}, i₀={start_epoch})"),
            Self::Ksy { start_epoch } => write!(f, "ksy(i₀={start_epoch})"),
        }
    }
}

/// A 1-to-1 workload: two parties dueling over one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuelWorkload {
    pub protocol: DuelProtocol,
    /// Fast-engine slot cap ([`DuelConfig::max_slots`]).
    pub max_slots: u64,
    /// Exact-engine slot cap ([`ExactConfig::max_slots`]).
    pub exact_max_slots: u64,
}

/// A 1-to-n workload: `n` nodes, the nodes in `sources` start informed.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastWorkload {
    pub params: OneToNParams,
    pub n: usize,
    pub sources: Vec<usize>,
    /// Fast-engine epoch cap ([`FastConfig::max_epoch`]).
    pub max_epoch: u32,
    /// Exact-engine slot cap. Defaults to the conformance grid's
    /// 40 M-slot budget (broadcast cells are tiny; the duel default of
    /// 100 M would let a wedged cell run for minutes).
    pub exact_max_slots: u64,
}

/// What the scenario simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    Duel(DuelWorkload),
    Broadcast(BroadcastWorkload),
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::Duel(w) => write!(f, "duel {}", w.protocol),
            Workload::Broadcast(w) => write!(f, "broadcast n={}", w.n),
        }
    }
}

/// Which engine family executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Event-sampling engines ([`crate::duel`], [`crate::fast`]): agree
    /// with [`Exact`](Engine::Exact) in distribution, orders of magnitude
    /// faster.
    Fast,
    /// The slot-by-slot reference engine ([`crate::exact`]).
    Exact,
}

// ---------------------------------------------------------------------------
// Adversary
// ---------------------------------------------------------------------------

/// An adversary policy every engine can run (promoted here from
/// `conformance::differ`, which re-exports it for compatibility). Each
/// trial gets a **fresh** instance via [`AdversarySpec::build`] (budgets
/// reset), so trials stay i.i.d.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversarySpec {
    /// No jamming (`T = 0`).
    NoJam,
    /// [`BudgetedRepBlocker`]: jam a `fraction`-suffix of every repetition
    /// while the budget lasts.
    Budgeted { budget: u64, fraction: f64 },
    /// [`KeepAliveBlocker`]: jam only odd repetitions, keeping the victims
    /// active for longer.
    KeepAlive { budget: u64, fraction: f64 },
    /// [`RandomRep`]: jam each repetition independently at `rate`. The only
    /// seeded policy; [`build`](AdversarySpec::build) hands it the seed.
    Random { budget: u64, rate: f64 },
}

impl AdversarySpec {
    /// A fresh strategy instance with its full budget. `seed` feeds the
    /// internally-randomised policies ([`AdversarySpec::Random`]) and is
    /// ignored by the deterministic ones; batch paths pass
    /// [`SeedPolicy::adversary_seed`] so each trial's adversary coin flips
    /// are independent.
    pub fn build(&self, seed: u64) -> Box<dyn RepetitionAdversary> {
        match *self {
            AdversarySpec::NoJam => Box::new(NoJamRep),
            AdversarySpec::Budgeted { budget, fraction } => {
                Box::new(BudgetedRepBlocker::new(budget, fraction))
            }
            AdversarySpec::KeepAlive { budget, fraction } => {
                Box::new(KeepAliveBlocker::new(budget, fraction))
            }
            AdversarySpec::Random { budget, rate } => Box::new(RandomRep::new(rate, budget, seed)),
        }
    }

    /// The policy's jamming budget (`0` for [`NoJam`](AdversarySpec::NoJam)).
    pub fn budget(&self) -> u64 {
        match *self {
            AdversarySpec::NoJam => 0,
            AdversarySpec::Budgeted { budget, .. }
            | AdversarySpec::KeepAlive { budget, .. }
            | AdversarySpec::Random { budget, .. } => budget,
        }
    }

    /// The same policy with a different budget — the sweep axis mutation.
    /// [`NoJam`](AdversarySpec::NoJam) stays `NoJam` (it has no budget).
    pub fn with_budget(self, budget: u64) -> Self {
        match self {
            AdversarySpec::NoJam => AdversarySpec::NoJam,
            AdversarySpec::Budgeted { fraction, .. } => {
                AdversarySpec::Budgeted { budget, fraction }
            }
            AdversarySpec::KeepAlive { fraction, .. } => {
                AdversarySpec::KeepAlive { budget, fraction }
            }
            AdversarySpec::Random { rate, .. } => AdversarySpec::Random { budget, rate },
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversarySpec::NoJam => write!(f, "T=0"),
            AdversarySpec::Budgeted { budget, fraction } => {
                write!(f, "blocker(T={budget}, q={fraction})")
            }
            AdversarySpec::KeepAlive { budget, fraction } => {
                write!(f, "keepalive(T={budget}, q={fraction})")
            }
            AdversarySpec::Random { budget, rate } => {
                write!(f, "random(T={budget}, q={rate})")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Seed policy
// ---------------------------------------------------------------------------

/// Deterministic seed derivation for a scenario's trial batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedPolicy {
    /// Master seed; trial `i` runs on `SeedSequence::new(master).rng(i)`.
    pub master: u64,
}

impl SeedPolicy {
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Per-trial seed for internally-randomised adversaries: `master ^ i`
    /// (the CLI's historical derivation, kept for bit-compatibility).
    pub fn adversary_seed(&self, trial: u64) -> u64 {
        self.master ^ trial
    }
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

/// The canonical, declarative description of a simulation run (or a batch
/// of them). Construct with [`ScenarioSpec::duel`] /
/// [`ScenarioSpec::broadcast`], refine with the `with_*` builders, execute
/// with [`run`](ScenarioSpec::run) / [`run_batch`](ScenarioSpec::run_batch).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    pub workload: Workload,
    pub engine: Engine,
    pub adversary: AdversarySpec,
    pub faults: FaultPlan,
    pub seeds: SeedPolicy,
    /// Batch size for [`run_batch`](ScenarioSpec::run_batch).
    pub trials: u64,
    pub parallelism: Parallelism,
}

impl ScenarioSpec {
    /// A fast-engine duel scenario with engine-default caps, no jamming,
    /// no faults, seed 2014, one trial.
    pub fn duel(protocol: DuelProtocol) -> Self {
        Self {
            workload: Workload::Duel(DuelWorkload {
                protocol,
                max_slots: DuelConfig::default().max_slots,
                exact_max_slots: ExactConfig::default().max_slots,
            }),
            engine: Engine::Fast,
            adversary: AdversarySpec::NoJam,
            faults: FaultPlan::none(),
            seeds: SeedPolicy::new(2014),
            trials: 1,
            parallelism: Parallelism::Auto,
        }
    }

    /// A fast-engine 1-to-n scenario over `OneToNParams::practical()`.
    pub fn broadcast(n: usize) -> Self {
        Self::broadcast_with(OneToNParams::practical(), n)
    }

    /// A fast-engine 1-to-n scenario over explicit params; node 0 is the
    /// source.
    pub fn broadcast_with(params: OneToNParams, n: usize) -> Self {
        Self {
            workload: Workload::Broadcast(BroadcastWorkload {
                params,
                n,
                sources: vec![0],
                max_epoch: FastConfig::default().max_epoch,
                exact_max_slots: 40_000_000,
            }),
            engine: Engine::Fast,
            adversary: AdversarySpec::NoJam,
            faults: FaultPlan::none(),
            seeds: SeedPolicy::new(2014),
            trials: 1,
            parallelism: Parallelism::Auto,
        }
    }

    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    pub fn with_seed(mut self, master: u64) -> Self {
        self.seeds = SeedPolicy::new(master);
        self
    }

    pub fn with_trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Checks the spec's cross-field invariants (fault plan validity,
    /// source bounds, adversary parameter ranges). The run paths enforce
    /// the same invariants by assertion; `validate` exists so front ends
    /// (the CLI) can surface a readable error instead of a panic.
    pub fn validate(&self) -> Result<(), String> {
        self.faults.validate().map_err(|e| e.to_string())?;
        match &self.workload {
            Workload::Duel(_) => {}
            Workload::Broadcast(w) => {
                if w.n == 0 {
                    return Err("broadcast workload needs at least one node".into());
                }
                if w.sources.is_empty() {
                    return Err("broadcast workload needs at least one source".into());
                }
                if let Some(&s) = w.sources.iter().find(|&&s| s >= w.n) {
                    return Err(format!("source id {s} out of range (n = {})", w.n));
                }
            }
        }
        match self.adversary {
            AdversarySpec::Budgeted { fraction, .. }
            | AdversarySpec::KeepAlive { fraction, .. }
                if !(0.0..=1.0).contains(&fraction) =>
            {
                Err(format!("blocking fraction {fraction} outside [0, 1]"))
            }
            AdversarySpec::Random { rate, .. } if !(0.0..1.0).contains(&rate) => {
                Err(format!("random jamming rate {rate} outside [0, 1)"))
            }
            _ => Ok(()),
        }
    }

    /// The engine label recorded in `BENCH_*.json` files (pinned: renaming
    /// a label would orphan the perf history).
    pub fn engine_label(&self) -> &'static str {
        match (&self.engine, &self.workload) {
            (Engine::Fast, Workload::Duel(_)) => "duel-fast",
            (Engine::Fast, Workload::Broadcast(_)) => "broadcast-fast",
            (Engine::Exact, _) => "exact",
        }
    }

    // -- run paths ----------------------------------------------------------

    /// Runs the scenario once on the caller's RNG. Truncation (an engine
    /// cap) surfaces as a typed [`SimError`]; the spec's trial index is 0
    /// for adversary-seed purposes.
    pub fn run(&self, rng: &mut RcbRng) -> Result<Outcome, SimError> {
        self.run_trial(0, rng)
    }

    /// [`run`](Self::run) for an explicit trial index (the index feeds
    /// seeded adversaries via [`SeedPolicy::adversary_seed`]).
    pub fn run_trial(&self, trial: u64, rng: &mut RcbRng) -> Result<Outcome, SimError> {
        match self.run_trial_raw(trial, rng) {
            (outcome, None) => Ok(outcome),
            (_, Some(err)) => Err(err),
        }
    }

    /// Tolerant form: returns the (possibly truncated) outcome *and* the
    /// error. The conformance differ samples truncated runs too — a cap is
    /// data about the engine, not a failure of the comparison.
    pub fn run_trial_raw(&self, trial: u64, rng: &mut RcbRng) -> (Outcome, Option<SimError>) {
        debug_assert!(self.validate().is_ok(), "invalid scenario spec");
        match (&self.workload, self.engine) {
            (Workload::Duel(w), Engine::Fast) => {
                let mut adv = self.adversary.build(self.seeds.adversary_seed(trial));
                let config = DuelConfig {
                    max_slots: w.max_slots,
                };
                let (out, err) = match w.protocol {
                    DuelProtocol::Fig1 {
                        epsilon,
                        start_epoch,
                    } => run_duel_core(
                        &Fig1Profile::with_start_epoch(epsilon, start_epoch),
                        adv.as_mut(),
                        rng,
                        config,
                        &self.faults,
                    ),
                    DuelProtocol::Ksy { start_epoch } => run_duel_core(
                        &KsyProfile::with_start_epoch(start_epoch),
                        adv.as_mut(),
                        rng,
                        config,
                        &self.faults,
                    ),
                };
                (Outcome::Duel(out), err)
            }
            (Workload::Duel(w), Engine::Exact) => {
                let adv = self.adversary.build(self.seeds.adversary_seed(trial));
                match w.protocol {
                    DuelProtocol::Fig1 {
                        epsilon,
                        start_epoch,
                    } => self.exact_duel(
                        Fig1Profile::with_start_epoch(epsilon, start_epoch),
                        w,
                        adv,
                        rng,
                    ),
                    DuelProtocol::Ksy { start_epoch } => {
                        self.exact_duel(KsyProfile::with_start_epoch(start_epoch), w, adv, rng)
                    }
                }
            }
            (Workload::Broadcast(w), Engine::Fast) => {
                let mut adv = self.adversary.build(self.seeds.adversary_seed(trial));
                let (out, err) = run_broadcast_core(
                    &w.params,
                    w.n,
                    &w.sources,
                    adv.as_mut(),
                    rng,
                    FastConfig {
                        max_epoch: w.max_epoch,
                    },
                    &mut (),
                    &self.faults,
                );
                (Outcome::Broadcast(out), err)
            }
            (Workload::Broadcast(w), Engine::Exact) => {
                let adv = self.adversary.build(self.seeds.adversary_seed(trial));
                self.exact_broadcast(w, adv, rng)
            }
        }
    }

    /// Exact-engine duel: drives the slot-level protocol pair and converts
    /// the ledger into a [`DuelOutcome`]. Slot-granular bookkeeping the
    /// exact engine does not track is left at its zero value and documented
    /// on [`Outcome`].
    fn exact_duel<P: DuelProfile + Copy>(
        &self,
        profile: P,
        w: &DuelWorkload,
        adversary: Box<dyn RepetitionAdversary>,
        rng: &mut RcbRng,
    ) -> (Outcome, Option<SimError>) {
        let mut alice = AliceProtocol::new(profile);
        let mut bob = BobProtocol::new(profile);
        let schedule = DuelSchedule::new(profile.start_epoch());
        let partition = Partition::pair();
        let mut adv = RepAsSlotAdversary::duel(adversary);
        let (out, err) = run_exact_core(
            &mut [&mut alice, &mut bob],
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig {
                max_slots: w.exact_max_slots,
            },
            None,
            &self.faults,
        );
        let delivered = bob.received_message();
        (
            Outcome::Duel(DuelOutcome {
                delivered,
                bob_premature: !delivered && out.completed,
                alice_cost: out.ledger.node_cost(0),
                bob_cost: out.ledger.node_cost(1),
                adversary_cost: out.ledger.adversary_cost(),
                slots: out.slots,
                delivery_slot: None, // not tracked at ledger granularity
                last_epoch: 0,       // not tracked by the exact engine
                truncated: !out.completed,
            }),
            err,
        )
    }

    /// Exact-engine broadcast: one [`OneToNSlotNode`] per node, informed
    /// iff listed in `sources`.
    fn exact_broadcast(
        &self,
        w: &BroadcastWorkload,
        adversary: Box<dyn RepetitionAdversary>,
        rng: &mut RcbRng,
    ) -> (Outcome, Option<SimError>) {
        let mut nodes: Vec<OneToNSlotNode> = (0..w.n)
            .map(|u| OneToNSlotNode::new(w.params, w.sources.contains(&u)))
            .collect();
        let mut refs: Vec<&mut dyn SlotProtocol> = Vec::new();
        for node in nodes.iter_mut() {
            refs.push(node);
        }
        let schedule = OneToNSchedule::new(w.params);
        let partition = Partition::uniform(w.n);
        let mut adv = RepAsSlotAdversary::broadcast(adversary, w.n);
        let (out, err) = run_exact_core(
            &mut refs,
            &mut adv,
            &schedule,
            &partition,
            rng,
            ExactConfig {
                max_slots: w.exact_max_slots,
            },
            None,
            &self.faults,
        );
        let informed = nodes.iter().filter(|v| v.received_message()).count();
        (
            Outcome::Broadcast(BroadcastOutcome {
                n: w.n,
                informed,
                all_informed: informed == w.n,
                all_terminated: out.completed,
                safety_terminations: 0, // not tracked at slot granularity
                node_costs: (0..w.n).map(|u| out.ledger.node_cost(u)).collect(),
                adversary_cost: out.ledger.adversary_cost(),
                slots: out.slots,
                last_epoch: 0, // not tracked by the exact engine
                truncated: !out.completed,
            }),
            err,
        )
    }

    /// Runs `self.trials` independent executions through [`run_trials`]
    /// (deterministic per-trial streams; results independent of thread
    /// count). Truncated trials surface as `Err` entries.
    pub fn run_batch(&self) -> Vec<Result<Outcome, SimError>> {
        run_trials(
            self.trials,
            self.seeds.master,
            self.parallelism,
            |i, rng| self.run_trial(i, rng),
        )
    }

    /// Tolerant batch: every trial yields its (possibly truncated) outcome.
    pub fn run_batch_raw(&self) -> Vec<(Outcome, Option<SimError>)> {
        run_trials(
            self.trials,
            self.seeds.master,
            self.parallelism,
            |i, rng| self.run_trial_raw(i, rng),
        )
    }

    /// Single run with a per-repetition observer (calibration tooling).
    /// Tolerant like [`run_trial_raw`](Self::run_trial_raw): a truncated
    /// run still yields its partial outcome, because calibration wants the
    /// numbers *and* the cap diagnosis.
    ///
    /// # Panics
    ///
    /// Only the fast broadcast engine has an observer hook; any other
    /// (workload, engine) combination panics.
    pub fn run_observed(
        &self,
        rng: &mut RcbRng,
        observer: &mut dyn BroadcastObserver,
    ) -> (BroadcastOutcome, Option<SimError>) {
        match (&self.workload, self.engine) {
            (Workload::Broadcast(w), Engine::Fast) => {
                let mut adv = self.adversary.build(self.seeds.adversary_seed(0));
                run_broadcast_core(
                    &w.params,
                    w.n,
                    &w.sources,
                    adv.as_mut(),
                    rng,
                    FastConfig {
                        max_epoch: w.max_epoch,
                    },
                    observer,
                    &self.faults,
                )
            }
            _ => panic!("run_observed: only the fast broadcast engine has an observer hook"),
        }
    }

    // -- checksums ----------------------------------------------------------

    /// FNV-1a fold of one outcome, in the exact word order the perf grid
    /// has always recorded for this (workload, engine). Batch checksums
    /// fold these per-trial hashes: `fnv1a(acc, &[outcome_checksum(..)])`.
    pub fn outcome_checksum(&self, outcome: &Outcome) -> u64 {
        match (outcome, self.engine) {
            (Outcome::Duel(o), Engine::Fast) => fnv1a(
                FNV_OFFSET,
                &[
                    o.alice_cost,
                    o.bob_cost,
                    o.adversary_cost,
                    o.slots,
                    o.delivered as u64,
                    o.delivery_slot.unwrap_or(u64::MAX),
                    o.last_epoch as u64,
                ],
            ),
            (Outcome::Duel(o), Engine::Exact) => fnv1a(
                FNV_OFFSET,
                &[
                    o.alice_cost,
                    o.bob_cost,
                    o.slots,
                    (!o.truncated) as u64,
                    o.delivered as u64,
                ],
            ),
            (Outcome::Broadcast(o), _) => {
                let h = fnv1a(
                    FNV_OFFSET,
                    &[
                        o.slots,
                        o.adversary_cost,
                        o.informed as u64,
                        o.last_epoch as u64,
                        o.safety_terminations as u64,
                    ],
                );
                fnv1a(h, &o.node_costs)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Outcome
// ---------------------------------------------------------------------------

/// Unified result of a scenario run.
///
/// Exact-engine runs convert the energy ledger into the same outcome
/// structs the fast engines produce. Fields the slot-level engine does not
/// track are left at documented zero values: `delivery_slot` is `None`,
/// `last_epoch` is 0, and broadcast `safety_terminations` is 0.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    Duel(DuelOutcome),
    Broadcast(BroadcastOutcome),
}

impl Outcome {
    pub fn slots(&self) -> u64 {
        match self {
            Outcome::Duel(o) => o.slots,
            Outcome::Broadcast(o) => o.slots,
        }
    }

    pub fn truncated(&self) -> bool {
        match self {
            Outcome::Duel(o) => o.truncated,
            Outcome::Broadcast(o) => o.truncated,
        }
    }

    pub fn adversary_cost(&self) -> u64 {
        match self {
            Outcome::Duel(o) => o.adversary_cost,
            Outcome::Broadcast(o) => o.adversary_cost,
        }
    }

    /// Max per-node cost (the resource-competitive quantity).
    pub fn max_cost(&self) -> u64 {
        match self {
            Outcome::Duel(o) => o.max_cost(),
            Outcome::Broadcast(o) => o.max_cost(),
        }
    }

    pub fn as_duel(&self) -> Option<&DuelOutcome> {
        match self {
            Outcome::Duel(o) => Some(o),
            Outcome::Broadcast(_) => None,
        }
    }

    pub fn as_broadcast(&self) -> Option<&BroadcastOutcome> {
        match self {
            Outcome::Broadcast(o) => Some(o),
            Outcome::Duel(_) => None,
        }
    }

    /// # Panics
    ///
    /// Panics on a broadcast outcome.
    pub fn into_duel(self) -> DuelOutcome {
        match self {
            Outcome::Duel(o) => o,
            Outcome::Broadcast(_) => panic!("expected a duel outcome"),
        }
    }

    /// # Panics
    ///
    /// Panics on a duel outcome.
    pub fn into_broadcast(self) -> BroadcastOutcome {
        match self {
            Outcome::Broadcast(o) => o,
            Outcome::Duel(_) => panic!("expected a broadcast outcome"),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named, pinned scenario — the unit the perf grid measures and the
/// `rcbsim scenario` subcommand runs. Names, parameters, and order are
/// part of the recorded baselines' meaning: the perf comparator matches by
/// name, so renaming an entry orphans its history.
#[derive(Debug, Clone)]
pub struct NamedScenario {
    pub name: &'static str,
    /// One-line human description for `rcbsim scenario list`.
    pub summary: &'static str,
    pub spec: ScenarioSpec,
}

/// The pinned scenario registry. The specs carry their perf-grid trial
/// counts; `rcbsim scenario run` and the perf harness both read them.
pub fn registry() -> Vec<NamedScenario> {
    let duel = |adversary, faults: FaultPlan, trials| {
        ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8))
            .with_adversary(adversary)
            .with_faults(faults)
            .with_trials(trials)
    };
    let bcast = |n, budget, faults: FaultPlan, trials| {
        ScenarioSpec::broadcast(n)
            .with_adversary(AdversarySpec::Budgeted {
                budget,
                fraction: 1.0,
            })
            .with_faults(faults)
            .with_trials(trials)
    };
    vec![
        NamedScenario {
            name: "duel_clean",
            summary: "fast duel, no jamming (hot-path baseline)",
            // Clean duels finish in a couple of epochs, so the count is
            // high: a perf repeat must run for ≥ ~100 ms or scheduler
            // jitter (not engine speed) dominates the measurement.
            spec: duel(AdversarySpec::NoJam, FaultPlan::none(), 30_000),
        },
        NamedScenario {
            name: "duel_jammed",
            summary: "fast duel vs 64 Ki-budget blanket blocker",
            spec: duel(
                AdversarySpec::Budgeted {
                    budget: 1 << 16,
                    fraction: 1.0,
                },
                FaultPlan::none(),
                600,
            ),
        },
        NamedScenario {
            name: "duel_jammed_faulted",
            summary: "jammed fast duel with loss 0.1 and 1-slot skew",
            spec: duel(
                AdversarySpec::Budgeted {
                    budget: 1 << 16,
                    fraction: 1.0,
                },
                FaultPlan::none().with_loss(0.1).with_skew(1, 1),
                600,
            ),
        },
        NamedScenario {
            name: "exact_duel_jammed",
            summary: "exact-engine duel vs 4 Ki-budget blocker (reference)",
            spec: duel(
                AdversarySpec::Budgeted {
                    budget: 1 << 12,
                    fraction: 1.0,
                },
                FaultPlan::none(),
                160,
            )
            .with_engine(Engine::Exact),
        },
        NamedScenario {
            name: "bcast_n8_jammed",
            summary: "fast broadcast, n=8, 100 k-budget blocker",
            spec: bcast(8, 100_000, FaultPlan::none(), 60),
        },
        NamedScenario {
            name: "bcast_n64_jammed",
            summary: "fast broadcast, n=64, 200 k-budget blocker",
            spec: bcast(64, 200_000, FaultPlan::none(), 20),
        },
        NamedScenario {
            name: "bcast_n256_jammed",
            summary: "fast broadcast, n=256, 400 k-budget blocker",
            spec: bcast(256, 400_000, FaultPlan::none(), 8),
        },
        NamedScenario {
            name: "bcast_n64_faulted",
            summary: "jammed n=64 broadcast with loss, crash-reboot, skew",
            spec: bcast(
                64,
                200_000,
                FaultPlan::none()
                    .with_loss(0.1)
                    .with_crash(3, 2, 6, true)
                    .with_skew(5, 1),
                20,
            ),
        },
    ]
}

/// Looks up a registry entry by name.
pub fn find_scenario(name: &str) -> Option<NamedScenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duel::run_duel;
    use crate::fast::run_broadcast;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let entries = registry();
        assert_eq!(entries.len(), 8);
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                assert_ne!(a.name, b.name);
            }
            let found = find_scenario(a.name).expect("registered name resolves");
            assert_eq!(found.spec, a.spec);
            assert!(a.spec.validate().is_ok(), "{}", a.name);
            assert!(!a.summary.is_empty());
        }
        assert!(find_scenario("nonexistent").is_none());
    }

    #[test]
    fn fast_duel_spec_matches_legacy_entry_point() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8)).with_adversary(
            AdversarySpec::Budgeted {
                budget: 4096,
                fraction: 1.0,
            },
        );
        for seed in 0..5 {
            let mut rng_a = RcbRng::new(seed);
            let via_spec = spec.run(&mut rng_a).expect("no cap hit").into_duel();
            let mut rng_b = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(4096, 1.0);
            let legacy = run_duel(
                &Fig1Profile::with_start_epoch(0.1, 8),
                &mut adv,
                &mut rng_b,
                DuelConfig::default(),
            );
            assert_eq!(via_spec, legacy, "seed {seed}");
            assert_eq!(rng_a, rng_b, "seed {seed}: RNG streams diverged");
        }
    }

    #[test]
    fn fast_broadcast_spec_matches_legacy_entry_point() {
        let spec = ScenarioSpec::broadcast(12).with_adversary(AdversarySpec::Budgeted {
            budget: 50_000,
            fraction: 1.0,
        });
        for seed in 0..3 {
            let mut rng_a = RcbRng::new(seed);
            let via_spec = spec.run(&mut rng_a).expect("no cap hit").into_broadcast();
            let mut rng_b = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(50_000, 1.0);
            let legacy = run_broadcast(
                &OneToNParams::practical(),
                12,
                &mut adv,
                &mut rng_b,
                FastConfig::default(),
            );
            assert_eq!(via_spec, legacy, "seed {seed}");
            assert_eq!(rng_a, rng_b, "seed {seed}: RNG streams diverged");
        }
    }

    #[test]
    fn exact_duel_outcome_maps_the_ledger() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.05, 6)).with_engine(Engine::Exact);
        let mut rng = RcbRng::new(7);
        let out = spec.run(&mut rng).expect("completes").into_duel();
        assert!(!out.truncated);
        assert!(out.alice_cost > 0);
        assert_eq!(out.adversary_cost, 0);
        assert_eq!(out.delivery_slot, None, "not tracked at slot granularity");
        assert_eq!(out.last_epoch, 0, "not tracked by the exact engine");
    }

    #[test]
    fn run_batch_equals_sequential_run_trial() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8))
            .with_adversary(AdversarySpec::Budgeted {
                budget: 1024,
                fraction: 1.0,
            })
            .with_trials(8)
            .with_seed(99);
        let batch = spec.run_batch();
        let sequential: Vec<_> = (0..8)
            .map(|i| {
                let mut rng = rcb_mathkit::rng::SeedSequence::new(99).rng(i);
                spec.run_trial(i, &mut rng)
            })
            .collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn empty_fault_plan_spec_is_byte_identical_to_clean_path() {
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8))
            .with_adversary(AdversarySpec::Budgeted {
                budget: 2048,
                fraction: 1.0,
            })
            .with_faults(FaultPlan::none());
        for seed in 0..5 {
            let mut rng_a = RcbRng::new(seed);
            let spec_out = spec.run(&mut rng_a).unwrap().into_duel();
            let mut rng_b = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(2048, 1.0);
            let clean = run_duel(
                &Fig1Profile::with_start_epoch(0.1, 8),
                &mut adv,
                &mut rng_b,
                DuelConfig::default(),
            );
            assert_eq!(spec_out, clean, "seed {seed}");
            assert_eq!(rng_a, rng_b, "seed {seed}: no extra randomness drawn");
        }
    }

    #[test]
    fn checksum_word_order_is_pinned() {
        // The fast-duel fold order is part of the recorded baselines'
        // meaning; pin it against an independently computed value.
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8));
        let out = DuelOutcome {
            delivered: true,
            bob_premature: false,
            alice_cost: 1,
            bob_cost: 2,
            adversary_cost: 3,
            slots: 4,
            delivery_slot: None,
            last_epoch: 9,
            truncated: false,
        };
        let expected = fnv1a(FNV_OFFSET, &[1, 2, 3, 4, 1, u64::MAX, 9]);
        assert_eq!(spec.outcome_checksum(&Outcome::Duel(out)), expected);
    }

    #[test]
    fn adversary_budget_axis_mutation() {
        let a = AdversarySpec::Budgeted {
            budget: 10,
            fraction: 0.5,
        };
        assert_eq!(
            a.with_budget(99),
            AdversarySpec::Budgeted {
                budget: 99,
                fraction: 0.5
            }
        );
        assert_eq!(AdversarySpec::NoJam.with_budget(99), AdversarySpec::NoJam);
        assert_eq!(a.budget(), 10);
        assert_eq!(AdversarySpec::NoJam.budget(), 0);
    }

    #[test]
    fn adversary_display_is_stable() {
        // Conformance cell names embed these renders; report archaeology
        // depends on them staying fixed.
        assert_eq!(AdversarySpec::NoJam.to_string(), "T=0");
        assert_eq!(
            AdversarySpec::Budgeted {
                budget: 512,
                fraction: 1.0
            }
            .to_string(),
            "blocker(T=512, q=1)"
        );
        assert_eq!(
            AdversarySpec::KeepAlive {
                budget: 1024,
                fraction: 1.0
            }
            .to_string(),
            "keepalive(T=1024, q=1)"
        );
        assert_eq!(
            AdversarySpec::Random {
                budget: 64,
                rate: 0.5
            }
            .to_string(),
            "random(T=64, q=0.5)"
        );
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let bad_source = {
            let mut s = ScenarioSpec::broadcast(4);
            if let Workload::Broadcast(w) = &mut s.workload {
                w.sources = vec![4];
            }
            s
        };
        assert!(bad_source.validate().is_err());
        let bad_fraction =
            ScenarioSpec::duel(DuelProtocol::ksy()).with_adversary(AdversarySpec::Budgeted {
                budget: 1,
                fraction: 1.5,
            });
        assert!(bad_fraction.validate().is_err());
        assert!(ScenarioSpec::duel(DuelProtocol::ksy()).validate().is_ok());
    }

    #[test]
    fn random_adversary_is_seed_deterministic() {
        let spec =
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8)).with_adversary(AdversarySpec::Random {
                budget: 4096,
                rate: 0.5,
            });
        let run = || {
            let mut rng = RcbRng::new(3);
            spec.run(&mut rng).unwrap().into_duel()
        };
        assert_eq!(run(), run(), "same (seed, trial) must replay exactly");
    }

    #[test]
    fn engine_labels_are_pinned() {
        assert_eq!(
            ScenarioSpec::duel(DuelProtocol::ksy()).engine_label(),
            "duel-fast"
        );
        assert_eq!(ScenarioSpec::broadcast(4).engine_label(), "broadcast-fast");
        assert_eq!(
            ScenarioSpec::broadcast(4)
                .with_engine(Engine::Exact)
                .engine_label(),
            "exact"
        );
    }

    #[test]
    fn truncation_surfaces_as_typed_error() {
        let mut spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 8)).with_adversary(
            AdversarySpec::Budgeted {
                budget: 10_000,
                fraction: 1.0,
            },
        );
        if let Workload::Duel(w) = &mut spec.workload {
            w.max_slots = 100;
        }
        let mut rng = RcbRng::new(3);
        let err = spec.run(&mut rng).expect_err("100 slots cannot finish");
        assert!(matches!(
            err,
            SimError::SlotBudgetExhausted { max_slots: 100, .. }
        ));
        // The tolerant path still hands back the truncated outcome.
        let mut rng = RcbRng::new(3);
        let (out, err) = spec.run_trial_raw(0, &mut rng);
        assert!(out.truncated());
        assert!(err.is_some());
    }
}
