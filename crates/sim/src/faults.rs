//! Deterministic, seeded fault injection: non-adversarial failure
//! processes layered between the protocols and the channel.
//!
//! The paper's threat model (§1.2) charges every disruption to the
//! adversary's budget `T`, but Theorem 1's noise-threshold halting
//! (`Θᵢ = √(2^(i−1)·ln(8/ε))/4`) is explicitly designed to tolerate
//! *unpredictable background noise* — disruption that costs the adversary
//! nothing. A [`FaultPlan`] models four such processes:
//!
//! * **Lossy reception** ([`LossFault`]) — each listener independently
//!   fails to decode a delivered payload with probability `p`; the energy
//!   was real, so the slot reads as noise. Exercises the noise-threshold
//!   halting path against noise the adversary did not pay for.
//! * **Crash–restart** ([`CrashFault`]) — one device's radio is off for a
//!   window of periods (phases / repetitions); optionally it loses its
//!   volatile state on restart (`lose_state`), keeping only stable storage
//!   (the message `m`) and the period clock, which is re-synced from the
//!   public schedule.
//! * **Clock skew** ([`SkewFault`]) — one listener's slot boundary is
//!   offset, so the first `slots` offsets of every period decode as noise
//!   for it (the symbol correlator integrates across the boundary until it
//!   re-syncs mid-period).
//! * **Battery brownout** ([`BatteryFault`]) — a hard per-node energy cap;
//!   a node whose ledger reaches it goes permanently offline. The gauge is
//!   sampled at **period boundaries** in both engines, so a node may
//!   overshoot the cap by at most one period's activity — identically in
//!   distribution on both engines.
//!
//! Determinism: engines derive a dedicated fault RNG stream by `split()`
//! from the per-trial RNG **only when the plan is non-empty**, so
//! [`FaultPlan::none`] is a byte-identical no-op and every faulted run is
//! replayable from `(master_seed, trial_index)` — the same `SeedSequence`
//! discipline as `run_trials`. Both engines implement the same semantics;
//! the conformance differ cross-validates them under faults.

use rcb_channel::fault::ReceiverCondition;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Benign packet loss: each delivered reception is independently lost
/// (decoded as noise) with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossFault {
    /// Per-reception loss probability, in `[0, 1]`.
    pub p: f64,
}

/// One device is offline for a window of periods, radio off: it neither
/// sends nor listens, but its period clock keeps running (driven by its own
/// crystal), so it rejoins in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashFault {
    /// The crashed node (duel convention: 0 = Alice, 1 = Bob).
    pub node: usize,
    /// First period of the outage.
    pub start_period: u64,
    /// Window length in periods (must be ≥ 1).
    pub periods: u64,
    /// Whether volatile state (rate variables, helper bookkeeping) is lost
    /// at restart. Stable storage — the message `m` — always survives.
    pub lose_state: bool,
}

/// One listener's slot boundary is offset: the first `slots` offsets of
/// every period are heard as noise by it, unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewFault {
    /// The skewed node (duel convention: 0 = Alice, 1 = Bob).
    pub node: usize,
    /// How many leading slots of each period are undecodable.
    pub slots: u64,
}

/// A hard per-node energy cap: any node whose spend reaches `capacity`
/// goes permanently offline (checked at period boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatteryFault {
    /// Energy units available to each node (must be ≥ 1).
    pub capacity: u64,
}

/// A malformed fault configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultConfigError {
    /// Loss probability outside `[0, 1]`.
    LossOutOfRange { p: f64 },
    /// A crash window of zero periods.
    EmptyCrashWindow,
    /// A battery that starts empty.
    ZeroBatteryCapacity,
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::LossOutOfRange { p } => {
                write!(f, "loss probability {p} out of range: must lie in [0, 1]")
            }
            FaultConfigError::EmptyCrashWindow => {
                write!(f, "crash window must span at least one period")
            }
            FaultConfigError::ZeroBatteryCapacity => {
                write!(f, "battery capacity must be at least 1 energy unit")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// A composition of non-adversarial failure processes for one execution.
///
/// All-`None` (the [`FaultPlan::none`] default) is guaranteed to be a
/// byte-identical no-op in every engine.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    pub loss: Option<LossFault>,
    pub crash: Option<CrashFault>,
    pub skew: Option<SkewFault>,
    pub battery: Option<BatteryFault>,
}

impl FaultPlan {
    /// The empty plan: no faults, engines behave bit-identically to their
    /// unfaulted entry points.
    pub fn none() -> Self {
        Self::default()
    }

    pub fn is_none(&self) -> bool {
        self.loss.is_none() && self.crash.is_none() && self.skew.is_none() && self.battery.is_none()
    }

    /// Builder: add lossy reception.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = Some(LossFault { p });
        self
    }

    /// Builder: add a crash–restart window.
    pub fn with_crash(
        mut self,
        node: usize,
        start_period: u64,
        periods: u64,
        lose_state: bool,
    ) -> Self {
        self.crash = Some(CrashFault {
            node,
            start_period,
            periods,
            lose_state,
        });
        self
    }

    /// Builder: add clock skew.
    pub fn with_skew(mut self, node: usize, slots: u64) -> Self {
        self.skew = Some(SkewFault { node, slots });
        self
    }

    /// Builder: add a battery cap.
    pub fn with_battery(mut self, capacity: u64) -> Self {
        self.battery = Some(BatteryFault { capacity });
        self
    }

    /// Rejects out-of-domain parameters with a typed error. Builders do not
    /// validate (they are `const`-friendly plumbing); engines
    /// `debug_assert!` validity and CLI/experiment code must call this.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if let Some(LossFault { p }) = self.loss {
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultConfigError::LossOutOfRange { p });
            }
        }
        if let Some(CrashFault { periods: 0, .. }) = self.crash {
            return Err(FaultConfigError::EmptyCrashWindow);
        }
        if let Some(BatteryFault { capacity: 0 }) = self.battery {
            return Err(FaultConfigError::ZeroBatteryCapacity);
        }
        Ok(())
    }

    /// The per-reception loss probability (0 when no loss fault is set).
    pub fn loss_p(&self) -> f64 {
        self.loss.map_or(0.0, |l| l.p)
    }

    /// Whether `node`'s radio is off in `period`.
    pub fn crashed(&self, node: usize, period: u64) -> bool {
        match self.crash {
            // Elapsed-periods form: immune to `start + periods` overflow,
            // so `periods = u64::MAX` means "never comes back".
            Some(c) if c.node == node => period
                .checked_sub(c.start_period)
                .is_some_and(|elapsed| elapsed < c.periods),
            _ => false,
        }
    }

    /// `(node, period)` at which a state-losing reboot fires: the first
    /// period after the crash window, when `lose_state` is set.
    pub fn reboot_at(&self) -> Option<(usize, u64)> {
        self.crash.and_then(|c| {
            c.lose_state
                .then(|| (c.node, c.start_period.saturating_add(c.periods)))
        })
    }

    /// How many leading slots of each period `node` hears as noise.
    pub fn skew_slots(&self, node: usize) -> u64 {
        match self.skew {
            Some(s) if s.node == node => s.slots,
            _ => 0,
        }
    }

    /// The per-node energy cap, if any.
    pub fn battery_capacity(&self) -> Option<u64> {
        self.battery.map(|b| b.capacity)
    }

    /// The [`ReceiverCondition`] of `node` at `offset` within a period —
    /// the channel-facing summary the exact engine feeds to
    /// [`ReceiverCondition::apply`].
    pub fn receiver_condition(&self, node: usize, offset: u64) -> ReceiverCondition {
        ReceiverCondition {
            skewed: offset < self.skew_slots(node),
            loss_p: self.loss_p(),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        let mut sep = "";
        if let Some(l) = self.loss {
            write!(f, "loss={}", l.p)?;
            sep = " ";
        }
        if let Some(c) = self.crash {
            write!(
                f,
                "{sep}crash=n{}@{}+{}{}",
                c.node,
                c.start_period,
                c.periods,
                if c.lose_state { ":lose" } else { "" }
            )?;
            sep = " ";
        }
        if let Some(s) = self.skew {
            write!(f, "{sep}skew=n{}+{}", s.node, s.slots)?;
            sep = " ";
        }
        if let Some(b) = self.battery {
            write!(f, "{sep}battery={}", b.capacity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_none_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.loss_p(), 0.0);
        assert!(!plan.crashed(0, 0));
        assert_eq!(plan.skew_slots(0), 0);
        assert_eq!(plan.battery_capacity(), None);
        assert_eq!(plan.reboot_at(), None);
        assert!(plan.receiver_condition(0, 0).is_nominal());
        assert_eq!(plan.to_string(), "none");
    }

    #[test]
    fn validate_rejects_out_of_domain_parameters() {
        assert!(matches!(
            FaultPlan::none().with_loss(1.5).validate(),
            Err(FaultConfigError::LossOutOfRange { .. })
        ));
        assert!(matches!(
            FaultPlan::none().with_crash(0, 4, 0, false).validate(),
            Err(FaultConfigError::EmptyCrashWindow)
        ));
        assert!(matches!(
            FaultPlan::none().with_battery(0).validate(),
            Err(FaultConfigError::ZeroBatteryCapacity)
        ));
        assert!(FaultPlan::none()
            .with_loss(0.3)
            .with_crash(1, 2, 8, true)
            .with_skew(0, 2)
            .with_battery(500)
            .validate()
            .is_ok());
    }

    #[test]
    fn crash_window_is_half_open_and_per_node() {
        let plan = FaultPlan::none().with_crash(1, 4, 3, false);
        assert!(!plan.crashed(1, 3));
        assert!(plan.crashed(1, 4));
        assert!(plan.crashed(1, 6));
        assert!(!plan.crashed(1, 7));
        assert!(!plan.crashed(0, 5), "only the named node crashes");
        assert_eq!(plan.reboot_at(), None, "no state loss requested");
        assert_eq!(
            FaultPlan::none().with_crash(1, 4, 3, true).reboot_at(),
            Some((1, 7))
        );
    }

    #[test]
    fn crash_window_saturates_instead_of_overflowing() {
        let plan = FaultPlan::none().with_crash(0, u64::MAX - 1, u64::MAX, true);
        assert!(plan.crashed(0, u64::MAX));
        assert_eq!(plan.reboot_at(), Some((0, u64::MAX)));
    }

    #[test]
    fn receiver_condition_reflects_skew_and_loss() {
        let plan = FaultPlan::none().with_loss(0.25).with_skew(1, 2);
        assert!(plan.receiver_condition(1, 0).skewed);
        assert!(plan.receiver_condition(1, 1).skewed);
        assert!(!plan.receiver_condition(1, 2).skewed);
        assert!(!plan.receiver_condition(0, 0).skewed, "node 0 is on time");
        assert_eq!(plan.receiver_condition(0, 5).loss_p, 0.25);
    }

    #[test]
    fn display_is_compact_and_complete() {
        let plan = FaultPlan::none()
            .with_loss(0.1)
            .with_crash(1, 4, 8, true)
            .with_skew(0, 2)
            .with_battery(500);
        assert_eq!(
            plan.to_string(),
            "loss=0.1 crash=n1@4+8:lose skew=n0+2 battery=500"
        );
    }
}
