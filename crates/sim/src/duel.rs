//! Fast 1-to-1 engine: samples whole phases at once.
//!
//! Exploits the structure of the two-party protocols: within a phase of
//! epoch `i`, Alice's send slots and Bob's listen slots are independent
//! Bernoulli processes at rate `p_i`, so the engine samples the two slot
//! sets directly (geometric skips; exact) and resolves them against the
//! adversary's per-phase [`JamPlan`](rcb_adversary::traits::JamPlan). Cost
//! per epoch is proportional to the
//! parties' *activity*, not to `2^i` — executions with `T` in the millions
//! take microseconds.
//!
//! Drives the *same* phase-level state machines
//! ([`AliceState`]/[`BobState`]) as the slot adapters, so halting semantics
//! cannot diverge from the exact engine; an integration test cross-checks
//! the two distributionally.
//!
//! Jamming semantics (2-uniform adversary): a plan's jammed slots target
//! the **listening party's** group in each phase — Bob in send phases,
//! Alice in nack phases — which is the only jamming that accomplishes
//! anything (jamming a sender is wasted energy) and costs 1 per slot.

use rcb_adversary::traits::{RepetitionAdversary, RepetitionContext, RepetitionSummary};
use rcb_core::one_to_one::profile::DuelProfile;
use rcb_core::one_to_one::state::{AliceState, BobSendOutcome, BobState};
use rcb_mathkit::rng::RcbRng;
use rcb_mathkit::sample::{bernoulli, sample_slots_into};
use serde::{Deserialize, Serialize};

use crate::deadline::Deadline;
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::outcome::DuelOutcome;

/// The duel engine's epoch cap: phase lengths past 2^62 slots overflow the
/// slot arithmetic, so runs are truncated here regardless of `max_slots`.
const DUEL_EPOCH_CAP: u32 = 62;

/// Limits for the fast duel engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DuelConfig {
    /// Hard cap on elapsed slots; runs reaching it are marked truncated.
    pub max_slots: u64,
}

impl Default for DuelConfig {
    fn default() -> Self {
        Self { max_slots: 1 << 40 }
    }
}

/// Sorted-merge membership scan: for each element of `listens` (sorted),
/// reports whether it occurs in `sends` (sorted) via the callback; returns
/// at the first callback that says "stop".
fn scan_listens(listens: &[u64], sends: &[u64], mut on_listen: impl FnMut(u64, bool) -> bool) {
    let mut j = 0usize;
    for &t in listens {
        while j < sends.len() && sends[j] < t {
            j += 1;
        }
        let hit = j < sends.len() && sends[j] == t;
        if on_listen(t, hit) {
            return;
        }
    }
}

/// Runs one execution of a two-party epoch protocol described by `profile`
/// against a repetition-granularity adversary.
///
/// ```
/// use rcb_sim::duel::{run_duel, DuelConfig};
/// use rcb_adversary::rep_strategies::BudgetedRepBlocker;
/// use rcb_core::one_to_one::profile::Fig1Profile;
/// use rcb_mathkit::rng::RcbRng;
///
/// let profile = Fig1Profile::with_start_epoch(0.05, 8);
/// let mut jammer = BudgetedRepBlocker::new(50_000, 1.0);
/// let mut rng = RcbRng::new(1);
/// let out = run_duel(&profile, &mut jammer, &mut rng, DuelConfig::default());
/// assert!(out.delivered);
/// assert!(out.max_cost() < out.adversary_cost / 4); // √T ≪ T
/// ```
pub fn run_duel<P: DuelProfile>(
    profile: &P,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: DuelConfig,
) -> DuelOutcome {
    run_duel_core(
        profile,
        adversary,
        rng,
        config,
        &FaultPlan::none(),
        &Deadline::NONE,
    )
    .0
}

/// [`run_duel`] with a fault-injection plan (see [`crate::faults`]).
///
/// Node convention: Alice is node 0, Bob node 1 (matching the exact
/// engine's pair partition); periods are phases. A crashed or
/// battery-dead party skips its sampling but still runs its phase
/// epilogue with zero counts — exactly what the exact engine's slot
/// clock does for a sleeping radio — so a quiet window can push it into
/// premature halting, which is measured degradation, not a bug.
pub fn run_duel_faulted<P: DuelProfile>(
    profile: &P,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: DuelConfig,
    faults: &FaultPlan,
) -> DuelOutcome {
    run_duel_core(profile, adversary, rng, config, faults, &Deadline::NONE).0
}

/// [`run_duel_faulted`] that reports budget exhaustion (the slot cap or
/// the epoch-62 runaway guard) as a typed [`SimError`] instead of a
/// silent `truncated` flag.
pub fn run_duel_checked<P: DuelProfile>(
    profile: &P,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: DuelConfig,
    faults: &FaultPlan,
) -> Result<DuelOutcome, SimError> {
    match run_duel_core(profile, adversary, rng, config, faults, &Deadline::NONE) {
        (outcome, None) => Ok(outcome),
        (_, Some(err)) => Err(err),
    }
}

/// Reusable phase buffers: the transmitting party's slot set and the
/// listening party's. One pair of allocations serves a whole session (or
/// one legacy run) instead of two fresh `Vec`s per epoch.
#[derive(Debug, Default)]
pub struct DuelScratch {
    sends_buf: Vec<u64>,
    listens_buf: Vec<u64>,
}

/// A re-armable fast-duel session: retains the scratch buffers (and the
/// profile/config/fault plan) across runs so a stream of executions costs
/// zero allocations after the first. The protocol state itself
/// ([`AliceState`]/[`BobState`]) is rebuilt from the profile at the top of
/// every run — it is two plain words, so "without reallocating" holds by
/// construction, and so does bit-identity with a fresh engine invocation.
#[derive(Debug)]
pub struct DuelSession<P> {
    profile: P,
    config: DuelConfig,
    faults: FaultPlan,
    scratch: DuelScratch,
    rng: RcbRng,
}

impl<P: DuelProfile> DuelSession<P> {
    pub fn new(profile: P, config: DuelConfig, faults: FaultPlan, seed: u64) -> Self {
        assert!(faults.validate().is_ok(), "invalid fault plan");
        Self {
            profile,
            config,
            faults,
            scratch: DuelScratch::default(),
            rng: RcbRng::new(seed),
        }
    }

    /// Re-arms the session for its next run on a fresh RNG stream. After
    /// `rearm(seed)`, [`run`](Self::run) is bit-identical to a freshly
    /// constructed session (or the legacy entry points) at `seed`.
    pub fn rearm(&mut self, seed: u64) {
        self.rng = RcbRng::new(seed);
    }

    /// Runs one execution against `adversary` on the session's RNG.
    pub fn run(
        &mut self,
        adversary: &mut dyn RepetitionAdversary,
        deadline: &Deadline,
    ) -> (DuelOutcome, Option<SimError>) {
        run_duel_in(
            &mut self.scratch,
            &self.profile,
            adversary,
            &mut self.rng,
            self.config,
            &self.faults,
            deadline,
        )
    }
}

pub(crate) fn run_duel_core<P: DuelProfile>(
    profile: &P,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: DuelConfig,
    faults: &FaultPlan,
    deadline: &Deadline,
) -> (DuelOutcome, Option<SimError>) {
    run_duel_in(
        &mut DuelScratch::default(),
        profile,
        adversary,
        rng,
        config,
        faults,
        deadline,
    )
}

fn run_duel_in<P: DuelProfile>(
    scratch: &mut DuelScratch,
    profile: &P,
    adversary: &mut dyn RepetitionAdversary,
    rng: &mut RcbRng,
    config: DuelConfig,
    faults: &FaultPlan,
    deadline: &Deadline,
) -> (DuelOutcome, Option<SimError>) {
    debug_assert!(faults.validate().is_ok(), "invalid fault plan");
    let mut alice = AliceState::new(profile.start_epoch());
    let mut bob = BobState::new(profile.start_epoch());

    let mut alice_cost = 0u64;
    let mut bob_cost = 0u64;
    let mut adversary_cost = 0u64;
    let mut slots = 0u64;
    let mut delivery_slot = None;
    let mut period = 0u64;
    let mut epoch = profile.start_epoch();
    let mut truncated = false;
    let mut error = None;

    // Fault state (Alice = node 0, Bob = node 1). The dedicated stream is
    // derived only for non-empty plans so `FaultPlan::none()` is
    // bit-identical to the unfaulted engine.
    let mut fault_rng = if faults.is_none() {
        None
    } else {
        Some(rng.split())
    };
    let loss_p = faults.loss_p();
    let alice_skew = faults.skew_slots(0);
    let bob_skew = faults.skew_slots(1);
    let mut alice_dead = false;
    let mut bob_dead = false;
    // A lost reception: the payload was on the air but this radio failed
    // to decode it — the listener hears noise instead.
    let lost = |frng: &mut Option<RcbRng>| match frng {
        Some(r) if loss_p > 0.0 => bernoulli(r, loss_p),
        _ => false,
    };

    // Session-owned phase buffers (capacity survives re-arms); their
    // contents never feed the RNG, so reuse cannot perturb determinism.
    let DuelScratch {
        sends_buf,
        listens_buf,
    } = scratch;

    // The deadline checkpoint consumes no RNG, so an unbounded deadline
    // (the default on every legacy path) stays byte-identical; the
    // `is_unbounded` gate keeps even the clock read off the default path.
    let bounded = !deadline.is_unbounded();

    while !((alice.is_done() || alice_dead) && (bob.is_done() || bob_dead)) {
        if slots >= config.max_slots {
            truncated = true;
            error = Some(SimError::SlotBudgetExhausted {
                max_slots: config.max_slots,
                slots,
            });
            break;
        }
        if bounded && deadline.exceeded() {
            truncated = true;
            error = Some(SimError::DeadlineExceeded { slots });
            break;
        }
        let len = profile.phase_len(epoch);
        let rate = profile.rate(epoch);
        let thr = profile.noise_threshold(epoch);
        let active = (!alice.is_done() as usize) + (!bob.is_done() as usize);

        // Battery gauge, sampled at phase boundaries (overshoot ≤ one
        // phase, same rule as the exact engine).
        if let Some(cap) = faults.battery_capacity() {
            alice_dead = alice_dead || alice_cost >= cap;
            bob_dead = bob_dead || bob_cost >= cap;
            if (alice.is_done() || alice_dead) && (bob.is_done() || bob_dead) {
                break;
            }
        }
        let alice_off = alice_dead || faults.crashed(0, period);
        let bob_off = bob_dead || faults.crashed(1, period);

        // ---- Send phase: Alice transmits, Bob listens. ----
        let ctx = RepetitionContext {
            epoch,
            repetition: period,
            slots: len,
            active_nodes: active,
        };
        let plan = adversary.plan(&ctx);
        adversary_cost += plan.jam_count(len);

        if alice.is_done() || alice_off {
            sends_buf.clear();
        } else {
            sample_slots_into(rng, len, rate, sends_buf);
        }
        let alice_sends = &sends_buf;
        alice_cost += alice_sends.len() as u64;

        let mut bob_noise = 0u64;
        let mut bob_outcome = None;
        let mut bob_listened = 0u64;
        if !bob.is_done() {
            if bob_off {
                // Radio off; the phase epilogue still runs with zero
                // counts (the phase clock is driven by Bob's own crystal).
                bob_outcome = Some(bob.end_send_phase(false, 0, thr));
            } else {
                sample_slots_into(rng, len, rate, listens_buf);
                let mut got_m_at = None;
                scan_listens(listens_buf, alice_sends, |t, alice_sent| {
                    bob_listened += 1;
                    if t < bob_skew {
                        // Misaligned boundary slot: undecodable energy.
                        bob_noise += 1;
                        false
                    } else if plan.is_jammed(t, len) {
                        bob_noise += 1;
                        false
                    } else if alice_sent {
                        if lost(&mut fault_rng) {
                            bob_noise += 1;
                            false
                        } else {
                            got_m_at = Some(t);
                            true // Bob halts immediately on m; stop listening.
                        }
                    } else {
                        false
                    }
                });
                bob_cost += bob_listened;
                if let Some(t) = got_m_at {
                    bob.receive_message();
                    delivery_slot = Some(slots + t);
                } else {
                    bob_outcome = Some(bob.end_send_phase(false, bob_noise, thr));
                }
            }
        }
        // Summaries report *this phase's* action counts — adaptive
        // adversaries key their spending on per-repetition observations, so
        // feeding them cumulative totals would skew every budget-reactive
        // strategy (and differently per engine).
        adversary.observe(
            &ctx,
            &RepetitionSummary {
                message_slots: alice_sends.len() as u64,
                busy_slots: alice_sends.len() as u64,
                jammed_slots: plan.jam_count(len),
                listen_actions: bob_listened,
                send_actions: alice_sends.len() as u64,
            },
        );
        slots += len;
        period += 1;

        // The nack phase is a new period: re-sample the battery gauge (the
        // exact engine checks at every period boundary).
        if let Some(cap) = faults.battery_capacity() {
            alice_dead = alice_dead || alice_cost >= cap;
            bob_dead = bob_dead || bob_cost >= cap;
        }

        // ---- Nack phase: Bob (if still fighting) transmits, Alice listens.
        let ctx2 = RepetitionContext {
            epoch,
            repetition: period,
            slots: len,
            active_nodes: (!alice.is_done() as usize) + (!bob.is_done() as usize),
        };
        let plan2 = adversary.plan(&ctx2);
        adversary_cost += plan2.jam_count(len);

        // Crash windows are period-granular: re-evaluate for this phase.
        let alice_off2 = alice_dead || faults.crashed(0, period);
        let bob_off2 = bob_dead || faults.crashed(1, period);

        let bob_nacking = matches!(bob_outcome, Some(BobSendOutcome::ContinueToNack));
        if bob_nacking && !bob_off2 {
            sample_slots_into(rng, len, rate, sends_buf);
        } else {
            sends_buf.clear();
        }
        let bob_nacks = &sends_buf;
        bob_cost += bob_nacks.len() as u64;

        let mut alice_listened = 0u64;
        if !alice.is_done() {
            if alice_off2 {
                // Radio off: a quiet epoch from Alice's point of view.
                alice.end_epoch(false, 0, thr);
            } else {
                sample_slots_into(rng, len, rate, listens_buf);
                alice_listened = listens_buf.len() as u64;
                alice_cost += alice_listened;
                let mut heard_nack = false;
                let mut alice_noise = 0u64;
                scan_listens(listens_buf, bob_nacks, |t, bob_sent| {
                    // Skew is checked before jamming; both decode as noise
                    // and neither draws the loss coin.
                    if t < alice_skew || plan2.is_jammed(t, len) {
                        alice_noise += 1;
                    } else if bob_sent {
                        if lost(&mut fault_rng) {
                            alice_noise += 1;
                        } else {
                            heard_nack = true;
                        }
                    }
                    false
                });
                alice.end_epoch(heard_nack, alice_noise, thr);
            }
        }
        if bob_nacking {
            bob.end_nack_phase();
        }
        adversary.observe(
            &ctx2,
            &RepetitionSummary {
                message_slots: 0,
                busy_slots: bob_nacks.len() as u64,
                jammed_slots: plan2.jam_count(len),
                listen_actions: alice_listened,
                send_actions: bob_nacks.len() as u64,
            },
        );
        slots += len;
        period += 1;
        epoch += 1;
        if epoch >= DUEL_EPOCH_CAP {
            // An effectively-infinite adversary budget (or a degenerate
            // profile) would push phase lengths past 2^62 slots; truncate
            // like the `max_slots` cap instead of aborting the trial batch.
            truncated = true;
            error = Some(SimError::EpochBudgetExhausted {
                max_epoch: DUEL_EPOCH_CAP,
                slots,
            });
            break;
        }
    }

    let outcome = DuelOutcome {
        delivered: bob.got_message(),
        bob_premature: bob.is_done() && !bob.got_message(),
        alice_cost,
        bob_cost,
        adversary_cost,
        slots,
        delivery_slot,
        last_epoch: epoch.saturating_sub(1).max(profile.start_epoch()),
        truncated,
    };
    (outcome, error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_adversary::rep_strategies::{BudgetedRepBlocker, NoJamRep};
    use rcb_core::one_to_one::profile::Fig1Profile;

    #[test]
    fn unjammed_run_delivers_with_high_probability() {
        let profile = Fig1Profile::new(0.1); // paper start epoch (14)
        let mut delivered = 0;
        let trials = 100;
        for seed in 0..trials {
            let mut rng = RcbRng::new(seed);
            let mut adv = NoJamRep;
            let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig::default());
            assert!(!out.truncated);
            assert_eq!(out.adversary_cost, 0);
            if out.delivered {
                delivered += 1;
                assert!(out.delivery_slot.is_some());
            } else {
                assert!(out.bob_premature);
            }
        }
        assert!(delivered >= 90, "delivered {delivered}/100 at ε = 0.1");
    }

    #[test]
    fn unjammed_cost_is_the_efficiency_function() {
        // With T = 0, expected cost is O(ln(1/ε)) — concretely, about one
        // epoch's activity: p_i·2^i per phase at the start epoch.
        let profile = Fig1Profile::new(0.1);
        let mut rng = RcbRng::new(42);
        let mut total = 0u64;
        let trials = 50;
        for _ in 0..trials {
            let mut adv = NoJamRep;
            let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig::default());
            total += out.max_cost();
        }
        let mean = total as f64 / trials as f64;
        let i = profile.start_epoch();
        let one_epoch = profile.rate(i) * (2 * (1u64 << i)) as f64;
        assert!(
            mean < 3.0 * one_epoch,
            "mean cost {mean} vs one-epoch bound {one_epoch}"
        );
    }

    #[test]
    fn full_blocking_forces_epoch_progression() {
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        let mut rng = RcbRng::new(1);
        // Budget enough to fully block epochs 8 and 9 (4 phases: 2·256+2·512).
        let mut adv = BudgetedRepBlocker::new(1536, 1.0);
        let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig::default());
        assert!(out.adversary_cost > 0);
        assert!(
            out.last_epoch >= 10,
            "blocked epochs must push progression, got {}",
            out.last_epoch
        );
        assert!(out.delivered, "after the budget is gone, delivery succeeds");
    }

    #[test]
    fn latency_is_linear_in_adversary_budget() {
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        let mut slots_small = 0u64;
        let mut slots_large = 0u64;
        for seed in 0..20 {
            let mut rng = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(2_000, 1.0);
            slots_small += run_duel(&profile, &mut adv, &mut rng, DuelConfig::default()).slots;
            let mut rng = RcbRng::new(seed + 1000);
            let mut adv = BudgetedRepBlocker::new(64_000, 1.0);
            slots_large += run_duel(&profile, &mut adv, &mut rng, DuelConfig::default()).slots;
        }
        // 32× budget should yield far more than 4× latency (it is ~linear).
        assert!(
            slots_large > slots_small * 4,
            "latency {slots_large} vs {slots_small}"
        );
    }

    #[test]
    fn cost_grows_sublinearly_in_t() {
        // The heart of Theorem 1: doubling T must not double cost; the
        // ratio between budgets 4096 and 262144 (64×) should be near
        // √64 = 8, certainly below 20.
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        let trials = 30;
        let mut cost_small = 0.0;
        let mut cost_large = 0.0;
        for seed in 0..trials {
            let mut rng = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(4096, 1.0);
            cost_small +=
                run_duel(&profile, &mut adv, &mut rng, DuelConfig::default()).max_cost() as f64;
            let mut rng = RcbRng::new(seed + 500);
            let mut adv = BudgetedRepBlocker::new(262_144, 1.0);
            cost_large +=
                run_duel(&profile, &mut adv, &mut rng, DuelConfig::default()).max_cost() as f64;
        }
        let ratio = cost_large / cost_small;
        assert!(
            ratio > 3.0 && ratio < 20.0,
            "64× budget → cost ratio {ratio}, expected ≈ 8"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        let mut rng = RcbRng::new(3);
        let mut adv = BudgetedRepBlocker::new(10_000, 1.0);
        let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig { max_slots: 100 });
        assert!(out.truncated);
    }

    /// Records every (context, summary) pair it observes; never jams.
    struct RecordingRep {
        observed: Vec<(RepetitionContext, RepetitionSummary)>,
    }

    impl RepetitionAdversary for RecordingRep {
        fn plan(&mut self, _ctx: &RepetitionContext) -> rcb_adversary::traits::JamPlan {
            rcb_adversary::traits::JamPlan::None
        }

        fn observe(&mut self, ctx: &RepetitionContext, summary: &RepetitionSummary) {
            self.observed.push((*ctx, *summary));
        }
    }

    #[test]
    fn summaries_report_per_phase_counts() {
        // Cross-check the per-phase action counts against the outcome's
        // cumulative totals: Bob listens in send phases (even periods) and
        // nacks in nack phases (odd); Alice is the mirror image. A summary
        // that leaked cumulative totals would both break the totals below
        // and exceed the phase length.
        for seed in 0..20 {
            let profile = Fig1Profile::with_start_epoch(0.05, 6);
            let mut rng = RcbRng::new(seed);
            let mut adv = RecordingRep {
                observed: Vec::new(),
            };
            let out = run_duel(&profile, &mut adv, &mut rng, DuelConfig::default());

            let mut alice_total = 0u64;
            let mut bob_total = 0u64;
            for (ctx, summary) in &adv.observed {
                assert!(
                    summary.listen_actions <= ctx.slots,
                    "seed {seed}: per-phase listens {} exceed phase length {}",
                    summary.listen_actions,
                    ctx.slots
                );
                assert!(summary.send_actions <= ctx.slots);
                if ctx.repetition % 2 == 0 {
                    alice_total += summary.send_actions;
                    bob_total += summary.listen_actions;
                } else {
                    alice_total += summary.listen_actions;
                    bob_total += summary.send_actions;
                }
            }
            assert_eq!(alice_total, out.alice_cost, "seed {seed}: alice total");
            assert_eq!(bob_total, out.bob_cost, "seed {seed}: bob total");
        }
    }

    /// A degenerate profile that never lets either party halt (threshold 0
    /// with zero activity), forcing the epoch counter to run away.
    struct NeverHaltProfile;

    impl DuelProfile for NeverHaltProfile {
        fn start_epoch(&self) -> u32 {
            1
        }

        fn rate(&self, _epoch: u32) -> f64 {
            0.0
        }

        fn noise_threshold(&self, _epoch: u32) -> f64 {
            0.0
        }

        fn phase_len(&self, _epoch: u32) -> u64 {
            1
        }
    }

    #[test]
    fn runaway_epochs_truncate_instead_of_panicking() {
        let mut rng = RcbRng::new(5);
        let mut adv = NoJamRep;
        let out = run_duel(
            &NeverHaltProfile,
            &mut adv,
            &mut rng,
            DuelConfig {
                max_slots: u64::MAX,
            },
        );
        assert!(out.truncated, "epoch cap must truncate, not abort");
        assert!(!out.delivered);
        assert_eq!(out.last_epoch, 61);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        for seed in 0..20 {
            let mut rng_a = RcbRng::new(seed);
            let mut adv_a = BudgetedRepBlocker::new(4096, 1.0);
            let plain = run_duel(&profile, &mut adv_a, &mut rng_a, DuelConfig::default());
            let mut rng_b = RcbRng::new(seed);
            let mut adv_b = BudgetedRepBlocker::new(4096, 1.0);
            let faulted = run_duel_faulted(
                &profile,
                &mut adv_b,
                &mut rng_b,
                DuelConfig::default(),
                &FaultPlan::none(),
            );
            assert_eq!(plain, faulted, "seed {seed}");
            assert_eq!(rng_a, rng_b, "no extra randomness was drawn");
        }
    }

    #[test]
    fn checked_run_reports_epoch_cap_as_typed_error() {
        let mut rng = RcbRng::new(5);
        let mut adv = NoJamRep;
        let err = run_duel_checked(
            &NeverHaltProfile,
            &mut adv,
            &mut rng,
            DuelConfig {
                max_slots: u64::MAX,
            },
            &FaultPlan::none(),
        )
        .expect_err("runaway profile must exhaust the epoch budget");
        assert!(matches!(
            err,
            SimError::EpochBudgetExhausted { max_epoch: 62, .. }
        ));
    }

    #[test]
    fn checked_run_reports_slot_cap_as_typed_error() {
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        let mut rng = RcbRng::new(3);
        let mut adv = BudgetedRepBlocker::new(10_000, 1.0);
        let err = run_duel_checked(
            &profile,
            &mut adv,
            &mut rng,
            DuelConfig { max_slots: 100 },
            &FaultPlan::none(),
        )
        .expect_err("100 slots cannot finish a jammed duel");
        assert!(matches!(
            err,
            SimError::SlotBudgetExhausted { max_slots: 100, .. }
        ));
    }

    #[test]
    fn certain_loss_blocks_delivery() {
        // p_loss = 1: every decode fails, so m can never be delivered; Bob
        // must eventually halt prematurely via the noise threshold path.
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        for seed in 0..10 {
            let mut rng = RcbRng::new(seed);
            let mut adv = NoJamRep;
            let out = run_duel_faulted(
                &profile,
                &mut adv,
                &mut rng,
                DuelConfig::default(),
                &FaultPlan::none().with_loss(1.0),
            );
            assert!(!out.delivered, "seed {seed}: lossy radio cannot decode m");
            assert!(!out.truncated, "seed {seed}: the duel still halts");
        }
    }

    #[test]
    fn moderate_loss_still_delivers_mostly() {
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        let mut delivered = 0;
        let trials = 50;
        for seed in 0..trials {
            let mut rng = RcbRng::new(seed);
            let mut adv = NoJamRep;
            let out = run_duel_faulted(
                &profile,
                &mut adv,
                &mut rng,
                DuelConfig::default(),
                &FaultPlan::none().with_loss(0.2),
            );
            if out.delivered {
                delivered += 1;
            }
        }
        assert!(
            delivered >= trials * 6 / 10,
            "graceful degradation: {delivered}/{trials} delivered at p_loss = 0.2"
        );
    }

    #[test]
    fn crashed_bob_pays_nothing_during_the_window() {
        // Bob offline from the start, forever: he never listens, so his
        // cost is zero and delivery is impossible.
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        let mut rng = RcbRng::new(9);
        let mut adv = NoJamRep;
        let out = run_duel_faulted(
            &profile,
            &mut adv,
            &mut rng,
            DuelConfig::default(),
            &FaultPlan::none().with_crash(1, 0, u64::MAX, false),
        );
        assert_eq!(out.bob_cost, 0);
        assert!(!out.delivered);
        assert!(out.bob_premature, "quiet phases push Bob out");
    }

    #[test]
    fn battery_brownout_caps_spend_near_capacity() {
        // Heavy blanket jamming would normally cost each party hundreds;
        // a small battery caps the spend at capacity plus one phase.
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        let cap = 16u64;
        for seed in 0..10 {
            let mut rng = RcbRng::new(seed);
            let mut adv = BudgetedRepBlocker::new(1 << 20, 1.0);
            let out = run_duel_faulted(
                &profile,
                &mut adv,
                &mut rng,
                DuelConfig::default(),
                &FaultPlan::none().with_battery(cap),
            );
            assert!(!out.truncated, "seed {seed}: dead parties end the run");
            // Overshoot is bounded by one phase of sampled activity: at
            // start epoch 8 that is ≈ rate·len ≈ 47 expected actions, so
            // allow a generous 128 on top of the capacity — still far
            // below the unfaulted spend under this attack (hundreds).
            assert!(
                out.alice_cost < cap + 128 && out.bob_cost < cap + 128,
                "seed {seed}: costs {}/{} vs cap {cap}",
                out.alice_cost,
                out.bob_cost
            );
        }
    }

    /// Deterministic fixture: 4-slot phases, rate 1 (every slot active),
    /// and a noise threshold no phase can reach — both parties halt the
    /// moment a phase is quiet, and Bob decodes m in the first unskewed
    /// send slot.
    struct AlwaysOnProfile;

    impl DuelProfile for AlwaysOnProfile {
        fn start_epoch(&self) -> u32 {
            1
        }

        fn rate(&self, _epoch: u32) -> f64 {
            1.0
        }

        fn noise_threshold(&self, _epoch: u32) -> f64 {
            100.0
        }

        fn phase_len(&self, _epoch: u32) -> u64 {
            4
        }
    }

    #[test]
    fn skewed_bob_hears_boundary_slots_as_noise() {
        let run = |skew_slots: u64| {
            let mut rng = RcbRng::new(4);
            let mut adv = NoJamRep;
            run_duel_faulted(
                &AlwaysOnProfile,
                &mut adv,
                &mut rng,
                DuelConfig::default(),
                &FaultPlan::none().with_skew(1, skew_slots),
            )
        };
        // No skew: Alice sends every slot, Bob decodes at offset 0.
        assert_eq!(run(0).delivery_slot, Some(0));
        // Two skewed boundary slots: the first decodable slot is offset 2.
        assert_eq!(run(2).delivery_slot, Some(2));
        // A fully skewed phase decodes nothing; 4 noise slots stay below
        // the threshold, so Bob quits prematurely — graceful, not stuck.
        let out = run(4);
        assert!(!out.delivered);
        assert!(out.bob_premature);
        assert!(!out.truncated);
    }

    #[test]
    fn an_elapsed_deadline_truncates_with_a_typed_error() {
        let mut rng = RcbRng::new(5);
        let mut adv = NoJamRep;
        let (out, err) = run_duel_core(
            &NeverHaltProfile,
            &mut adv,
            &mut rng,
            DuelConfig {
                max_slots: u64::MAX,
            },
            &FaultPlan::none(),
            &Deadline::after(std::time::Duration::ZERO),
        );
        assert!(out.truncated);
        assert!(matches!(err, Some(SimError::DeadlineExceeded { .. })));
    }

    #[test]
    fn an_unbounded_deadline_is_bit_identical_to_the_legacy_path() {
        let profile = Fig1Profile::with_start_epoch(0.1, 8);
        for seed in 0..10 {
            let mut rng_a = RcbRng::new(seed);
            let mut adv_a = BudgetedRepBlocker::new(4096, 1.0);
            let plain = run_duel(&profile, &mut adv_a, &mut rng_a, DuelConfig::default());
            let mut rng_b = RcbRng::new(seed);
            let mut adv_b = BudgetedRepBlocker::new(4096, 1.0);
            let far = Deadline::after(std::time::Duration::from_secs(3600));
            let (timed, err) = run_duel_core(
                &profile,
                &mut adv_b,
                &mut rng_b,
                DuelConfig::default(),
                &FaultPlan::none(),
                &far,
            );
            assert_eq!(plain, timed, "seed {seed}");
            assert_eq!(rng_a, rng_b, "seed {seed}: no extra randomness drawn");
            assert!(err.is_none());
        }
    }

    #[test]
    fn scan_listens_merge_logic() {
        let listens = [1u64, 3, 5, 7];
        let sends = [2u64, 3, 7];
        let mut hits = Vec::new();
        scan_listens(&listens, &sends, |t, hit| {
            hits.push((t, hit));
            false
        });
        assert_eq!(hits, vec![(1, false), (3, true), (5, false), (7, true)]);
    }

    #[test]
    fn scan_listens_early_stop() {
        let listens = [1u64, 2, 3];
        let sends = [2u64];
        let mut seen = 0;
        scan_listens(&listens, &sends, |_, hit| {
            seen += 1;
            hit
        });
        assert_eq!(seen, 2, "stops at the first hit");
    }
}
