//! Deterministic work-stealing scenario executor.
//!
//! [`run_trials`](crate::runner::run_trials) shards the *trials* of one
//! batch across cores; this module generalises the same atomic-cursor
//! pattern to heterogeneous work lists, which is what the serial consumers
//! (experiment sweeps, the conformance grid, the perf grid) actually hold:
//!
//! * [`run_cells`] — cell-granular: a deterministic parallel map over any
//!   slice. The shard unit is one list element; results come back in list
//!   order regardless of thread count or scheduling.
//! * [`run_specs`] — trial-granular: flattens a `ScenarioSpec` list into
//!   one global trial work list (prefix sums over per-spec trial counts),
//!   so stealing crosses cell boundaries and a long tail cell cannot
//!   serialise the sweep. Workers claim fixed-size chunks of consecutive
//!   global indices and derive each chunk's trial seeds in one batched
//!   [`SeedSequence::children_into`] pass.
//!
//! ## Seed-fold invariant
//!
//! Trial `i` of spec `s` always runs on
//! `SeedSequence::new(s.seeds.master).rng(i)` — byte-identical to
//! [`ScenarioSpec::run_batch_raw`]'s derivation — and seeded adversaries
//! still receive `master ^ i`. Work distribution therefore only reorders
//! *wall-clock execution*, never any RNG stream: results are bit-identical
//! across `Fixed(1)`, `Fixed(8)`, and `Auto` (certified by the tests
//! below).
//!
//! ## Nested parallelism
//!
//! Executor workers mark their thread with the runner's `IN_WORKER` flag,
//! so `Parallelism::Auto` *inside* a cell (e.g. a conformance cell's
//! `run_batch_raw`) degrades to sequential instead of spawning cores²
//! threads. `Fixed(n > 1)` at both tiers is honoured by name and therefore
//! oversubscribes — callers that nest must pick one parallel tier
//! (DESIGN.md §11).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use rcb_mathkit::rng::{RcbRng, SeedSequence};

use crate::error::SimError;
use crate::runner::{enter_worker, panic_payload, Parallelism};
use crate::scenario::{fnv1a, Outcome, ScenarioSpec, FNV_OFFSET};

/// Trials claimed per cursor bump in [`run_specs`]. Small enough that a
/// sweep of a few hundred trials still balances across workers, large
/// enough to amortise the atomic traffic and the batched seed derivation.
const TRIAL_CHUNK: u64 = 16;

/// One trial's result paired with its global index, pre-merge.
type IndexedTrial = (u64, (Outcome, Option<SimError>));

/// Deterministic parallel map over a heterogeneous work list: applies `f`
/// to every element of `items` and returns the results **in list order**,
/// independent of thread count or scheduling.
///
/// The shard unit is one element (a conformance cell, a perf scenario);
/// distribution is dynamic via an atomic cursor, so expensive cells next
/// to cheap ones balance across workers exactly like heterogeneous trials
/// do in [`run_trials`](crate::runner::run_trials). Workers set the
/// runner's `IN_WORKER` flag, so `Parallelism::Auto` inside `f` degrades
/// to sequential. A panic in `f` propagates and aborts the map.
pub fn run_cells<I, T, F>(items: &[I], parallelism: Parallelism, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let threads = parallelism.threads().min(items.len().max(1));
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let cursor = AtomicU64::new(0);
    let worker = |collected: &mut Vec<(usize, T)>| {
        enter_worker();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
            if i >= items.len() {
                return;
            }
            collected.push((i, f(i, &items[i])));
        }
    };

    let mut per_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
    per_worker.resize_with(threads, Vec::new);
    std::thread::scope(|scope| {
        for collected in &mut per_worker {
            scope.spawn(|| worker(collected));
        }
    });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, value) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} claimed twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every cell index was claimed exactly once"))
        .collect()
}

/// Runs every trial of every spec through one global work-stealing pool
/// and returns the tolerant per-trial results grouped by spec, in spec and
/// trial order.
///
/// The work list is the disjoint union of all specs' trial ranges (prefix
/// sums map a global index back to `(spec, trial)`), so workers steal
/// across cell boundaries: a sweep whose last cell is 10× the others keeps
/// every core busy until the true end of the work, which cell-granular
/// sharding cannot. Each trial runs with the exact
/// [`run_batch_raw`](ScenarioSpec::run_batch_raw) seed derivation, so the
/// grouped output is bit-identical to calling `run_batch_raw` per spec —
/// at any thread count.
pub fn run_specs(
    specs: &[ScenarioSpec],
    parallelism: Parallelism,
) -> Vec<Vec<(Outcome, Option<SimError>)>> {
    // offsets[k] = first global index of spec k; offsets[len] = total.
    let mut offsets: Vec<u64> = Vec::with_capacity(specs.len() + 1);
    let mut total = 0u64;
    for spec in specs {
        offsets.push(total);
        total += spec.trials;
    }
    offsets.push(total);

    let run_chunk = |start: u64, end: u64, sink: &mut Vec<IndexedTrial>| {
        let mut g = start;
        // A chunk of consecutive global indices may straddle spec
        // boundaries; split it into per-spec sub-ranges.
        while g < end {
            let cell = offsets.partition_point(|&o| o <= g) - 1;
            let spec = &specs[cell];
            let sub_end = end.min(offsets[cell + 1]);
            let first_trial = g - offsets[cell];
            let len = (sub_end - g) as usize;
            let mut child_seeds = vec![0u64; len];
            SeedSequence::new(spec.seeds.master).children_into(first_trial, &mut child_seeds);
            for (j, &seed) in child_seeds.iter().enumerate() {
                let trial = first_trial + j as u64;
                let mut rng = RcbRng::new(seed);
                let result = catch_unwind(AssertUnwindSafe(|| spec.run_trial_raw(trial, &mut rng)))
                    .unwrap_or_else(|payload| {
                        panic!("spec {cell}, trial {trial}: {}", panic_payload(payload))
                    });
                sink.push((g + j as u64, result));
            }
            g = sub_end;
        }
    };

    let threads = parallelism
        .threads()
        .min(total.div_ceil(TRIAL_CHUNK).max(1) as usize);
    let mut flat: Vec<IndexedTrial> = Vec::with_capacity(total as usize);
    if threads <= 1 {
        run_chunk(0, total, &mut flat);
    } else {
        let cursor = AtomicU64::new(0);
        let worker = |collected: &mut Vec<IndexedTrial>| {
            enter_worker();
            loop {
                let start = cursor.fetch_add(TRIAL_CHUNK, Ordering::Relaxed);
                if start >= total {
                    return;
                }
                run_chunk(start, (start + TRIAL_CHUNK).min(total), collected);
            }
        };
        let mut per_worker: Vec<Vec<IndexedTrial>> = Vec::with_capacity(threads);
        per_worker.resize_with(threads, Vec::new);
        std::thread::scope(|scope| {
            for collected in &mut per_worker {
                scope.spawn(|| worker(collected));
            }
        });
        flat = per_worker.into_iter().flatten().collect();
    }

    let mut slots: Vec<Option<(Outcome, Option<SimError>)>> = Vec::with_capacity(total as usize);
    slots.resize_with(total as usize, || None);
    for (g, value) in flat {
        debug_assert!(slots[g as usize].is_none(), "trial {g} claimed twice");
        slots[g as usize] = Some(value);
    }
    let mut slots = slots.into_iter();
    specs
        .iter()
        .map(|spec| {
            (0..spec.trials)
                .map(|_| {
                    slots
                        .next()
                        .flatten()
                        .expect("every global trial index was claimed exactly once")
                })
                .collect()
        })
        .collect()
}

/// Per-spec FNV-1a batch checksums over [`run_specs`] results: each spec's
/// per-trial [`outcome_checksum`](ScenarioSpec::outcome_checksum)s folded
/// in trial order from [`FNV_OFFSET`] — the exact fold the perf grid
/// records, so these values are comparable with `BENCH_*.json` history.
pub fn batch_checksums(
    specs: &[ScenarioSpec],
    results: &[Vec<(Outcome, Option<SimError>)>],
) -> Vec<u64> {
    specs
        .iter()
        .zip(results)
        .map(|(spec, batch)| {
            batch.iter().fold(FNV_OFFSET, |h, (outcome, _)| {
                fnv1a(h, &[spec.outcome_checksum(outcome)])
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::scenario::{AdversarySpec, DuelProtocol, Engine};

    /// A heterogeneous spec list: jammed fast duel, faulted duel, fast
    /// broadcast, exact-engine duel — mixed workloads, engines, fault
    /// plans, trial counts, and masters, so chunks straddle cell
    /// boundaries (trial counts are not multiples of `TRIAL_CHUNK`).
    fn mixed_specs() -> Vec<ScenarioSpec> {
        let jammed = AdversarySpec::Budgeted {
            budget: 1024,
            fraction: 1.0,
        };
        vec![
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
                .with_adversary(jammed)
                .with_trials(19)
                .with_seed(11),
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
                .with_adversary(jammed)
                .with_faults(FaultPlan::none().with_loss(0.1).with_skew(1, 1))
                .with_trials(7)
                .with_seed(12),
            ScenarioSpec::broadcast(5)
                .with_adversary(AdversarySpec::Budgeted {
                    budget: 256,
                    fraction: 1.0,
                })
                .with_trials(6)
                .with_seed(13),
            ScenarioSpec::duel(DuelProtocol::fig1(0.05, 6))
                .with_engine(Engine::Exact)
                .with_adversary(AdversarySpec::Budgeted {
                    budget: 512,
                    fraction: 1.0,
                })
                .with_trials(3)
                .with_seed(14),
        ]
    }

    #[test]
    fn run_specs_is_bit_identical_across_parallelism() {
        let specs = mixed_specs();
        let one = run_specs(&specs, Parallelism::Fixed(1));
        let eight = run_specs(&specs, Parallelism::Fixed(8));
        let auto = run_specs(&specs, Parallelism::Auto);
        assert_eq!(one, eight, "Fixed(8) diverged from Fixed(1)");
        assert_eq!(one, auto, "Auto diverged from Fixed(1)");
        let sums = batch_checksums(&specs, &one);
        assert_eq!(sums, batch_checksums(&specs, &eight));
        assert_eq!(sums, batch_checksums(&specs, &auto));
        // Distinct cells folded distinct outcomes.
        let mut dedup = sums.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            sums.len(),
            "cell checksums collided: {sums:x?}"
        );
    }

    #[test]
    fn run_specs_matches_per_spec_run_batch_raw() {
        let specs = mixed_specs();
        let stolen = run_specs(&specs, Parallelism::Fixed(4));
        for (spec, batch) in specs.iter().zip(&stolen) {
            let direct = spec
                .clone()
                .with_parallelism(Parallelism::Fixed(1))
                .run_batch_raw();
            assert_eq!(batch, &direct, "executor perturbed a trial stream");
        }
    }

    #[test]
    fn run_specs_handles_empty_and_zero_trial_specs() {
        assert!(run_specs(&[], Parallelism::Fixed(4)).is_empty());
        let specs = vec![
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7)).with_trials(0),
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
                .with_trials(2)
                .with_seed(5),
        ];
        let out = run_specs(&specs, Parallelism::Fixed(4));
        assert_eq!(out.len(), 2);
        assert!(out[0].is_empty());
        assert_eq!(out[1].len(), 2);
    }

    #[test]
    fn run_cells_preserves_order_and_thread_count_independence() {
        let items: Vec<u64> = (0..37).collect();
        let square = |_, &x: &u64| x * x;
        let seq = run_cells(&items, Parallelism::Fixed(1), square);
        let par = run_cells(&items, Parallelism::Fixed(8), square);
        let auto = run_cells(&items, Parallelism::Auto, square);
        assert_eq!(seq, (0..37).map(|x| x * x).collect::<Vec<u64>>());
        assert_eq!(seq, par);
        assert_eq!(seq, auto);
    }

    #[test]
    fn run_cells_on_empty_list_is_empty() {
        let out = run_cells(&[] as &[u64], Parallelism::Auto, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn nested_auto_degrades_inside_cell_workers() {
        // A cell body that runs an Auto batch must stay on the worker's own
        // thread — the executor's workers carry the runner's IN_WORKER flag.
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
            .with_trials(4)
            .with_seed(3)
            .with_parallelism(Parallelism::Auto);
        let cells = [0u64, 1, 2, 3];
        let ok = run_cells(&cells, Parallelism::Fixed(2), |_, _| {
            let outer = std::thread::current().id();
            let batch = crate::runner::run_trials(4, 9, Parallelism::Auto, |_, _| {
                std::thread::current().id()
            });
            let inner_stayed = batch.into_iter().all(|id| id == outer);
            // And the batch result itself is unperturbed by the degrade.
            let degraded = spec.run_batch_raw();
            let reference = spec
                .clone()
                .with_parallelism(Parallelism::Fixed(1))
                .run_batch_raw();
            inner_stayed && degraded == reference
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    fn uneven_cells_still_merge_in_order() {
        let items: Vec<u64> = (0..24).collect();
        let out = run_cells(&items, Parallelism::Fixed(4), |i, &x| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn cell_panics_propagate() {
        let items = [0u64, 1, 2];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_cells(&items, Parallelism::Fixed(1), |i, _| {
                if i == 1 {
                    panic!("boom in cell {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("the panic must propagate");
        let msg = panic_payload(payload);
        assert!(msg.contains("boom in cell 1"), "got: {msg}");
    }
}
