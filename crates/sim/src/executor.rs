//! Deterministic work-stealing scenario executor.
//!
//! [`run_trials`](crate::runner::run_trials) shards the *trials* of one
//! batch across cores; this module generalises the same atomic-cursor
//! pattern to heterogeneous work lists, which is what the serial consumers
//! (experiment sweeps, the conformance grid, the perf grid) actually hold:
//!
//! * [`run_cells`] — cell-granular: a deterministic parallel map over any
//!   slice. The shard unit is one list element; results come back in list
//!   order regardless of thread count or scheduling.
//! * [`run_specs`] — trial-granular: flattens a `ScenarioSpec` list into
//!   one global trial work list (prefix sums over per-spec trial counts),
//!   so stealing crosses cell boundaries and a long tail cell cannot
//!   serialise the sweep. Workers claim fixed-size chunks of consecutive
//!   global indices and derive each chunk's trial seeds in one batched
//!   [`SeedSequence::children_into`] pass.
//!
//! ## Seed-fold invariant
//!
//! Trial `i` of spec `s` always runs on
//! `SeedSequence::new(s.seeds.master).rng(i)` — byte-identical to
//! [`ScenarioSpec::run_batch_raw`]'s derivation — and seeded adversaries
//! still receive `master ^ i`. Work distribution therefore only reorders
//! *wall-clock execution*, never any RNG stream: results are bit-identical
//! across `Fixed(1)`, `Fixed(8)`, and `Auto` (certified by the tests
//! below).
//!
//! ## Nested parallelism
//!
//! Executor workers mark their thread with the runner's `IN_WORKER` flag,
//! so `Parallelism::Auto` *inside* a cell (e.g. a conformance cell's
//! `run_batch_raw`) degrades to sequential instead of spawning cores²
//! threads. `Fixed(n > 1)` at both tiers is honoured by name and therefore
//! oversubscribes — callers that nest must pick one parallel tier
//! (DESIGN.md §11).
//!
//! ## Crash-safe control ([`run_cells_ctl`] / [`run_specs_ctl`])
//!
//! The `_ctl` variants accept a [`SpecsControl`] (deadline, same-seed
//! retry budget, resume-skip predicate) and report **partial** results:
//! every completed unit is `Some`, everything the deadline cut off or the
//! skip predicate elided is `None`, and the run's `deadline_hit` flag
//! says why. The run-level deadline is checked *between* work units —
//! an in-flight trial or cell always finishes, so every `Some` is a
//! deterministic, journal-safe result. A panicking trial is retried on
//! its **same** derived seed up to `max_attempts` times, then quarantined
//! ([`QuarantinedTrial`]) instead of aborting the sweep; the seed streams
//! of every other trial are untouched either way.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use rcb_mathkit::rng::{RcbRng, SeedSequence};

use crate::deadline::Deadline;
use crate::error::{SimError, TrialFailure};
use crate::runner::{enter_worker, panic_payload, Parallelism};
use crate::scenario::{fnv1a, Outcome, ScenarioSpec, FNV_OFFSET};

/// Trials claimed per cursor bump in [`run_specs`]. Small enough that a
/// sweep of a few hundred trials still balances across workers, large
/// enough to amortise the atomic traffic and the batched seed derivation.
const TRIAL_CHUNK: u64 = 16;

/// One trial's result (or quarantined failure) paired with its global
/// index, pre-merge.
type IndexedTrial = (u64, Result<(Outcome, Option<SimError>), TrialFailure>);

/// One spec's per-trial slots: `None` for skipped/never-started trials,
/// `Some` for completed deterministic results.
pub type TrialSlots = Vec<Option<(Outcome, Option<SimError>)>>;

/// Crash-safety knobs for [`run_specs_ctl`]. [`SpecsControl::DEFAULT`]
/// reproduces the uncontrolled [`run_specs`] behaviour exactly.
pub struct SpecsControl<'a> {
    /// Run-level wall-clock budget / cancellation token, checked *between*
    /// trials: in-flight trials finish, so partial results stay
    /// deterministic and journal-safe.
    pub deadline: Deadline,
    /// Optional per-trial wall budget: each trial (and each retry attempt)
    /// gets a fresh [`Deadline::after`] this long, threaded into the
    /// engine slot loops. Deadline-cut trials report
    /// [`SimError::DeadlineExceeded`] and are wall-clock dependent —
    /// resume paths must re-run them, never journal them.
    pub trial_deadline: Option<Duration>,
    /// Same-seed attempts before a panicking trial is quarantined
    /// (`1` = no retry; `0` is treated as `1`).
    pub max_attempts: u32,
    /// Resume predicate: `skip(spec, trial) == true` elides the trial
    /// (its result slot stays `None`). Seed derivation for every other
    /// trial is untouched, so a resumed run is bit-identical to an
    /// uninterrupted one.
    pub skip: Option<&'a (dyn Fn(usize, u64) -> bool + Sync)>,
}

impl SpecsControl<'static> {
    /// No deadline, no retries, no skips — [`run_specs`] semantics.
    pub const DEFAULT: SpecsControl<'static> = SpecsControl {
        deadline: Deadline::NONE,
        trial_deadline: None,
        max_attempts: 1,
        skip: None,
    };
}

impl Default for SpecsControl<'static> {
    fn default() -> Self {
        SpecsControl::DEFAULT
    }
}

/// A trial that kept panicking on its own seed and was set aside so the
/// rest of the sweep could finish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedTrial {
    /// Index into the spec list passed to [`run_specs_ctl`].
    pub spec: usize,
    /// The trial index within that spec.
    pub trial: u64,
    /// The recorded failure (message + attempt count).
    pub failure: TrialFailure,
}

/// Partial, typed result of [`run_specs_ctl`].
#[derive(Debug)]
pub struct SpecsRun {
    /// Per-spec, per-trial results in spec/trial order. `None` means the
    /// trial was skipped (resume) or never started (deadline/quarantine);
    /// every `Some` is a completed, deterministic result.
    pub results: Vec<TrialSlots>,
    /// Trials that exhausted their same-seed retry budget, in
    /// (spec, trial) order.
    pub quarantined: Vec<QuarantinedTrial>,
    /// The run-level deadline (or cancellation flag) fired and cut the
    /// sweep short. Partial results were reported, never silently clipped.
    pub deadline_hit: bool,
}

/// Partial, typed result of [`run_cells_ctl`].
#[derive(Debug)]
pub struct CellsRun<T> {
    /// Per-cell results in list order; `None` = skipped or cut off.
    pub results: Vec<Option<T>>,
    /// The deadline (or cancellation flag) fired before all cells ran.
    pub deadline_hit: bool,
}

/// Deterministic parallel map over a heterogeneous work list: applies `f`
/// to every element of `items` and returns the results **in list order**,
/// independent of thread count or scheduling.
///
/// The shard unit is one element (a conformance cell, a perf scenario);
/// distribution is dynamic via an atomic cursor, so expensive cells next
/// to cheap ones balance across workers exactly like heterogeneous trials
/// do in [`run_trials`](crate::runner::run_trials). Workers set the
/// runner's `IN_WORKER` flag, so `Parallelism::Auto` inside `f` degrades
/// to sequential. A panic in `f` propagates and aborts the map.
pub fn run_cells<I, T, F>(items: &[I], parallelism: Parallelism, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    run_cells_ctl(items, parallelism, &Deadline::NONE, None, f)
        .results
        .into_iter()
        .map(|v| v.expect("unbounded, skip-free run: every cell completed"))
        .collect()
}

/// [`run_cells`] with a cooperative deadline and a resume-skip predicate.
///
/// The deadline is checked before *starting* each cell — an in-flight
/// cell always finishes, so every `Some` in the result is a complete,
/// deterministic value safe to journal. `skip(i) == true` elides cell `i`
/// entirely (its slot stays `None`); remaining cells are unperturbed.
pub fn run_cells_ctl<I, T, F>(
    items: &[I],
    parallelism: Parallelism,
    deadline: &Deadline,
    skip: Option<&(dyn Fn(usize) -> bool + Sync)>,
    f: F,
) -> CellsRun<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let bounded = !deadline.is_unbounded();
    let hit = AtomicBool::new(false);
    let threads = parallelism.threads().min(items.len().max(1));

    let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    if threads <= 1 {
        for (i, item) in items.iter().enumerate() {
            if bounded && deadline.exceeded() {
                hit.store(true, Ordering::Relaxed);
                break;
            }
            if skip.is_some_and(|s| s(i)) {
                continue;
            }
            slots[i] = Some(f(i, item));
        }
        return CellsRun {
            results: slots,
            deadline_hit: hit.load(Ordering::Relaxed),
        };
    }

    let cursor = AtomicU64::new(0);
    let worker = |collected: &mut Vec<(usize, T)>| {
        enter_worker();
        loop {
            if bounded && (hit.load(Ordering::Relaxed) || deadline.exceeded()) {
                hit.store(true, Ordering::Relaxed);
                return;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
            if i >= items.len() {
                return;
            }
            if skip.is_some_and(|s| s(i)) {
                continue;
            }
            collected.push((i, f(i, &items[i])));
        }
    };

    let mut per_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
    per_worker.resize_with(threads, Vec::new);
    std::thread::scope(|scope| {
        for collected in &mut per_worker {
            scope.spawn(|| worker(collected));
        }
    });

    for (i, value) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} claimed twice");
        slots[i] = Some(value);
    }
    CellsRun {
        results: slots,
        deadline_hit: hit.load(Ordering::Relaxed),
    }
}

/// Runs every trial of every spec through one global work-stealing pool
/// and returns the tolerant per-trial results grouped by spec, in spec and
/// trial order.
///
/// The work list is the disjoint union of all specs' trial ranges (prefix
/// sums map a global index back to `(spec, trial)`), so workers steal
/// across cell boundaries: a sweep whose last cell is 10× the others keeps
/// every core busy until the true end of the work, which cell-granular
/// sharding cannot. Each trial runs with the exact
/// [`run_batch_raw`](ScenarioSpec::run_batch_raw) seed derivation, so the
/// grouped output is bit-identical to calling `run_batch_raw` per spec —
/// at any thread count.
pub fn run_specs(
    specs: &[ScenarioSpec],
    parallelism: Parallelism,
) -> Vec<Vec<(Outcome, Option<SimError>)>> {
    let run = run_specs_ctl(specs, parallelism, &SpecsControl::DEFAULT);
    if let Some(q) = run.quarantined.first() {
        panic!("spec {}, trial {}: {}", q.spec, q.trial, q.failure.payload);
    }
    run.results
        .into_iter()
        .map(|batch| {
            batch
                .into_iter()
                .map(|t| t.expect("unbounded, skip-free run: every trial completed"))
                .collect()
        })
        .collect()
}

/// [`run_specs`] under a [`SpecsControl`]: cooperative deadlines, resume
/// skips, and a bounded same-seed retry-then-quarantine policy for
/// panicking trials — with **partial results reported**, never a silent
/// clip.
///
/// Every completed trial still runs on the exact
/// [`run_batch_raw`](ScenarioSpec::run_batch_raw) seed derivation
/// (retries re-create the RNG from the *same* child seed), so whatever
/// subset completes is bit-identical to the corresponding trials of an
/// uninterrupted run at any thread count.
pub fn run_specs_ctl(
    specs: &[ScenarioSpec],
    parallelism: Parallelism,
    ctl: &SpecsControl<'_>,
) -> SpecsRun {
    // offsets[k] = first global index of spec k; offsets[len] = total.
    let mut offsets: Vec<u64> = Vec::with_capacity(specs.len() + 1);
    let mut total = 0u64;
    for spec in specs {
        offsets.push(total);
        total += spec.trials;
    }
    offsets.push(total);

    let bounded = !ctl.deadline.is_unbounded();
    let hit = AtomicBool::new(false);

    let run_chunk = |start: u64, end: u64, sink: &mut Vec<IndexedTrial>| {
        let mut g = start;
        // A chunk of consecutive global indices may straddle spec
        // boundaries; split it into per-spec sub-ranges.
        while g < end {
            let cell = offsets.partition_point(|&o| o <= g) - 1;
            let spec = &specs[cell];
            let sub_end = end.min(offsets[cell + 1]);
            let first_trial = g - offsets[cell];
            let len = (sub_end - g) as usize;
            let mut child_seeds = vec![0u64; len];
            SeedSequence::new(spec.seeds.master).children_into(first_trial, &mut child_seeds);
            for (j, &seed) in child_seeds.iter().enumerate() {
                let trial = first_trial + j as u64;
                if bounded && ctl.deadline.exceeded() {
                    hit.store(true, Ordering::Relaxed);
                    return;
                }
                if ctl.skip.is_some_and(|s| s(cell, trial)) {
                    continue;
                }
                let result = run_with_retries(seed, trial, ctl.max_attempts, |rng| {
                    let trial_dl = ctl
                        .trial_deadline
                        .map(Deadline::after)
                        .unwrap_or(Deadline::NONE);
                    spec.run_trial_ctl(trial, rng, &trial_dl)
                });
                sink.push((g + j as u64, result));
            }
            g = sub_end;
        }
    };

    let threads = parallelism
        .threads()
        .min(total.div_ceil(TRIAL_CHUNK).max(1) as usize);
    let mut flat: Vec<IndexedTrial> = Vec::with_capacity(total as usize);
    if threads <= 1 {
        let mut start = 0;
        while start < total && !hit.load(Ordering::Relaxed) {
            let end = (start + TRIAL_CHUNK).min(total);
            run_chunk(start, end, &mut flat);
            start = end;
        }
    } else {
        let cursor = AtomicU64::new(0);
        let worker = |collected: &mut Vec<IndexedTrial>| {
            enter_worker();
            loop {
                if hit.load(Ordering::Relaxed) {
                    return;
                }
                let start = cursor.fetch_add(TRIAL_CHUNK, Ordering::Relaxed);
                if start >= total {
                    return;
                }
                run_chunk(start, (start + TRIAL_CHUNK).min(total), collected);
            }
        };
        let mut per_worker: Vec<Vec<IndexedTrial>> = Vec::with_capacity(threads);
        per_worker.resize_with(threads, Vec::new);
        std::thread::scope(|scope| {
            for collected in &mut per_worker {
                scope.spawn(|| worker(collected));
            }
        });
        flat = per_worker.into_iter().flatten().collect();
    }

    let mut slots: Vec<Option<(Outcome, Option<SimError>)>> = Vec::with_capacity(total as usize);
    slots.resize_with(total as usize, || None);
    let mut quarantined_flat: Vec<(u64, TrialFailure)> = Vec::new();
    for (g, value) in flat {
        debug_assert!(slots[g as usize].is_none(), "trial {g} claimed twice");
        match value {
            Ok(result) => slots[g as usize] = Some(result),
            Err(failure) => quarantined_flat.push((g, failure)),
        }
    }
    quarantined_flat.sort_unstable_by_key(|(g, _)| *g);
    let quarantined = quarantined_flat
        .into_iter()
        .map(|(g, failure)| {
            let spec = offsets.partition_point(|&o| o <= g) - 1;
            QuarantinedTrial {
                spec,
                trial: g - offsets[spec],
                failure,
            }
        })
        .collect();

    let mut slots = slots.into_iter();
    let results = specs
        .iter()
        .map(|spec| {
            (0..spec.trials)
                .map(|_| slots.next().expect("slot per global index"))
                .collect()
        })
        .collect();
    SpecsRun {
        results,
        quarantined,
        deadline_hit: hit.load(Ordering::Relaxed),
    }
}

/// Runs one trial with a bounded **same-seed** retry policy: each attempt
/// re-creates the RNG from the same derived child seed, so a success on
/// any attempt is byte-identical to a first-try success and no other
/// trial's stream moves. After `max_attempts` panics (`0` treated as
/// `1`), the trial is given up with the attempt count recorded.
fn run_with_retries<T>(
    seed: u64,
    trial: u64,
    max_attempts: u32,
    run: impl Fn(&mut RcbRng) -> T,
) -> Result<T, TrialFailure> {
    let max_attempts = max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut rng = RcbRng::new(seed);
        match catch_unwind(AssertUnwindSafe(|| run(&mut rng))) {
            Ok(value) => return Ok(value),
            Err(payload) if attempt >= max_attempts => {
                let mut failure = TrialFailure::new(trial, panic_payload(payload));
                failure.attempts = attempt;
                return Err(failure);
            }
            Err(_) => {}
        }
    }
}

/// Per-spec FNV-1a batch checksums over [`run_specs`] results: each spec's
/// per-trial [`outcome_checksum`](ScenarioSpec::outcome_checksum)s folded
/// in trial order from [`FNV_OFFSET`] — the exact fold the perf grid
/// records, so these values are comparable with `BENCH_*.json` history.
pub fn batch_checksums(
    specs: &[ScenarioSpec],
    results: &[Vec<(Outcome, Option<SimError>)>],
) -> Vec<u64> {
    specs
        .iter()
        .zip(results)
        .map(|(spec, batch)| {
            batch.iter().fold(FNV_OFFSET, |h, (outcome, _)| {
                fnv1a(h, &[spec.outcome_checksum(outcome)])
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::scenario::{AdversarySpec, DuelProtocol, Engine};

    /// A heterogeneous spec list: jammed fast duel, faulted duel, fast
    /// broadcast, exact-engine duel — mixed workloads, engines, fault
    /// plans, trial counts, and masters, so chunks straddle cell
    /// boundaries (trial counts are not multiples of `TRIAL_CHUNK`).
    fn mixed_specs() -> Vec<ScenarioSpec> {
        let jammed = AdversarySpec::Budgeted {
            budget: 1024,
            fraction: 1.0,
        };
        vec![
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
                .with_adversary(jammed)
                .with_trials(19)
                .with_seed(11),
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
                .with_adversary(jammed)
                .with_faults(FaultPlan::none().with_loss(0.1).with_skew(1, 1))
                .with_trials(7)
                .with_seed(12),
            ScenarioSpec::broadcast(5)
                .with_adversary(AdversarySpec::Budgeted {
                    budget: 256,
                    fraction: 1.0,
                })
                .with_trials(6)
                .with_seed(13),
            ScenarioSpec::duel(DuelProtocol::fig1(0.05, 6))
                .with_engine(Engine::Exact)
                .with_adversary(AdversarySpec::Budgeted {
                    budget: 512,
                    fraction: 1.0,
                })
                .with_trials(3)
                .with_seed(14),
        ]
    }

    #[test]
    fn run_specs_is_bit_identical_across_parallelism() {
        let specs = mixed_specs();
        let one = run_specs(&specs, Parallelism::Fixed(1));
        let eight = run_specs(&specs, Parallelism::Fixed(8));
        let auto = run_specs(&specs, Parallelism::Auto);
        assert_eq!(one, eight, "Fixed(8) diverged from Fixed(1)");
        assert_eq!(one, auto, "Auto diverged from Fixed(1)");
        let sums = batch_checksums(&specs, &one);
        assert_eq!(sums, batch_checksums(&specs, &eight));
        assert_eq!(sums, batch_checksums(&specs, &auto));
        // Distinct cells folded distinct outcomes.
        let mut dedup = sums.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            sums.len(),
            "cell checksums collided: {sums:x?}"
        );
    }

    #[test]
    fn run_specs_matches_per_spec_run_batch_raw() {
        let specs = mixed_specs();
        let stolen = run_specs(&specs, Parallelism::Fixed(4));
        for (spec, batch) in specs.iter().zip(&stolen) {
            let direct = spec
                .clone()
                .with_parallelism(Parallelism::Fixed(1))
                .run_batch_raw();
            assert_eq!(batch, &direct, "executor perturbed a trial stream");
        }
    }

    #[test]
    fn run_specs_handles_empty_and_zero_trial_specs() {
        assert!(run_specs(&[], Parallelism::Fixed(4)).is_empty());
        let specs = vec![
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7)).with_trials(0),
            ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
                .with_trials(2)
                .with_seed(5),
        ];
        let out = run_specs(&specs, Parallelism::Fixed(4));
        assert_eq!(out.len(), 2);
        assert!(out[0].is_empty());
        assert_eq!(out[1].len(), 2);
    }

    #[test]
    fn run_cells_preserves_order_and_thread_count_independence() {
        let items: Vec<u64> = (0..37).collect();
        let square = |_, &x: &u64| x * x;
        let seq = run_cells(&items, Parallelism::Fixed(1), square);
        let par = run_cells(&items, Parallelism::Fixed(8), square);
        let auto = run_cells(&items, Parallelism::Auto, square);
        assert_eq!(seq, (0..37).map(|x| x * x).collect::<Vec<u64>>());
        assert_eq!(seq, par);
        assert_eq!(seq, auto);
    }

    #[test]
    fn run_cells_on_empty_list_is_empty() {
        let out = run_cells(&[] as &[u64], Parallelism::Auto, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn nested_auto_degrades_inside_cell_workers() {
        // A cell body that runs an Auto batch must stay on the worker's own
        // thread — the executor's workers carry the runner's IN_WORKER flag.
        let spec = ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
            .with_trials(4)
            .with_seed(3)
            .with_parallelism(Parallelism::Auto);
        let cells = [0u64, 1, 2, 3];
        let ok = run_cells(&cells, Parallelism::Fixed(2), |_, _| {
            let outer = std::thread::current().id();
            let batch = crate::runner::run_trials(4, 9, Parallelism::Auto, |_, _| {
                std::thread::current().id()
            });
            let inner_stayed = batch.into_iter().all(|id| id == outer);
            // And the batch result itself is unperturbed by the degrade.
            let degraded = spec.run_batch_raw();
            let reference = spec
                .clone()
                .with_parallelism(Parallelism::Fixed(1))
                .run_batch_raw();
            inner_stayed && degraded == reference
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    fn uneven_cells_still_merge_in_order() {
        let items: Vec<u64> = (0..24).collect();
        let out = run_cells(&items, Parallelism::Fixed(4), |i, &x| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn an_elapsed_run_deadline_reports_partials_not_a_clip() {
        let specs = mixed_specs();
        let ctl = SpecsControl {
            deadline: Deadline::after(Duration::ZERO),
            trial_deadline: None,
            max_attempts: 1,
            skip: None,
        };
        let run = run_specs_ctl(&specs, Parallelism::Fixed(1), &ctl);
        assert!(run.deadline_hit, "the elapsed deadline must be reported");
        assert!(run.quarantined.is_empty());
        assert_eq!(run.results.len(), specs.len(), "shape is preserved");
        assert!(
            run.results.iter().flatten().all(|t| t.is_none()),
            "no trial starts after an already-elapsed deadline"
        );
    }

    #[test]
    fn a_latched_cancel_flag_stops_the_sweep_between_trials() {
        static FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        FLAG.store(true, Ordering::Relaxed);
        let specs = mixed_specs();
        let ctl = SpecsControl {
            deadline: Deadline::NONE.with_cancel(&FLAG),
            trial_deadline: None,
            max_attempts: 1,
            skip: None,
        };
        let run = run_specs_ctl(&specs, Parallelism::Fixed(2), &ctl);
        assert!(run.deadline_hit);
        assert!(run.results.iter().flatten().all(|t| t.is_none()));
    }

    #[test]
    fn skip_predicate_resumes_bit_identically_to_a_straight_run() {
        let specs = mixed_specs();
        let straight = run_specs(&specs, Parallelism::Fixed(2));
        // Simulate a resume where every even trial is already journaled.
        let skip = |_spec: usize, trial: u64| trial.is_multiple_of(2);
        let ctl = SpecsControl {
            deadline: Deadline::NONE,
            trial_deadline: None,
            max_attempts: 1,
            skip: Some(&skip),
        };
        let run = run_specs_ctl(&specs, Parallelism::Fixed(2), &ctl);
        assert!(!run.deadline_hit);
        for (s, batch) in run.results.iter().enumerate() {
            for (t, slot) in batch.iter().enumerate() {
                if t % 2 == 0 {
                    assert!(slot.is_none(), "spec {s} trial {t} was journaled");
                } else {
                    assert_eq!(
                        slot.as_ref().expect("unjournaled trial ran"),
                        &straight[s][t],
                        "spec {s} trial {t}: resume perturbed the seed fold"
                    );
                }
            }
        }
    }

    #[test]
    fn a_trial_deadline_yields_typed_deadline_errors() {
        let specs = vec![ScenarioSpec::duel(DuelProtocol::fig1(0.1, 7))
            .with_trials(3)
            .with_seed(1)];
        let ctl = SpecsControl {
            deadline: Deadline::NONE,
            trial_deadline: Some(Duration::ZERO),
            max_attempts: 1,
            skip: None,
        };
        let run = run_specs_ctl(&specs, Parallelism::Fixed(1), &ctl);
        assert!(!run.deadline_hit, "the run-level deadline never fired");
        for slot in &run.results[0] {
            let (_, err) = slot.as_ref().expect("deadline-cut trials still report");
            assert!(
                matches!(err, Some(SimError::DeadlineExceeded { .. })),
                "expected a typed deadline error, got {err:?}"
            );
        }
    }

    #[test]
    fn retries_rerun_the_same_seed_then_quarantine() {
        use std::sync::atomic::AtomicU32;
        // Flaky once: the second attempt must replay the identical stream.
        let calls = AtomicU32::new(0);
        let ok = run_with_retries(77, 3, 3, |rng| {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("flaky once");
            }
            rng.below(1 << 30)
        })
        .expect("the second same-seed attempt succeeds");
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(
            ok,
            RcbRng::new(77).below(1 << 30),
            "a retry must not advance the trial's RNG stream"
        );

        // Deterministic panic: exhaust the budget, then quarantine.
        let always: Result<u64, TrialFailure> =
            run_with_retries(77, 3, 3, |_| panic!("always broken"));
        let failure = always.expect_err("every attempt panicked");
        assert_eq!(failure.trial, 3);
        assert_eq!(failure.attempts, 3);
        assert!(failure.payload.contains("always broken"));
        assert!(failure.to_string().contains("3 same-seed attempts"));
    }

    #[test]
    fn run_cells_ctl_skips_and_deadlines_report_partials() {
        let items: Vec<u64> = (0..8).collect();
        let skip = |i: usize| i.is_multiple_of(3);
        let run = run_cells_ctl(
            &items,
            Parallelism::Fixed(2),
            &Deadline::NONE,
            Some(&skip),
            |_, &x| x * 10,
        );
        assert!(!run.deadline_hit);
        for (i, slot) in run.results.iter().enumerate() {
            if i.is_multiple_of(3) {
                assert!(slot.is_none());
            } else {
                assert_eq!(*slot, Some(i as u64 * 10));
            }
        }

        let cut = run_cells_ctl(
            &items,
            Parallelism::Fixed(2),
            &Deadline::after(Duration::ZERO),
            None,
            |_, &x| x,
        );
        assert!(cut.deadline_hit);
        assert!(cut.results.iter().all(|s| s.is_none()));
    }

    #[test]
    fn cell_panics_propagate() {
        let items = [0u64, 1, 2];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_cells(&items, Parallelism::Fixed(1), |i, _| {
                if i == 1 {
                    panic!("boom in cell {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("the panic must propagate");
        let msg = panic_payload(payload);
        assert!(msg.contains("boom in cell 1"), "got: {msg}");
    }
}
